(* Failure resilience: the Section 6 experiment in miniature.

   Fail a growing fraction of nodes and compare the three stuck-message
   strategies on identical traffic. Run with:

     dune exec examples/failure_resilience.exe *)

module E = Ftr_core.Experiment

let () =
  let n = 1 lsl 13 in
  let links = 13 in
  print_endline "Routing under node failures (terminate / random re-route / backtracking)";
  Printf.printf "network: %d nodes, %d long links each, 2 networks x 200 messages per point\n\n"
    n links;
  Printf.printf "%8s %32s %32s %32s\n" "" "terminate" "re-route" "backtrack(5)";
  Printf.printf "%8s %10s %10s %10s %10s %10s %10s %10s %10s %10s\n" "p(fail)" "failed" "hops"
    "path" "failed" "hops" "path" "failed" "hops" "path";
  List.iter
    (fun row ->
      let cell m = (m.E.failed_fraction, m.E.mean_hops, m.E.mean_path_hops) in
      let tf, th, tp = cell row.E.terminate in
      let rf, rh, rp = cell row.E.reroute in
      let bf, bh, bp = cell row.E.backtrack in
      Printf.printf "%8.2f %10.3f %10.1f %10.1f %10.3f %10.1f %10.1f %10.3f %10.1f %10.1f\n"
        row.E.fail_fraction tf th tp rf rh rp bf bh bp)
    (E.figure6 ~n ~links ~networks:2 ~messages:200
       ~fractions:[ 0.0; 0.2; 0.4; 0.6; 0.8 ] ~seed:99 ());
  print_newline ();
  print_endline "reading the table:";
  print_endline "- 'failed'   fraction of searches that never reached their target";
  print_endline "- 'hops'     every message hop, including backtracking exploration";
  print_endline "- 'path'     loop-erased route length (the paper's delivery-time scale)";
  print_endline "- terminate fails about a p fraction of searches at p failed nodes;";
  print_endline "  backtracking trades exploration traffic for far fewer failures."
