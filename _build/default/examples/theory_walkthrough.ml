(* Theory walkthrough: the paper's probabilistic-recurrence machinery,
   evaluated numerically and confronted with simulation. Run with:

     dune exec examples/theory_walkthrough.exe *)

module Theory = Ftr_core.Theory
module Ac = Ftr_core.Aggregate_chain
module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Harmonic = Ftr_stats.Harmonic
module Summary = Ftr_stats.Summary
module Rng = Ftr_prng.Rng

let n = 8192

let () =
  Printf.printf "The bounds of Table 1, step by step, at n = %d\n\n" n;

  (* Lemma 1 (Karp-Upfal-Wigderson): a non-increasing chain with drift
     mu(z) reaches 1 in at most integral dz / mu(z). Theorem 12 plugs in
     the drift of single-link greedy routing, mu_k > k / 2H_n. *)
  Printf.printf "Lemma 1 with Theorem 12's drift mu_k = k / 2H_n:\n";
  let kuw = Theory.kuw_upper_bound ~mu:(fun k -> Theory.theorem12_drift ~n k) ~x0:n in
  Printf.printf "  sum_k 2H_n/k             = %8.1f hops\n" kuw;
  Printf.printf "  closed form 2 H_n^2      = %8.1f hops\n" (Theory.upper_single_link n);
  Printf.printf "  (H_%d = %.4f)\n\n" n (Harmonic.number n);

  (* Simulation vs the bound. *)
  let rng = Rng.of_int 1 in
  let net = Network.build_ideal ~n ~links:1 rng in
  let s = Summary.create () in
  for _ = 1 to 500 do
    let src = Rng.int rng n and dst = Rng.int rng n in
    Summary.add_int s (Route.hops (Route.route net ~src ~dst))
  done;
  Printf.printf "  simulated single-link greedy routing: %.1f hops (ratio %.2f of the bound)\n\n"
    (Summary.mean s)
    (Summary.mean s /. kuw);

  (* Theorem 2: the lower-bound counterpart. The aggregate chain's T(ln n)
     integral with epsilon = ln^-3 n. *)
  Printf.printf "Theorem 2 / Theorem 10 lower-bound machinery:\n";
  let links = 3 in
  let dist = Ac.harmonic ~links ~max_offset:(n - 1) in
  let ell = Ac.mean_size dist in
  let epsilon = 1.0 /. Float.pow (log (float_of_int n)) 3.0 in
  (* Speed bound per unit of ln|S|: about the expected number of useful
     links, O(ell); the integral then yields Omega(log^2 n / ell loglog n). *)
  let t_ln_n =
    Theory.theorem10_integral
      ~m:(fun _ -> ell *. log (log (float_of_int n)) /. log (float_of_int n))
      ~ln_n:(log (float_of_int n))
      ~steps:10_000
  in
  Printf.printf "  E|Delta| = %.2f; epsilon = ln^-3 n = %.2e\n" ell epsilon;
  Printf.printf "  T(ln n) integral ~ %.1f; inequality (8) gives E[tau] >= %.1f\n" t_ln_n
    (Theory.theorem2_lower_bound ~t:t_ln_n ~epsilon);
  Printf.printf "  leading-term formula Omega(log^2 n / ell loglog n) = %.1f\n"
    (Theory.lower_one_sided ~links:(int_of_float (Float.ceil ell)) n);

  let sim = Ac.mean_single_point dist rng ~start:n ~trials:2000 in
  Printf.printf "  simulated one-sided chain: %.1f steps — above the bound, as proven\n\n"
    (Summary.mean sim);

  (* Lemma 6 in action. *)
  Printf.printf "Lemma 6: Pr[|S'| <= |S|/a] <= 3 ell / a at |S| = %d:\n" n;
  List.iter
    (fun a ->
      let p = Ac.lemma6_drop_probability dist rng ~k:n ~a ~trials:20_000 in
      Printf.printf "  a = %5.0f: empirical %.4f  <=  bound %.4f\n" a p (3.0 *. ell /. a))
    [ 10.0; 100.0; 1000.0 ];
  print_newline ();

  (* The whole of Table 1 for this n. *)
  Printf.printf "Table 1 at n = %d (formulas only):\n" n;
  Printf.printf "  %-44s %10.1f\n" "no failures, 1 link (2H_n^2)" (Theory.upper_single_link n);
  Printf.printf "  %-44s %10.1f\n" "no failures, lg n links (Thm 13)"
    (Theory.upper_multi_link ~links:13 n);
  Printf.printf "  %-44s %10.1f\n" "deterministic base 2 (Thm 14)"
    (Theory.upper_deterministic ~base:2 n);
  Printf.printf "  %-44s %10.1f\n" "link failures p=0.5 (Thm 15)"
    (Theory.upper_link_failure ~links:13 ~present_p:0.5 n);
  Printf.printf "  %-44s %10.1f\n" "geometric links, p=0.5 (Thm 16)"
    (Theory.upper_geometric_link_failure ~base:2 ~present_p:0.5 n);
  Printf.printf "  %-44s %10.1f\n" "node failures p=0.5 (Thm 18)"
    (Theory.upper_node_failure ~links:13 ~death_p:0.5 n);
  Printf.printf "  %-44s %10.1f\n" "lower bound, one-sided (Thm 10)"
    (Theory.lower_one_sided ~links:13 n);
  Printf.printf "  %-44s %10.1f\n" "lower bound, large ell (Thm 3)"
    (Theory.lower_large_links ~links:13 n)
