(* Churn: the Section 5 heuristic as a live protocol.

   Nodes join through routed lookups, solicit incoming links with the
   Poisson/redirect rule, crash without warning, and repair dead links
   with fresh 1/d draws — all over the discrete-event engine. Run with:

     dune exec examples/churn_simulation.exe *)

module Engine = Ftr_sim.Engine
module Trace = Ftr_sim.Trace
module Overlay = Ftr_p2p.Overlay
module Churn = Ftr_p2p.Churn
module Rng = Ftr_prng.Rng

let () =
  let line_size = 1024 in
  let rng = Rng.of_int 7 in
  let engine = Engine.create () in
  let trace = Trace.create ~capacity:64 () in
  let overlay =
    Overlay.create ~latency:1.0 ~trace ~line_size ~links:8 ~rng:(Rng.split rng) engine
  in
  (* Seed population: 64 nodes spread over the line. *)
  Overlay.populate overlay ~positions:(List.init 64 (fun i -> i * line_size / 64));
  Printf.printf "seeded %d nodes on a %d-point line\n" (Overlay.node_count overlay) line_size;

  (* A workload of joins, graceful leaves, crashes and lookups. *)
  let until =
    Churn.install
      ~config:
        {
          Churn.duration = 2000.0;
          join_rate = 0.08;
          crash_rate = 0.03;
          leave_rate = 0.02;
          lookup_rate = 1.5;
          min_nodes = 16;
        }
      ~line_size overlay (Rng.split rng)
  in
  Engine.run ~until engine;
  Engine.run ~max_events:1_000_000 engine;

  let r = Churn.report overlay in
  Printf.printf "\nafter %.0f time units of churn:\n" until;
  Printf.printf "  population   %d live nodes (%d joins, %d crashes, %d leaves)\n"
    r.Churn.final_nodes r.Churn.joins r.Churn.crashes r.Churn.leaves;
  Printf.printf "  lookups      %d issued, %.1f%% succeeded, %.1f hops on average\n"
    r.Churn.lookups_issued (100.0 *. r.Churn.success_rate) r.Churn.mean_hops;
  Printf.printf "  maintenance  %d messages, %d probes, %d links regenerated\n" r.Churn.messages
    r.Churn.probes r.Churn.repairs;

  print_endline "\nlast protocol events:";
  List.iter
    (fun e -> Printf.printf "  [%8.1f] %s\n" e.Trace.time e.Trace.message)
    (Trace.entries trace)
