(* Resource location: the paper's Section 2 promise as an API.

   Resources hash to points of the metric space; the nearest node stores
   them; greedy routing finds them — even when nodes fail, if you
   replicate. Run with:

     dune exec examples/resource_location.exe *)

module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Failure = Ftr_core.Failure
module Store = Ftr_dht.Store
module Keyspace = Ftr_dht.Keyspace
module Rng = Ftr_prng.Rng

let () =
  let n = 4096 in
  let rng = Rng.of_int 2002 in
  let net = Network.build_ideal ~n ~links:12 rng in

  (* 1. Static hash-table functionality over the overlay. *)
  let store = Store.create ~replicas:3 net in
  let albums =
    [
      ("dark-side-of-the-moon", "node-archive-A");
      ("kind-of-blue", "node-archive-B");
      ("a-love-supreme", "node-archive-C");
    ]
  in
  List.iter (fun (key, value) -> Store.put store ~key ~value) albums;
  List.iter
    (fun (key, _) ->
      let point = Keyspace.point ~line_size:n key in
      Printf.printf "%-24s hashes to point %4d, stored at nodes %s\n" key point
        (String.concat ", " (List.map string_of_int (Store.replica_owners store key))))
    albums;

  (* 2. Any node can locate any resource by routing to its point. *)
  let r = Store.routed_get store ~src:17 ~key:"kind-of-blue" in
  Printf.printf "\nnode 17 found %S in %d hops\n"
    (Option.value ~default:"<missing>" r.Store.value)
    r.Store.hops;

  (* 3. Fail 40%% of the network; replicated resources survive. *)
  let mask = Failure.random_node_fraction rng ~n ~fraction:0.4 in
  let failures = Failure.of_node_mask mask in
  let src =
    let rec live () =
      let v = Rng.int rng n in
      if Ftr_graph.Bitset.get mask v then v else live ()
    in
    live ()
  in
  print_endline "\nwith 40% of the nodes dead (backtracking routing):";
  List.iter
    (fun (key, _) ->
      let r =
        Store.routed_get ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng store ~src
          ~key
      in
      match r.Store.value with
      | Some v -> Printf.printf "  %-24s still served by %s (%d hops)\n" key v r.Store.hops
      | None -> Printf.printf "  %-24s LOST\n" key)
    albums;

  (* 4. The same layer runs over the live protocol with churn. *)
  let engine = Ftr_sim.Engine.create () in
  let overlay =
    Ftr_p2p.Overlay.create ~line_size:1024 ~links:8 ~rng:(Rng.split rng) engine
  in
  Ftr_p2p.Overlay.populate overlay ~positions:(List.init 64 (fun i -> i * 16));
  let dht = Ftr_dht.Dynamic.create ~replicas:2 ~line_size:1024 overlay in
  Ftr_dht.Dynamic.put dht ~from:0 ~key:"live-key" ~value:"live-value";
  Ftr_sim.Engine.run engine;
  (* A node joins right where the key lives; lookups still resolve. *)
  Ftr_p2p.Overlay.join overlay ~pos:(Keyspace.point ~line_size:1024 "live-key") ~via:0;
  Ftr_sim.Engine.run engine;
  ignore (Ftr_dht.Dynamic.rebalance dht);
  Ftr_sim.Engine.run engine;
  Ftr_dht.Dynamic.get dht ~from:512 ~key:"live-key" ~callback:(fun v ->
      Printf.printf "\nover the live protocol, after a join at the key's point: %s\n"
        (Option.value ~default:"<missing>" v));
  Ftr_sim.Engine.run engine
