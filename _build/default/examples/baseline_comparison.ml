(* Baseline comparison: the Section 3 landscape on one machine.

   The same resource-location job on five architectures: this paper's
   line overlay, Chord's finger tables, Kleinberg's 2-D grid, a CAN-style
   pure lattice, and Gnutella-style flooding. Run with:

     dune exec examples/baseline_comparison.exe *)

module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Theory = Ftr_core.Theory
module Rng = Ftr_prng.Rng
module Summary = Ftr_stats.Summary

let messages = 500

let summarize f =
  let s = Summary.create () in
  for _ = 1 to messages do
    Summary.add_int s (f ())
  done;
  s

let () =
  let n = 4096 in
  let side = 64 in
  let rng = Rng.of_int 11 in
  Printf.printf "locating resources among ~%d nodes, %d queries per system\n\n" n messages;
  Printf.printf "%44s %10s %10s %12s\n" "system" "mean" "p99-ish" "state/node";

  let print name s state =
    Printf.printf "%44s %10.1f %10.0f %12s\n" name (Summary.mean s) (Summary.max_value s) state
  in

  (* This paper: greedy routing over 1/d long links on the line. *)
  let links = int_of_float (Theory.lg n) in
  let line = Network.build_ideal ~n ~links (Rng.split rng) in
  print "this paper: line + 1/d links (hops)"
    (summarize (fun () -> Route.hops (Route.route line ~src:(Rng.int rng n) ~dst:(Rng.int rng n))))
    (Printf.sprintf "%d links" (links + 2));

  (* Chord: identifier circle and finger tables (one-sided). *)
  let chord = Ftr_baselines.Chord.create_full ~n in
  print "Chord: finger tables (hops)"
    (summarize (fun () ->
         Ftr_baselines.Chord.route_hops chord ~src:(Rng.int rng n) ~key:(Rng.int rng n)))
    (Printf.sprintf "%d fingers" (int_of_float (Theory.lg n)));

  (* Kleinberg: 2-D torus with d^-2 long links. *)
  let kle = Ftr_baselines.Kleinberg.build ~long_links:2 ~side (Rng.split rng) in
  let m = side * side in
  print "Kleinberg: 2-D grid, alpha=2 (hops)"
    (summarize (fun () ->
         Ftr_baselines.Kleinberg.route_hops kle ~src:(Rng.int rng m) ~dst:(Rng.int rng m)))
    "6 links";

  (* CAN: lattice only — small state, polynomial routes. *)
  let lat = Ftr_baselines.Lattice.create ~dims:2 ~side in
  print "CAN-style: 2-D lattice only (hops)"
    (summarize (fun () ->
         Ftr_baselines.Lattice.route_hops lat ~src:(Rng.int rng m) ~dst:(Rng.int rng m)))
    "4 links";

  (* Gnutella: no structure at all — queries flood. *)
  let flood = Ftr_baselines.Flooding.random_overlay ~n ~degree:4 (Rng.split rng) in
  print "Gnutella-style: flooding (messages!)"
    (summarize (fun () ->
         let src = Rng.int rng n and dst = Rng.int rng n in
         if src = dst then 0
         else (Ftr_baselines.Flooding.search flood ~src ~dst).Ftr_baselines.Flooding.messages))
    "~8 links";

  print_newline ();
  print_endline "the paper's point: structured overlays embedded in a metric space";
  print_endline "deliver in polylog hops with logarithmic state, while flooding pays";
  print_endline "thousands of messages per query and the bare lattice pays O(sqrt n) hops."
