examples/baseline_comparison.ml: Ftr_baselines Ftr_core Ftr_prng Ftr_stats Printf
