examples/resource_location.mli:
