examples/resource_location.ml: Ftr_core Ftr_dht Ftr_graph Ftr_p2p Ftr_prng Ftr_sim List Option Printf String
