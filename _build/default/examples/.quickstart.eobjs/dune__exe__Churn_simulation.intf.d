examples/churn_simulation.mli:
