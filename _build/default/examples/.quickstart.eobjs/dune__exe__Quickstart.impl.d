examples/quickstart.ml: Ftr_core Ftr_graph Ftr_prng Ftr_stats List Printf String
