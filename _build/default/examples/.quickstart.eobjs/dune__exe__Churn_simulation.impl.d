examples/churn_simulation.ml: Ftr_p2p Ftr_prng Ftr_sim List Printf
