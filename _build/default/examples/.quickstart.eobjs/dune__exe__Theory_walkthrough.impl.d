examples/theory_walkthrough.ml: Float Ftr_core Ftr_prng Ftr_stats List Printf
