examples/failure_resilience.ml: Ftr_core List Printf
