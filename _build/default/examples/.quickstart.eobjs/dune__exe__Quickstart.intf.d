examples/quickstart.mli:
