(* Quickstart: build the paper's overlay, route a message, inspect it.

   Run with:  dune exec examples/quickstart.exe *)

module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Theory = Ftr_core.Theory
module Rng = Ftr_prng.Rng
module Summary = Ftr_stats.Summary

let () =
  (* 1. A deterministic random source: every run reproduces exactly. *)
  let rng = Rng.of_int 2002 in

  (* 2. The paper's network: n nodes on a line, each linked to its
     immediate neighbours plus lg n long-distance links whose lengths
     follow the inverse power-law distribution with exponent 1. *)
  let n = 4096 in
  let links = int_of_float (Theory.lg n) in
  let net = Network.build_ideal ~n ~links rng in
  Printf.printf "built a network of %d nodes with %d long links each\n" (Network.size net) links;

  (* 3. Route one message greedily and show the route it took. *)
  let src = 17 and dst = 3967 in
  let outcome, path = Route.route_path net ~src ~dst in
  (match outcome with
  | Route.Delivered { hops } ->
      Printf.printf "delivered %d -> %d in %d hops:\n  %s\n" src dst hops
        (String.concat " -> " (List.map string_of_int path))
  | Route.Failed _ -> print_endline "unexpected failure (no faults injected)");

  (* 4. Average delivery time over random pairs, against Theorem 13's
     bound. *)
  let s = Summary.create () in
  for _ = 1 to 1000 do
    let src = Rng.int rng n and dst = Rng.int rng n in
    Summary.add_int s (Route.hops (Route.route net ~src ~dst))
  done;
  Printf.printf "mean delivery time over 1000 messages: %.2f hops (+- %.2f)\n" (Summary.mean s)
    (Summary.ci95_halfwidth s);
  Printf.printf "Theorem 13 upper bound (1+lg n) 8 H_n / l: %.1f hops\n"
    (Theory.upper_multi_link ~links n);

  (* 5. The same network survives failures: kill 30%% of the nodes and
     route with the backtracking strategy. *)
  let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction:0.3 in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let live () =
    let rec go () =
      let v = Rng.int rng n in
      if Ftr_graph.Bitset.get mask v then v else go ()
    in
    go ()
  in
  let delivered = ref 0 in
  for _ = 1 to 1000 do
    let src = live () and dst = live () in
    match
      Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng net ~src ~dst
    with
    | Route.Delivered _ -> incr delivered
    | Route.Failed _ -> ()
  done;
  Printf.printf "with 30%% of nodes dead, backtracking still delivered %d/1000 messages\n"
    !delivered
