(** Adversarial node failures (Section 4.3.4.2).

    The paper conjectures that deterministic link structures are fragile
    against targeted failures: an adversary who knows the structure can cut
    any node off by killing the O(log n) predictable positions its incoming
    links come from, while the randomized 1/d network hides its links
    behind coin flips. This module makes that conjecture executable. *)

val structural_positions : n:int -> base:int -> target:int -> int list
(** The positions [target ± base^i] on the line — every in-neighbour of
    [target] in a {!Network.build_geometric} network.
    @raise Invalid_argument on bad parameters. *)

val structural_mask : n:int -> base:int -> target:int -> Ftr_graph.Bitset.t
(** Aliveness mask with exactly those positions dead (the target lives). *)

val blockade_positions : n:int -> target:int -> radius:int -> int list
(** Every position within [radius] of the target — the "stuck in a local
    neighborhood" variant. @raise Invalid_argument if [radius < 1]. *)

val blockade_mask : n:int -> target:int -> radius:int -> Ftr_graph.Bitset.t
(** Aliveness mask for the blockade. *)

type isolation_result = {
  kills : int;  (** nodes the adversary removed *)
  geometric_failed : float;  (** failed-search fraction on the Theorem 16 network *)
  random_failed : float;  (** failed-search fraction on the 1/d network *)
}

val isolation_experiment :
  ?n:int -> ?base:int -> ?links:int -> ?trials:int -> seed:int -> unit -> isolation_result
(** Apply the same structural kill list to a geometric network and to a
    randomized network (equal link budgets) and measure backtracking-search
    failure fractions against random targets. Expected: the geometric
    network fails essentially always, the random network essentially
    never. *)

val highest_in_degree_mask : Network.t -> kills:int -> Ftr_graph.Bitset.t
(** Aliveness mask with the [kills] highest-in-degree nodes dead — the
    classic hub attack. @raise Invalid_argument on a bad kill count. *)

type degree_attack_result = {
  attack_kills : int;
  random_failed : float;  (** failed fraction after killing a random set *)
  targeted_failed : float;  (** after killing the highest-in-degree set *)
}

val degree_attack_experiment :
  ?kills_fraction:float -> ?messages:int -> net:Network.t -> seed:int -> unit ->
  degree_attack_result
(** Kill the same number of nodes at random and by descending in-degree,
    and compare backtracking-search failure fractions. On the egalitarian
    1/d overlay the two are close; link-concentrating constructions give
    the targeted attacker an edge. *)
