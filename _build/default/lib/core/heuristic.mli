(** The Section 5 heuristic: decentralised construction and maintenance of
    the 1/d random graph as nodes arrive one at a time.

    Each arriving node [v]:
    + samples ℓ sink points from the inverse power-law length law and links
      to the owner of each sink's {e basin of attraction} (the nearest
      already-present point);
    + estimates the number of incoming links it should have with a
      Poisson(ℓ) draw and solicits that many earlier nodes (again chosen by
      the 1/d law through their basins) to redirect a link to it; a node at
      distance [d_{k+1}] accepts with probability
      [p_{k+1} / (p_1 + ... + p_{k+1})] where [p_i = 1/d_i], and picks the
      victim link with probability [p_i / (p_1 + ... + p_k)]
      ({!Proportional}) or by age ({!Oldest}, the paper's alternative).

    The result is a {!Network.t} over the full line whose long-link length
    distribution tracks the ideal [1/d] law (Figure 5). *)

type replacement =
  | Proportional  (** victim chosen with probability proportional to 1/d *)
  | Oldest  (** victim is the longest-lived link *)

type arrival =
  | Random_order  (** nodes arrive in a uniformly random order *)
  | Sequential  (** nodes arrive in position order (worst case for basins) *)

val build :
  ?exponent:float ->
  ?replacement:replacement ->
  ?arrival:arrival ->
  n:int ->
  links:int ->
  Ftr_prng.Rng.t ->
  Network.t
(** Run the full arrival process and return the constructed network.
    Defaults: exponent 1, proportional replacement, random arrival order.
    @raise Invalid_argument if [n < 2] or [links < 1]. *)

val length_distribution : Network.t -> float array
(** Empirical pmf of long-link lengths; index [d] holds the fraction of
    long links with length exactly [d] (index 0 unused). *)

val ideal_distribution : ?exponent:float -> n:int -> unit -> float array
(** The ideal normalised inverse power-law pmf over lengths [1..n-1],
    laid out like {!length_distribution} for direct comparison. *)

val repair : ?exponent:float -> alive:(int -> bool) -> Network.t -> Ftr_prng.Rng.t -> Network.t
(** Regenerate a (line) network after a failure wave: survivors keep their
    links to each other, re-draw every link that pointed at a dead node
    from the 1/d law conditioned on survivors, and re-ring to their nearest
    live neighbours — Section 5's repair, which restores a Theorem 17
    random graph over the survivors.
    @raise Invalid_argument with fewer than two survivors. *)
