(** Plain-text snapshots of networks.

    Constructed overlays are random objects; archiving one pins every
    downstream experiment to the byte-identical graph. The format is
    line-oriented and diff-friendly (see the implementation header). *)

exception Parse_error of string
(** Raised by the readers on malformed input, with a human-readable
    location. *)

val write_network : out_channel -> Network.t -> unit
(** Serialize to a channel. *)

val read_network : in_channel -> Network.t
(** Parse from a channel. @raise Parse_error on malformed input. *)

val to_string : Network.t -> string
(** Serialize to a string. *)

val of_string : string -> Network.t
(** Parse from a string. @raise Parse_error on malformed input. *)

val save_file : Network.t -> string -> unit
(** Write to a file (text mode). *)

val load_file : string -> Network.t
(** Read from a file. @raise Parse_error on malformed input;
    @raise Sys_error if the file cannot be opened. *)
