(** Structural statistics of an overlay: degree balance, link-length
    spread, boundary effects. The benchmark's "anatomy" section prints
    them; tests pin the invariants (e.g. the 1/d network concentrates
    in-degree nowhere). *)

val out_degree_summary : Network.t -> Ftr_stats.Summary.t
(** Out-degrees over all nodes. *)

val in_degrees : Network.t -> int array
(** Per-node in-degree (how many nodes link to each). *)

val in_degree_summary : Network.t -> Ftr_stats.Summary.t
(** In-degrees over all nodes. *)

val in_degree_hotspot : Network.t -> float
(** Largest in-degree over the mean in-degree. *)

val length_percentiles : Network.t -> (float * float * float) option
(** (median, p90, p99) of long-link lengths; [None] without long links. *)

val boundary_distortion : Network.t -> float
(** Mean long-link length of edge nodes over that of middle nodes; 1.0 on
    a boundary-free circle. @raise Invalid_argument on networks under 6
    nodes. *)

type anatomy = {
  nodes : int;
  mean_out_degree : float;
  mean_in_degree : float;
  max_in_degree : int;
  in_degree_hotspot : float;
  median_length : float;
  p90_length : float;
  p99_length : float;
  boundary_distortion : float;
}

val anatomy : Network.t -> anatomy
(** Everything above in one record. *)
