(** Closed-form bounds from Table 1 and the probabilistic-recurrence tools
    of Section 4.1, as executable formulas.

    Upper bounds return the paper's explicit constants, so a simulated mean
    delivery time can be asserted [<=] the formula; lower bounds return the
    leading term with constant 1 and are meant for shape comparisons. *)

val lg : int -> float
(** Base-2 logarithm. @raise Invalid_argument if [n <= 0]. *)

val log_base : base:int -> int -> float
(** Logarithm in an integer base. @raise Invalid_argument if [base < 2]. *)

val upper_single_link : int -> float
(** Theorem 12: [2 H_n²] with one long link per node. *)

val upper_multi_link : links:int -> int -> float
(** Theorem 13: [(1 + lg n) · 8 H_n / ℓ] with ℓ links. *)

val upper_deterministic : base:int -> int -> float
(** Theorem 14: [⌈log_b n⌉] hops with digit-fixing links. *)

val upper_link_failure : links:int -> present_p:float -> int -> float
(** Theorem 15: Theorem 13's bound divided by the link-survival
    probability. *)

val upper_geometric_link_failure : base:int -> present_p:float -> int -> float
(** Theorem 16: [1 + 2(b-q)H_{n-1}/p] for geometric links surviving with
    probability [p], [q = 1-p]. *)

val upper_node_failure : links:int -> death_p:float -> int -> float
(** Theorem 18: Theorem 13's bound divided by the node-survival
    probability [1 - death_p]. *)

val lower_one_sided : links:int -> int -> float
(** Theorem 10, one-sided: [log²n / (ℓ log log n)]. *)

val lower_two_sided : links:int -> int -> float
(** Theorem 10, two-sided: [log²n / (ℓ² log log n)]. *)

val lower_large_links : links:int -> int -> float
(** Theorem 3: [log n / log ℓ] for large ℓ. *)

val kuw_upper_bound : mu:(int -> float) -> x0:int -> float
(** Lemma 1 evaluated by unit steps: [Σ_{z=1..x0} 1/μ(z)], an upper bound
    on the expected absorption time of a non-increasing chain with
    non-decreasing drift [μ]. *)

val theorem12_drift : n:int -> int -> float
(** The drift bound [μ_k > k / 2H_n] used in Theorem 12's proof. *)

val theorem2_lower_bound : t:float -> epsilon:float -> float
(** Inequality (8): [T / (εT + (1-ε))]. *)

val theorem10_integral : m:(float -> float) -> ln_n:float -> steps:int -> float
(** The proof's integral [∫_0^{ln n} dz / m(z)] by the trapezoid rule. *)
