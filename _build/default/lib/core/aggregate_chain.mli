(** Executable form of the Section 4.2 lower-bound machinery.

    The paper analyses one-sided greedy routing through an {e aggregate
    chain}: instead of a single message position, track an interval
    [{1..k}] of possible positions; a fresh offset set ∆ splits it into
    subranges that jump together, and the successor subrange is chosen with
    probability proportional to its size (equation 14). Lemma 4 states the
    aggregate chain and the single-point chain induce the same position
    distribution — a property the test suite checks empirically — and
    Lemma 6 bounds the probability of large drops in [ln |S|], which the
    benchmarks verify against simulation. *)

type dist
(** A ∆ distribution: ±1 always present, each ±d included independently
    with probability [p d], offsets bounded by [max_offset]. *)

val make : max_offset:int -> p:(int -> float) -> dist
(** Arbitrary inclusion probabilities. [p 1] is treated as 1.
    @raise Invalid_argument if [max_offset < 1]. *)

val harmonic : links:int -> max_offset:int -> dist
(** Inclusion probability proportional to 1/d, scaled to about [links]
    long offsets per side — the distribution the upper bounds use. *)

val uniform : links:int -> max_offset:int -> dist
(** Constant inclusion probability with the same expected size, a
    deliberately bad distribution for contrast. *)

val mean_size : dist -> float
(** E[|∆|] counting both signs (the paper's ℓ). *)

val sample_positive : dist -> Ftr_prng.Rng.t -> int array
(** One draw of the positive offsets, sorted ascending, always containing
    1. *)

val simulate_single_point : dist -> Ftr_prng.Rng.t -> start:int -> int
(** Steps for one-sided greedy routing from [start] to 0 with fresh ∆ draws
    at every node. *)

val simulate_aggregate : dist -> Ftr_prng.Rng.t -> start:int -> int
(** Steps to absorption of the aggregate chain started at [{1..start}]. *)

val lemma6_drop_probability :
  dist -> Ftr_prng.Rng.t -> k:int -> a:float -> trials:int -> float
(** Empirical estimate of [Pr[|S^{t+1}| <= |S^t|/a]] from state [{1..k}];
    Lemma 6 proves it is at most [3ℓ/a]. *)

val mean_single_point :
  dist -> Ftr_prng.Rng.t -> start:int -> trials:int -> Ftr_stats.Summary.t
(** Summary of {!simulate_single_point} over repeated trials. *)

val mean_aggregate :
  dist -> Ftr_prng.Rng.t -> start:int -> trials:int -> Ftr_stats.Summary.t
(** Summary of {!simulate_aggregate} over repeated trials. *)

val sample_full : dist -> Ftr_prng.Rng.t -> int array
(** One draw of the whole offset set (both signs), sorted ascending,
    always containing ±1. *)

val simulate_two_sided : dist -> Ftr_prng.Rng.t -> start:int -> int
(** Steps for two-sided greedy routing from [start] to 0 with fresh ∆
    draws at every node (the Section 4.2.1 two-sided model). *)

val mean_two_sided :
  dist -> Ftr_prng.Rng.t -> start:int -> trials:int -> Ftr_stats.Summary.t
(** Summary of {!simulate_two_sided} over repeated trials. *)
