(** Byzantine blackholes (Section 7's security direction, made concrete).

    A Byzantine node accepts messages and silently drops them. Senders
    cannot tell Byzantine neighbours from honest ones before forwarding;
    the defences differ in what happens after the silence:

    - {!Naive}: nothing — the first blackhole on the greedy path kills the
      search;
    - {!Retry}: the sender times out, blacklists the suspect for this
      search, and forwards to its next-best neighbour (one wasted message
      per encounter);
    - {!Retry_backtrack}: {!Retry} plus Section 6 backtracking when a
      node's closer candidates are exhausted. *)

type outcome =
  | Delivered of { hops : int; wasted : int }
  | Failed of { hops : int; wasted : int }

val delivered : outcome -> bool
(** Whether the message arrived. *)

val hops : outcome -> int
(** All messages sent, wasted ones included. *)

val wasted : outcome -> int
(** Messages eaten by blackholes. *)

type defense =
  | Naive
  | Retry
  | Retry_backtrack of { history : int }

val route_misroute :
  ?max_hops:int -> Network.t -> byzantine:(int -> bool) -> src:int -> dst:int -> outcome
(** The misrouting adversary: a Byzantine node silently forwards the
    message to its neighbour farthest from the target instead of dropping
    it. [wasted] counts sabotage hops. Honest greedy steps pull the message
    back; delivery succeeds iff progress outruns sabotage within the hop
    budget (default 1000).
    @raise Invalid_argument on out-of-range or Byzantine endpoints. *)

val route :
  ?defense:defense ->
  ?max_hops:int ->
  Network.t ->
  byzantine:(int -> bool) ->
  src:int ->
  dst:int ->
  outcome
(** Route under the blackhole adversary.
    @raise Invalid_argument if an endpoint is out of range or Byzantine. *)

type sweep_row = {
  byzantine_fraction : float;
  naive_failed : float;
  retry_failed : float;
  backtrack_failed : float;
  retry_wasted : float;
}

val sweep :
  ?n:int ->
  ?links:int ->
  ?fractions:float list ->
  ?networks:int ->
  ?messages:int ->
  seed:int ->
  unit ->
  sweep_row list
(** Failed-search fractions of the three defences as the Byzantine
    population grows, on fresh ideal networks. *)
