module Bitset = Ftr_graph.Bitset

type t = {
  node_alive : int -> bool;
  link_alive : src:int -> idx:int -> bool;
}

let none = { node_alive = (fun _ -> true); link_alive = (fun ~src:_ ~idx:_ -> true) }

let of_node_mask mask = { none with node_alive = Bitset.get mask }

let random_node_fraction rng ~n ~fraction =
  if fraction < 0.0 || fraction >= 1.0 then
    invalid_arg "Failure.random_node_fraction: fraction must be in [0,1)";
  let mask = Bitset.create n in
  Bitset.fill mask true;
  let deaths = int_of_float (fraction *. float_of_int n) in
  (* Kill a uniformly random subset of exactly [deaths] nodes: take the
     prefix of a random permutation. *)
  let perm = Ftr_prng.Rng.permutation rng n in
  for i = 0 to deaths - 1 do
    Bitset.clear mask perm.(i)
  done;
  mask

let bernoulli_node_mask rng ~n ~death_p =
  if death_p < 0.0 || death_p > 1.0 then
    invalid_arg "Failure.bernoulli_node_mask: death_p must be in [0,1]";
  let mask = Bitset.create n in
  for i = 0 to n - 1 do
    if not (Ftr_prng.Rng.bernoulli rng death_p) then Bitset.set mask i
  done;
  mask

type link_mask = { offsets : int array; bits : Bitset.t }

let link_mask_alive m ~src ~idx = Bitset.get m.bits (m.offsets.(src) + idx)

let random_link_mask rng net ~present_p =
  if present_p < 0.0 || present_p > 1.0 then
    invalid_arg "Failure.random_link_mask: present_p must be in [0,1]";
  let n = Network.size net in
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + Array.length (Network.neighbors net i)
  done;
  let bits = Bitset.create offsets.(n) in
  for i = 0 to n - 1 do
    let ns = Network.neighbors net i in
    Array.iteri
      (fun idx j ->
        (* The links to the nearest neighbour on either side are assumed
           always present (Theorems 15 and 16). *)
        let immediate = j = i - 1 || j = i + 1 in
        if immediate || Ftr_prng.Rng.bernoulli rng present_p then
          Bitset.set bits (offsets.(i) + idx))
      ns
  done;
  { offsets; bits }

let of_link_mask m = { none with link_alive = link_mask_alive m }

let compose a b =
  {
    node_alive = (fun i -> a.node_alive i && b.node_alive i);
    link_alive = (fun ~src ~idx -> a.link_alive ~src ~idx && b.link_alive ~src ~idx);
  }

let make ?(node_alive = fun _ -> true) ?(link_alive = fun ~src:_ ~idx:_ -> true) () =
  { node_alive; link_alive }

let node_alive t i = t.node_alive i

let link_alive t ~src ~idx = t.link_alive ~src ~idx
