lib/core/failure.ml: Array Ftr_graph Ftr_prng Network
