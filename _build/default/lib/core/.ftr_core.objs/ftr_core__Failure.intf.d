lib/core/failure.mli: Ftr_graph Ftr_prng Network
