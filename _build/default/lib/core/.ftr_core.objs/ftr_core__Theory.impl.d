lib/core/theory.ml: Float Ftr_stats
