lib/core/theory.mli:
