lib/core/serial.mli: Network
