lib/core/aggregate_chain.mli: Ftr_prng Ftr_stats
