lib/core/adversary.mli: Ftr_graph Network
