lib/core/network.mli: Ftr_graph Ftr_prng
