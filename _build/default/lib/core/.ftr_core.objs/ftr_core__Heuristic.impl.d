lib/core/heuristic.ml: Array Float Ftr_prng Hashtbl Int List Network Set
