lib/core/multidim.mli: Ftr_metric Ftr_prng
