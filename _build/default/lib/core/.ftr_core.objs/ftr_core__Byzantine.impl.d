lib/core/byzantine.ml: Array Failure Ftr_graph Ftr_prng Hashtbl List Network Theory
