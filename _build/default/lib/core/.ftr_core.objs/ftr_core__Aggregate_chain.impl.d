lib/core/aggregate_chain.ml: Array Float Ftr_prng Ftr_stats List
