lib/core/experiment.ml: Aggregate_chain Array Failure Float Ftr_graph Ftr_prng Ftr_stats Heuristic List Multidim Network Printf Route Theory
