lib/core/network.ml: Array Float Ftr_graph Ftr_prng List
