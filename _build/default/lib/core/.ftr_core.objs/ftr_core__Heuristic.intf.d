lib/core/heuristic.mli: Ftr_prng Network
