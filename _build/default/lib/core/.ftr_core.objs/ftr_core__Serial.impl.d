lib/core/serial.ml: Array Buffer In_channel List Network Out_channel Printf String
