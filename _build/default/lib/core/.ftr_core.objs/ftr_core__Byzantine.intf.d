lib/core/byzantine.mli: Network
