lib/core/multidim.ml: Array Float Ftr_metric Ftr_prng Hashtbl List
