lib/core/adversary.ml: Array Failure Float Ftr_graph Ftr_prng List Network Network_stats Route Theory
