lib/core/route.mli: Failure Ftr_prng Network
