lib/core/route.ml: Array Failure Ftr_prng Hashtbl List Network
