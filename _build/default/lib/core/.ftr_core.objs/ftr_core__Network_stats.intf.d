lib/core/network_stats.mli: Ftr_stats Network
