lib/core/network_stats.ml: Array Ftr_stats List Network
