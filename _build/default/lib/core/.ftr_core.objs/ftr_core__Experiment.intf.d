lib/core/experiment.mli: Failure Ftr_prng Heuristic Network Route
