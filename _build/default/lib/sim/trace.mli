(** Bounded in-memory trace of simulation events, timestamped in virtual
    time. Cheap enough to leave on in big runs; tests assert on its
    contents. *)

type level = Debug | Info | Warn

type entry = { time : float; level : level; message : string }

type t

val create : ?capacity:int -> ?min_level:level -> unit -> t
(** Trace buffer holding at most [capacity] entries (older entries are
    discarded). @raise Invalid_argument if [capacity < 1]. *)

val set_min_level : t -> level -> unit
(** Entries below this level are ignored. *)

val record : t -> time:float -> level:level -> string -> unit
(** Append one entry. *)

val debugf : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!Debug} entry. *)

val infof : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!Info} entry. *)

val warnf : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!Warn} entry. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val length : t -> int
(** Number of retained entries. *)

val dump : Format.formatter -> t -> unit
(** Print all retained entries, one per line. *)
