(** Array-backed binary min-heap, the event queue's core. *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [compare] (smallest first). *)

val push : 'a t -> 'a -> unit
(** Insert; O(log n). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element; O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val length : 'a t -> int
(** Number of elements. *)

val is_empty : 'a t -> bool
(** Whether the heap holds no elements. *)

val clear : 'a t -> unit
(** Drop all elements. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive sorted drain (for tests and debugging). *)
