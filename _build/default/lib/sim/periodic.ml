(* Recurring activities over the engine: fixed-period ticks and Poisson
   processes. Self-rescheduling closures that stop at a horizon, so a
   bounded run always drains the queue. *)

let every engine ~period ~until f =
  if period <= 0.0 then invalid_arg "Periodic.every: period must be positive";
  let rec tick () =
    if Engine.now engine < until then begin
      f ();
      ignore (Engine.schedule_after engine ~delay:period tick)
    end
  in
  if Engine.now engine +. period <= until then
    ignore (Engine.schedule_after engine ~delay:period tick)

let poisson engine rng ~rate ~until f =
  if rate <= 0.0 then invalid_arg "Periodic.poisson: rate must be positive";
  let gap () = Ftr_prng.Sample.exponential rng ~rate in
  let rec tick () =
    if Engine.now engine < until then begin
      f ();
      ignore (Engine.schedule_after engine ~delay:(gap ()) tick)
    end
  in
  ignore (Engine.schedule_after engine ~delay:(gap ()) tick)

let countdown engine ~period ~times f =
  if period <= 0.0 then invalid_arg "Periodic.countdown: period must be positive";
  if times < 0 then invalid_arg "Periodic.countdown: negative count";
  let rec tick remaining =
    if remaining > 0 then begin
      f (times - remaining);
      ignore (Engine.schedule_after engine ~delay:period (fun () -> tick (remaining - 1)))
    end
  in
  if times > 0 then ignore (Engine.schedule_after engine ~delay:period (fun () -> tick times))
