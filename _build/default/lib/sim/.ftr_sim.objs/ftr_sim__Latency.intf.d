lib/sim/latency.mli: Ftr_prng
