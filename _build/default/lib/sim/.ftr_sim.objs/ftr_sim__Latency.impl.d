lib/sim/latency.ml: Float Ftr_prng
