lib/sim/engine.mli:
