lib/sim/periodic.mli: Engine Ftr_prng
