lib/sim/heap.mli:
