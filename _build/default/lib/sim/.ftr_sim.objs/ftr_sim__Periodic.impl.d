lib/sim/periodic.ml: Engine Ftr_prng
