type level = Debug | Info | Warn

type entry = { time : float; level : level; message : string }

type t = {
  mutable entries : entry list; (* most recent first *)
  mutable count : int;
  capacity : int;
  mutable min_level : level;
}

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let create ?(capacity = 10_000) ?(min_level = Info) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { entries = []; count = 0; capacity; min_level }

let set_min_level t level = t.min_level <- level

let record t ~time ~level message =
  if level_rank level >= level_rank t.min_level then begin
    t.entries <- { time; level; message } :: t.entries;
    t.count <- t.count + 1;
    if t.count > t.capacity then begin
      (* Drop the oldest half; amortised O(1) per record. *)
      let keep = t.capacity / 2 in
      let rec take n acc = function
        | [] -> List.rev acc
        | x :: rest -> if n = 0 then List.rev acc else take (n - 1) (x :: acc) rest
      in
      t.entries <- take keep [] t.entries;
      t.count <- keep
    end
  end

let debugf t ~time fmt = Format.kasprintf (record t ~time ~level:Debug) fmt

let infof t ~time fmt = Format.kasprintf (record t ~time ~level:Info) fmt

let warnf t ~time fmt = Format.kasprintf (record t ~time ~level:Warn) fmt

let entries t = List.rev t.entries

let length t = t.count

let pp_entry ppf e =
  Format.fprintf ppf "[%10.4f %-5s] %s" e.time (level_name e.level) e.message

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
