(* Message-delay models for protocol simulations. The paper simulates "at
   the application level" with an implicit unit delay; these models let the
   dynamic experiments check that its conclusions do not secretly depend on
   synchrony. *)

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

let constant v =
  if v <= 0.0 then invalid_arg "Latency.constant: delay must be positive";
  Constant v

let uniform ~lo ~hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Latency.uniform: need 0 < lo <= hi";
  Uniform { lo; hi }

let exponential ~mean =
  if mean <= 0.0 then invalid_arg "Latency.exponential: mean must be positive";
  Exponential { mean }

let sample t rng =
  match t with
  | Constant v -> v
  | Uniform { lo; hi } -> Ftr_prng.Rng.float_range rng ~lo ~hi
  | Exponential { mean } ->
      (* Shifted slightly off zero so events never collapse onto their
         senders' timestamps. *)
      Float.max 1e-9 (Ftr_prng.Sample.exponential rng ~rate:(1.0 /. mean))

let mean = function
  | Constant v -> v
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean
