(** Per-message delay models for protocol simulations: fixed delays for
    determinism-friendly runs, jittered and heavy-tailed ones to check that
    conclusions survive asynchrony. *)

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

val constant : float -> t
(** Fixed delay. @raise Invalid_argument unless positive. *)

val uniform : lo:float -> hi:float -> t
(** Uniform jitter in [lo, hi]. @raise Invalid_argument unless
    [0 < lo <= hi]. *)

val exponential : mean:float -> t
(** Heavy-ish tail with the given mean (clamped away from zero).
    @raise Invalid_argument unless the mean is positive. *)

val sample : t -> Ftr_prng.Rng.t -> float
(** One delay draw; always strictly positive. *)

val mean : t -> float
(** Expected delay of the model. *)
