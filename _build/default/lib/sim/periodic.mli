(** Recurring activities: the timer patterns every protocol layer needs
    (stabilization ticks, Poisson churn, bounded repetition), packaged so
    that a run with a horizon always terminates. *)

val every : Engine.t -> period:float -> until:float -> (unit -> unit) -> unit
(** Call [f] every [period] time units, first firing one period from now,
    stopping at the [until] horizon.
    @raise Invalid_argument on a non-positive period. *)

val poisson :
  Engine.t -> Ftr_prng.Rng.t -> rate:float -> until:float -> (unit -> unit) -> unit
(** Call [f] at exponentially distributed gaps with the given rate until
    the horizon. @raise Invalid_argument on a non-positive rate. *)

val countdown : Engine.t -> period:float -> times:int -> (int -> unit) -> unit
(** Call [f 0], [f 1], ..., [f (times-1)] at fixed intervals, one period
    apart, starting one period from now.
    @raise Invalid_argument on bad parameters. *)
