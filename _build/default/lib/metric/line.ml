type t = { size : int }

let create size =
  if size < 1 then invalid_arg "Line.create: size must be >= 1";
  { size }

let size t = t.size

let contains t p = p >= 0 && p < t.size

let check t p = if not (contains t p) then invalid_arg "Line: point out of range"

let distance t a b =
  check t a;
  check t b;
  abs (a - b)

let directed t ~src ~dst =
  check t src;
  check t dst;
  dst - src

let clamp t p = if p < 0 then 0 else if p >= t.size then t.size - 1 else p

let midpoint t a b =
  check t a;
  check t b;
  (a + b) / 2
