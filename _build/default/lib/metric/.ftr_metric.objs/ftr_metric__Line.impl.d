lib/metric/line.ml:
