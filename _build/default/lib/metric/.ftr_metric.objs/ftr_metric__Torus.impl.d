lib/metric/torus.ml: Array List
