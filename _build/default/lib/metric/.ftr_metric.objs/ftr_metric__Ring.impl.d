lib/metric/ring.ml:
