lib/metric/line.mli:
