lib/metric/torus.mli:
