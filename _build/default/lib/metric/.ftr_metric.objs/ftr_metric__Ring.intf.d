lib/metric/ring.mli:
