(** Identifier circle of [size] points (the Chord metric space, and the
    paper's suggestion that its results carry over to the circle). *)

type t

val create : int -> t
(** A ring with the given number of points.
    @raise Invalid_argument if the size is not positive. *)

val size : t -> int
(** Number of points. *)

val normalize : t -> int -> int
(** Map any integer onto the ring (mod size, non-negative). *)

val contains : t -> int -> bool
(** Whether the point is a canonical ring position. *)

val distance : t -> int -> int -> int
(** Shorter-arc distance.
    @raise Invalid_argument if a point is out of range. *)

val clockwise_distance : t -> src:int -> dst:int -> int
(** Arc length from [src] to [dst] in the increasing direction; this is the
    one-sided metric Chord's fingers route over. *)

val add : t -> int -> int -> int
(** [add t p delta] moves [delta] steps around the ring. *)
