type t = { size : int }

let create size =
  if size < 1 then invalid_arg "Ring.create: size must be >= 1";
  { size }

let size t = t.size

let normalize t p = ((p mod t.size) + t.size) mod t.size

let contains t p = p >= 0 && p < t.size

let check t p = if not (contains t p) then invalid_arg "Ring: point out of range"

let distance t a b =
  check t a;
  check t b;
  let d = abs (a - b) in
  min d (t.size - d)

(* Arc length walking clockwise (increasing identifiers, mod size). *)
let clockwise_distance t ~src ~dst =
  check t src;
  check t dst;
  normalize t (dst - src)

let add t p delta =
  check t p;
  normalize t (p + delta)
