(** The paper's primary metric space: [size] grid points 0..size-1 on a
    one-dimensional real line, with absolute-difference distance. *)

type t

val create : int -> t
(** A line of the given number of grid points.
    @raise Invalid_argument if the size is not positive. *)

val size : t -> int
(** Number of grid points. *)

val contains : t -> int -> bool
(** Whether the point lies on the line. *)

val distance : t -> int -> int -> int
(** Absolute distance |a - b|.
    @raise Invalid_argument if either point is off the line. *)

val directed : t -> src:int -> dst:int -> int
(** Signed offset from [src] to [dst] (positive when [dst] is right of
    [src]). *)

val clamp : t -> int -> int
(** Nearest on-line point to an arbitrary integer. *)

val midpoint : t -> int -> int -> int
(** Floor midpoint of two points. *)
