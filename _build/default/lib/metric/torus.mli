(** d-dimensional torus with L1 distance.

    Substrate for the Kleinberg 2-D small-world baseline and the CAN-style
    coordinate-space baseline, and for the paper's "higher dimensions"
    future-work direction. Points are linearised indices. *)

type t

val create : dims:int -> side:int -> t
(** Torus with [dims] axes of [side] points each ([side^dims] points total).
    @raise Invalid_argument unless both are positive. *)

val dims : t -> int
(** Number of axes. *)

val side : t -> int
(** Points per axis. *)

val size : t -> int
(** Total number of points. *)

val contains : t -> int -> bool
(** Whether a linear index is valid. *)

val coords : t -> int -> int array
(** Decode a linear index into per-axis coordinates. *)

val index : t -> int array -> int
(** Encode coordinates into a linear index.
    @raise Invalid_argument on wrong dimensionality or range. *)

val axis_distance : t -> int -> int -> int
(** Wraparound distance along a single axis. *)

val distance : t -> int -> int -> int
(** L1 distance with wraparound on every axis. *)

val neighbors : t -> int -> int list
(** Lattice neighbours (distance exactly 1), deduplicated. *)

val move : t -> int -> axis:int -> delta:int -> int
(** Step [delta] along one axis with wraparound. *)
