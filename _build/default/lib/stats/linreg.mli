(** Ordinary least-squares line fitting.

    Scaling experiments fit measured delivery times against the predicted
    bound (e.g. hops vs H_n² for Theorem 12) and report the slope and R²;
    log-log fits estimate empirical exponents. *)

type fit = { slope : float; intercept : float; r2 : float }

val fit : xs:float array -> ys:float array -> fit
(** Least-squares fit of [y = intercept + slope * x].
    @raise Invalid_argument on mismatched lengths, fewer than two points,
    or constant [xs]. *)

val predict : fit -> float -> float
(** Evaluate the fitted line. *)

val loglog_fit : xs:float array -> ys:float array -> fit
(** Fit in log-log space; the slope is the empirical power-law exponent.
    @raise Invalid_argument if any value is non-positive. *)
