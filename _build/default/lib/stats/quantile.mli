(** Quantile estimation (type-7, the R default): linear interpolation
    between order statistics. *)

val of_sorted : float array -> float -> float
(** [of_sorted sorted q] with [sorted] in ascending order.
    @raise Invalid_argument on an empty array or [q] outside [0,1]. *)

val compute : float array -> float -> float
(** As {!of_sorted} but sorts a copy first. *)

val median : float array -> float
(** The 0.5 quantile. *)

val iqr : float array -> float
(** Interquartile range (Q3 - Q1). *)

val five_number : float array -> float * float * float * float * float
(** (min, Q1, median, Q3, max). *)
