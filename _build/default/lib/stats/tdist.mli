(** Student-t critical values for small-sample confidence intervals. *)

val critical95 : df:int -> float
(** Two-sided 95% critical value [t_{0.975, df}] (tabulated for df ≤ 30,
    stepped toward 1.96 beyond). @raise Invalid_argument if [df < 1]. *)
