(** Harmonic numbers [H_n = sum_{k=1..n} 1/k].

    They normalise the paper's inverse power-law link distribution and appear
    in every bound of Table 1 (e.g. the single-link delivery time O(H_n²) of
    Theorem 12). *)

val number : int -> float
(** Exact [H_n] by direct summation; [number 0 = 0].
    @raise Invalid_argument if [n < 0]. *)

val approx : int -> float
(** Asymptotic expansion [ln n + γ + 1/2n - 1/12n²]; accurate to ~1e-9 for
    n ≥ 10. @raise Invalid_argument if [n <= 0]. *)

val table : int -> float array
(** [table n] has [H_k] at index [k], for [k = 0..n]. *)

val generalized : exponent:float -> int -> float
(** Generalized harmonic number [sum_{k=1..n} k^-exponent]. *)

val euler_mascheroni : float
(** The Euler–Mascheroni constant γ. *)
