type t = {
  edges : float array; (* bin i covers [edges.(i), edges.(i+1)) *)
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~edges =
  let n = Array.length edges in
  if n < 2 then invalid_arg "Histogram.create: need at least two edges";
  for i = 0 to n - 2 do
    if edges.(i) >= edges.(i + 1) then
      invalid_arg "Histogram.create: edges must be strictly increasing"
  done;
  { edges; counts = Array.make (n - 1) 0; underflow = 0; overflow = 0; total = 0 }

let uniform ~lo ~hi ~bins =
  if bins < 1 then invalid_arg "Histogram.uniform: bins must be >= 1";
  if lo >= hi then invalid_arg "Histogram.uniform: lo must be < hi";
  let width = (hi -. lo) /. float_of_int bins in
  create ~edges:(Array.init (bins + 1) (fun i -> lo +. (width *. float_of_int i)))

let log2_bins ~max_value =
  (* Edges 1, 2, 4, 8, ..., covering [1, max_value]. Natural binning for
     link lengths under a 1/d law: each bin then carries equal mass. *)
  if max_value < 1.0 then invalid_arg "Histogram.log2_bins: max_value must be >= 1";
  let rec count_edges acc v = if v > max_value then acc + 1 else count_edges (acc + 1) (v *. 2.0) in
  let n = count_edges 0 1.0 in
  create ~edges:(Array.init n (fun i -> Float.pow 2.0 (float_of_int i)))

let bin_index t x =
  let n = Array.length t.edges in
  if x < t.edges.(0) then -1
  else if x >= t.edges.(n - 1) then n - 1
  else begin
    let rec search lo hi =
      (* invariant: edges.(lo) <= x < edges.(hi) *)
      if hi - lo = 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if x < t.edges.(mid) then search lo mid else search mid hi
    in
    search 0 (n - 1)
  end

let add t x =
  t.total <- t.total + 1;
  let i = bin_index t x in
  if i < 0 then t.underflow <- t.underflow + 1
  else if i >= Array.length t.counts then t.overflow <- t.overflow + 1
  else t.counts.(i) <- t.counts.(i) + 1

let add_int t x = add t (float_of_int x)

let count t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.count: bad bin";
  t.counts.(i)

let bins t = Array.length t.counts

let total t = t.total

let underflow t = t.underflow

let overflow t = t.overflow

let bin_range t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_range: bad bin";
  (t.edges.(i), t.edges.(i + 1))

let frequency t i =
  if t.total = 0 then 0.0 else float_of_int (count t i) /. float_of_int t.total

let to_list t = List.init (bins t) (fun i -> (bin_range t i, t.counts.(i)))
