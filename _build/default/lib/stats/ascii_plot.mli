(** Plain-text scatter plots, so the benchmark harness can show the shape
    of each reproduced figure directly in the terminal. *)

type series

val series : glyph:char -> label:string -> (float * float) list -> series
(** A named point set drawn with one glyph. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_log:bool ->
  ?y_log:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Render all series onto one canvas with min/max axis annotations and a
    legend. Log axes drop non-positive coordinates; non-finite points are
    ignored. @raise Invalid_argument if the canvas is under 8x4. *)
