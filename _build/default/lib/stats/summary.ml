type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { count = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

(* Welford's online update: numerically stable single pass. *)
let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let add_int t x = add t (float_of_int x)

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let count t = t.count

let mean t = if t.count = 0 then nan else t.mean

let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let sem t = if t.count < 2 then nan else stddev t /. sqrt (float_of_int t.count)

let ci95_halfwidth t =
  if t.count < 2 then nan else Tdist.critical95 ~df:(t.count - 1) *. sem t

let min_value t = if t.count = 0 then nan else t.min_v

let max_value t = if t.count = 0 then nan else t.max_v

let total t = t.mean *. float_of_int t.count

let merge a b =
  (* Chan et al. parallel-merge formulas. *)
  if a.count = 0 then { count = b.count; mean = b.mean; m2 = b.m2; min_v = b.min_v; max_v = b.max_v }
  else if b.count = 0 then { count = a.count; mean = a.mean; m2 = a.m2; min_v = a.min_v; max_v = a.max_v }
  else begin
    let na = float_of_int a.count and nb = float_of_int b.count in
    let delta = b.mean -. a.mean in
    let n = na +. nb in
    {
      count = a.count + b.count;
      mean = a.mean +. (delta *. nb /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.2f max=%.2f" t.count (mean t) (stddev t)
    (min_value t) (max_value t)
