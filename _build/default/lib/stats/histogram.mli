(** Fixed-edge histograms with under/overflow tracking.

    The Figure 5 reproduction bins observed link lengths (log2 bins, the
    natural scale for a 1/d law) and compares the empirical frequencies with
    the ideal inverse power-law distribution. *)

type t
(** Mutable histogram. *)

val create : edges:float array -> t
(** Bins are the half-open intervals between consecutive edges.
    @raise Invalid_argument unless edges are strictly increasing and at
    least two. *)

val uniform : lo:float -> hi:float -> bins:int -> t
(** Equal-width bins covering [lo, hi). *)

val log2_bins : max_value:float -> t
(** Edges 1, 2, 4, ... covering [1, max_value]. *)

val add : t -> float -> unit
(** Record one observation. *)

val add_int : t -> int -> unit
(** Record one integer observation. *)

val bins : t -> int
(** Number of bins. *)

val count : t -> int -> int
(** Raw count in bin [i]. @raise Invalid_argument on a bad index. *)

val frequency : t -> int -> float
(** Count in bin [i] divided by the total number of observations
    (including under/overflow). *)

val bin_range : t -> int -> float * float
(** Bounds [lo, hi) of bin [i]. *)

val total : t -> int
(** Total observations, including under/overflow. *)

val underflow : t -> int
(** Observations below the first edge. *)

val overflow : t -> int
(** Observations at or above the last edge. *)

val to_list : t -> ((float * float) * int) list
(** All (range, count) pairs in order. *)
