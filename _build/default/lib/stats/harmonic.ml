let number n =
  if n < 0 then invalid_arg "Harmonic.number: n must be non-negative";
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (1.0 /. float_of_int k)
  done;
  !acc

let euler_mascheroni = 0.57721566490153286

let approx n =
  if n <= 0 then invalid_arg "Harmonic.approx: n must be positive";
  let x = float_of_int n in
  (* H_n = ln n + gamma + 1/(2n) - 1/(12 n^2) + O(n^-4) *)
  log x +. euler_mascheroni +. (1.0 /. (2.0 *. x)) -. (1.0 /. (12.0 *. x *. x))

let table n =
  if n < 0 then invalid_arg "Harmonic.table: n must be non-negative";
  let t = Array.make (n + 1) 0.0 in
  for k = 1 to n do
    t.(k) <- t.(k - 1) +. (1.0 /. float_of_int k)
  done;
  t

let generalized ~exponent n =
  if n < 0 then invalid_arg "Harmonic.generalized: n must be non-negative";
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int k) exponent)
  done;
  !acc
