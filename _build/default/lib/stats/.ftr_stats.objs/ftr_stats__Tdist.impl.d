lib/stats/tdist.ml: Array
