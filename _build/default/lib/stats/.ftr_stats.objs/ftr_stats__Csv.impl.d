lib/stats/csv.ml: Buffer List Out_channel Printf String
