lib/stats/linreg.mli:
