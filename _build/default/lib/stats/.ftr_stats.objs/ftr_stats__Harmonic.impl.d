lib/stats/harmonic.ml: Array Float
