lib/stats/quantile.mli:
