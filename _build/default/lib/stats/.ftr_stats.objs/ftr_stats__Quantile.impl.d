lib/stats/quantile.ml: Array
