lib/stats/histogram.mli:
