lib/stats/csv.mli:
