lib/stats/harmonic.mli:
