lib/stats/gof.mli:
