lib/stats/tdist.mli:
