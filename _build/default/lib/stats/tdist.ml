(* Two-sided 95% critical values of Student's t distribution. Experiment
   means are averaged over as few as 3 networks; with samples that small,
   the normal 1.96 understates the interval by more than 2x. *)

(* t_{0.975, df} for df = 1..30 (standard tables). *)
let table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228; 2.201; 2.179; 2.160;
    2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086; 2.080; 2.074; 2.069; 2.064; 2.060; 2.056;
    2.052; 2.048; 2.045; 2.042;
  |]

let critical95 ~df =
  if df < 1 then invalid_arg "Tdist.critical95: df must be >= 1";
  if df <= 30 then table.(df - 1)
  else if df <= 60 then 2.000
  else if df <= 120 then 1.980
  else 1.960
