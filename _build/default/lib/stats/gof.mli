(** Goodness-of-fit distances for comparing the heuristic's derived link
    distribution against the ideal 1/d law (Figure 5). *)

val total_variation : empirical:float array -> model:float array -> float
(** Total-variation distance between two pmfs over the same support.
    @raise Invalid_argument on mismatched lengths. *)

val max_abs_error : empirical:float array -> model:float array -> float * int
(** Largest pointwise gap and the index where it occurs (the paper reports
    max ≈ 0.022 at link length 2). *)

val ks_statistic : empirical:float array -> model:float array -> float
(** Kolmogorov–Smirnov distance between the CDFs of two pmfs. *)

val chi_square : observed:int array -> expected:float array -> float
(** Pearson chi-square statistic; cells with zero expectation must also
    have zero observations.
    @raise Invalid_argument otherwise or on mismatched lengths. *)

val ks_two_sample : float array -> float array -> float
(** Two-sample KS statistic between raw samples.
    @raise Invalid_argument on an empty sample. *)
