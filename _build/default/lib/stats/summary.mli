(** Single-pass summary statistics (Welford's algorithm).

    Used to accumulate hop counts, failure indicators and construction costs
    across thousands of simulated searches without storing samples. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** Empty accumulator. *)

val add : t -> float -> unit
(** Fold in one observation. *)

val add_int : t -> int -> unit
(** Fold in an integer observation. *)

val of_array : float array -> t
(** Accumulator over all elements of an array. *)

val count : t -> int
(** Number of observations. *)

val mean : t -> float
(** Sample mean; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float
(** Sample standard deviation. *)

val sem : t -> float
(** Standard error of the mean. *)

val ci95_halfwidth : t -> float
(** Half-width of the 95% confidence interval for the mean, using the
    Student-t critical value for the sample size (matters for experiment
    means averaged over a handful of networks). *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val total : t -> float
(** Sum of all observations. *)

val merge : t -> t -> t
(** Combine two accumulators as if their samples were pooled. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering. *)
