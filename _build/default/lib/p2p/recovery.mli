(** Self-healing experiments over the live overlay.

    {!run} wounds the network with a mass crash and samples lookup health
    over time while only background stabilization runs — the recovery
    curve of the paper's self-stabilization requirement. {!churn_sweep}
    stresses the protocol at growing membership-event rates. *)

type sample = {
  time : float;
  success_rate : float;  (** of this interval's probe lookups *)
  probes_per_lookup : float;
      (** dead-neighbour detections this interval's lookups paid for —
          the repair burden, which decays as stabilization heals the
          overlay (background stabilization probes during the interval
          contribute a small constant) *)
  mean_hops : float;  (** of this interval's successful lookups *)
  repairs_so_far : int;
  probes_so_far : int;
}

type result = {
  samples : sample list;  (** in time order *)
  initial_nodes : int;
  killed : int;  (** nodes crashed at time zero *)
}

val run :
  ?line_size:int ->
  ?links:int ->
  ?kill_fraction:float ->
  ?period:float ->
  ?checks_per_tick:int ->
  ?sample_every:float ->
  ?samples:int ->
  ?probes_per_sample:int ->
  ?seed:int ->
  unit ->
  result
(** Crash [kill_fraction] of the population at time zero, enable
    stabilization, and measure probe-lookup success every [sample_every]
    time units. @raise Invalid_argument on out-of-range parameters. *)

type churn_sweep_row = {
  events_per_unit : float;  (** total membership-event rate *)
  report : Churn.report;
}

val churn_sweep :
  ?line_size:int ->
  ?links:int ->
  ?duration:float ->
  ?lookup_rate:float ->
  ?rates:float list ->
  ?seed:int ->
  unit ->
  churn_sweep_row list
(** Run the standard churn workload at each membership-event rate and
    report lookup health. *)
