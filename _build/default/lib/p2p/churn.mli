(** Churn workload driver: Poisson processes of joins, graceful leaves,
    crashes and lookup traffic over an {!Overlay.t}, realising the paper's
    "nodes arrive and depart at a high rate" regime end to end. *)

type config = {
  duration : float;  (** virtual-time horizon for the workload *)
  join_rate : float;  (** joins per unit time *)
  crash_rate : float;  (** fail-stop crashes per unit time *)
  leave_rate : float;  (** graceful departures per unit time *)
  lookup_rate : float;  (** lookups per unit time *)
  min_nodes : int;  (** never shrink below this population *)
}

val default_config : config
(** A mild-churn default: 1 lookup and ~0.09 membership events per unit
    time for 1000 units. *)

val install : ?config:config -> line_size:int -> Overlay.t -> Ftr_prng.Rng.t -> float
(** Schedule all four Poisson processes on the overlay's engine; returns
    the virtual-time horizon to run until. *)

type report = {
  final_nodes : int;
  lookups_issued : int;
  lookups_ok : int;
  lookups_failed : int;
  success_rate : float;  (** fraction of resolved lookups that succeeded *)
  mean_hops : float;
  messages : int;
  probes : int;
  repairs : int;
  joins : int;
  crashes : int;
  leaves : int;
}

val report : Overlay.t -> report
(** Snapshot the overlay's statistics. *)

val run :
  ?config:config ->
  ?seed:int ->
  line_size:int ->
  initial_nodes:int ->
  links:int ->
  unit ->
  report
(** Build an initial population, run the churn workload to its horizon,
    settle in-flight traffic, and report.
    @raise Invalid_argument on fewer than two initial nodes or more nodes
    than line points. *)

type join_cost_row = {
  line_size : int;
  mean_messages_per_join : float;  (** routed messages per join *)
  mean_lookups_per_join : float;  (** maintenance lookups per join *)
}

val join_cost :
  ?links:int -> ?joins:int -> ?seed:int -> line_sizes:int list -> unit -> join_cost_row list
(** Per-join maintenance cost at several network sizes (an eighth of the
    line populated before measuring). The paper's scalability requirement
    is O(links · log n) messages per join; the benchmark checks the growth
    is logarithmic. @raise Invalid_argument on lines under 64 points. *)
