lib/p2p/recovery.mli: Churn
