lib/p2p/churn.mli: Ftr_prng Overlay
