lib/p2p/overlay.mli: Ftr_prng Ftr_sim
