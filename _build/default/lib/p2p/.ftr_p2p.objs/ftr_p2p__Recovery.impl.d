lib/p2p/recovery.ml: Array Churn Ftr_prng Ftr_sim List Overlay
