lib/p2p/churn.ml: Ftr_prng Ftr_sim List Overlay
