lib/p2p/overlay.ml: Array Ftr_core Ftr_prng Ftr_sim Hashtbl List Option
