module Engine = Ftr_sim.Engine
module Rng = Ftr_prng.Rng

(* Self-stabilization made visible: wound the overlay with a mass failure,
   let only the background repair process run, and sample lookup health at
   regular intervals — the time-series answer to the paper's "the system
   should self-heal" requirement. *)

type sample = {
  time : float;
  success_rate : float;  (** of this interval's probe lookups *)
  probes_per_lookup : float;  (** failure-detection overhead this interval *)
  mean_hops : float;  (** of this interval's successful lookups *)
  repairs_so_far : int;
  probes_so_far : int;
}

type result = {
  samples : sample list;
  initial_nodes : int;
  killed : int;
}

let run ?(line_size = 4096) ?(links = 8) ?(kill_fraction = 0.3) ?(period = 5.0)
    ?(checks_per_tick = 32) ?(sample_every = 50.0) ?(samples = 12) ?(probes_per_sample = 100)
    ?(seed = 11) () =
  if kill_fraction < 0.0 || kill_fraction >= 1.0 then
    invalid_arg "Recovery.run: kill_fraction must be in [0,1)";
  if samples < 1 || probes_per_sample < 1 then
    invalid_arg "Recovery.run: need at least one sample and one probe";
  let rng = Rng.of_int seed in
  let engine = Engine.create () in
  let overlay = Overlay.create ~line_size ~links ~rng:(Rng.split rng) engine in
  let initial = line_size / 8 in
  Overlay.populate overlay ~positions:(List.init initial (fun i -> i * line_size / initial));
  (* The wound: a random fraction of nodes crashes at time zero. *)
  let kill_rng = Rng.split rng in
  let killed = ref 0 in
  List.iter
    (fun pos ->
      if Rng.bernoulli kill_rng kill_fraction then begin
        Overlay.crash overlay ~pos;
        incr killed
      end)
    (Overlay.live_positions overlay);
  let horizon = sample_every *. float_of_int (samples + 1) in
  Overlay.enable_stabilization ~period ~checks_per_tick ~until:horizon overlay;
  let probe_rng = Rng.split rng in
  let recorded = ref [] in
  let schedule_sample i =
    let at = sample_every *. float_of_int i in
    ignore
      (Engine.schedule_at engine ~time:at (fun () ->
           let s = Overlay.stats overlay in
           let ok_before = s.Overlay.lookups_ok and failed_before = s.Overlay.lookups_failed in
           let probes_before = s.Overlay.probes and hops_before = s.Overlay.hops_on_success in
           (* Stabilization probes during the settle window pollute the
              per-lookup overhead slightly; with checks_per_tick per period
              the contribution is bounded and identical per interval. *)
           let positions = Array.of_list (Overlay.live_positions overlay) in
           for _ = 1 to probes_per_sample do
             let from = positions.(Rng.int probe_rng (Array.length positions)) in
             Overlay.lookup overlay ~from ~target:(Rng.int probe_rng line_size) ()
           done;
           (* Record once this interval's probes have settled. *)
           ignore
             (Engine.schedule_after engine ~delay:(sample_every /. 2.0) (fun () ->
                  let ok = s.Overlay.lookups_ok - ok_before in
                  let failed = s.Overlay.lookups_failed - failed_before in
                  let total = max 1 (ok + failed) in
                  recorded :=
                    {
                      time = at;
                      success_rate = float_of_int ok /. float_of_int total;
                      probes_per_lookup =
                        float_of_int (s.Overlay.probes - probes_before)
                        /. float_of_int probes_per_sample;
                      mean_hops =
                        (if ok = 0 then nan
                         else
                           float_of_int (s.Overlay.hops_on_success - hops_before)
                           /. float_of_int ok);
                      repairs_so_far = s.Overlay.repairs;
                      probes_so_far = s.Overlay.probes;
                    }
                    :: !recorded))))
  in
  for i = 1 to samples do
    schedule_sample i
  done;
  Engine.run ~until:horizon engine;
  Engine.run ~max_events:1_000_000 engine;
  { samples = List.rev !recorded; initial_nodes = initial; killed = !killed }

type churn_sweep_row = {
  events_per_unit : float;  (** total membership-event rate *)
  report : Churn.report;
}

(* Lookup health as churn intensifies: the same workload shape at growing
   membership-event rates. *)
let churn_sweep ?(line_size = 2048) ?(links = 8) ?(duration = 800.0) ?(lookup_rate = 2.0)
    ?(rates = [ 0.02; 0.05; 0.1; 0.2; 0.4 ]) ?(seed = 13) () =
  List.map
    (fun rate ->
      let report =
        Churn.run
          ~config:
            {
              Churn.duration;
              join_rate = rate /. 2.0;
              crash_rate = rate /. 3.0;
              leave_rate = rate /. 6.0;
              lookup_rate;
              min_nodes = 16;
            }
          ~seed ~line_size ~initial_nodes:(line_size / 8) ~links ()
      in
      { events_per_unit = rate; report })
    rates
