(** Zipf-popular request workloads over the resource layer, and the load
    skew they induce (who serves, who forwards). *)

type t

val create : ?exponent:float -> universe:int -> unit -> t
(** A key universe with Zipf(exponent) popularity (default 1.0); rank 0 is
    the hottest key. @raise Invalid_argument if [universe < 1]. *)

val universe : t -> int
(** Number of distinct keys. *)

val keys : t -> string array
(** All keys in popularity-rank order (do not mutate). *)

val draw : t -> Ftr_prng.Rng.t -> string
(** One key, rank sampled with probability proportional to rank^-exponent. *)

type report = {
  requests : int;
  hit_rate : float;  (** requests that found their value *)
  mean_hops : float;
  serve_max_over_mean : float;
      (** hottest node's value-serving load over the mean serving load *)
  forward_max_over_mean : float;
      (** hottest node's forwarding load over the network-wide mean *)
}

val measure_load :
  ?failures:Ftr_core.Failure.t ->
  ?strategy:Ftr_core.Route.strategy ->
  ?spread:bool ->
  store:Store.t ->
  requests:int ->
  t ->
  Ftr_prng.Rng.t ->
  report
(** Route [requests] popularity-weighted lookups from random live sources
    over the store's network. With [spread] each request reads a uniformly
    random replica instead of the primary, spreading a hot key's serving
    load across its replica set. Keys must already be stored (see
    {!Store.put}). @raise Invalid_argument if [requests < 1]. *)
