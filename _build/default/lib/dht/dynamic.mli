(** The hash table over the live protocol ({!Ftr_p2p.Overlay}): ownership
    is resolved by routed lookups at operation time, so it tracks joins,
    leaves and crashes; crashed nodes lose their local tables and salted
    replication plus anti-entropy {!rebalance} restore availability.

    All operations are asynchronous in virtual time — callbacks fire when
    the overlay's lookups resolve, so run the engine after issuing them. *)

type t

val create : ?replicas:int -> line_size:int -> Ftr_p2p.Overlay.t -> t
(** Empty store bound to an overlay (default: one replica).
    @raise Invalid_argument if [replicas < 1]. *)

val overlay : t -> Ftr_p2p.Overlay.t
(** The protocol underneath. *)

val put : t -> from:int -> key:string -> value:string -> unit
(** Store the pair at the current owner of every replica point, located by
    routed lookups issued from the live node [from]. *)

val get : t -> from:int -> key:string -> callback:(string option -> unit) -> unit
(** Look replica points up in salt order; the callback fires with the
    first value found, or [None] once every replica has missed. *)

val leave_with_handoff : t -> pos:int -> int
(** Graceful departure: splice the node out of the ring, then re-put every
    pair it held so the data survives the departure (unlike a crash).
    Returns the number of pairs handed off; their lookups resolve as the
    engine runs. *)

val rebalance : t -> int
(** Anti-entropy sweep: every stored pair is re-put from its holder,
    repairing ownership drift and replica counts after churn. Returns the
    number of pairs re-put (their lookups resolve as the engine runs).
    Sweeps never delete: a copy at a former owner stays behind as extra
    redundancy until that node dies, so {!stored_pairs} can exceed
    [pairs × replicas] after drift. *)

val stored_pairs : t -> int
(** Pairs currently held by live nodes (replicas count). *)

type stats = { puts : int; gets : int; get_hits : int }

val stats : t -> stats
(** Operation counters ([get_hits] counts gets whose callback received a
    value). *)
