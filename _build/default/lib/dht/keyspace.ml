(* Section 2: "we assume a hash function h : K -> V such that resource r
   maps to the point v = h(key(r)) in a metric space ... assumed to
   populate the metric space evenly." FNV-1a gives fast, decent diffusion;
   a SplitMix64 finaliser on top fixes FNV's weak low bits before the
   modulo. *)

let fnv_offset_basis = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let fnv1a64 s =
  let h = ref fnv_offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(* SplitMix64's output finaliser: a strong 64-bit mixer. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash64 key = mix64 (fnv1a64 key)

let point ~line_size key =
  if line_size < 1 then invalid_arg "Keyspace.point: line_size must be positive";
  let h = hash64 key in
  (* Non-negative 62-bit value, then modulo. The bias is < 2^-40 for any
     realistic line size. *)
  Int64.to_int (Int64.shift_right_logical h 2) mod line_size

(* Replica r of a key lives at the point of a salted variant of the key —
   k independent hash functions via domain separation, so replicas spread
   over the whole space and survive any local disaster. Salt 0 is the
   primary location. *)
let replica_point ~line_size ~salt key =
  if salt < 0 then invalid_arg "Keyspace.replica_point: negative salt";
  if salt = 0 then point ~line_size key
  else point ~line_size (Printf.sprintf "%s\x00#%d" key salt)
