module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Failure = Ftr_core.Failure
module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample

(* Realistic request workloads for the resource layer: key popularity is
   Zipf-distributed (rank r requested with probability proportional to
   r^-exponent), the regime every deployed DHT lives in. The questions the
   paper's Section 1 raises — "the cost borne by each node must ... be
   proportional ... to the amount of data the node seeks or provides" —
   become measurable: how skewed is the serving load, and how skewed is
   the forwarding load greedy routing induces? *)

type t = {
  keys : string array; (* popularity rank order: keys.(0) is hottest *)
  rank_sampler : Sample.power_law;
}

let create ?(exponent = 1.0) ~universe () =
  if universe < 1 then invalid_arg "Workload.create: universe must be >= 1";
  {
    keys = Array.init universe (fun i -> Printf.sprintf "key-%d" i);
    rank_sampler = Sample.power_law ~exponent ~max_length:universe;
  }

let universe t = Array.length t.keys

let keys t = t.keys

let draw t rng = t.keys.(Sample.power_law_draw t.rank_sampler rng ~upto:(Array.length t.keys) - 1)

type report = {
  requests : int;
  hit_rate : float;  (** requests that found their value *)
  mean_hops : float;
  serve_max_over_mean : float;
      (** hottest node's share of value-serving load vs the mean over
          serving nodes *)
  forward_max_over_mean : float;
      (** hottest node's share of message-forwarding load vs the mean over
          all live nodes *)
}

(* Route [requests] Zipf-popular lookups from random live sources and
   account both who serves values and who forwards messages. [spread]
   makes each request start from a uniformly random replica (salted-hash
   read balancing); without it every request hammers the primary. *)
let measure_load ?(failures = Failure.none) ?(strategy = Route.Terminate) ?(spread = false)
    ~store ~requests t rng =
  if requests < 1 then invalid_arg "Workload.measure_load: requests must be >= 1";
  let net = Store.network store in
  let n = Network.size net in
  let serve = Array.make n 0 in
  let forward = Array.make n 0 in
  let hits = ref 0 in
  let hops_total = ref 0 in
  let rec live_node () =
    let v = Rng.int rng n in
    if Failure.node_alive failures v then v else live_node ()
  in
  for _ = 1 to requests do
    let key = draw t rng in
    let owners = Store.replica_owners store key in
    let owners = if spread then Ftr_prng.Rng.pick rng (Array.of_list owners) :: [] else owners in
    let src = live_node () in
    let rec attempt = function
      | [] -> ()
      | owner :: rest ->
          if Failure.node_alive failures owner then begin
            let outcome =
              Route.route ~failures ~strategy ~rng
                ~on_hop:(fun v -> forward.(v) <- forward.(v) + 1)
                net ~src ~dst:owner
            in
            hops_total := !hops_total + Route.hops outcome;
            if Route.delivered outcome && Store.get store ~key <> None then begin
              incr hits;
              serve.(owner) <- serve.(owner) + 1
            end
            else attempt rest
          end
          else attempt rest
    in
    attempt owners
  done;
  let max_over_mean counts ~support =
    let total = Array.fold_left ( + ) 0 counts in
    let max_v = Array.fold_left max 0 counts in
    if total = 0 || support = 0 then nan
    else float_of_int max_v /. (float_of_int total /. float_of_int support)
  in
  let serving_nodes = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 serve in
  {
    requests;
    hit_rate = float_of_int !hits /. float_of_int requests;
    mean_hops = float_of_int !hops_total /. float_of_int requests;
    serve_max_over_mean = max_over_mean serve ~support:(max 1 serving_nodes);
    forward_max_over_mean = max_over_mean forward ~support:n;
  }
