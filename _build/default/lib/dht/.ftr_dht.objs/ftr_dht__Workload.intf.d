lib/dht/workload.mli: Ftr_core Ftr_prng Store
