lib/dht/keyspace.ml: Char Int64 Printf String
