lib/dht/dynamic.mli: Ftr_p2p
