lib/dht/keyspace.mli:
