lib/dht/store.ml: Array Ftr_core Hashtbl Keyspace List
