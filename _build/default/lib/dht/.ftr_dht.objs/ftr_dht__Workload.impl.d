lib/dht/workload.ml: Array Ftr_core Ftr_prng Printf Store
