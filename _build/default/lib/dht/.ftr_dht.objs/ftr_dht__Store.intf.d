lib/dht/store.mli: Ftr_core Ftr_prng
