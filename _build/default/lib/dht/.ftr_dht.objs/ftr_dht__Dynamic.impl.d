lib/dht/dynamic.ml: Ftr_p2p Hashtbl Keyspace List
