(** The hash function of Section 2: keys to metric-space points.

    The point of a key is permanent — computable by any node, unaffected by
    failures — which is exactly why the paper builds on a metric space.
    Replication uses domain-separated salts so each replica lands at an
    independent point. *)

val fnv1a64 : string -> int64
(** Raw FNV-1a 64-bit hash. *)

val hash64 : string -> int64
(** FNV-1a with a SplitMix64 finaliser (well-mixed in every bit). *)

val point : line_size:int -> string -> int
(** The key's home point on a line of [line_size] grid points.
    @raise Invalid_argument if [line_size < 1]. *)

val replica_point : line_size:int -> salt:int -> string -> int
(** The key's [salt]-th replica point; salt 0 is {!point}.
    @raise Invalid_argument on a negative salt. *)
