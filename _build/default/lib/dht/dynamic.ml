module Overlay = Ftr_p2p.Overlay

(* The store over the live protocol: ownership is whatever node the
   overlay's routed lookup resolves for the key's point *right now*, so it
   follows joins, leaves and crashes. Values live in per-position tables on
   this side of the simulation boundary (the "disk" of each simulated
   node); a crash therefore loses the local copies, and replication via
   salted points is what brings the data back. *)

type t = {
  overlay : Overlay.t;
  line_size : int;
  replicas : int;
  data : (int, (string, string) Hashtbl.t) Hashtbl.t; (* live position -> table *)
  mutable puts : int;
  mutable gets : int;
  mutable get_hits : int;
}

let create ?(replicas = 1) ~line_size overlay =
  if replicas < 1 then invalid_arg "Dynamic.create: need at least one replica";
  { overlay; line_size; replicas; data = Hashtbl.create 256; puts = 0; gets = 0; get_hits = 0 }

let overlay t = t.overlay

let table_of t pos =
  match Hashtbl.find_opt t.data pos with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 8 in
      Hashtbl.replace t.data pos table;
      table

(* Drop tables of nodes that are no longer alive (their contents die with
   them, as a crashed disk would). Called lazily from reads. *)
let reap t =
  let dead =
    Hashtbl.fold (fun pos _ acc -> if Overlay.is_alive t.overlay pos then acc else pos :: acc)
      t.data []
  in
  List.iter (Hashtbl.remove t.data) dead

let put t ~from ~key ~value =
  t.puts <- t.puts + 1;
  for salt = 0 to t.replicas - 1 do
    let point = Keyspace.replica_point ~line_size:t.line_size ~salt key in
    Overlay.lookup t.overlay ~from ~target:point
      ~callback:(fun ~owner ~hops:_ ->
        if Overlay.is_alive t.overlay owner then
          Hashtbl.replace (table_of t owner) key value)
      ()
  done

let get t ~from ~key ~callback =
  t.gets <- t.gets + 1;
  reap t;
  (* Try replica points in salt order; the first owner holding the key
     answers. *)
  let rec attempt salt =
    if salt = t.replicas then callback None
    else begin
      let point = Keyspace.replica_point ~line_size:t.line_size ~salt key in
      Overlay.lookup t.overlay ~from ~target:point
        ~callback:(fun ~owner ~hops:_ ->
          match Hashtbl.find_opt t.data owner with
          | Some table when Hashtbl.mem table key ->
              t.get_hits <- t.get_hits + 1;
              callback (Hashtbl.find_opt table key)
          | Some _ | None -> attempt (salt + 1))
        ()
    end
  in
  attempt 0

(* Graceful departure with data transfer: the node re-puts everything it
   holds (its lookups will resolve to the post-departure owners once it is
   gone, so the handoff issues them *after* the leave). Returns the number
   of pairs handed off. *)
let leave_with_handoff t ~pos =
  match Hashtbl.find_opt t.data pos with
  | None ->
      Ftr_p2p.Overlay.leave t.overlay ~pos;
      0
  | Some table ->
      let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
      Hashtbl.remove t.data pos;
      (* The ring is spliced first, so re-puts route around the hole. *)
      Ftr_p2p.Overlay.leave t.overlay ~pos;
      (match Ftr_p2p.Overlay.live_positions t.overlay with
      | [] -> ()
      | from :: _ -> List.iter (fun (key, value) -> put t ~from ~key ~value) pairs);
      List.length pairs

(* Anti-entropy: every stored pair is re-put from its current holder, so
   ownership drift accumulated through churn is repaired and the replica
   count restored. *)
let rebalance t =
  reap t;
  let pairs =
    Hashtbl.fold
      (fun pos table acc -> Hashtbl.fold (fun k v acc -> (pos, k, v) :: acc) table acc)
      t.data []
  in
  List.iter
    (fun (pos, key, value) -> if Overlay.is_alive t.overlay pos then put t ~from:pos ~key ~value)
    pairs;
  List.length pairs

let stored_pairs t =
  reap t;
  Hashtbl.fold (fun _ table acc -> acc + Hashtbl.length table) t.data 0

type stats = { puts : int; gets : int; get_hits : int }

let stats (t : t) = { puts = t.puts; gets = t.gets; get_hits = t.get_hits }
