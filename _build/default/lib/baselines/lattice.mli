(** CAN-style greedy routing on a pure d-dimensional lattice (Section 3):
    each node knows only its 2d lattice neighbours, so delivery takes
    Θ(d·n^{1/d}) hops — the paper's example of a structured overlay with
    small state but polynomially long routes. *)

type t

val create : dims:int -> side:int -> t
(** Torus of [side^dims] nodes. @raise Invalid_argument if [side < 3]. *)

val torus : t -> Ftr_metric.Torus.t
(** The underlying metric space. *)

val size : t -> int
(** Number of nodes. *)

val route : ?max_hops:int -> t -> src:int -> dst:int -> int option
(** Greedy lattice hops (always exactly the L1 distance). *)

val route_hops : t -> src:int -> dst:int -> int
(** As {!route} but raising on failure. *)

val expected_hops : t -> float
(** Mean L1 distance between uniform pairs: [d · side / 4]. *)
