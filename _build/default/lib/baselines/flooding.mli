(** Gnutella-style flooding over an unstructured random overlay
    (Section 3): the paper's motivating bad baseline, trading per-node
    state for per-query message explosions. *)

val random_overlay : n:int -> degree:int -> Ftr_prng.Rng.t -> Ftr_graph.Adjacency.t
(** Symmetric random overlay where every node initiates [degree] links to
    uniform peers. @raise Invalid_argument if [n < 2] or [degree < 1]. *)

type result = {
  found : bool;  (** whether the flood reached the target *)
  messages : int;  (** total query copies forwarded *)
  rounds : int;  (** BFS depth at which the target was hit *)
}

val search : ?ttl:int -> Ftr_graph.Adjacency.t -> src:int -> dst:int -> result
(** Flood from [src] until [dst] is hit, the TTL expires, or the frontier
    dies out. @raise Invalid_argument on out-of-range endpoints. *)
