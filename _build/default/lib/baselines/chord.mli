(** Chord finger-table routing (Stoica et al., Section 3 of the paper).

    Nodes sit on an identifier circle; node u's j-th finger is the first
    node succeeding [u + 2^j]. Greedy clockwise routing reaches the node
    responsible for any key in O(log n) hops — the comparison point for the
    paper's claim that structured overlays share the embedded-metric-space
    shape. *)

type t

val create : ring_size:int -> node_ids:int array -> t
(** Ring of the given size populated by the given (distinct) identifiers.
    @raise Invalid_argument on duplicates or out-of-range ids. *)

val create_full : n:int -> t
(** Every identifier of a size-[n] ring occupied — the densest instance,
    directly comparable to the paper's full line. *)

val ring_size : t -> int
(** Size of the identifier circle. *)

val node_count : t -> int
(** Number of present nodes. *)

val nodes : t -> int array
(** Sorted identifiers of present nodes (do not mutate). *)

val successor : t -> int -> int
(** Identifier of the node responsible for a key (first node at or after
    it, clockwise). *)

val fingers_of : t -> id:int -> int array
(** The finger table of the node responsible for [id]. *)

val route : ?max_hops:int -> t -> src:int -> key:int -> int option
(** Hops for greedy clockwise routing from the node at [src] to the node
    responsible for [key]; [None] only if the hop budget is exhausted. *)

val route_hops : t -> src:int -> key:int -> int
(** As {!route} but raising on failure (for benchmarks). *)

(** {1 Routing under node failures} *)

val successor_list : t -> id:int -> r:int -> int list
(** The first [r] nodes at or after [id], clockwise — Chord's successor
    list, its fallback when fingers die. *)

val route_with_failures :
  ?max_hops:int -> ?successors:int -> t -> alive:(int -> bool) -> src:int -> key:int ->
  int option
(** Greedy finger routing that skips dead fingers and falls back to the
    first live entry of an [successors]-long successor list; [None] when
    even the fallbacks are all dead (or the hop budget runs out).
    @raise Invalid_argument if an endpoint is dead or [successors < 1]. *)

type failure_row = {
  fail_fraction : float;
  failed_r1 : float;  (** failed searches with a 1-entry successor list *)
  failed_r4 : float;  (** with 4 successors *)
  hops_r4 : float;  (** mean hops of successful r=4 searches *)
}

val failure_sweep :
  ?n:int -> ?fractions:float list -> ?messages:int -> seed:int -> unit -> failure_row list
(** Chord's failed-search fractions under the Section 6 failure model, for
    the paper's "appear to perform as well as theirs" comparison. *)
