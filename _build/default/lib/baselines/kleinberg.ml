(* Kleinberg's grid is the dims = 2 instance of the generalised
   construction in [Ftr_core.Multidim]; this module is a thin, name-stable
   facade over it. *)

module Multidim = Ftr_core.Multidim

type t = Multidim.t

let build ?(alpha = 2.0) ?(long_links = 1) ~side rng =
  if side < 3 then invalid_arg "Kleinberg.build: side must be >= 3";
  if long_links < 0 then invalid_arg "Kleinberg.build: negative long link count";
  Multidim.build ~alpha ~links:long_links ~dims:2 ~side rng

let torus = Multidim.torus

let size = Multidim.size

let neighbors = Multidim.neighbors

let route ?max_hops t ~src ~dst =
  if not (Ftr_metric.Torus.contains (Multidim.torus t) src
          && Ftr_metric.Torus.contains (Multidim.torus t) dst)
  then invalid_arg "Kleinberg.route: node off the torus";
  match Multidim.route ?max_hops t ~src ~dst with
  | Multidim.Delivered { hops } -> Some hops
  | Multidim.Failed _ -> None

let route_hops t ~src ~dst =
  match route t ~src ~dst with
  | Some h -> h
  | None -> invalid_arg "Kleinberg.route_hops: routing failed"
