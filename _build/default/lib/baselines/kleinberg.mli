(** Kleinberg's small-world grid [5], the paper's closest relative.

    Nodes on a 2-D torus keep their four lattice neighbours plus [q] long
    links drawn with probability proportional to [d^-alpha]; Kleinberg
    proved greedy routing takes O(log²n) hops exactly when [alpha] equals
    the dimension (2 here), and the paper contrasts its own line model with
    this construction's brittleness. *)

type t

val build : ?alpha:float -> ?long_links:int -> side:int -> Ftr_prng.Rng.t -> t
(** A [side × side] torus with lattice links plus [long_links] draws per
    node from the [d^-alpha] law (defaults: alpha 2, one link).
    @raise Invalid_argument if [side < 3] or [long_links < 0]. *)

val torus : t -> Ftr_metric.Torus.t
(** The underlying metric space. *)

val size : t -> int
(** Number of nodes. *)

val neighbors : t -> int -> int array
(** Sorted neighbour list of a node (do not mutate). *)

val route : ?max_hops:int -> t -> src:int -> dst:int -> int option
(** Greedy hops from [src] to [dst]; [None] only on hop-budget exhaustion
    (lattice links make progress otherwise guaranteed).
    @raise Invalid_argument if an endpoint is off the torus. *)

val route_hops : t -> src:int -> dst:int -> int
(** As {!route} but raising on failure. *)
