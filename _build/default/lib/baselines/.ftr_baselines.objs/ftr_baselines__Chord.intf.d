lib/baselines/chord.mli:
