lib/baselines/flooding.ml: Array Ftr_graph Ftr_prng List
