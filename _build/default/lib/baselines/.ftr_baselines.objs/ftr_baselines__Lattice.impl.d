lib/baselines/lattice.ml: Ftr_metric List
