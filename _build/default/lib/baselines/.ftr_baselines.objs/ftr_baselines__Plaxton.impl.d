lib/baselines/plaxton.ml: List
