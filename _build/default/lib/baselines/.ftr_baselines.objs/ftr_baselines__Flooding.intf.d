lib/baselines/flooding.mli: Ftr_graph Ftr_prng
