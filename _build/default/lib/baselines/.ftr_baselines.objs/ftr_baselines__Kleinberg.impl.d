lib/baselines/kleinberg.ml: Ftr_core Ftr_metric
