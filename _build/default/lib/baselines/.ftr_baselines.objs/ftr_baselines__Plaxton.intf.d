lib/baselines/plaxton.mli:
