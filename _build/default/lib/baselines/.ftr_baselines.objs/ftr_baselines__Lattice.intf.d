lib/baselines/lattice.mli: Ftr_metric
