lib/baselines/kleinberg.mli: Ftr_metric Ftr_prng
