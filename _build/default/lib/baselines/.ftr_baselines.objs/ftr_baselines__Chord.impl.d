lib/baselines/chord.ml: Array Ftr_core Ftr_graph Ftr_metric Ftr_prng List
