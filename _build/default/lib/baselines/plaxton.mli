(** Tapestry-style prefix (digit-fixing) routing over a full b-ary
    namespace — the Plaxton scheme the paper's Section 3 describes, and the
    hypercube-routing cousin of Theorem 14's deterministic links. Delivery
    takes exactly the number of differing digit positions, at most
    [digits] hops, with [(base-1)·digits] table entries per node. *)

type t

val create : base:int -> digits:int -> t
(** Namespace of [base^digits] identifiers.
    @raise Invalid_argument on degenerate parameters or namespaces over
    2^30 identifiers. *)

val size : t -> int
(** Number of identifiers. *)

val base : t -> int
(** Digit radix. *)

val digits : t -> int
(** Identifier length in digits. *)

val table_entries : t -> int
(** Routing-table entries a node holds: [(base-1) · digits]. *)

val digit : t -> int -> position:int -> int
(** Digit of an identifier; position 0 is most significant.
    @raise Invalid_argument on a bad position. *)

val shared_prefix : t -> int -> int -> int
(** Leading digits two identifiers share. *)

val next_hop : t -> cur:int -> dst:int -> int option
(** The routing-table hop that fixes the first differing digit; [None] at
    the destination. @raise Invalid_argument off the namespace. *)

val route : t -> src:int -> dst:int -> int * int list
(** (hops, full path) of prefix routing. *)

val route_hops : t -> src:int -> dst:int -> int
(** Just the hop count. *)

val differing_digits : t -> int -> int -> int
(** Positions where two identifiers disagree — provably the exact hop
    count of {!route}. *)
