module Torus = Ftr_metric.Torus

type t = { torus : Torus.t }

let create ~dims ~side =
  if side < 3 then invalid_arg "Lattice.create: side must be >= 3";
  { torus = Torus.create ~dims ~side }

let torus t = t.torus

let size t = Torus.size t.torus

(* CAN-style greedy: only lattice neighbours, pick any that strictly
   reduces L1 distance (first axis with a gap). Hop count equals the L1
   distance, i.e. Θ(d · n^{1/d}) in the worst case. *)
let route ?(max_hops = 100_000_000) t ~src ~dst =
  if not (Torus.contains t.torus src && Torus.contains t.torus dst) then
    invalid_arg "Lattice.route: node off the torus";
  let rec go cur hops =
    if cur = dst then Some hops
    else if hops >= max_hops then None
    else begin
      let cd = Torus.distance t.torus cur dst in
      let next =
        List.find_opt (fun v -> Torus.distance t.torus v dst < cd) (Torus.neighbors t.torus cur)
      in
      match next with None -> None | Some v -> go v (hops + 1)
    end
  in
  go src 0

let route_hops t ~src ~dst =
  match route t ~src ~dst with
  | Some h -> h
  | None -> invalid_arg "Lattice.route_hops: routing failed"

let expected_hops t = float_of_int (Torus.dims t.torus) *. float_of_int (Torus.side t.torus) /. 4.0
