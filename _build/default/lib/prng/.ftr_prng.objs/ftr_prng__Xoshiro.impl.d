lib/prng/xoshiro.ml: Int64 Splitmix64
