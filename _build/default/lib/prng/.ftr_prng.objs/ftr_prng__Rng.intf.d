lib/prng/rng.mli:
