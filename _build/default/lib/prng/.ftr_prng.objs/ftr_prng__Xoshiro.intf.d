lib/prng/xoshiro.mli: Splitmix64
