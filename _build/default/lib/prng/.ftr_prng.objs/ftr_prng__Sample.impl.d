lib/prng/sample.ml: Array Float Queue Rng
