lib/prng/sample.mli: Rng
