type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let of_state s0 s1 s2 s3 =
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    invalid_arg "Xoshiro.of_state: all-zero state";
  { s0; s1; s2; s3 }

let of_splitmix sm =
  let s0 = Splitmix64.next_int64 sm in
  let s1 = Splitmix64.next_int64 sm in
  let s2 = Splitmix64.next_int64 sm in
  let s3 = Splitmix64.next_int64 sm in
  (* SplitMix64 output is equidistributed so an all-zero draw is all but
     impossible, but the xoshiro state must never be all zero. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let create seed = of_splitmix (Splitmix64.create seed)

let of_int seed = create (Int64.of_int seed)

(* xoshiro256** next(): the state transition is a linear map on GF(2)^256;
   the star-star scrambler breaks its linearity in the output. *)
let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let split t =
  (* Derive an independent stream by reseeding SplitMix64 from the parent.
     The derived stream's trajectory is decorrelated from the parent's. *)
  let sm = Splitmix64.create (next_int64 t) in
  of_splitmix sm
