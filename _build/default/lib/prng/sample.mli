(** Discrete distribution samplers.

    The power-law sampler is the heart of the paper's link model: a link of
    length [d] is chosen with probability proportional to [1/d] (inverse
    power law with exponent 1, Section 4.3). We precompute prefix sums of
    [d^-exponent] once per network size and draw by inverse-CDF binary
    search, O(log n) per link. *)

(** {1 Tabulated categorical distributions} *)

type cdf
(** Cumulative-probability table for inverse-CDF sampling. *)

val cdf_of_weights : float array -> cdf
(** Normalise non-negative weights into a CDF table.
    @raise Invalid_argument on empty, negative, NaN or all-zero weights. *)

val cdf_draw : cdf -> Rng.t -> int
(** Draw an index with probability proportional to its weight; O(log n). *)

val cdf_size : cdf -> int
(** Number of categories. *)

val cdf_probability : cdf -> int -> float
(** Normalised probability of index [i].
    @raise Invalid_argument if out of range. *)

type alias
(** Alias table (Vose's method) for O(1) draws. *)

val alias_of_weights : float array -> alias
(** Build the alias table; O(n).
    @raise Invalid_argument on empty or non-positive total weight. *)

val alias_draw : alias -> Rng.t -> int
(** Draw an index in O(1). *)

(** {1 Classical distributions} *)

val exponential : Rng.t -> rate:float -> float
(** Exponential variate with the given rate.
    @raise Invalid_argument if [rate <= 0]. *)

val geometric : Rng.t -> p:float -> int
(** Trials up to and including the first success; support [1, 2, ...].
    @raise Invalid_argument unless [0 < p <= 1]. *)

val poisson : Rng.t -> lambda:float -> int
(** Poisson variate. Used by the Section 5 heuristic to estimate the number
    of incoming links a new node should solicit.
    @raise Invalid_argument if [lambda < 0]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Binomial(n, p) variate.
    @raise Invalid_argument if [n < 0] or [p] outside [0,1]. *)

(** {1 Power-law link lengths} *)

type power_law
(** Precomputed prefix sums of [d^-exponent] for lengths [1..max_length]. *)

val power_law : exponent:float -> max_length:int -> power_law
(** Build the table. With [exponent = 1.0] this is the paper's harmonic
    link-length distribution.
    @raise Invalid_argument if [max_length < 1]. *)

val power_law_draw : power_law -> Rng.t -> upto:int -> int
(** Draw a length in [1, upto] with probability proportional to
    [d^-exponent], restricted to the first [upto] lengths (used to condition
    on staying inside the line segment).
    @raise Invalid_argument if [upto] is out of range. *)

val power_law_total : power_law -> upto:int -> float
(** Normalising constant [sum_{d=1..upto} d^-exponent]. *)

val power_law_max_length : power_law -> int
(** Largest supported length. *)
