(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    A tiny, fast, well-mixed 64-bit generator with a single word of state.
    Its primary role here is seeding: every {!Xoshiro} instance derives its
    four state words from a SplitMix64 stream, as recommended by the xoshiro
    authors, which also gives us cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a raw 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] builds a generator from an OCaml [int] seed. *)

val next_int64 : t -> int64
(** Advance the state and return the next 64-bit output. *)

val copy : t -> t
(** Independent copy of the current state. *)

val state : t -> int64
(** Current raw state (for debugging and tests). *)
