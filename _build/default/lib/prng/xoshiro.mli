(** xoshiro256** pseudo-random generator (Blackman & Vigna 2018).

    The workhorse generator for all simulations: 256 bits of state, period
    2^256 - 1, and excellent statistical quality. Deterministic across
    platforms and OCaml versions, unlike [Stdlib.Random]. *)

type t
(** Mutable generator state; never all-zero. *)

val create : int64 -> t
(** [create seed] seeds the four state words from a SplitMix64 stream. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** Build from four raw state words.
    @raise Invalid_argument if all four words are zero. *)

val of_splitmix : Splitmix64.t -> t
(** Seed the state from an existing SplitMix64 stream (advances it). *)

val next_int64 : t -> int64
(** Advance the state and return the next 64-bit output. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s. Used to give each simulated entity its own
    stream so that adding draws in one place does not perturb another. *)
