type t = Xoshiro.t

let create ?(seed = 0x5EEDL) () = Xoshiro.create seed

let of_int seed = Xoshiro.of_int seed

let split = Xoshiro.split

let copy = Xoshiro.copy

let bits64 = Xoshiro.next_int64

(* Non-negative 62-bit integer: drop the two top bits so the result always
   fits OCaml's 63-bit int without sign surprises. *)
let bits t = Int64.to_int (Int64.shift_right_logical (Xoshiro.next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits t land (bound - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let max_usable = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
    let rec draw () =
      let v = bits t in
      if v >= max_usable then draw () else v mod bound
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits scaled to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (Xoshiro.next_int64 t) 11) in
  float_of_int v *. 0x1.0p-53

let float_range t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (Xoshiro.next_int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle_in_place t arr =
  (* Fisher–Yates. *)
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle_in_place t arr;
  arr
