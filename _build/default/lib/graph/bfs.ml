let distances graph ~src =
  let n = Adjacency.size graph in
  if src < 0 || src >= n then invalid_arg "Bfs.distances: source out of range";
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Adjacency.neighbors graph u)
  done;
  dist

let reachable_count graph ~src =
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 (distances graph ~src)

let is_strongly_connected graph =
  let n = Adjacency.size graph in
  n = 0
  || (reachable_count graph ~src:0 = n
     && reachable_count (Adjacency.reverse graph) ~src:0 = n)

let eccentricity graph ~src =
  Array.fold_left max 0 (distances graph ~src)

let weakly_connected_components graph =
  let n = Adjacency.size graph in
  let rev = Adjacency.reverse graph in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  for start = 0 to n - 1 do
    if comp.(start) < 0 then begin
      let c = !next in
      incr next;
      comp.(start) <- c;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let visit v =
          if comp.(v) < 0 then begin
            comp.(v) <- c;
            Queue.add v queue
          end
        in
        Array.iter visit (Adjacency.neighbors graph u);
        Array.iter visit (Adjacency.neighbors rev u)
      done
    end
  done;
  (!next, comp)
