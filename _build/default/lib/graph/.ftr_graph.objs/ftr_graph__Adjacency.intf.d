lib/graph/adjacency.mli:
