lib/graph/adjacency.ml: Array List Printf
