lib/graph/bfs.mli: Adjacency
