lib/graph/bfs.ml: Adjacency Array Queue
