lib/graph/bitset.mli:
