(** Breadth-first traversal: hop distances, reachability, connectivity.

    Tests use these to check structural invariants of generated overlays
    (e.g. every node can reach every other through ±1 links alone). *)

val distances : Adjacency.t -> src:int -> int array
(** Hop distance from [src] to every node; -1 when unreachable.
    @raise Invalid_argument if [src] is out of range. *)

val reachable_count : Adjacency.t -> src:int -> int
(** Number of nodes reachable from [src] (including itself). *)

val is_strongly_connected : Adjacency.t -> bool
(** Whether every node reaches every other along directed edges. *)

val eccentricity : Adjacency.t -> src:int -> int
(** Largest finite hop distance from [src]. *)

val weakly_connected_components : Adjacency.t -> int * int array
(** Component count and a per-node component label, ignoring direction. *)
