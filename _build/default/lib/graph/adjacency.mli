(** Directed graphs as per-node out-neighbour arrays — the shape of the
    paper's overlay, where each node stores only the addresses of its
    neighbours. *)

type t

val of_arrays : int array array -> t
(** Wrap per-node neighbour arrays.
    @raise Invalid_argument if any endpoint is out of range. *)

val of_edges : n:int -> (int * int) list -> t
(** Build from an edge list over nodes [0..n-1]. *)

val size : t -> int
(** Number of nodes. *)

val out_degree : t -> int -> int
(** Out-degree of a node. *)

val neighbors : t -> int -> int array
(** Out-neighbours of a node (do not mutate). *)

val mem_edge : t -> int -> int -> bool
(** Whether the directed edge u -> v exists. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Apply to every directed edge. *)

val edge_count : t -> int
(** Total number of directed edges. *)

val reverse : t -> t
(** Graph with every edge reversed. *)

val degree_summary : t -> int * int * float
(** (min, max, mean) out-degree. *)
