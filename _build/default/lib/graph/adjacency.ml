type t = { out_neighbors : int array array }

let of_arrays out_neighbors =
  Array.iteri
    (fun u ns ->
      Array.iter
        (fun v ->
          if v < 0 || v >= Array.length out_neighbors then
            invalid_arg
              (Printf.sprintf "Adjacency.of_arrays: edge %d -> %d out of range" u v))
        ns)
    out_neighbors;
  { out_neighbors }

let of_edges ~n edges =
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Adjacency.of_edges: out of range";
      buckets.(u) <- v :: buckets.(u))
    edges;
  { out_neighbors = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

let size t = Array.length t.out_neighbors

let out_degree t u = Array.length t.out_neighbors.(u)

let neighbors t u = t.out_neighbors.(u)

let mem_edge t u v = Array.exists (fun w -> w = v) t.out_neighbors.(u)

let iter_edges t f =
  Array.iteri (fun u ns -> Array.iter (fun v -> f u v) ns) t.out_neighbors

let edge_count t = Array.fold_left (fun acc ns -> acc + Array.length ns) 0 t.out_neighbors

let reverse t =
  let n = size t in
  let buckets = Array.make n [] in
  iter_edges t (fun u v -> buckets.(v) <- u :: buckets.(v));
  { out_neighbors = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

let degree_summary t =
  let n = size t in
  if n = 0 then (0, 0, 0.0)
  else begin
    let lo = ref max_int and hi = ref 0 and total = ref 0 in
    for u = 0 to n - 1 do
      let d = out_degree t u in
      if d < !lo then lo := d;
      if d > !hi then hi := d;
      total := !total + d
    done;
    (!lo, !hi, float_of_int !total /. float_of_int n)
  end
