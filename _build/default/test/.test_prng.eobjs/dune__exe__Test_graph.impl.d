test/test_graph.ml: Alcotest Array Ftr_graph Gen List Printf QCheck QCheck_alcotest
