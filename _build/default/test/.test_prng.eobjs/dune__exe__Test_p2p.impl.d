test/test_p2p.ml: Alcotest Array Ftr_p2p Ftr_prng Ftr_sim Gen List Option Printf QCheck QCheck_alcotest
