test/test_prng.ml: Alcotest Array Ftr_prng Ftr_stats Gen Hashtbl List Option Printf QCheck QCheck_alcotest
