test/test_experiment.ml: Alcotest Array Ftr_core Ftr_prng List Printf
