test/test_dht.ml: Alcotest Array Ftr_core Ftr_dht Ftr_graph Ftr_p2p Ftr_prng Ftr_sim Ftr_stats Gen Hashtbl Int64 List Printf QCheck QCheck_alcotest
