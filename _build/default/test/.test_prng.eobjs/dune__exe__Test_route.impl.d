test/test_route.ml: Alcotest Array Ftr_core Ftr_graph Ftr_prng Gen List Printf QCheck QCheck_alcotest
