test/test_baselines.ml: Alcotest Array Ftr_baselines Ftr_core Ftr_graph Ftr_metric Ftr_prng Ftr_stats List Printf QCheck QCheck_alcotest
