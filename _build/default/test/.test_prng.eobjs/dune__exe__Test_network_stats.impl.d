test/test_network_stats.ml: Alcotest Array Ftr_core Ftr_prng Ftr_stats Printf
