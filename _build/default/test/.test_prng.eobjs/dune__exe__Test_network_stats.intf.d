test/test_network_stats.mli:
