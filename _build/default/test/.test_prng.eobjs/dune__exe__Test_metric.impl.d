test/test_metric.ml: Alcotest Ftr_metric List QCheck QCheck_alcotest
