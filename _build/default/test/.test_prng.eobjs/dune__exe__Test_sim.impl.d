test/test_sim.ml: Alcotest Float Format Ftr_prng Ftr_sim Ftr_stats Gen List Printf QCheck QCheck_alcotest String
