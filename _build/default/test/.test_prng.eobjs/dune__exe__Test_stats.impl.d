test/test_stats.ml: Alcotest Array Filename Float Format Ftr_stats Fun Gen In_channel List Printf QCheck QCheck_alcotest String Sys
