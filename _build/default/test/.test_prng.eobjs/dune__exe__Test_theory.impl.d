test/test_theory.ml: Alcotest Ftr_core Ftr_stats List
