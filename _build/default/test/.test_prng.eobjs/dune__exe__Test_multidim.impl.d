test/test_multidim.ml: Alcotest Array Ftr_core Ftr_graph Ftr_metric Ftr_prng List Printf
