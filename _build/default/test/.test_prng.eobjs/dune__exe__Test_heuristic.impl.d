test/test_heuristic.ml: Alcotest Array Ftr_core Ftr_graph Ftr_prng Ftr_stats List Printf QCheck QCheck_alcotest
