test/test_heuristic.mli:
