test/test_aggregate.ml: Alcotest Array Float Ftr_core Ftr_prng Ftr_stats List Printf QCheck QCheck_alcotest
