test/test_network.ml: Alcotest Array Filename Ftr_core Ftr_graph Ftr_prng Ftr_stats Fun List Printf QCheck QCheck_alcotest Sys
