module Multidim = Ftr_core.Multidim
module Adversary = Ftr_core.Adversary
module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Torus = Ftr_metric.Torus
module Rng = Ftr_prng.Rng
module Bitset = Ftr_graph.Bitset

let rng () = Rng.of_int 6174

(* ------------------------------------------------------------------ *)
(* Higher-dimensional overlays (Section 7 future work)                 *)
(* ------------------------------------------------------------------ *)

let multidim_structure () =
  let m = Multidim.build ~dims:2 ~side:16 ~links:3 (rng ()) in
  Alcotest.(check int) "size" 256 (Multidim.size m);
  Alcotest.(check int) "dims" 2 (Multidim.dims m);
  Alcotest.(check int) "links" 3 (Multidim.links m);
  Alcotest.(check (float 1e-9)) "default alpha = dims" 2.0 (Multidim.alpha m);
  for u = 0 to 255 do
    Alcotest.(check int) "degree" 7 (Array.length (Multidim.neighbors m u))
  done

let multidim_3d_structure () =
  let m = Multidim.build ~dims:3 ~side:8 ~links:2 (rng ()) in
  Alcotest.(check int) "size" 512 (Multidim.size m);
  for u = 0 to 511 do
    (* 6 lattice + 2 long. *)
    Alcotest.(check int) "degree" 8 (Array.length (Multidim.neighbors m u))
  done

let multidim_delivers_every_dimension () =
  List.iter
    (fun (dims, side) ->
      let m = Multidim.build ~dims ~side ~links:3 (rng ()) in
      let n = Multidim.size m in
      let r = rng () in
      for _ = 1 to 200 do
        let src = Rng.int r n and dst = Rng.int r n in
        Alcotest.(check bool)
          (Printf.sprintf "delivered in %dd" dims)
          true
          (Multidim.delivered (Multidim.route m ~src ~dst))
      done)
    [ (1, 512); (2, 24); (3, 8) ]

let multidim_hops_bounded_by_l1 () =
  let m = Multidim.build ~dims:2 ~side:32 ~links:2 (rng ()) in
  let t = Multidim.torus m in
  let r = rng () in
  for _ = 1 to 200 do
    let src = Rng.int r 1024 and dst = Rng.int r 1024 in
    Alcotest.(check bool) "hops <= L1" true
      (Multidim.route_hops m ~src ~dst <= Torus.distance t src dst)
  done

let multidim_matches_line_at_dims1 () =
  (* dims = 1 is the paper's own model (on a circle); delivery times should
     be in the same ballpark as Network.build_ring at equal n and links. *)
  let n = 2048 and links = 8 in
  let m = Multidim.build ~dims:1 ~side:n ~links (rng ()) in
  let ring = Network.build_ring ~n ~links (rng ()) in
  let r = rng () in
  let mean_m = ref 0 and mean_r = ref 0 in
  for _ = 1 to 300 do
    let src = Rng.int r n and dst = Rng.int r n in
    mean_m := !mean_m + Multidim.route_hops m ~src ~dst;
    mean_r := !mean_r + Route.hops (Route.route ring ~src ~dst)
  done;
  let a = float_of_int !mean_m and b = float_of_int !mean_r in
  Alcotest.(check bool)
    (Printf.sprintf "1-d torus %.1f vs ring %.1f" (a /. 300.) (b /. 300.))
    true
    (a < 1.5 *. b && b < 1.5 *. a)

let multidim_optimal_alpha_is_dims () =
  (* Kleinberg's theorem in 3 dimensions: alpha = 3 beats strongly local
     link choices. *)
  let mean alpha =
    let m = Multidim.build ~alpha ~dims:3 ~side:12 ~links:2 (Rng.of_int 99) in
    let n = Multidim.size m in
    let r = Rng.of_int 100 in
    let total = ref 0 in
    for _ = 1 to 300 do
      let src = Rng.int r n and dst = Rng.int r n in
      total := !total + Multidim.route_hops m ~src ~dst
    done;
    float_of_int !total /. 300.0
  in
  let good = mean 3.0 and local = mean 9.0 in
  Alcotest.(check bool)
    (Printf.sprintf "alpha=3 (%.1f) < alpha=9 (%.1f)" good local)
    true (good < local)

let multidim_backtracking_survives_failures () =
  let m = Multidim.build ~dims:2 ~side:48 ~links:6 (rng ()) in
  let n = Multidim.size m in
  let mask = Bitset.create n in
  Bitset.fill mask true;
  let r = rng () in
  for v = 0 to n - 1 do
    if Rng.bernoulli r 0.3 then Bitset.clear mask v
  done;
  let alive = Bitset.get mask in
  let live () =
    let rec go () =
      let v = Rng.int r n in
      if alive v then v else go ()
    in
    go ()
  in
  let terminate_fails = ref 0 and backtrack_fails = ref 0 in
  for _ = 1 to 200 do
    let src = live () and dst = live () in
    (match Multidim.route ~alive m ~src ~dst with
    | Multidim.Delivered _ -> ()
    | Multidim.Failed _ -> incr terminate_fails);
    match
      Multidim.route ~alive ~strategy:(Multidim.Backtrack { history = 5 }) m ~src ~dst
    with
    | Multidim.Delivered _ -> ()
    | Multidim.Failed _ -> incr backtrack_fails
  done;
  Alcotest.(check bool)
    (Printf.sprintf "backtrack %d <= terminate %d" !backtrack_fails !terminate_fails)
    true
    (!backtrack_fails <= !terminate_fails);
  Alcotest.(check bool) "backtracking nearly always delivers" true (!backtrack_fails < 10)

let multidim_rejects () =
  Alcotest.check_raises "bad dims" (Invalid_argument "Multidim.build: dims must be >= 1")
    (fun () -> ignore (Multidim.build ~dims:0 ~side:8 (rng ())));
  let m = Multidim.build ~dims:2 ~side:8 (rng ()) in
  Alcotest.check_raises "off torus" (Invalid_argument "Multidim.route: node off the torus")
    (fun () -> ignore (Multidim.route m ~src:0 ~dst:999))

(* ------------------------------------------------------------------ *)
(* Adversarial failures (Section 4.3.4.2)                              *)
(* ------------------------------------------------------------------ *)

let adversary_structural_positions () =
  let ps = Adversary.structural_positions ~n:16 ~base:2 ~target:8 in
  (* 8 ± {1,2,4,8}: 0,4,6,7,9,10,12 (16 is off the line). *)
  Alcotest.(check (list int)) "positions" [ 0; 4; 6; 7; 9; 10; 12 ] ps

let adversary_mask_spares_target () =
  let mask = Adversary.structural_mask ~n:1024 ~base:2 ~target:500 in
  Alcotest.(check bool) "target alive" true (Bitset.get mask 500);
  List.iter
    (fun p -> Alcotest.(check bool) "killed" false (Bitset.get mask p))
    (Adversary.structural_positions ~n:1024 ~base:2 ~target:500)

let adversary_kill_budget_is_logarithmic () =
  let kills n = List.length (Adversary.structural_positions ~n ~base:2 ~target:(n / 2)) in
  Alcotest.(check bool) "2 log n kills" true (kills 1024 <= 21);
  Alcotest.(check bool) "grows slowly" true (kills 65536 - kills 1024 <= 13)

let adversary_cuts_geometric_network () =
  (* With its structural in-neighbours gone, the target of a geometric
     network is unreachable from anywhere. *)
  let n = 1024 in
  let net = Network.build_geometric ~n ~base:2 in
  let target = 700 in
  let mask = Adversary.structural_mask ~n ~base:2 ~target in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let r = rng () in
  for _ = 1 to 30 do
    let rec live_src () =
      let s = Rng.int r n in
      if s <> target && Bitset.get mask s then s else live_src ()
    in
    let src = live_src () in
    match
      Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng:r net ~src
        ~dst:target
    with
    | Route.Delivered _ -> Alcotest.fail "target should be unreachable"
    | Route.Failed _ -> ()
  done

let adversary_random_network_shrugs () =
  let r = Adversary.isolation_experiment ~n:2048 ~trials:60 ~seed:31 () in
  Alcotest.(check bool)
    (Printf.sprintf "geometric dead (%.2f)" r.Adversary.geometric_failed)
    true
    (r.Adversary.geometric_failed > 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "random fine (%.2f)" r.Adversary.random_failed)
    true
    (r.Adversary.random_failed < 0.05);
  Alcotest.(check bool) "budget logarithmic" true (r.Adversary.kills <= 22)

let adversary_blockade_requires_direct_link () =
  (* Blockade of radius r around the target: only direct long links into
     the target can finish the route. On a chain (no long links) that means
     certain failure. *)
  let n = 256 in
  let chain = Network.build_ideal ~n ~links:0 (rng ()) in
  let target = 128 in
  let mask = Adversary.blockade_mask ~n ~target ~radius:3 in
  let failures = Ftr_core.Failure.of_node_mask mask in
  (match Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) chain ~src:5 ~dst:target with
  | Route.Delivered _ -> Alcotest.fail "no link can cross the blockade"
  | Route.Failed _ -> ());
  (* With long links the blockade is porous. *)
  let rich = Network.build_ideal ~n:2048 ~links:14 (Rng.of_int 77) in
  let mask = Adversary.blockade_mask ~n:2048 ~target:1024 ~radius:3 in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let r = rng () in
  let ok = ref 0 in
  for _ = 1 to 30 do
    let rec live_src () =
      let s = Rng.int r 2048 in
      if Bitset.get mask s && s <> 1024 then s else live_src ()
    in
    match
      Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng:r rich
        ~src:(live_src ()) ~dst:1024
    with
    | Route.Delivered _ -> incr ok
    | Route.Failed _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "long links cross (%d/30)" !ok) true (!ok >= 25)

let adversary_hub_attack_mask () =
  let net = Network.build_ideal ~n:512 ~links:4 (rng ()) in
  let mask = Adversary.highest_in_degree_mask net ~kills:50 in
  Alcotest.(check int) "exactly 50 dead" 462 (Bitset.count mask);
  (* Every dead node's in-degree is at least every live node's... the sort
     is by degree; verify the minimum dead degree >= maximum live degree
     minus ties. Weaker, exact check: the 50 dead are the top-50 by
     (degree, index) order. *)
  let degrees = Ftr_core.Network_stats.in_degrees net in
  let dead = ref [] and live_max = ref 0 in
  for v = 0 to 511 do
    if Bitset.get mask v then live_max := max !live_max degrees.(v)
    else dead := degrees.(v) :: !dead
  done;
  let dead_min = List.fold_left min max_int !dead in
  Alcotest.(check bool)
    (Printf.sprintf "dead min %d >= live max %d - 1" dead_min !live_max)
    true
    (dead_min >= !live_max - 1)

let adversary_hub_attack_is_blunt_on_ideal () =
  let net = Network.build_ideal ~n:2048 ~links:11 (rng ()) in
  let r = Adversary.degree_attack_experiment ~kills_fraction:0.1 ~messages:200 ~net ~seed:40 () in
  Alcotest.(check int) "kill budget" 204 r.Adversary.attack_kills;
  (* Egalitarian: targeted beats random by only a small margin. *)
  Alcotest.(check bool)
    (Printf.sprintf "targeted %.3f close to random %.3f" r.Adversary.targeted_failed
       r.Adversary.random_failed)
    true
    (r.Adversary.targeted_failed -. r.Adversary.random_failed < 0.15)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "multidim"
    [
      ( "overlay",
        [
          quick "2-d structure" multidim_structure;
          quick "3-d structure" multidim_3d_structure;
          quick "delivers in 1/2/3 dimensions" multidim_delivers_every_dimension;
          quick "hops bounded by L1" multidim_hops_bounded_by_l1;
          quick "1-d torus matches the ring model" multidim_matches_line_at_dims1;
          quick "optimal exponent equals dimension" multidim_optimal_alpha_is_dims;
          quick "backtracking under failures" multidim_backtracking_survives_failures;
          quick "rejects bad input" multidim_rejects;
        ] );
      ( "adversary",
        [
          quick "structural positions" adversary_structural_positions;
          quick "mask spares the target" adversary_mask_spares_target;
          quick "kill budget logarithmic" adversary_kill_budget_is_logarithmic;
          quick "cuts the geometric network" adversary_cuts_geometric_network;
          quick "random network shrugs" adversary_random_network_shrugs;
          quick "blockade needs direct links" adversary_blockade_requires_direct_link;
          quick "hub-attack mask" adversary_hub_attack_mask;
          quick "hub attack blunt on egalitarian nets" adversary_hub_attack_is_blunt_on_ideal;
        ] );
    ]
