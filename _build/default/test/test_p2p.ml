module Engine = Ftr_sim.Engine
module Overlay = Ftr_p2p.Overlay
module Churn = Ftr_p2p.Churn
module Rng = Ftr_prng.Rng

let make ?(line_size = 256) ?(links = 6) ?(seed = 5) () =
  let engine = Engine.create () in
  let overlay = Overlay.create ~line_size ~links ~rng:(Rng.of_int seed) engine in
  (engine, overlay)

let populate_evenly overlay ~line_size ~count =
  Overlay.populate overlay ~positions:(List.init count (fun i -> i * line_size / count))

(* ------------------------------------------------------------------ *)
(* Static overlay                                                      *)
(* ------------------------------------------------------------------ *)

let populate_counts () =
  let _, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:32;
  Alcotest.(check int) "node count" 32 (Overlay.node_count overlay);
  Alcotest.(check int) "positions listed" 32 (List.length (Overlay.live_positions overlay));
  Alcotest.(check bool) "alive" true (Overlay.is_alive overlay 0);
  Alcotest.(check bool) "vacant" false (Overlay.is_alive overlay 1)

let lookup_resolves_to_basin_owner () =
  let engine, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:32;
  (* Nodes at multiples of 8; target 13 is owned by 16 (|16-13| < |8-13|)
     unless greedy stops earlier — ownership means no live node closer. *)
  let result = ref None in
  Overlay.lookup overlay ~from:0 ~target:13
    ~callback:(fun ~owner ~hops:_ -> result := Some owner)
    ();
  Engine.run engine;
  (match !result with
  | Some owner -> Alcotest.(check bool) "owner adjacent to target" true (abs (owner - 13) <= 5)
  | None -> Alcotest.fail "lookup did not resolve");
  let s = Overlay.stats overlay in
  Alcotest.(check int) "one success" 1 s.Overlay.lookups_ok;
  Alcotest.(check int) "no failures" 0 s.Overlay.lookups_failed

let lookup_for_own_position () =
  let engine, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:32;
  let result = ref None in
  Overlay.lookup overlay ~from:8 ~target:8 ~callback:(fun ~owner ~hops -> result := Some (owner, hops)) ();
  Engine.run engine;
  Alcotest.(check (option (pair int int))) "resolves locally" (Some (8, 0)) !result

let lookups_all_succeed_statically () =
  let engine, overlay = make ~line_size:1024 ~links:8 () in
  populate_evenly overlay ~line_size:1024 ~count:128;
  let r = Rng.of_int 77 in
  for _ = 1 to 100 do
    let positions = Array.of_list (Overlay.live_positions overlay) in
    let from = positions.(Rng.int r (Array.length positions)) in
    Overlay.lookup overlay ~from ~target:(Rng.int r 1024) ()
  done;
  Engine.run engine;
  let s = Overlay.stats overlay in
  Alcotest.(check int) "all resolved" 100 s.Overlay.lookups_ok;
  Alcotest.(check int) "none failed" 0 s.Overlay.lookups_failed

let lookup_ttl_limits () =
  (* A tiny TTL makes distant lookups fail instead of looping. *)
  let engine = Engine.create () in
  let overlay = Overlay.create ~ttl:2 ~line_size:1024 ~links:1 ~rng:(Rng.of_int 60) engine in
  populate_evenly overlay ~line_size:1024 ~count:128;
  for _ = 1 to 40 do
    Overlay.lookup overlay ~from:0 ~target:1000 ()
  done;
  Engine.run engine;
  let s = Overlay.stats overlay in
  Alcotest.(check int) "all resolved one way" 40 (s.Overlay.lookups_ok + s.Overlay.lookups_failed);
  Alcotest.(check bool)
    (Printf.sprintf "ttl killed most (%d failed)" s.Overlay.lookups_failed)
    true
    (s.Overlay.lookups_failed > 30)

let lookup_rejects_dead_source () =
  let _, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:8;
  Alcotest.check_raises "dead source"
    (Invalid_argument "Overlay.lookup: source is not a live node") (fun () ->
      Overlay.lookup overlay ~from:3 ~target:10 ())

(* ------------------------------------------------------------------ *)
(* Join                                                                *)
(* ------------------------------------------------------------------ *)

let join_inserts_into_ring () =
  let engine, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:16;
  Overlay.join overlay ~pos:100 ~via:0;
  Engine.run engine;
  Alcotest.(check bool) "joined" true (Overlay.is_alive overlay 100);
  Alcotest.(check int) "population grew" 17 (Overlay.node_count overlay)

let joined_node_is_lookup_target () =
  let engine, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:16;
  Overlay.join overlay ~pos:101 ~via:0;
  Engine.run engine;
  (* A lookup for the new node's position must now resolve to it. *)
  let result = ref None in
  Overlay.lookup overlay ~from:0 ~target:101 ~callback:(fun ~owner ~hops:_ -> result := Some owner) ();
  Engine.run engine;
  Alcotest.(check (option int)) "new node owns its point" (Some 101) !result

let joined_node_can_look_up () =
  let engine, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:16;
  Overlay.join overlay ~pos:77 ~via:0;
  Engine.run engine;
  let result = ref None in
  Overlay.lookup overlay ~from:77 ~target:240 ~callback:(fun ~owner ~hops:_ -> result := Some owner) ();
  Engine.run engine;
  Alcotest.(check bool) "resolved" true (Option.is_some !result)

let join_occupied_rejected () =
  let _, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:16;
  Alcotest.check_raises "occupied" (Invalid_argument "Overlay.join: position occupied")
    (fun () -> Overlay.join overlay ~pos:0 ~via:16)

let many_joins_build_network () =
  let engine, overlay = make ~line_size:512 ~links:4 ~seed:8 () in
  ignore (Overlay.bootstrap_node overlay ~pos:0);
  ignore (Overlay.bootstrap_node overlay ~pos:256);
  (* Wire the two seeds by hand via populate-like ring: joining does it. *)
  let r = Rng.of_int 9 in
  let joined = ref 2 in
  for _ = 1 to 60 do
    let pos = Rng.int r 512 in
    if not (Overlay.is_alive overlay pos) then begin
      Overlay.join overlay ~pos ~via:0;
      incr joined;
      Engine.run engine
    end
  done;
  Alcotest.(check int) "all joins survived" !joined (Overlay.node_count overlay);
  (* The grown network routes. *)
  let ok = ref 0 in
  let positions = Array.of_list (Overlay.live_positions overlay) in
  for _ = 1 to 50 do
    let from = positions.(Rng.int r (Array.length positions)) in
    Overlay.lookup overlay ~from ~target:(Rng.int r 512)
      ~callback:(fun ~owner:_ ~hops:_ -> incr ok)
      ()
  done;
  Engine.run engine;
  Alcotest.(check int) "all post-join lookups succeed" 50 !ok

(* ------------------------------------------------------------------ *)
(* Failures and self-healing                                           *)
(* ------------------------------------------------------------------ *)

let crash_then_lookup_self_heals () =
  let engine, overlay = make ~line_size:1024 ~links:8 () in
  populate_evenly overlay ~line_size:1024 ~count:128;
  (* Crash a band of nodes. *)
  let r = Rng.of_int 13 in
  let victims = ref 0 in
  List.iter
    (fun pos ->
      if Rng.bernoulli r 0.25 && Overlay.node_count overlay > 8 then begin
        Overlay.crash overlay ~pos;
        incr victims
      end)
    (Overlay.live_positions overlay);
  Alcotest.(check bool) "some victims" true (!victims > 0);
  (* Lookups still resolve (possibly after repairs). *)
  let positions = Array.of_list (Overlay.live_positions overlay) in
  for _ = 1 to 80 do
    let from = positions.(Rng.int r (Array.length positions)) in
    Overlay.lookup overlay ~from ~target:(Rng.int r 1024) ()
  done;
  Engine.run engine;
  let s = Overlay.stats overlay in
  Alcotest.(check int) "all resolved" 80 (s.Overlay.lookups_ok + s.Overlay.lookups_failed);
  Alcotest.(check bool)
    (Printf.sprintf "most lookups survive (%d ok)" s.Overlay.lookups_ok)
    true
    (s.Overlay.lookups_ok >= 72);
  Alcotest.(check bool) "repairs happened" true (s.Overlay.repairs > 0)

let leave_splices_ring () =
  let engine, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:16;
  Overlay.leave overlay ~pos:16;
  Alcotest.(check bool) "gone" false (Overlay.is_alive overlay 16);
  (* Routing across the gap still works without probes. *)
  Overlay.lookup overlay ~from:0 ~target:32 ();
  Engine.run engine;
  let s = Overlay.stats overlay in
  Alcotest.(check int) "resolved" 1 s.Overlay.lookups_ok

let crash_is_idempotent () =
  let _, overlay = make () in
  populate_evenly overlay ~line_size:256 ~count:8;
  Overlay.crash overlay ~pos:0;
  Overlay.crash overlay ~pos:0;
  let s = Overlay.stats overlay in
  Alcotest.(check int) "one crash" 1 s.Overlay.crashes

(* ------------------------------------------------------------------ *)
(* Asynchrony                                                          *)
(* ------------------------------------------------------------------ *)

let jittered_latency_still_resolves () =
  (* The protocol's conclusions must not depend on synchrony: under
     heavy-tailed per-message delays, lookups still all resolve. *)
  let engine = Engine.create () in
  let overlay =
    Overlay.create
      ~latency_model:(Ftr_sim.Latency.exponential ~mean:1.0)
      ~line_size:1024 ~links:8 ~rng:(Rng.of_int 90) engine
  in
  populate_evenly overlay ~line_size:1024 ~count:128;
  let r = Rng.of_int 91 in
  for _ = 1 to 100 do
    let positions = Array.of_list (Overlay.live_positions overlay) in
    let from = positions.(Rng.int r (Array.length positions)) in
    Overlay.lookup overlay ~from ~target:(Rng.int r 1024) ()
  done;
  Engine.run engine;
  let s = Overlay.stats overlay in
  Alcotest.(check int) "all resolved under jitter" 100 s.Overlay.lookups_ok;
  Alcotest.(check bool) "virtual time advanced irregularly" true (Engine.now engine > 0.0)

let jittered_join_works () =
  let engine = Engine.create () in
  let overlay =
    Overlay.create
      ~latency_model:(Ftr_sim.Latency.uniform ~lo:0.5 ~hi:2.0)
      ~line_size:512 ~links:6 ~rng:(Rng.of_int 92) engine
  in
  populate_evenly overlay ~line_size:512 ~count:32;
  Overlay.join overlay ~pos:101 ~via:0;
  Engine.run engine;
  Alcotest.(check bool) "joined under jitter" true (Overlay.is_alive overlay 101);
  let found = ref None in
  Overlay.lookup overlay ~from:0 ~target:101 ~callback:(fun ~owner ~hops:_ -> found := Some owner) ();
  Engine.run engine;
  Alcotest.(check (option int)) "lookup finds it" (Some 101) !found

(* ------------------------------------------------------------------ *)
(* Stabilization                                                       *)
(* ------------------------------------------------------------------ *)

let stabilization_heals_idle_overlay () =
  let engine, overlay = make ~line_size:1024 ~links:8 ~seed:50 () in
  populate_evenly overlay ~line_size:1024 ~count:128;
  (* Crash a quarter of the nodes with NO lookup traffic at all. *)
  let r = Rng.of_int 51 in
  List.iter
    (fun pos ->
      if Rng.bernoulli r 0.25 && Overlay.node_count overlay > 16 then
        Overlay.crash overlay ~pos)
    (Overlay.live_positions overlay);
  (* Background stabilization runs alone for a while. *)
  Overlay.enable_stabilization ~period:5.0 ~checks_per_tick:32 ~until:2000.0 overlay;
  Engine.run ~until:2000.0 engine;
  let s = Overlay.stats overlay in
  Alcotest.(check bool)
    (Printf.sprintf "repairs happened (%d)" s.Overlay.repairs)
    true (s.Overlay.repairs > 0);
  Alcotest.(check bool) "probes paid" true (s.Overlay.probes > 0);
  (* The healed overlay routes cleanly. *)
  let positions = Array.of_list (Overlay.live_positions overlay) in
  for _ = 1 to 60 do
    let from = positions.(Rng.int r (Array.length positions)) in
    Overlay.lookup overlay ~from ~target:(Rng.int r 1024) ()
  done;
  Engine.run engine;
  Alcotest.(check int) "all lookups succeed after healing" 60 s.Overlay.lookups_ok

let stabilization_stops_at_horizon () =
  let engine, overlay = make ~seed:52 () in
  populate_evenly overlay ~line_size:256 ~count:16;
  Overlay.enable_stabilization ~period:1.0 ~until:50.0 overlay;
  Engine.run engine;
  (* The engine drains: no perpetual timer survives the horizon. *)
  Alcotest.(check int) "queue empty" 0 (Engine.pending_events engine);
  Alcotest.(check bool) "clock stopped near horizon" true (Engine.now engine <= 51.0)

let stabilization_rejects_bad_config () =
  let _, overlay = make ~seed:53 () in
  Alcotest.check_raises "bad period"
    (Invalid_argument "Overlay.enable_stabilization: period must be positive") (fun () ->
      Overlay.enable_stabilization ~period:0.0 ~until:10.0 overlay)

(* ------------------------------------------------------------------ *)
(* Join cost                                                           *)
(* ------------------------------------------------------------------ *)

let join_cost_grows_slowly () =
  let rows = Churn.join_cost ~links:6 ~joins:30 ~line_sizes:[ 512; 4096 ] () in
  match rows with
  | [ small; large ] ->
      Alcotest.(check bool) "positive cost" true (small.Churn.mean_messages_per_join > 0.0);
      (* 8x the network must cost far less than 8x the messages —
         logarithmic growth means roughly +30-60%. *)
      Alcotest.(check bool)
        (Printf.sprintf "messages/join: %.1f -> %.1f" small.Churn.mean_messages_per_join
           large.Churn.mean_messages_per_join)
        true
        (large.Churn.mean_messages_per_join < 3.0 *. small.Churn.mean_messages_per_join);
      (* Lookups per join are ~1 + links + Poisson(links), independent of n. *)
      Alcotest.(check bool) "lookups/join flat" true
        (abs_float (large.Churn.mean_lookups_per_join -. small.Churn.mean_lookups_per_join)
        < 4.0)
  | _ -> Alcotest.fail "expected two rows"

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

module Recovery = Ftr_p2p.Recovery

let recovery_run () =
  Recovery.run ~line_size:2048 ~kill_fraction:0.3 ~period:10.0 ~checks_per_tick:16 ~samples:8
    ~probes_per_sample:80 ~seed:70 ()

let recovery_burden_decays () =
  let r = recovery_run () in
  match (r.Recovery.samples, List.rev r.Recovery.samples) with
  | first :: _, last :: _ ->
      Alcotest.(check bool)
        (Printf.sprintf "probes/lookup %.2f -> %.2f" first.Recovery.probes_per_lookup
           last.Recovery.probes_per_lookup)
        true
        (last.Recovery.probes_per_lookup < first.Recovery.probes_per_lookup /. 2.0);
      Alcotest.(check bool) "repairs accumulate" true
        (last.Recovery.repairs_so_far > first.Recovery.repairs_so_far)
  | _ -> Alcotest.fail "no samples recorded"

let recovery_success_holds () =
  let r = recovery_run () in
  Alcotest.(check int) "all samples recorded" 8 (List.length r.Recovery.samples);
  Alcotest.(check bool) "a real wound" true (r.Recovery.killed > 30);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "t=%.0f success %.3f" s.Recovery.time s.Recovery.success_rate)
        true
        (s.Recovery.success_rate > 0.95))
    r.Recovery.samples

let churn_sweep_healthy () =
  let rows =
    Recovery.churn_sweep ~line_size:1024 ~duration:300.0 ~rates:[ 0.05; 0.5 ] ~seed:71 ()
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "healthy lookups" true
        (row.Recovery.report.Churn.success_rate > 0.95))
    rows;
  match rows with
  | [ calm; stormy ] ->
      Alcotest.(check bool) "more churn, more repairs" true
        (stormy.Recovery.report.Churn.repairs >= calm.Recovery.report.Churn.repairs)
  | _ -> Alcotest.fail "expected two rows"

let recovery_rejects () =
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Recovery.run: kill_fraction must be in [0,1)") (fun () ->
      ignore (Recovery.run ~kill_fraction:1.0 ()))

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)
(* ------------------------------------------------------------------ *)

let churn_run_reports () =
  let report =
    Churn.run
      ~config:
        {
          Churn.duration = 300.0;
          join_rate = 0.05;
          crash_rate = 0.02;
          leave_rate = 0.02;
          lookup_rate = 0.5;
          min_nodes = 8;
        }
      ~seed:21 ~line_size:512 ~initial_nodes:64 ~links:6 ()
  in
  Alcotest.(check bool) "lookups issued" true (report.Churn.lookups_issued > 50);
  Alcotest.(check bool)
    (Printf.sprintf "high success rate %.3f" report.Churn.success_rate)
    true
    (report.Churn.success_rate > 0.9);
  Alcotest.(check bool) "population survived" true (report.Churn.final_nodes >= 8);
  Alcotest.(check bool) "messages flowed" true (report.Churn.messages > 0)

let churn_deterministic_by_seed () =
  let run () =
    Churn.run
      ~config:
        {
          Churn.duration = 100.0;
          join_rate = 0.1;
          crash_rate = 0.05;
          leave_rate = 0.0;
          lookup_rate = 1.0;
          min_nodes = 4;
        }
      ~seed:33 ~line_size:256 ~initial_nodes:32 ~links:4 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same lookups" a.Churn.lookups_issued b.Churn.lookups_issued;
  Alcotest.(check int) "same successes" a.Churn.lookups_ok b.Churn.lookups_ok;
  Alcotest.(check int) "same messages" a.Churn.messages b.Churn.messages;
  Alcotest.(check int) "same population" a.Churn.final_nodes b.Churn.final_nodes

let churn_respects_min_nodes () =
  let report =
    Churn.run
      ~config:
        {
          Churn.duration = 500.0;
          join_rate = 0.0;
          crash_rate = 0.5;
          leave_rate = 0.5;
          lookup_rate = 0.1;
          min_nodes = 10;
        }
      ~seed:44 ~line_size:256 ~initial_nodes:32 ~links:4 ()
  in
  Alcotest.(check bool) "floor held" true (report.Churn.final_nodes >= 10)

let churn_rejects_bad_setup () =
  Alcotest.check_raises "too few nodes"
    (Invalid_argument "Churn.run: need at least two initial nodes") (fun () ->
      ignore (Churn.run ~line_size:64 ~initial_nodes:1 ~links:2 ()))

(* ------------------------------------------------------------------ *)
(* Random operation sequences (state-machine property)                 *)
(* ------------------------------------------------------------------ *)

type op = Join | Crash | Leave | Lookup

let op_gen =
  QCheck.Gen.frequency
    [ (2, QCheck.Gen.return Join); (1, QCheck.Gen.return Crash); (1, QCheck.Gen.return Leave);
      (4, QCheck.Gen.return Lookup) ]

let prop_random_operations_preserve_invariants =
  QCheck.Test.make ~name:"random op sequences keep the protocol consistent" ~count:25
    QCheck.(make (Gen.pair Gen.small_int (Gen.list_size (Gen.int_range 5 60) op_gen)))
    (fun (seed, ops) ->
      let line_size = 512 in
      let engine = Engine.create () in
      let overlay = Overlay.create ~line_size ~links:4 ~rng:(Rng.of_int seed) engine in
      Overlay.populate overlay ~positions:(List.init 32 (fun i -> i * 16));
      let r = Rng.of_int (seed + 1) in
      let expected = ref 32 in
      let protocol_joins = ref 0 in
      List.iter
        (fun op ->
          (match op with
          | Join ->
              let pos = Rng.int r line_size in
              let vias = Array.of_list (Overlay.live_positions overlay) in
              if (not (Overlay.is_alive overlay pos)) && Array.length vias > 0 then begin
                Overlay.join overlay ~pos ~via:(Rng.pick r vias);
                incr expected;
                incr protocol_joins
              end
          | Crash ->
              if Overlay.node_count overlay > 4 then begin
                let victims = Array.of_list (Overlay.live_positions overlay) in
                Overlay.crash overlay ~pos:(Rng.pick r victims);
                decr expected
              end
          | Leave ->
              if Overlay.node_count overlay > 4 then begin
                let victims = Array.of_list (Overlay.live_positions overlay) in
                Overlay.leave overlay ~pos:(Rng.pick r victims);
                decr expected
              end
          | Lookup ->
              let sources = Array.of_list (Overlay.live_positions overlay) in
              if Array.length sources > 0 then
                Overlay.lookup overlay ~from:(Rng.pick r sources) ~target:(Rng.int r line_size)
                  ());
          (* Let each operation's traffic settle before the next, as a
             sequential client would. *)
          Engine.run engine)
        ops;
      Engine.run engine;
      let s = Overlay.stats overlay in
      (* Invariants: population accounting exact; every user lookup
         resolved one way or the other; no queued events left. *)
      Overlay.node_count overlay = !expected
      && s.Overlay.lookups_ok + s.Overlay.lookups_failed = s.Overlay.lookups_issued
      (* Each protocol join issues at least its placement lookup (the 32
         populate bootstraps issue none). *)
      && s.Overlay.maintenance_issued >= !protocol_joins
      && Engine.pending_events engine = 0)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "p2p"
    [
      ( "static",
        [
          quick "populate" populate_counts;
          quick "lookup resolves to basin owner" lookup_resolves_to_basin_owner;
          quick "lookup for own position" lookup_for_own_position;
          quick "all lookups succeed" lookups_all_succeed_statically;
          quick "ttl limits lookups" lookup_ttl_limits;
          quick "rejects dead source" lookup_rejects_dead_source;
        ] );
      ( "join",
        [
          quick "inserts into ring" join_inserts_into_ring;
          quick "joined node is a lookup target" joined_node_is_lookup_target;
          quick "joined node can look up" joined_node_can_look_up;
          quick "occupied position rejected" join_occupied_rejected;
          quick "many joins build a routable network" many_joins_build_network;
        ] );
      ( "failures",
        [
          quick "crash then self-heal" crash_then_lookup_self_heals;
          quick "graceful leave splices ring" leave_splices_ring;
          quick "crash idempotent" crash_is_idempotent;
        ] );
      ( "asynchrony",
        [
          quick "lookups resolve under heavy-tailed delays" jittered_latency_still_resolves;
          quick "joins work under jitter" jittered_join_works;
        ] );
      ( "stabilization",
        [
          quick "heals an idle overlay" stabilization_heals_idle_overlay;
          quick "stops at the horizon" stabilization_stops_at_horizon;
          quick "rejects bad config" stabilization_rejects_bad_config;
        ] );
      ("join-cost", [ quick "grows logarithmically" join_cost_grows_slowly ]);
      ( "recovery",
        [
          quick "repair burden decays" recovery_burden_decays;
          quick "success holds throughout" recovery_success_holds;
          quick "churn sweep keeps lookups healthy" churn_sweep_healthy;
          quick "rejects bad parameters" recovery_rejects;
        ] );
      ( "churn",
        [
          quick "run reports sanely" churn_run_reports;
          quick "deterministic by seed" churn_deterministic_by_seed;
          quick "respects population floor" churn_respects_min_nodes;
          quick "rejects bad setup" churn_rejects_bad_setup;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_operations_preserve_invariants ] );
    ]
