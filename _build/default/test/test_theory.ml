module Theory = Ftr_core.Theory
module Harmonic = Ftr_stats.Harmonic

let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Logarithms                                                          *)
(* ------------------------------------------------------------------ *)

let lg_values () =
  check_close 1e-9 "lg 1024" 10.0 (Theory.lg 1024);
  check_close 1e-9 "lg 1" 0.0 (Theory.lg 1);
  check_close 1e-9 "log_4 256" 4.0 (Theory.log_base ~base:4 256)

let lg_rejects () =
  Alcotest.check_raises "lg 0" (Invalid_argument "Theory.lg: n must be positive") (fun () ->
      ignore (Theory.lg 0))

(* ------------------------------------------------------------------ *)
(* Upper-bound formulas                                                *)
(* ------------------------------------------------------------------ *)

let single_link_formula () =
  let n = 1000 in
  check_close 1e-9 "2 H_n^2" (2.0 *. ((Harmonic.number n) ** 2.0)) (Theory.upper_single_link n)

let multi_link_formula () =
  let n = 4096 in
  check_close 1e-9 "(1+lg n) 8 H_n / l"
    ((1.0 +. 12.0) *. 8.0 *. Harmonic.number n /. 4.0)
    (Theory.upper_multi_link ~links:4 n)

let multi_link_decreases_in_links () =
  let n = 65536 in
  let prev = ref infinity in
  List.iter
    (fun l ->
      let b = Theory.upper_multi_link ~links:l n in
      Alcotest.(check bool) "decreasing in links" true (b < !prev);
      prev := b)
    [ 1; 2; 4; 8; 16 ]

let deterministic_formula () =
  check_close 1e-9 "log_2 1024" 10.0 (Theory.upper_deterministic ~base:2 1024);
  check_close 1e-9 "ceil log_2 1025" 11.0 (Theory.upper_deterministic ~base:2 1025);
  check_close 1e-9 "log_16 65536" 4.0 (Theory.upper_deterministic ~base:16 65536)

let link_failure_scales_inverse_p () =
  let n = 4096 and links = 4 in
  let b1 = Theory.upper_link_failure ~links ~present_p:1.0 n in
  let b05 = Theory.upper_link_failure ~links ~present_p:0.5 n in
  check_close 1e-9 "half p doubles bound" (2.0 *. b1) b05;
  check_close 1e-9 "p=1 is failure-free bound" (Theory.upper_multi_link ~links n) b1

let geometric_failure_formula () =
  let n = 1024 and base = 2 in
  let p = 0.5 in
  let expected = 1.0 +. (2.0 *. (2.0 -. 0.5) *. Harmonic.number (n - 1) /. 0.5) in
  check_close 1e-9 "Thm 16" expected (Theory.upper_geometric_link_failure ~base ~present_p:p n)

let node_failure_scales () =
  let n = 4096 and links = 8 in
  let b0 = Theory.upper_node_failure ~links ~death_p:0.0 n in
  let b05 = Theory.upper_node_failure ~links ~death_p:0.5 n in
  check_close 1e-9 "death 0.5 doubles" (2.0 *. b0) b05

let formula_rejects () =
  Alcotest.check_raises "bad p"
    (Invalid_argument "Theory.upper_link_failure: present_p must be in (0,1]") (fun () ->
      ignore (Theory.upper_link_failure ~links:2 ~present_p:0.0 64));
  Alcotest.check_raises "bad death p"
    (Invalid_argument "Theory.upper_node_failure: death_p must be in [0,1)") (fun () ->
      ignore (Theory.upper_node_failure ~links:2 ~death_p:1.0 64))

(* ------------------------------------------------------------------ *)
(* Lower-bound formulas                                                *)
(* ------------------------------------------------------------------ *)

let lower_bounds_ordering () =
  let n = 65536 in
  (* Two-sided bound is weaker (smaller) than one-sided for l > 1. *)
  Alcotest.(check bool) "two-sided <= one-sided" true
    (Theory.lower_two_sided ~links:4 n <= Theory.lower_one_sided ~links:4 n);
  check_close 1e-9 "equal at l=1" (Theory.lower_one_sided ~links:1 n)
    (Theory.lower_two_sided ~links:1 n)

let lower_large_links_formula () =
  check_close 1e-9 "log n / log l" (log 65536.0 /. log 16.0)
    (Theory.lower_large_links ~links:16 65536)

let lower_bounds_grow_with_n () =
  let prev = ref 0.0 in
  List.iter
    (fun n ->
      let b = Theory.lower_one_sided ~links:4 n in
      Alcotest.(check bool) "growing" true (b > !prev);
      prev := b)
    [ 256; 4096; 65536; 1048576 ]

(* ------------------------------------------------------------------ *)
(* Lemma 1 / Theorem 12 numerics                                       *)
(* ------------------------------------------------------------------ *)

let kuw_constant_drift () =
  (* Drift 1 everywhere: time to descend from x0 is exactly x0. *)
  check_close 1e-9 "unit drift" 100.0 (Theory.kuw_upper_bound ~mu:(fun _ -> 1.0) ~x0:100)

let kuw_linear_drift_is_harmonic () =
  (* mu(z) = z gives sum 1/z = H_n. *)
  check_close 1e-9 "harmonic" (Harmonic.number 50)
    (Theory.kuw_upper_bound ~mu:(fun z -> float_of_int z) ~x0:50)

let kuw_theorem12_gives_2hn_squared () =
  (* With mu_k = k / 2H_n the integral is exactly 2 H_n^2. *)
  let n = 1000 in
  let bound = Theory.kuw_upper_bound ~mu:(fun k -> Theory.theorem12_drift ~n k) ~x0:n in
  check_close 1e-6 "2 H_n^2" (Theory.upper_single_link n) bound

let kuw_rejects_nonpositive_drift () =
  Alcotest.check_raises "zero drift"
    (Invalid_argument "Theory.kuw_upper_bound: drift must be positive") (fun () ->
      ignore (Theory.kuw_upper_bound ~mu:(fun _ -> 0.0) ~x0:10))

(* ------------------------------------------------------------------ *)
(* Theorem 2                                                            *)
(* ------------------------------------------------------------------ *)

let theorem2_epsilon_zero_is_t () =
  check_close 1e-9 "no long jumps" 123.0 (Theory.theorem2_lower_bound ~t:123.0 ~epsilon:0.0)

let theorem2_monotone_in_epsilon () =
  let t = 100.0 in
  let prev = ref infinity in
  List.iter
    (fun eps ->
      let b = Theory.theorem2_lower_bound ~t ~epsilon:eps in
      Alcotest.(check bool) "decreasing in epsilon" true (b <= !prev);
      prev := b)
    [ 0.0; 0.001; 0.01; 0.1; 1.0 ]

let theorem2_epsilon_one_is_one () =
  check_close 1e-9 "certain long jumps" 1.0 (Theory.theorem2_lower_bound ~t:1e9 ~epsilon:1.0)

let theorem2_bounded_by_t () =
  List.iter
    (fun (t, eps) ->
      Alcotest.(check bool) "never exceeds T" true
        (Theory.theorem2_lower_bound ~t ~epsilon:eps <= t +. 1e-9))
    [ (10.0, 0.1); (1000.0, 0.01); (5.0, 0.9) ]

(* ------------------------------------------------------------------ *)
(* Theorem 10 integral                                                 *)
(* ------------------------------------------------------------------ *)

let theorem10_constant_speed () =
  (* Speed 2 over [0, ln n]: integral = ln n / 2. *)
  let ln_n = log 1024.0 in
  check_close 1e-6 "constant speed" (ln_n /. 2.0)
    (Theory.theorem10_integral ~m:(fun _ -> 2.0) ~ln_n ~steps:10_000)

let theorem10_converges () =
  let ln_n = log 4096.0 in
  let coarse = Theory.theorem10_integral ~m:(fun z -> 1.0 +. z) ~ln_n ~steps:100 in
  let fine = Theory.theorem10_integral ~m:(fun z -> 1.0 +. z) ~ln_n ~steps:100_000 in
  Alcotest.(check bool) "trapezoid converges" true (abs_float (coarse -. fine) < 1e-3);
  (* Analytic value: log(1 + ln n). *)
  check_close 1e-6 "analytic" (log (1.0 +. ln_n)) fine

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "theory"
    [
      ( "logs",
        [ quick "lg and log_base" lg_values; quick "rejects non-positive" lg_rejects ] );
      ( "upper-bounds",
        [
          quick "Theorem 12 formula" single_link_formula;
          quick "Theorem 13 formula" multi_link_formula;
          quick "Theorem 13 decreasing in links" multi_link_decreases_in_links;
          quick "Theorem 14 formula" deterministic_formula;
          quick "Theorem 15 scales as 1/p" link_failure_scales_inverse_p;
          quick "Theorem 16 formula" geometric_failure_formula;
          quick "Theorem 18 scales as 1/(1-p)" node_failure_scales;
          quick "rejects bad probabilities" formula_rejects;
        ] );
      ( "lower-bounds",
        [
          quick "one- vs two-sided ordering" lower_bounds_ordering;
          quick "Theorem 3 formula" lower_large_links_formula;
          quick "grow with n" lower_bounds_grow_with_n;
        ] );
      ( "lemma1",
        [
          quick "constant drift" kuw_constant_drift;
          quick "linear drift gives H_n" kuw_linear_drift_is_harmonic;
          quick "Theorem 12 drift gives 2H_n^2" kuw_theorem12_gives_2hn_squared;
          quick "rejects non-positive drift" kuw_rejects_nonpositive_drift;
        ] );
      ( "theorem2",
        [
          quick "epsilon 0 returns T" theorem2_epsilon_zero_is_t;
          quick "monotone in epsilon" theorem2_monotone_in_epsilon;
          quick "epsilon 1 returns 1" theorem2_epsilon_one_is_one;
          quick "bounded by T" theorem2_bounded_by_t;
        ] );
      ( "theorem10",
        [
          quick "constant speed" theorem10_constant_speed;
          quick "trapezoid converges to analytic value" theorem10_converges;
        ] );
    ]
