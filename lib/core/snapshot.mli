(** Versioned binary network snapshots, mmap-able straight into the
    working representation.

    A snapshot is a 64-byte header followed by three int32 payload
    vectors — positions, CSR offsets, CSR targets — in native byte order.
    Because {!Network} stores exactly these vectors ({!Ftr_graph.Adjacency.I32}
    Bigarrays), {!load} with [mmap:true] (the default) maps the file
    read-only (private/copy-on-write) and serves routes out of the page
    cache without materializing anything: a multi-million-node network
    "loads" in the time of three [Array1.sub] views. [mmap:false] copies
    the payload into fresh Bigarrays instead, detaching the network from
    the file.

    Format v1 (all integers little-endian on this host — the header's
    endian tag rejects foreign-endian files):

    {v
    offset  size  field
    0       8     magic "FTRSNAP1"
    8       4     endian tag 0x0A0B0C0D, written native
    12      4     format version (1)
    16      4     geometry (0 = line, 1 = circle)
    20      8     line_size
    28      8     n (node count)
    36      8     edge count
    44      4     links (nominal long links per node)
    48      16    reserved (zero)
    64      4n    positions
    64+4n   4(n+1) CSR offsets
    ...     4E    CSR targets
    v}

    Corrupt input — truncated files, bad magic, wrong version, foreign
    endianness, or payload that fails structural validation — raises
    {!Corrupt} with a message naming the defect; it never crashes or
    yields silent garbage. *)

exception Corrupt of string
(** A snapshot file that cannot be trusted: the message names the defect
    (truncation, bad magic, version/endianness mismatch, invalid
    structure). *)

val format_version : int
(** The version this build writes and accepts (1). *)

val save : Network.t -> path:string -> unit
(** Write the network to [path] (created or truncated). The payload is
    blitted from the in-memory vectors through a shared mapping — no
    per-element serialization. *)

val load : ?mmap:bool -> ?validate:bool -> path:string -> unit -> Network.t
(** Read a snapshot. [mmap] (default true) backs the network by a private
    read-only mapping of the file; [false] copies into fresh memory.
    [validate] (default true) runs the full structural check on the
    payload ({!Ftr_graph.Adjacency.Csr.validate} with sorted rows plus
    position monotonicity); header sanity and size checks run always.
    @raise Corrupt on any malformed input. *)

type info = {
  version : int;
  geometry : Network.geometry;
  line_size : int;
  nodes : int;
  edges : int;
  links : int;
  file_bytes : int;
}

val info : path:string -> info
(** Decode just the header (with the same integrity checks, including the
    declared-size-vs-file-size consistency check).
    @raise Corrupt on malformed input. *)
