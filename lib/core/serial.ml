(* A plain-text snapshot format for networks, so a constructed overlay can
   be archived, diffed, or shipped to another process and every experiment
   re-run against the byte-identical graph.

   Format (line-oriented, whitespace-separated):

     ftrnet 1
     geometry (line|circle)
     line_size <int>
     links <int>
     nodes <int>
     <position> <k> <neighbor_0> ... <neighbor_{k-1}>     (one line per node)
*)

let magic = "ftrnet"

let version = 1

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let emit ~(out : string -> unit) net =
  out (Printf.sprintf "%s %d\n" magic version);
  out
    (Printf.sprintf "geometry %s\n"
       (match Network.geometry net with Network.Line -> "line" | Network.Circle -> "circle"));
  out (Printf.sprintf "line_size %d\n" (Network.line_size net));
  out (Printf.sprintf "links %d\n" (Network.links net));
  let n = Network.size net in
  out (Printf.sprintf "nodes %d\n" n);
  let line = Buffer.create 128 in
  for i = 0 to n - 1 do
    Buffer.clear line;
    Buffer.add_string line (string_of_int (Network.position net i));
    Buffer.add_char line ' ';
    Buffer.add_string line (string_of_int (Network.degree net i));
    Network.iter_neighbors net i (fun v ->
        Buffer.add_char line ' ';
        Buffer.add_string line (string_of_int v));
    Buffer.add_char line '\n';
    out (Buffer.contents line)
  done

let write_network oc net = emit ~out:(output_string oc) net

let to_string net =
  let buffer = Buffer.create 4096 in
  emit ~out:(Buffer.add_string buffer) net;
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* The parser consumes any [next : unit -> string option] line source, so
   channels and in-memory strings share one implementation. *)
let parse ~next =
  let read_line_exn ~what =
    match next () with
    | Some l -> l
    | None -> fail "unexpected end of input while reading %s" what
  in
  let words s = String.split_on_char ' ' s |> List.filter (fun w -> not (String.equal w "")) in
  let int_word ~what w =
    match int_of_string_opt w with Some v -> v | None -> fail "bad integer %S in %s" w what
  in
  let keyed_int ~key =
    match words (read_line_exn ~what:key) with
    | [ k; v ] when k = key -> int_word ~what:key v
    | _ -> fail "expected '%s <int>'" key
  in
  (match words (read_line_exn ~what:"header") with
  | [ m; v ] when m = magic ->
      if int_word ~what:"version" v <> version then fail "unsupported version %s" v
  | _ -> fail "not a %s file" magic);
  let geometry =
    match words (read_line_exn ~what:"geometry") with
    | [ "geometry"; "line" ] -> Network.Line
    | [ "geometry"; "circle" ] -> Network.Circle
    | _ -> fail "expected 'geometry line|circle'"
  in
  let line_size = keyed_int ~key:"line_size" in
  let links = keyed_int ~key:"links" in
  let nodes = keyed_int ~key:"nodes" in
  if nodes < 0 then fail "negative node count";
  let positions = Array.make (max nodes 1) 0 in
  let neighbors = Array.make (max nodes 1) [||] in
  for i = 0 to nodes - 1 do
    let what = Printf.sprintf "node %d" i in
    match words (read_line_exn ~what) with
    | pos :: degree :: rest ->
        positions.(i) <- int_word ~what pos;
        let degree = int_word ~what degree in
        if List.length rest <> degree then
          fail "node %d: declared %d neighbours, found %d" i degree (List.length rest);
        neighbors.(i) <- Array.of_list (List.map (int_word ~what) rest)
    | _ -> fail "node %d: malformed line" i
  done;
  try
    Network.of_neighbor_indices ~geometry ~line_size
      ~positions:(Array.sub positions 0 nodes)
      ~neighbors:(Array.sub neighbors 0 nodes)
      ~links ()
  with Invalid_argument m -> fail "invalid network: %s" m

let read_network ic = parse ~next:(fun () -> In_channel.input_line ic)

let of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let next () =
    match !lines with
    | [] -> None
    | l :: rest ->
        lines := rest;
        Some l
  in
  parse ~next

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let save_file net path = Out_channel.with_open_text path (fun oc -> write_network oc net)

let load_file path = In_channel.with_open_text path read_network
