(** The paper's construction lifted to higher-dimensional spaces — the
    first future-work direction of Section 7 ("whether similar strategies
    would work for higher-dimensional spaces").

    Nodes fill a d-dimensional torus; every node keeps its 2d lattice
    neighbours plus [links] long-distance links drawn with probability
    proportional to [distance^-alpha] (default [alpha = dims], Kleinberg's
    optimal exponent, which coincides with the paper's exponent-1 law when
    [dims = 1]). Greedy routing and the failure strategies carry over
    unchanged. *)

type t

val build : ?alpha:float -> ?links:int -> dims:int -> side:int -> Ftr_prng.Rng.t -> t
(** A [side^dims] torus overlay. Defaults: [alpha = float dims], one long
    link. @raise Invalid_argument if [dims < 1], [side < 3] or
    [links < 0]. *)

val torus : t -> Ftr_metric.Torus.t
(** The underlying metric space. *)

val size : t -> int
(** Number of nodes. *)

val dims : t -> int
(** Dimensionality. *)

val links : t -> int
(** Long links per node. *)

val alpha : t -> float
(** Exponent of the link-length law. *)

val neighbors : t -> int -> int array
(** Fresh copy of the sorted neighbour row (the storage itself is flat
    CSR, as in {!Network}). *)

type outcome = Delivered of { hops : int } | Failed of { hops : int; stuck_at : int }

val delivered : outcome -> bool
(** Whether the message arrived. *)

val hops : outcome -> int
(** Hops consumed either way. *)

type strategy = Terminate | Backtrack of { history : int }

val route :
  ?alive:(int -> bool) ->
  ?strategy:strategy ->
  ?max_hops:int ->
  t ->
  src:int ->
  dst:int ->
  outcome
(** Greedy routing toward [dst] over live nodes, with the line model's
    stuck-message semantics (terminate, or backtrack through a bounded
    history with hole-circumvention).
    @raise Invalid_argument on off-torus or dead endpoints. *)

val route_hops : ?alive:(int -> bool) -> ?strategy:strategy -> ?max_hops:int -> t -> src:int -> dst:int -> int
(** As {!route} but raising on failure (for benchmarks). *)
