(** Static overlay networks on the line (Section 4.3).

    A network is a set of nodes at strictly increasing line positions; node
    [i] knows the nodes at indices [neighbors i]. Every builder links each
    node to its nearest present node on either side (the "immediate"
    neighbours the paper assumes never fail) plus long-distance links
    according to the chosen strategy:

    - {!build_ideal}: [links] independent draws from the inverse power-law
      length distribution with the given exponent (the paper's main model,
      exponent 1).
    - {!build_binomial}: Theorem 17's model — each line position hosts a
      node with probability [present_p], and nodes link only to existing
      nodes, with the length law conditioned on existence.
    - {!build_deterministic}: Theorem 14's digit-fixing strategy — links at
      distances [j·base^i] in both directions.
    - {!build_geometric}: Theorem 16's simplified strategy — links at
      distances [base^i] in both directions. *)

type geometry =
  | Line  (** the paper's primary space: a segment with boundaries *)
  | Circle  (** the identifier circle (Chord's space; Section 7's "or a circle") *)

type t

val geometry : t -> geometry
(** The metric space the network is embedded in. *)

val size : t -> int
(** Number of (present) nodes. *)

val line_size : t -> int
(** Number of grid points on the underlying line. *)

val links : t -> int
(** Nominal number of long-distance links per node. *)

val position : t -> int -> int
(** Line position of node index [i]. On full networks this is the
    identity. *)

val positions : t -> Ftr_graph.Adjacency.I32.t
(** The full strictly increasing position vector (no copy — do not
    mutate). [I32.get (positions t) i = position t i]; exposed, like
    {!csr}, so hot loops can compute distances without a call per
    candidate. *)

val neighbors : t -> int -> int array
(** Debug/test accessor: fresh copy of a node's sorted neighbour-index
    row. The row is sorted
    non-decreasing; the {b duplicate guarantee} is per builder: the random
    builders ({!build_ideal}, {!build_binomial}, {!build_ring}) keep one
    entry per sampled link, so a row may contain duplicates when several
    independent draws landed on the same node (the multiplicity is part of
    the sampled distribution and of the routing semantics); the structural
    builders ({!build_deterministic}, {!build_geometric},
    {!build_chordlike}) produce strictly increasing, duplicate-free rows.
    The Check battery enforces exactly this policy per builder. Since the
    move to flat CSR storage this function copies; hot paths should use
    {!degree}/{!neighbor}/{!iter_neighbors} or {!csr} instead. *)

val degree : t -> int -> int
(** Number of neighbour entries of a node (duplicates counted). *)

val neighbor : t -> int -> int -> int
(** [neighbor t i k] is the [k]-th entry of node [i]'s sorted row,
    [0 <= k < degree t i]. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Apply to every neighbour entry of a node in row order, without
    copying. *)

val csr : t -> Ftr_graph.Adjacency.Csr.t
(** The underlying flat CSR pair (no copy — do not mutate). Node [i]'s row
    is [targets.(offsets.(i)) .. targets.(offsets.(i+1)-1)], sorted. This
    is the representation the routing inner loop scans. *)

val is_full : t -> bool
(** Whether every line position hosts a node. *)

val distance : t -> int -> int -> int
(** Metric distance between two node indices: absolute difference on the
    line, shorter arc on the circle. *)

val point_distance : t -> int -> int -> int
(** Metric distance between two raw points of the space. *)

val clockwise_distance : t -> src:int -> dst:int -> int
(** Arc length from [src] to [dst] in the increasing direction — the
    one-sided metric on the circle.
    @raise Invalid_argument on line networks. *)

val routing_distance : t -> side:[ `One_sided | `Two_sided ] -> src:int -> dst:int -> int
(** The quantity greedy routing minimises: the metric distance, except for
    one-sided routing on the circle where it is the clockwise arc. *)

val one_sided_admissible : t -> cur:int -> v:int -> dst:int -> bool
(** Whether hopping from [cur] to [v] is allowed under one-sided routing:
    on the line, [v] must lie between [cur] and the target (never past it);
    on the circle the clockwise metric already encodes this and every hop
    is admissible. *)

val nearest_index : t -> position:int -> int
(** Node index whose position is closest to the given line position (ties
    to the left). *)

val index_of_position : t -> position:int -> int option
(** Node index exactly at the given position, if present. *)

val to_adjacency : t -> Ftr_graph.Adjacency.t
(** View as a directed graph over node indices. *)

val of_neighbor_indices :
  ?geometry:geometry ->
  line_size:int ->
  positions:int array ->
  neighbors:int array array ->
  links:int ->
  unit ->
  t
(** Escape hatch for custom constructions (used by the Section 5 heuristic
    and by tests). Validates ranges and ordering; default geometry is the
    line. @raise Invalid_argument on malformed input. *)

val of_flat :
  ?validate:bool ->
  geometry:geometry ->
  line_size:int ->
  positions:Ftr_graph.Adjacency.I32.t ->
  adj:Ftr_graph.Adjacency.Csr.t ->
  links:int ->
  unit ->
  t
(** Assemble a network from already-flat parts without copying — the
    snapshot loader's entry point. [validate] (default true) runs the full
    structural check (CSR invariants with sorted rows, positions strictly
    increasing and on the grid); pass [false] only for parts produced
    in-process by a trusted builder.
    @raise Invalid_argument on malformed input. *)

val build_ideal : ?exponent:float -> n:int -> links:int -> Ftr_prng.Rng.t -> t
(** Full network of [n] nodes: immediate neighbours plus [links] draws per
    node with Pr[length d] proportional to [1/d^exponent] (default 1, the
    paper's law). Streams rows straight into the CSR builder — O(n) time,
    O(links) transient state beyond the result itself.
    @raise Invalid_argument if [n < 2] or [links < 0]. *)

val build_ideal_materialized : ?exponent:float -> n:int -> links:int -> Ftr_prng.Rng.t -> t
(** Reference implementation of {!build_ideal} that materializes every
    jagged row before flattening. Consumes the RNG in exactly the same
    order, so given equal generator states the two produce byte-identical
    networks — the equivalence is qcheck-pinned in the test suite. Kept as
    the oracle for the streaming path; prefer {!build_ideal}. *)

val build_binomial :
  ?exponent:float -> n:int -> links:int -> present_p:float -> Ftr_prng.Rng.t -> t
(** Theorem 17: each of [n] grid points hosts a node with probability
    [present_p]; long links are drawn from the length law conditioned on
    the target existing (rejection sampling). At least two nodes are forced
    present so the result is routable.
    @raise Invalid_argument if [present_p] is outside (0,1]. *)

val build_deterministic : n:int -> base:int -> t
(** Theorem 14: links to [u ± j·base^i] for [j in 1..base-1] and
    [i in 0..⌈log_base n⌉-1]; delivery needs at most [⌈log_base n⌉] hops.
    @raise Invalid_argument if [base < 2]. *)

val build_geometric : n:int -> base:int -> t
(** Theorem 16's link model: links to [u ± base^i] only. *)

val build_ring : ?exponent:float -> n:int -> links:int -> Ftr_prng.Rng.t -> t
(** Full circle of [n] nodes: ring neighbours (wrapping) plus [links] draws
    per node with Pr[arc length d] proportional to [1/d^exponent] — the
    boundary-free variant of {!build_ideal}.
    @raise Invalid_argument if [n < 3] or [links < 0]. *)

val long_link_lengths : t -> int list
(** Lengths of all long-distance links (every link except the single
    nearest-neighbour link on each side). *)

val sample_long_target : Ftr_prng.Sample.power_law -> Ftr_prng.Rng.t -> n:int -> src:int -> int
(** One draw of a long-link target for a node at position [src] on a line
    of [n] points: Pr[target v] proportional to [1/d(src,v)^exponent]
    (the exponent is baked into the prefix table). Exposed for the
    Section 5 heuristic, which uses the same law to pick sinks. *)

val build_chordlike : ?base:int -> ?predecessor:bool -> n:int -> unit -> t
(** Chord inside this framework (Section 3): a circle with clockwise links
    at distances [j·base^i] plus the successor. One-sided greedy routing
    over it follows exactly Chord's finger-table routes — see the
    equivalence test in the suite. [predecessor] (default false) adds the
    counter-clockwise ring link Chord lacks, which makes two-sided routing
    total. @raise Invalid_argument if [n < 3] or [base < 2]. *)
