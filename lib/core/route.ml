(* ftr-lint: hot -- greedy routing inner loop, docs/MEMORY_LAYOUT.md budget applies *)

module Bitset = Ftr_graph.Bitset
module I32 = Ftr_graph.Adjacency.I32

type side = One_sided | Two_sided

type strategy =
  | Terminate
  | Random_reroute of { attempts : int }
  | Backtrack of { history : int }

type reason = No_live_neighbor | Hop_limit | No_live_reroute_target

type outcome =
  | Delivered of { hops : int }
  | Failed of { hops : int; stuck_at : int; reason : reason }

let hops = function Delivered { hops } -> hops | Failed { hops; _ } -> hops

let delivered = function Delivered _ -> true | Failed _ -> false

let reason_label = function
  | No_live_neighbor -> "no_live_neighbor"
  | Hop_limit -> "hop_limit"
  | No_live_reroute_target -> "no_live_reroute_target"

let strategy_label = function
  | Terminate -> "terminate"
  | Random_reroute _ -> "random_reroute"
  | Backtrack _ -> "backtrack"

(* Reusable per-route working state, sized to a network's CSR edge count.
   [stamps] has one slot per CSR edge; slot [offsets.(u) + k] equal to
   [epoch] means "link k of node u was tried during the current route" —
   the O(1) replacement for the old per-node exclusion lists (a Hashtbl of
   int lists scanned with List.mem, quadratic in backtrack depth).
   [bt_hist] is the bounded backtrack window as a ring buffer. Routing with
   a caller-held scratch performs zero minor allocations per hop in steady
   state; without one, a fresh scratch is allocated per call (still
   allocation-free per hop). *)
type scratch = {
  mutable stamps : int array;
  mutable epoch : int;
  mutable bt_hist : int array;
}

let scratch net =
  let c = Network.csr net in
  {
    stamps = Array.make (max 1 (Ftr_graph.Adjacency.Csr.edge_count c)) 0;
    epoch = 0;
    bt_hist = [||];
  }

(* Stand-in for strategies that never record tried links ({!Terminate},
   {!Random_reroute}) when the caller supplied no scratch: never read or
   written, so sharing one global is safe. *)
let dummy_scratch = { stamps = [||]; epoch = 0; bt_hist = [||] }

(* Fallback scratch for backtracking callers that pass none, cached per
   domain so repeated routing stays allocation-free without an API change.
   The cell is emptied while a route borrows it, so a nested [route] call
   from an [on_hop] callback allocates its own scratch instead of
   corrupting the outer route's stamps. *)
let dls_scratch : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* A borrowed scratch: the working state plus the domain-local cell it
   must be returned to, when it came from one. [borrow_scratch] and
   [restore_scratch] are the named seams the flow lint's route-scratch
   typestate rule (D2, docs/LINTING.md) tracks: every borrow must reach
   [restore_scratch] on all paths, which the [Fun.protect] in [route]
   guarantees even on the sanitizer's exception paths. *)
type borrowed = { bs : scratch; bs_home : scratch option ref option }

let borrow_scratch ?scr ~tracking net =
  match scr with
  | Some s -> { bs = s; bs_home = None }
  (* Selected only when tracking is off, and every scratch write in
     [route] is tracking-guarded: a shared read-only sentinel.
     ftr-lint: disable T1 *)
  | None when not tracking -> { bs = dummy_scratch; bs_home = None }
  | None ->
      let cell = Domain.DLS.get dls_scratch in
      let s =
        match !cell with
        | Some s ->
            cell := None;
            s
        | None -> scratch net
      in
      { bs = s; bs_home = Some cell }

let restore_scratch b = match b.bs_home with Some cell -> cell := Some b.bs | None -> ()

(* Sanitizer hook: a hop chosen in [`Strict] mode must obey the greedy
   contract — strictly decrease the routing distance, and on one-sided
   networks never overshoot the target (Section 4.2.1). [best_neighbor]
   establishes this by construction; the check guards against regressions
   in the candidate filter. *)
let debug_check_strict_hop net ~side ~cur ~v ~dst =
  if Ftr_debug.Debug.enabled () then begin
    let rd = match side with One_sided -> `One_sided | Two_sided -> `Two_sided in
    let dv = Network.routing_distance net ~side:rd ~src:v ~dst
    and dc = Network.routing_distance net ~side:rd ~src:cur ~dst in
    if dv >= dc then
      Ftr_debug.Debug.failf
        "Route: strict hop %d -> %d fails to approach %d (distance %d >= %d)" cur v dst dv dc;
    if side = One_sided && not (Network.one_sided_admissible net ~cur ~v ~dst) then
      Ftr_debug.Debug.failf "Route: one-sided hop %d -> %d overshoots target %d" cur v dst
  end

let route ?(failures = Failure.none) ?(side = Two_sided) ?(strategy = Terminate)
    ?(max_hops = 1_000_000) ?rng ?scratch:scr ?(on_hop = fun _ -> ()) net ~src ~dst =
  let n = Network.size net in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Route.route: node out of range";
  if not (Failure.node_alive failures dst) then invalid_arg "Route.route: destination is dead";
  if not (Failure.node_alive failures src) then invalid_arg "Route.route: source is dead";
  (* Telemetry: one bool load here is the whole cost when FTR_OBS is off —
     the unwrapped [on_hop] is passed through untouched and no metric or
     event code runs. When on, every hop feeds the (sampled) JSONL stream
     through the existing [on_hop] seam and the outcome feeds the
     route_hops histogram and stuck-reason counters below. *)
  let obs = Ftr_obs.Flag.enabled () in
  (* Flight recorder (docs/OBSERVABILITY.md, "Tracing"): [tr] is the
     shared null sentinel unless FTR_OBS and the recorder are both on, and
     every recording call below hides behind [tracing] — one immediate
     bool per check — so the hot loops stay branch-cheap and
     allocation-free when tracing is off. All trace allocation happens
     inside [Ftr_obs.Tracing], never in this file's loops. *)
  let tr = if obs then Ftr_obs.Tracing.begin_route ~src ~dst else Ftr_obs.Tracing.null in
  let tracing = Ftr_obs.Flag.enabled () && Ftr_obs.Tracing.is_live tr in
  if tracing then
    Ftr_obs.Tracing.set_context tr
      ~nodes:(Failure.node_view_label failures)
      ~links:(Failure.link_view_label failures)
      ~strategy:(strategy_label strategy);
  let on_hop =
    if obs then begin
      let hop_no = ref 0 in
      fun v ->
        incr hop_no;
        if tracing then Ftr_obs.Tracing.hop tr ~node:v;
        Ftr_obs.Events.emit ~kind:"route.hop"
          [
            ("src", Ftr_obs.Json.Int src);
            ("dst", Ftr_obs.Json.Int dst);
            ("hop", Ftr_obs.Json.Int !hop_no);
            ("node", Ftr_obs.Json.Int v);
          ];
        on_hop v
    end
    else on_hop
  in
  let { Ftr_graph.Adjacency.Csr.offsets; targets } = Network.csr net in
  (* Only {!Backtrack} records tried links; the other strategies skip both
     the stamp array (epoch 0 is the "no tracking" sentinel below) and its
     allocation when the caller supplied no scratch. *)
  let tracking = match strategy with Backtrack _ -> true | Terminate | Random_reroute _ -> false in
  let borrowed = borrow_scratch ?scr ~tracking net in
  let s = borrowed.bs in
  let stamps, epoch =
    if tracking then begin
      if Array.length s.stamps < I32.get offsets n then begin
        (* Scratch carried over from a smaller network: regrow. A fresh
           array is all-zero, which no live epoch ever equals. *)
        s.stamps <- Array.make (I32.get offsets n) 0;
        s.epoch <- 0
      end;
      s.epoch <- s.epoch + 1;
      (s.stamps, s.epoch)
    end
    else ([||], 0)
  in
  (* Failure fast paths, resolved once per route: node liveness through the
     concrete bitset when the view has one, link liveness skipped entirely
     when everything is statically alive. The general closure forms remain
     the fallback. *)
  let node_bits = Failure.node_alive_bits failures in
  let node_all = Failure.node_all_alive failures in
  let link_all = Failure.link_all_alive failures in
  (* Geometry resolved once per route so the candidate scan can compute
     two-sided distances inline — one array load and some integer
     arithmetic per candidate instead of a call into [Network]. One-sided
     routing keeps the generic path (it also needs the overshoot test). *)
  let positions = Network.positions net in
  let lsize = Network.line_size net in
  let circle = match Network.geometry net with Network.Circle -> true | Network.Line -> false in
  let two_sided = match side with Two_sided -> true | One_sided -> false in
  let rd = match side with One_sided -> `One_sided | Two_sided -> `Two_sided in
  (* Winning candidate of the last successful [best_neighbor] scan; mutable
     result slots instead of an allocated [Some (idx, v)] pair per hop. *)
  let found_idx = ref (-1) and found_node = ref (-1) in
  (* Best live untried neighbour of [cur], subject to the one-sided
     no-overshoot rule when requested. In [`Strict] mode only neighbours
     strictly closer to [dst] qualify (the greedy rule); in [`Any] mode
     every untried live neighbour qualifies, still ranked by distance to
     [dst] — used when resuming from a backtracked node, where the "next
     best neighbour" may have to route around a hole. Ties go to the first
     candidate in sorted-position order, matching "ties broken arbitrarily"
     (Section 4.2.1) deterministically. Writes the winning
     (index-into-row, node) pair into [found_idx]/[found_node] and returns
     whether one exists. *)
  (* Unsafe I32/array reads below are justified by construction-time CSR
     validation ([Adjacency.Csr.validate], re-checked by the Check
     battery): every target is a node index in [0, n), every slot is below
     [offsets.(n)], and [stamps] is kept at least that long. The I32 reads
     are allocation-free: the [Int32.to_int] in the accessor cancels the
     Bigarray box (see Adjacency.I32). *)
  let dist_to ~dst_pos v =
    let d = I32.unsafe_get positions v - dst_pos in
    let d = if d < 0 then -d else d in
    if circle then min d (lsize - d) else d
  in
  (* Flight-recorder verdict for a candidate the liveness conjunction
     rejected: re-run the conjuncts one by one to name the first that
     failed. Every call site already sits under [tracing], and the body
     re-checks it so the write is gated on every path through the
     closure itself (rule D1): one redundant immediate bool, and the
     recomputation (plus the record's allocation, inside
     [Ftr_obs.Tracing]) still costs nothing when the recorder is off. *)
  let record_excluded ~cur ~k ~v ~dist =
    if tracing then begin
      let base = I32.unsafe_get offsets cur in
      let verdict =
        if not (link_all || Failure.link_alive failures ~src:cur ~idx:k) then
          Ftr_obs.Tracing.Dead_link
        else if
          not
            (match node_bits with
            | Some b -> Bitset.unsafe_get b v
            | None -> node_all || Failure.node_alive failures v)
        then Ftr_obs.Tracing.Dead_node
        else if epoch <> 0 && Array.unsafe_get stamps (base + k) = epoch then
          Ftr_obs.Tracing.Already_tried
        else Ftr_obs.Tracing.Not_closer
      in
      Ftr_obs.Tracing.candidate tr ~cur ~cand:v ~dist verdict
    end
  in
  let best_neighbor ~mode ~cur ~dst =
    let dst_pos = I32.unsafe_get positions dst in
    let cur_dist =
      if two_sided then dist_to ~dst_pos cur
      else Network.routing_distance net ~side:rd ~src:cur ~dst
    in
    let base = I32.unsafe_get offsets cur in
    let deg = I32.unsafe_get offsets (cur + 1) - base in
    let limit = match mode with `Strict -> cur_dist | `Any -> max_int in
    let best = ref (-1) and best_idx = ref (-1) and best_dist = ref limit in
    if two_sided && not circle then begin
      (* Line fast path, exploiting the per-row sorted invariant: the live
         neighbour closest to [dst] is found by bisecting the row to the
         two entries bracketing [dst_pos] and walking the brackets outward
         in increasing-distance order, stopping at the first live
         candidate. Equivalent to the full scan below: that scan keeps the
         minimum-distance live candidate, ties to the earliest row entry —
         i.e. the smaller position, which is exactly the left bracket this
         merge prefers on ties ([dl <= dr]). (When duplicate row entries
         name one node, the two orders can record a different *slot* in
         [stamps], but the slots alias the same node with the same
         remaining multiplicity, so the visited-node sequence — and the
         outcome — is unchanged.) *)
      let lo = ref 0 and hi = ref deg in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if I32.unsafe_get positions (I32.unsafe_get targets (base + mid)) >= dst_pos then
          hi := mid
        else lo := mid + 1
      done;
      let l = ref (!lo - 1) and r = ref !lo in
      let scanning = ref true in
      while !scanning do
        let dl =
          if !l >= 0 then
            dst_pos - I32.unsafe_get positions (I32.unsafe_get targets (base + !l))
          else max_int
        and dr =
          if !r < deg then
            I32.unsafe_get positions (I32.unsafe_get targets (base + !r)) - dst_pos
          else max_int
        in
        let take_left = dl <= dr in
        let d = if take_left then dl else dr in
        if d >= limit then scanning := false (* exhausted or no closer candidate left *)
        else begin
          let k = if take_left then !l else !r in
          let v = I32.unsafe_get targets (base + k) in
          let live =
            (link_all || Failure.link_alive failures ~src:cur ~idx:k)
            && (match node_bits with
               | Some b -> Bitset.unsafe_get b v
               | None -> node_all || Failure.node_alive failures v)
            && (epoch = 0 || Array.unsafe_get stamps (base + k) <> epoch)
          in
          if live then begin
            best := v;
            best_idx := k;
            best_dist := d;
            scanning := false
          end
          else begin
            if tracing then record_excluded ~cur ~k ~v ~dist:d;
            if take_left then decr l else incr r
          end
        end
      done
    end
    else
      for k = 0 to deg - 1 do
        let v = I32.unsafe_get targets (base + k) in
        let live =
          (link_all || Failure.link_alive failures ~src:cur ~idx:k)
          && (match node_bits with
             | Some b -> Bitset.unsafe_get b v
             | None -> node_all || Failure.node_alive failures v)
          && (epoch = 0 || Array.unsafe_get stamps (base + k) <> epoch)
        in
        if live then begin
          let v_dist =
            if two_sided then dist_to ~dst_pos v
            else Network.routing_distance net ~side:rd ~src:v ~dst
          in
          let admissible =
            v_dist < !best_dist
            && (two_sided || Network.one_sided_admissible net ~cur ~v ~dst)
          in
          if admissible then begin
            (* A superseded provisional best was examined and not taken:
               record it so the trace names every also-ran. *)
            if tracing && !best >= 0 then
              Ftr_obs.Tracing.candidate tr ~cur ~cand:!best ~dist:!best_dist
                Ftr_obs.Tracing.Not_best;
            best := v;
            best_idx := k;
            best_dist := v_dist
          end
          else if tracing then
            Ftr_obs.Tracing.candidate tr ~cur ~cand:v ~dist:v_dist
              (if v_dist >= limit then Ftr_obs.Tracing.Not_closer
               else if not (two_sided || Network.one_sided_admissible net ~cur ~v ~dst) then
                 Ftr_obs.Tracing.Overshoot
               else Ftr_obs.Tracing.Not_best)
        end
        else if tracing then
          record_excluded ~cur ~k ~v
            ~dist:
              (if two_sided then dist_to ~dst_pos v
               else Network.routing_distance net ~side:rd ~src:v ~dst)
      done;
    if !best < 0 then false
    else begin
      found_idx := !best_idx;
      found_node := !best;
      true
    end
  in
  let record_tried cur idx =
    match strategy with
    | Backtrack _ -> stamps.(I32.unsafe_get offsets cur + idx) <- epoch
    | Terminate | Random_reroute _ -> ()
  in
  (* Greedy leg toward [target]; stops at the target, at a stuck node, or at
     the hop budget. Returns (terminus, hops_so_far, ran_out_of_budget). *)
  let greedy_leg ~start ~target ~hops =
    let cur = ref start and h = ref hops and stop = ref false in
    while (not !stop) && !cur <> target && !h < max_hops do
      if best_neighbor ~mode:`Strict ~cur:!cur ~dst:target then begin
        let v = !found_node in
        debug_check_strict_hop net ~side ~cur:!cur ~v ~dst:target;
        if tracing then
          Ftr_obs.Tracing.candidate tr ~cur:!cur ~cand:v
            ~dist:(Network.routing_distance net ~side:rd ~src:v ~dst:target)
            Ftr_obs.Tracing.Chosen;
        record_tried !cur !found_idx;
        cur := v;
        incr h;
        on_hop v
      end
      else stop := true
    done;
    (!cur, !h, (!cur <> target && not !stop))
  in
  let random_live_node () =
    match rng with
    | None -> None
    | Some rng ->
        let rec attempt tries =
          if tries > 100_000 then None
          else
            let v = Ftr_prng.Rng.int rng n in
            if Failure.node_alive failures v then Some v else attempt (tries + 1)
        in
        attempt 0
  in
  let outcome =
  (* [finally] returns the borrowed domain-local scratch even on the
     sanitizer's exception paths. *)
  Fun.protect ~finally:(fun () -> restore_scratch borrowed) @@ fun () ->
  match strategy with
  | Terminate ->
      let terminus, h, out_of_budget = greedy_leg ~start:src ~target:dst ~hops:0 in
      if terminus = dst then Delivered { hops = h }
      else if out_of_budget then Failed { hops = h; stuck_at = terminus; reason = Hop_limit }
      else Failed { hops = h; stuck_at = terminus; reason = No_live_neighbor }
  | Random_reroute { attempts } ->
      let rec go cur h attempts_left =
        let terminus, h, out_of_budget = greedy_leg ~start:cur ~target:dst ~hops:h in
        if terminus = dst then Delivered { hops = h }
        else if out_of_budget then Failed { hops = h; stuck_at = terminus; reason = Hop_limit }
        else if attempts_left = 0 then
          Failed { hops = h; stuck_at = terminus; reason = No_live_neighbor }
        else
          match random_live_node () with
          | None -> Failed { hops = h; stuck_at = terminus; reason = No_live_reroute_target }
          | Some r ->
              if tracing then Ftr_obs.Tracing.reroute tr ~from_node:terminus ~target:r;
              (* Carry the message to the random intermediate (or as close
                 as greedy gets), then resume toward the destination. *)
              let mid, h, out_of_budget = greedy_leg ~start:terminus ~target:r ~hops:h in
              if out_of_budget then Failed { hops = h; stuck_at = mid; reason = Hop_limit }
              else go mid h (attempts_left - 1)
      in
      go src 0 attempts
  | Backtrack { history = history_limit } ->
      if history_limit < 1 then invalid_arg "Route.route: history must be >= 1";
      (* The most recently visited nodes, newest first, in a preallocated
         ring buffer bounded by the configured window. Every forward move
         pushes the departing node — including moves made after a
         backtrack, so a node's remaining untried links stay reachable
         while it is within the window (depth-first search with a bounded
         backtrack stack). [hist_start] indexes the newest entry; pushing
         at capacity lets the oldest entry fall out of the window, exactly
         the semantics of consing onto a list trimmed to [history_limit]. *)
      if Array.length s.bt_hist < history_limit then s.bt_hist <- Array.make history_limit 0;
      let hist = s.bt_hist in
      let cap = Array.length hist in
      let hist_start = ref 0 and hist_len = ref 0 in
      let push x =
        hist_start := (!hist_start - 1 + cap) mod cap;
        hist.(!hist_start) <- x;
        if !hist_len < history_limit then incr hist_len
      in
      let pop () =
        let y = hist.(!hist_start) in
        hist_start := (!hist_start + 1) mod cap;
        decr hist_len;
        y
      in
      let rec forward cur h =
        if cur = dst then Delivered { hops = h }
        else if h >= max_hops then Failed { hops = h; stuck_at = cur; reason = Hop_limit }
        else if best_neighbor ~mode:`Strict ~cur ~dst then begin
          let v = !found_node in
          debug_check_strict_hop net ~side ~cur ~v ~dst;
          if tracing then
            Ftr_obs.Tracing.candidate tr ~cur ~cand:v
              ~dist:(Network.routing_distance net ~side:rd ~src:v ~dst)
              Ftr_obs.Tracing.Chosen;
          record_tried cur !found_idx;
          on_hop v;
          push cur;
          forward v (h + 1)
        end
        else backtrack cur h
      and backtrack stuck h =
        if !hist_len = 0 then Failed { hops = h; stuck_at = stuck; reason = No_live_neighbor }
        else begin
          let y = pop () in
          (* Travelling back to the previous node costs a hop. *)
          if obs then Ftr_obs.Metrics.incr "route_backtracks_total";
          if tracing then Ftr_obs.Tracing.backtrack tr ~from_node:stuck ~to_node:y;
          let h = h + 1 in
          on_hop y;
          if h >= max_hops then Failed { hops = h; stuck_at = y; reason = Hop_limit }
          else if
            (* "Chooses the next best neighbour": once the strictly closer
               options of [y] are exhausted, the search is allowed to route
               around the hole through a farther neighbour — without this,
               delivery would require a monotone live path, and the failure
               fractions of Figure 6 are unreachable. *)
            best_neighbor ~mode:`Any ~cur:y ~dst
          then begin
            let v = !found_node in
            if tracing then
              Ftr_obs.Tracing.candidate tr ~cur:y ~cand:v
                ~dist:(Network.routing_distance net ~side:rd ~src:v ~dst)
                Ftr_obs.Tracing.Chosen;
            record_tried y !found_idx;
            on_hop v;
            push y;
            forward v (h + 1)
          end
          else backtrack y h
        end
      in
      forward src 0
  in
  if obs then begin
    (match outcome with
    | Delivered { hops = h } ->
        Ftr_obs.Metrics.incr "route_delivered_total";
        Ftr_obs.Metrics.observe_int "route_hops" h
    | Failed { hops = h; reason; _ } ->
        Ftr_obs.Metrics.incr ~labels:[ ("reason", reason_label reason) ] "route_stuck_total";
        Ftr_obs.Metrics.observe_int "route_hops" h);
    if tracing then begin
      match outcome with
      | Delivered { hops = h } ->
          Ftr_obs.Tracing.finish tr ~delivered:true ~hops:h ~stuck_at:(-1) ~reason:""
      | Failed { hops = h; stuck_at; reason } ->
          Ftr_obs.Tracing.finish tr ~delivered:false ~hops:h ~stuck_at
            ~reason:(reason_label reason)
    end;
    Ftr_obs.Events.emit ~kind:"route.done"
      [
        ("src", Ftr_obs.Json.Int src);
        ("dst", Ftr_obs.Json.Int dst);
        ("delivered", Ftr_obs.Json.Bool (delivered outcome));
        ("hops", Ftr_obs.Json.Int (hops outcome));
      ]
  end;
  outcome

(* Length of the walk after erasing every excursion: each revisit of a node
   truncates the walk back to its first visit. For a backtracking search
   this is the length of the route the message would have taken had it
   known the dead ends in advance — the "delivery time" scale Figure 6(b)
   plots. *)
let loop_erased_length path =
  let position = Hashtbl.create 64 in
  let stack = ref [||] in
  let top = ref 0 in
  let push v =
    if !top = Array.length !stack then begin
      let bigger = Array.make (max 16 (2 * !top)) 0 in
      Array.blit !stack 0 bigger 0 !top;
      stack := bigger
    end;
    !stack.(!top) <- v;
    Hashtbl.replace position v !top;
    incr top
  in
  (* ftr-lint: disable R5 -- post-hoc analysis of an already-materialised path list, not the routing loop *)
  List.iter
    (fun v ->
      match Hashtbl.find_opt position v with
      | Some i when i < !top && !stack.(i) = v ->
          (* Revisit: unwind the excursion. *)
          for j = i + 1 to !top - 1 do
            Hashtbl.remove position !stack.(j)
          done;
          top := i + 1
      | Some _ | None -> push v)
    path;
  max 0 (!top - 1)

let route_path ?failures ?side ?strategy ?max_hops ?rng ?scratch net ~src ~dst =
  let path = ref [ src ] in
  let outcome =
    route ?failures ?side ?strategy ?max_hops ?rng ?scratch
      ~on_hop:(fun v -> path := v :: !path)
      net ~src ~dst
  in
  (outcome, List.rev !path)
