type side = One_sided | Two_sided

type strategy =
  | Terminate
  | Random_reroute of { attempts : int }
  | Backtrack of { history : int }

type reason = No_live_neighbor | Hop_limit | No_live_reroute_target

type outcome =
  | Delivered of { hops : int }
  | Failed of { hops : int; stuck_at : int; reason : reason }

let hops = function Delivered { hops } -> hops | Failed { hops; _ } -> hops

let delivered = function Delivered _ -> true | Failed _ -> false

let reason_label = function
  | No_live_neighbor -> "no_live_neighbor"
  | Hop_limit -> "hop_limit"
  | No_live_reroute_target -> "no_live_reroute_target"

(* Best live neighbour of [cur], subject to the one-sided no-overshoot rule
   when requested and to the per-node exclusion list used by backtracking.
   In [`Strict] mode only neighbours strictly closer to [dst] qualify (the
   greedy rule); in [`Any] mode every untried live neighbour qualifies,
   still ranked by distance to [dst] — used when resuming from a
   backtracked node, where the "next best neighbour" may have to route
   around a hole. Returns the winning (index-into-neighbors, node) pair.
   Ties go to the first candidate in sorted-position order, matching "ties
   broken arbitrarily" (Section 4.2.1) deterministically. *)
let best_neighbor net failures ~side ~mode ~tried ~cur ~dst =
  let rd = match side with One_sided -> `One_sided | Two_sided -> `Two_sided in
  let cur_dist = Network.routing_distance net ~side:rd ~src:cur ~dst in
  let ns = Network.neighbors net cur in
  let excluded =
    match Hashtbl.find_opt tried cur with Some l -> l | None -> []
  in
  let limit = match mode with `Strict -> cur_dist | `Any -> max_int in
  let best = ref (-1) and best_idx = ref (-1) and best_dist = ref limit in
  Array.iteri
    (fun idx v ->
      if
        Failure.link_alive failures ~src:cur ~idx
        && Failure.node_alive failures v
        && not (List.mem idx excluded)
      then begin
        let v_dist = Network.routing_distance net ~side:rd ~src:v ~dst in
        let admissible =
          v_dist < !best_dist
          && match side with
             | Two_sided -> true
             | One_sided -> Network.one_sided_admissible net ~cur ~v ~dst
        in
        if admissible then begin
          best := v;
          best_idx := idx;
          best_dist := v_dist
        end
      end)
    ns;
  if !best < 0 then None else Some (!best_idx, !best)

let no_tried : (int, int list) Hashtbl.t = Hashtbl.create 1

(* Sanitizer hook: a hop chosen in [`Strict] mode must obey the greedy
   contract — strictly decrease the routing distance, and on one-sided
   networks never overshoot the target (Section 4.2.1). [best_neighbor]
   establishes this by construction; the check guards against regressions
   in the candidate filter. *)
let debug_check_strict_hop net ~side ~cur ~v ~dst =
  if Ftr_debug.Debug.enabled () then begin
    let rd = match side with One_sided -> `One_sided | Two_sided -> `Two_sided in
    let dv = Network.routing_distance net ~side:rd ~src:v ~dst
    and dc = Network.routing_distance net ~side:rd ~src:cur ~dst in
    if dv >= dc then
      Ftr_debug.Debug.failf
        "Route: strict hop %d -> %d fails to approach %d (distance %d >= %d)" cur v dst dv dc;
    if side = One_sided && not (Network.one_sided_admissible net ~cur ~v ~dst) then
      Ftr_debug.Debug.failf "Route: one-sided hop %d -> %d overshoots target %d" cur v dst
  end

let route ?(failures = Failure.none) ?(side = Two_sided) ?(strategy = Terminate)
    ?(max_hops = 1_000_000) ?rng ?(on_hop = fun _ -> ()) net ~src ~dst =
  let n = Network.size net in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Route.route: node out of range";
  if not (Failure.node_alive failures dst) then invalid_arg "Route.route: destination is dead";
  if not (Failure.node_alive failures src) then invalid_arg "Route.route: source is dead";
  (* Telemetry: one bool load here is the whole cost when FTR_OBS is off —
     the unwrapped [on_hop] is passed through untouched and no metric or
     event code runs. When on, every hop feeds the (sampled) JSONL stream
     through the existing [on_hop] seam and the outcome feeds the
     route_hops histogram and stuck-reason counters below. *)
  let obs = Ftr_obs.Flag.enabled () in
  let on_hop =
    if obs then begin
      let hop_no = ref 0 in
      fun v ->
        incr hop_no;
        Ftr_obs.Events.emit ~kind:"route.hop"
          [
            ("src", Ftr_obs.Json.Int src);
            ("dst", Ftr_obs.Json.Int dst);
            ("hop", Ftr_obs.Json.Int !hop_no);
            ("node", Ftr_obs.Json.Int v);
          ];
        on_hop v
    end
    else on_hop
  in
  let tried =
    match strategy with Backtrack _ -> Hashtbl.create 64 | Terminate | Random_reroute _ -> no_tried
  in
  let record_tried cur idx =
    match strategy with
    | Backtrack _ ->
        let prev = match Hashtbl.find_opt tried cur with Some l -> l | None -> [] in
        Hashtbl.replace tried cur (idx :: prev)
    | Terminate | Random_reroute _ -> ()
  in
  (* Greedy leg toward [target]; stops at the target, at a stuck node, or at
     the hop budget. Returns (terminus, hops_so_far, ran_out_of_budget). *)
  let greedy_leg ~start ~target ~hops =
    let cur = ref start and h = ref hops and stop = ref false in
    while (not !stop) && !cur <> target && !h < max_hops do
      match best_neighbor net failures ~side ~mode:`Strict ~tried ~cur:!cur ~dst:target with
      | Some (idx, v) ->
          debug_check_strict_hop net ~side ~cur:!cur ~v ~dst:target;
          record_tried !cur idx;
          cur := v;
          incr h;
          on_hop v
      | None -> stop := true
    done;
    (!cur, !h, (!cur <> target && not !stop))
  in
  let random_live_node () =
    match rng with
    | None -> None
    | Some rng ->
        let rec attempt tries =
          if tries > 100_000 then None
          else
            let v = Ftr_prng.Rng.int rng n in
            if Failure.node_alive failures v then Some v else attempt (tries + 1)
        in
        attempt 0
  in
  let outcome =
  match strategy with
  | Terminate ->
      let terminus, h, out_of_budget = greedy_leg ~start:src ~target:dst ~hops:0 in
      if terminus = dst then Delivered { hops = h }
      else if out_of_budget then Failed { hops = h; stuck_at = terminus; reason = Hop_limit }
      else Failed { hops = h; stuck_at = terminus; reason = No_live_neighbor }
  | Random_reroute { attempts } ->
      let rec go cur h attempts_left =
        let terminus, h, out_of_budget = greedy_leg ~start:cur ~target:dst ~hops:h in
        if terminus = dst then Delivered { hops = h }
        else if out_of_budget then Failed { hops = h; stuck_at = terminus; reason = Hop_limit }
        else if attempts_left = 0 then
          Failed { hops = h; stuck_at = terminus; reason = No_live_neighbor }
        else
          match random_live_node () with
          | None -> Failed { hops = h; stuck_at = terminus; reason = No_live_reroute_target }
          | Some r ->
              (* Carry the message to the random intermediate (or as close
                 as greedy gets), then resume toward the destination. *)
              let mid, h, out_of_budget = greedy_leg ~start:terminus ~target:r ~hops:h in
              if out_of_budget then Failed { hops = h; stuck_at = mid; reason = Hop_limit }
              else go mid h (attempts_left - 1)
      in
      go src 0 attempts
  | Backtrack { history = history_limit } ->
      if history_limit < 1 then invalid_arg "Route.route: history must be >= 1";
      (* [history] holds the most recently visited nodes, newest first,
         trimmed to the configured window. Every forward move pushes the
         departing node — including moves made after a backtrack, so a
         node's remaining untried links stay reachable while it is within
         the window (depth-first search with a bounded backtrack stack). *)
      let trim history =
        let rec take k = function
          | [] -> []
          | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
        in
        take history_limit history
      in
      let rec forward cur h history =
        if cur = dst then Delivered { hops = h }
        else if h >= max_hops then Failed { hops = h; stuck_at = cur; reason = Hop_limit }
        else
          match best_neighbor net failures ~side ~mode:`Strict ~tried ~cur ~dst with
          | Some (idx, v) ->
              debug_check_strict_hop net ~side ~cur ~v ~dst;
              record_tried cur idx;
              on_hop v;
              forward v (h + 1) (trim (cur :: history))
          | None -> backtrack cur h history
      and backtrack stuck h history =
        match history with
        | [] -> Failed { hops = h; stuck_at = stuck; reason = No_live_neighbor }
        | y :: rest ->
            (* Travelling back to the previous node costs a hop. *)
            if obs then Ftr_obs.Metrics.incr "route_backtracks_total";
            let h = h + 1 in
            on_hop y;
            if h >= max_hops then Failed { hops = h; stuck_at = y; reason = Hop_limit }
            else begin
              (* "Chooses the next best neighbour": once the strictly
                 closer options of [y] are exhausted, the search is allowed
                 to route around the hole through a farther neighbour —
                 without this, delivery would require a monotone live path,
                 and the failure fractions of Figure 6 are unreachable. *)
              match best_neighbor net failures ~side ~mode:`Any ~tried ~cur:y ~dst with
              | Some (idx, v) ->
                  record_tried y idx;
                  on_hop v;
                  forward v (h + 1) (trim (y :: rest))
              | None -> backtrack y h rest
            end
      in
      forward src 0 []
  in
  if obs then begin
    (match outcome with
    | Delivered { hops = h } ->
        Ftr_obs.Metrics.incr "route_delivered_total";
        Ftr_obs.Metrics.observe_int "route_hops" h
    | Failed { hops = h; reason; _ } ->
        Ftr_obs.Metrics.incr ~labels:[ ("reason", reason_label reason) ] "route_stuck_total";
        Ftr_obs.Metrics.observe_int "route_hops" h);
    Ftr_obs.Events.emit ~kind:"route.done"
      [
        ("src", Ftr_obs.Json.Int src);
        ("dst", Ftr_obs.Json.Int dst);
        ("delivered", Ftr_obs.Json.Bool (delivered outcome));
        ("hops", Ftr_obs.Json.Int (hops outcome));
      ]
  end;
  outcome

(* Length of the walk after erasing every excursion: each revisit of a node
   truncates the walk back to its first visit. For a backtracking search
   this is the length of the route the message would have taken had it
   known the dead ends in advance — the "delivery time" scale Figure 6(b)
   plots. *)
let loop_erased_length path =
  let position = Hashtbl.create 64 in
  let stack = ref [||] in
  let top = ref 0 in
  let push v =
    if !top = Array.length !stack then begin
      let bigger = Array.make (max 16 (2 * !top)) 0 in
      Array.blit !stack 0 bigger 0 !top;
      stack := bigger
    end;
    !stack.(!top) <- v;
    Hashtbl.replace position v !top;
    incr top
  in
  List.iter
    (fun v ->
      match Hashtbl.find_opt position v with
      | Some i when i < !top && !stack.(i) = v ->
          (* Revisit: unwind the excursion. *)
          for j = i + 1 to !top - 1 do
            Hashtbl.remove position !stack.(j)
          done;
          top := i + 1
      | Some _ | None -> push v)
    path;
  max 0 (!top - 1)

let route_path ?failures ?side ?strategy ?max_hops ?rng net ~src ~dst =
  let path = ref [ src ] in
  let outcome =
    route ?failures ?side ?strategy ?max_hops ?rng ~on_hop:(fun v -> path := v :: !path) net ~src
      ~dst
  in
  (outcome, List.rev !path)
