module Bitset = Ftr_graph.Bitset

(* Section 4.3.4.2: "for our deterministic routing strategy, certain
   carefully chosen node failures can lead to dismal situations where a
   message can get stuck in a local neighborhood with no hope of ... reaching
   the destination node."

   The attack is structural: in a geometric (Theorem 16) network every
   in-neighbour of a target sits at one of the predictable positions
   [target ± base^i], so killing those 2·log_b(n) nodes cuts the target off
   even though it is alive. Against the randomized 1/d network the same
   budget kills only the two immediate neighbours plus whatever random
   links happen to coincide — the target keeps ~ℓ live incoming links the
   adversary cannot predict. *)

let structural_positions ~n ~base ~target =
  if n < 2 then invalid_arg "Adversary.structural_positions: n must be >= 2";
  if base < 2 then invalid_arg "Adversary.structural_positions: base must be >= 2";
  if target < 0 || target >= n then invalid_arg "Adversary.structural_positions: target off line";
  let acc = ref [] in
  let add v = if v >= 0 && v < n && v <> target then acc := v :: !acc in
  let power = ref 1 in
  while !power < n do
    add (target + !power);
    add (target - !power);
    power := !power * base
  done;
  List.sort_uniq Int.compare !acc

let structural_mask ~n ~base ~target =
  let mask = Bitset.create n in
  Bitset.fill mask true;
  List.iter (Bitset.clear mask) (structural_positions ~n ~base ~target);
  mask

(* A blockade of everything within [radius] of the target (the "local
   neighborhood" variant): reaching the target then requires a live long
   link that lands on it exactly. *)
let blockade_positions ~n ~target ~radius =
  if radius < 1 then invalid_arg "Adversary.blockade_positions: radius must be >= 1";
  let acc = ref [] in
  for d = 1 to radius do
    if target - d >= 0 then acc := (target - d) :: !acc;
    if target + d < n then acc := (target + d) :: !acc
  done;
  List.sort_uniq Int.compare !acc

let blockade_mask ~n ~target ~radius =
  let mask = Bitset.create n in
  Bitset.fill mask true;
  List.iter (Bitset.clear mask) (blockade_positions ~n ~target ~radius);
  mask

type isolation_result = {
  kills : int;  (** nodes the adversary removed *)
  geometric_failed : float;  (** failed-search fraction on the Theorem 16 network *)
  random_failed : float;  (** failed-search fraction on the 1/d network *)
}

(* The head-to-head experiment: the same structural kill list applied to a
   geometric network (whose link structure it predicts exactly) and to a
   randomized network with an equal long-link budget. *)
let isolation_experiment ?(n = 4096) ?(base = 2) ?links ?(trials = 200) ~seed () =
  let links =
    match links with Some l -> l | None -> int_of_float (Float.ceil (Theory.lg n))
  in
  let rng = Ftr_prng.Rng.of_int seed in
  let geometric = Network.build_geometric ~n ~base in
  let random = Network.build_ideal ~n ~links rng in
  let failed_fraction net =
    let failed = ref 0 and total = ref 0 in
    for _ = 1 to trials do
      let target = Ftr_prng.Rng.int rng n in
      let mask = structural_mask ~n ~base ~target in
      let failures = Failure.of_node_mask mask in
      (* A source far from the blast radius, alive by construction. *)
      let rec pick_src tries =
        let s = Ftr_prng.Rng.int rng n in
        if s <> target && Bitset.get mask s then s else if tries > 1000 then target else pick_src (tries + 1)
      in
      let src = pick_src 0 in
      if src <> target then begin
        incr total;
        match
          Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng net ~src
            ~dst:target
        with
        | Route.Delivered _ -> ()
        | Route.Failed _ -> incr failed
      end
    done;
    if !total = 0 then nan else float_of_int !failed /. float_of_int !total
  in
  {
    kills = List.length (structural_positions ~n ~base ~target:(n / 2));
    geometric_failed = failed_fraction geometric;
    random_failed = failed_fraction random;
  }

(* ------------------------------------------------------------------ *)
(* Degree-targeted attacks                                             *)
(* ------------------------------------------------------------------ *)

(* Scale-free networks die when their hubs do. The paper's 1/d overlay is
   deliberately egalitarian — in-degree concentrates nowhere — so killing
   the highest-in-degree nodes should hurt barely more than killing the
   same number at random. The Section 5 heuristic, by contrast, lets early
   arrivals accumulate incoming links (see Network_stats), giving a
   targeted adversary something to aim at. *)

let highest_in_degree_mask net ~kills =
  let n = Network.size net in
  if kills < 0 || kills >= n then invalid_arg "Adversary.highest_in_degree_mask: bad kill count";
  let degrees = Network_stats.in_degrees net in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Int.compare degrees.(b) degrees.(a) in
      if c <> 0 then c else Int.compare a b)
    order;
  let mask = Bitset.create n in
  Bitset.fill mask true;
  for k = 0 to kills - 1 do
    Bitset.clear mask order.(k)
  done;
  mask

type degree_attack_result = {
  attack_kills : int;
  random_failed : float;  (** failed fraction after killing a random set *)
  targeted_failed : float;  (** after killing the highest-in-degree set *)
}

let degree_attack_experiment ?(kills_fraction = 0.1) ?(messages = 300) ~net ~seed () =
  let n = Network.size net in
  let kills = int_of_float (kills_fraction *. float_of_int n) in
  let rng = Ftr_prng.Rng.of_int seed in
  let failed_fraction mask =
    let failures = Failure.of_node_mask mask in
    let live () =
      let rec go () =
        let v = Ftr_prng.Rng.int rng n in
        if Bitset.get mask v then v else go ()
      in
      go ()
    in
    let failed = ref 0 in
    for _ = 1 to messages do
      let src = live () and dst = live () in
      match
        Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng net ~src ~dst
      with
      | Route.Delivered _ -> ()
      | Route.Failed _ -> incr failed
    done;
    float_of_int !failed /. float_of_int messages
  in
  let random_mask =
    Failure.random_node_fraction rng ~n ~fraction:(float_of_int kills /. float_of_int n)
  in
  {
    attack_kills = kills;
    random_failed = failed_fraction random_mask;
    targeted_failed = failed_fraction (highest_in_degree_mask net ~kills);
  }
