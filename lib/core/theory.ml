module Harmonic = Ftr_stats.Harmonic

let lg n =
  if n <= 0 then invalid_arg "Theory.lg: n must be positive";
  log (float_of_int n) /. log 2.0

let log_base ~base n =
  if base < 2 then invalid_arg "Theory.log_base: base must be >= 2";
  log (float_of_int n) /. log (float_of_int base)

(* Theorem 12: with one long link per node, T(n) <= sum_{k=1..n} 2 H_n / k
   = 2 H_n^2. *)
let upper_single_link n = 2.0 *. Float.pow (Harmonic.number n) 2.0

(* Theorem 13: with ℓ in [1, lg n] links, E[X] <= (1 + lg n) * 8 H_n / ℓ. *)
let upper_multi_link ~links n =
  if links < 1 then invalid_arg "Theory.upper_multi_link: links must be >= 1";
  (1.0 +. lg n) *. 8.0 *. Harmonic.number n /. float_of_int links

(* Theorem 14: digit-fixing with base b delivers in at most ceil(log_b n)
   hops using (b-1) * ceil(log_b n) links. *)
let upper_deterministic ~base n = Float.ceil (log_base ~base n)

(* Theorem 15: long links present with probability p. *)
let upper_link_failure ~links ~present_p n =
  if present_p <= 0.0 || present_p > 1.0 then
    invalid_arg "Theory.upper_link_failure: present_p must be in (0,1]";
  upper_multi_link ~links n /. present_p

(* Theorem 16: geometric links b^0..b^{log_b n}, each present with
   probability p: T(n) <= 1 + 2 (b - q) H_{n-1} / p with q = 1 - p. *)
let upper_geometric_link_failure ~base ~present_p n =
  if present_p <= 0.0 || present_p > 1.0 then
    invalid_arg "Theory.upper_geometric_link_failure: present_p must be in (0,1]";
  let b = float_of_int base and q = 1.0 -. present_p in
  1.0 +. (2.0 *. (b -. q) *. Harmonic.number (n - 1) /. present_p)

(* Theorem 18: node failures with probability p; expected delivery time
   O(log^2 n / ((1-p) ℓ)). Returned with Theorem 13's constant. *)
let upper_node_failure ~links ~death_p n =
  if death_p < 0.0 || death_p >= 1.0 then
    invalid_arg "Theory.upper_node_failure: death_p must be in [0,1)";
  upper_multi_link ~links n /. (1.0 -. death_p)

(* Theorem 10 (one-sided): Omega(log^2 n / (ℓ log log n)). The returned
   value is the bound's leading term with constant 1. *)
let lower_one_sided ~links n =
  let ln = log (float_of_int n) in
  ln *. ln /. (float_of_int links *. log (Float.max 2.0 (log (float_of_int n))))

(* Theorem 10 (two-sided): Omega(log^2 n / (ℓ^2 log log n)). *)
let lower_two_sided ~links n =
  let ln = log (float_of_int n) in
  let l = float_of_int links in
  ln *. ln /. (l *. l *. log (Float.max 2.0 (log (float_of_int n))))

(* Theorem 3: with ℓ links per node, T = Omega(log n / log ℓ). *)
let lower_large_links ~links n =
  if links < 2 then invalid_arg "Theory.lower_large_links: links must be >= 2";
  log (float_of_int n) /. log (float_of_int links)

(* Lemma 1 (Karp-Upfal-Wigderson): T(x0) <= integral_1^{x0} dz / mu(z) for
   a non-increasing chain with non-decreasing drift mu. Evaluated by unit
   steps, which is exact for the integer-valued chains we use. *)
let kuw_upper_bound ~mu ~x0 =
  if x0 < 1 then invalid_arg "Theory.kuw_upper_bound: x0 must be >= 1";
  let acc = ref 0.0 in
  for z = 1 to x0 do
    let m = mu z in
    if m <= 0.0 then invalid_arg "Theory.kuw_upper_bound: drift must be positive";
    acc := !acc +. (1.0 /. m)
  done;
  !acc

(* Theorem 12's drift at distance k: mu_k > k / (2 H_n). *)
let theorem12_drift ~n k =
  if k < 1 then invalid_arg "Theory.theorem12_drift: k must be >= 1";
  float_of_int k /. (2.0 *. Harmonic.number n)

(* Theorem 2's conclusion: E[tau] >= T / (eps T + (1 - eps)). *)
let theorem2_lower_bound ~t ~epsilon =
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Theory.theorem2_lower_bound: epsilon must be in [0,1]";
  if t < 0.0 then invalid_arg "Theory.theorem2_lower_bound: t must be non-negative";
  t /. ((epsilon *. t) +. (1.0 -. epsilon))

(* The integral T(ln n) of Theorem 10's proof, evaluated numerically from a
   speed bound m(z); trapezoid rule on [0, ln n]. *)
let theorem10_integral ~m ~ln_n ~steps =
  if steps < 1 then invalid_arg "Theory.theorem10_integral: steps must be >= 1";
  if ln_n <= 0.0 then invalid_arg "Theory.theorem10_integral: ln_n must be positive";
  let h = ln_n /. float_of_int steps in
  let f z =
    let v = m z in
    if v <= 0.0 then invalid_arg "Theory.theorem10_integral: speed must be positive";
    1.0 /. v
  in
  let acc = ref ((f 0.0 +. f ln_n) /. 2.0) in
  for i = 1 to steps - 1 do
    acc := !acc +. f (float_of_int i *. h)
  done;
  !acc *. h
