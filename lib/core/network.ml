module Csr = Ftr_graph.Adjacency.Csr
module I32 = Ftr_graph.Adjacency.I32

type geometry = Line | Circle

(* Neighbour lists live in one flat CSR pair (node [i]'s row is
   [adj.targets.(adj.offsets.(i)) .. adj.targets.(adj.offsets.(i+1)-1)],
   sorted): the routing inner loop scans a contiguous block instead of
   chasing [n] separately boxed rows. Positions and the CSR are int32
   Bigarrays — 4 bytes per entry, unscanned by the GC, and mmap-able from
   a snapshot file (Snapshot). *)
type t = {
  geometry : geometry;
  line_size : int; (* number of grid points of the underlying space *)
  positions : I32.t;
  adj : Csr.t; (* neighbor *indices* into [positions], per-row sorted *)
  links : int;
}

let size t = I32.length t.positions

let line_size t = t.line_size

let links t = t.links

let position t i = I32.get t.positions i

let positions t = t.positions

let neighbors t i = Csr.row t.adj i

let degree t i = Csr.degree t.adj i

let neighbor t i k = Csr.nth t.adj i k

let iter_neighbors t i f = Csr.iter_row t.adj i f

let csr t = t.adj

let geometry t = t.geometry

let is_full t = size t = t.line_size

let point_distance t a b =
  match t.geometry with
  | Line -> abs (a - b)
  | Circle ->
      let d = abs (a - b) in
      min d (t.line_size - d)

let distance t i j = point_distance t (I32.get t.positions i) (I32.get t.positions j)

(* Arc length walking in the increasing direction; the one-sided metric on
   the circle (Chord's orientation). *)
let clockwise_distance t ~src ~dst =
  match t.geometry with
  | Line -> invalid_arg "Network.clockwise_distance: line networks have no orientation"
  | Circle ->
      let d = (I32.get t.positions dst - I32.get t.positions src) mod t.line_size in
      if d < 0 then d + t.line_size else d

(* The quantity greedy routing minimises. Two-sided: the metric distance.
   One-sided: on the line it is still the metric distance (the no-overshoot
   rule is separate); on the circle it is the clockwise arc, which encodes
   no-overshoot by itself (passing the target wraps the arc around). *)
let routing_distance t ~side ~src ~dst =
  match (side, t.geometry) with
  | `Two_sided, _ | `One_sided, Line -> distance t src dst
  | `One_sided, Circle -> clockwise_distance t ~src ~dst

(* Line-specific one-sided admissibility: never traverse a link past the
   target. Circle networks need no such rule (see [routing_distance]). *)
let one_sided_admissible t ~cur ~v ~dst =
  match t.geometry with
  | Circle -> true
  | Line ->
      let cur_pos = I32.get t.positions cur
      and v_pos = I32.get t.positions v
      and dst_pos = I32.get t.positions dst in
      (cur_pos > dst_pos && v_pos >= dst_pos && v_pos < cur_pos)
      || (cur_pos < dst_pos && v_pos <= dst_pos && v_pos > cur_pos)

let nearest_index t ~position =
  let n = size t in
  if n = 0 then invalid_arg "Network.nearest_index: empty network";
  (* Binary search for the first present position >= position, then compare
     with its predecessor. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if I32.get t.positions mid >= position then search lo mid else search (mid + 1) hi
  in
  let i = search 0 n in
  match t.geometry with
  | Line ->
      if i = n then n - 1
      else if i = 0 then 0
      else if position - I32.get t.positions (i - 1) <= I32.get t.positions i - position then
        i - 1
      else i
  | Circle ->
      (* Candidates wrap: the first and last nodes are adjacent. *)
      let candidates = [ (i - 1 + n) mod n; i mod n ] in
      let best = ref (i mod n) and best_d = ref max_int in
      List.iter
        (fun c ->
          let d = point_distance t (I32.get t.positions c) position in
          if d < !best_d then begin
            best := c;
            best_d := d
          end)
        candidates;
      !best

let index_of_position t ~position =
  let i = nearest_index t ~position in
  if I32.get t.positions i = position then Some i else None

let to_adjacency t = Ftr_graph.Adjacency.of_csr t.adj

(* Sanitizer hook: structural invariants every builder must establish —
   sorted in-range neighbour lists without self-links, and the short-link
   ring that keeps greedy routing total (both sides on the line; at least
   the successor on the circle, where one-sided constructions like the
   chord-like network carry no predecessor link). Run on every freshly
   built network when FTR_CHECK is on; the exhaustive battery with
   per-builder policies lives in Ftr_check.Check. *)
let debug_validate t =
  let n = size t in
  let { Csr.offsets; targets } = t.adj in
  if
    I32.length offsets <> n + 1
    || I32.get offsets 0 <> 0
    || I32.get offsets n <> I32.length targets
  then Ftr_debug.Debug.failf "Network: CSR offsets malformed";
  for i = 0 to n - 1 do
    if I32.get offsets (i + 1) < I32.get offsets i then
      Ftr_debug.Debug.failf "Network: CSR offsets decrease at row %d" i;
    let lo = I32.get offsets i and hi = I32.get offsets (i + 1) in
    let contains x =
      let found = ref false in
      for k = lo to hi - 1 do
        if I32.get targets k = x then found := true
      done;
      !found
    in
    for k = lo to hi - 1 do
      let j = I32.get targets k in
      if j < 0 || j >= n then Ftr_debug.Debug.failf "Network: node %d links to non-node %d" i j;
      if j = i then Ftr_debug.Debug.failf "Network: node %d links to itself" i;
      if k > lo && I32.get targets (k - 1) > j then
        Ftr_debug.Debug.failf "Network: node %d neighbour list unsorted at entry %d" i (k - lo)
    done;
    match t.geometry with
    | Line ->
        if i > 0 && not (contains (i - 1)) then
          Ftr_debug.Debug.failf "Network: node %d missing ring link to %d" i (i - 1);
        if i < n - 1 && not (contains (i + 1)) then
          Ftr_debug.Debug.failf "Network: node %d missing ring link to %d" i (i + 1)
    | Circle ->
        if n > 1 && not (contains ((i + 1) mod n)) then
          Ftr_debug.Debug.failf "Network: node %d missing ring link to successor %d" i
            ((i + 1) mod n)
  done

let checked t =
  if Ftr_debug.Debug.enabled () then debug_validate t;
  t

(* Positions 0..n-1: the full-network identity embedding. *)
let iota_positions n =
  let a = I32.create n in
  for i = 0 to n - 1 do
    I32.unsafe_set a i i
  done;
  a

let check_positions ~line_size positions =
  let n = I32.length positions in
  for i = 0 to n - 1 do
    let p = I32.get positions i in
    if p < 0 || p >= line_size then invalid_arg "Network: position off line";
    if i > 0 && I32.get positions (i - 1) >= p then
      invalid_arg "Network: positions must be strictly increasing"
  done

(* Assemble from already-flat parts — the snapshot loader's entry point.
   [validate] (default true) runs the full structural check; pass false
   only for trusted in-process parts (the builders below, which establish
   the invariants by construction and re-check under FTR_CHECK). *)
let of_flat ?(validate = true) ~geometry ~line_size ~positions ~adj ~links () =
  if I32.length positions <> Csr.size adj then
    invalid_arg "Network.of_flat: positions/adjacency size mismatch";
  if line_size < I32.length positions then
    invalid_arg "Network.of_flat: more nodes than grid points";
  if links < 0 then invalid_arg "Network.of_flat: negative link count";
  if validate then begin
    Csr.validate ~sorted:true adj;
    check_positions ~line_size positions
  end;
  checked { geometry; line_size; positions; adj; links }

(* Every jagged builder assembles per-node rows and hands them here; the
   CSR flattening is the only place the flat pair is built from rows. *)
let make ~geometry ~line_size ~positions ~rows ~links =
  checked
    {
      geometry;
      line_size;
      positions = I32.of_int_array positions;
      adj = Csr.of_rows rows;
      links;
    }

let of_neighbor_indices ?(geometry = Line) ~line_size ~positions ~neighbors ~links () =
  let n = Array.length positions in
  if Array.length neighbors <> n then
    invalid_arg "Network.of_neighbor_indices: positions/neighbors length mismatch";
  Array.iteri
    (fun i p ->
      if p < 0 || p >= line_size then invalid_arg "Network.of_neighbor_indices: position off line";
      if i > 0 && positions.(i - 1) >= p then
        invalid_arg "Network.of_neighbor_indices: positions must be strictly increasing")
    positions;
  Array.iter
    (Array.iter (fun j ->
         if j < 0 || j >= n then invalid_arg "Network.of_neighbor_indices: neighbor out of range"))
    neighbors;
  make ~geometry ~line_size ~positions ~rows:neighbors ~links

(* Draw a long-distance target for the node at position [src]: a point [v]
   distinct from [src] with Pr[v] proportional to 1/d(src,v)^exponent,
   normalised over the whole line (Section 4.3). Side is chosen with
   probability proportional to that side's total mass, then the length by
   inverse-CDF within the side. *)
let sample_long_target pl rng ~n ~src =
  let left = src and right = n - 1 - src in
  let t_left = if left = 0 then 0.0 else Ftr_prng.Sample.power_law_total pl ~upto:left in
  let t_right = if right = 0 then 0.0 else Ftr_prng.Sample.power_law_total pl ~upto:right in
  let total = t_left +. t_right in
  if total <= 0.0 then invalid_arg "Network.sample_long_target: isolated node";
  if Ftr_prng.Rng.float rng *. total < t_left then
    src - Ftr_prng.Sample.power_law_draw pl rng ~upto:left
  else src + Ftr_prng.Sample.power_law_draw pl rng ~upto:right

let finish_node ~immediate ~long =
  let arr = Array.of_list (List.rev_append immediate long) in
  Array.sort Int.compare arr;
  arr

(* In-place insertion sort of [arr.(0 .. len-1)] — the streaming builder
   sorts each short row (links + 2 entries) in its reusable scratch array
   without allocating. Same total order as [Array.sort Int.compare] in
   [finish_node], so the two build paths emit identical rows. *)
let sort_prefix arr len =
  for i = 1 to len - 1 do
    let x = arr.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && arr.(!j) > x do
      arr.(!j + 1) <- arr.(!j);
      decr j
    done;
    arr.(!j + 1) <- x
  done

let check_ideal_args ~who ~n ~links =
  if n < 2 then invalid_arg (Printf.sprintf "Network.%s: need at least two nodes" who);
  if links < 0 then invalid_arg (Printf.sprintf "Network.%s: negative link count" who)

(* Streaming construction: one pass over the nodes, each row assembled in a
   reused scratch array and appended straight to the CSR builder — O(n)
   with O(links) transient state, never a jagged intermediate. Consumes
   the RNG in exactly the same order as [build_ideal_materialized], so the
   two produce byte-identical networks (qcheck-pinned). *)
let build_ideal ?(exponent = 1.0) ~n ~links rng =
  check_ideal_args ~who:"build_ideal" ~n ~links;
  (* Every builder times its construction phase under a [Ftr_obs.Span]; a
     no-op (beyond the closure) unless FTR_OBS is on. *)
  Ftr_obs.Span.time "network.build_ideal" @@ fun () ->
  let pl = Ftr_prng.Sample.power_law ~exponent ~max_length:(n - 1) in
  let b = Csr.Builder.create ~edges_hint:(n * (links + 2)) ~n () in
  let scratch = Array.make (links + 2) 0 in
  for u = 0 to n - 1 do
    let len = ref 0 in
    let push v =
      scratch.(!len) <- v;
      incr len
    in
    if u > 0 then push (u - 1);
    if u < n - 1 then push (u + 1);
    for _ = 1 to links do
      push (sample_long_target pl rng ~n ~src:u)
    done;
    sort_prefix scratch !len;
    Csr.Builder.append_row b scratch ~len:!len
  done;
  checked
    {
      geometry = Line;
      line_size = n;
      positions = iota_positions n;
      adj = Csr.Builder.finish b;
      links;
    }

(* Reference implementation of the ideal builder that materializes every
   jagged row before flattening — kept as the equivalence oracle for the
   streaming path (same RNG consumption order, byte-identical output). *)
let build_ideal_materialized ?(exponent = 1.0) ~n ~links rng =
  check_ideal_args ~who:"build_ideal_materialized" ~n ~links;
  Ftr_obs.Span.time "network.build_ideal" @@ fun () ->
  let pl = Ftr_prng.Sample.power_law ~exponent ~max_length:(n - 1) in
  let neighbors =
    Array.init n (fun u ->
        let immediate =
          (if u > 0 then [ u - 1 ] else []) @ if u < n - 1 then [ u + 1 ] else []
        in
        let long = ref [] in
        for _ = 1 to links do
          long := sample_long_target pl rng ~n ~src:u :: !long
        done;
        finish_node ~immediate ~long:!long)
  in
  make ~geometry:Line ~line_size:n ~positions:(Array.init n (fun i -> i)) ~rows:neighbors ~links

let build_binomial ?(exponent = 1.0) ~n ~links ~present_p rng =
  if n < 2 then invalid_arg "Network.build_binomial: need at least two positions";
  if present_p <= 0.0 || present_p > 1.0 then
    invalid_arg "Network.build_binomial: present_p must be in (0,1]";
  Ftr_obs.Span.time "network.build_binomial" @@ fun () ->
  let present = Array.make n false in
  let count = ref 0 in
  for p = 0 to n - 1 do
    if Ftr_prng.Rng.bernoulli rng present_p then begin
      present.(p) <- true;
      incr count
    end
  done;
  (* Guarantee at least two nodes so the network is routable. *)
  if !count < 2 then begin
    if not present.(0) then begin
      present.(0) <- true;
      incr count
    end;
    if not present.(n - 1) then begin
      present.(n - 1) <- true;
      incr count
    end
  end;
  let positions = Array.make !count 0 in
  let k = ref 0 in
  for p = 0 to n - 1 do
    if present.(p) then begin
      positions.(!k) <- p;
      incr k
    end
  done;
  let m = !count in
  let pl = Ftr_prng.Sample.power_law ~exponent ~max_length:(n - 1) in
  (* Index lookup by rejection: draw targets from the unconditioned 1/d law
     and retry while the target is absent. This realises Theorem 17's
     "probability of choosing a node conditioned on the existence of that
     node" exactly. *)
  let index_of = Array.make n (-1) in
  Array.iteri (fun i p -> index_of.(p) <- i) positions;
  let sample_present_index ~src_pos ~src_idx =
    let rec attempt tries =
      let target = sample_long_target pl rng ~n ~src:src_pos in
      if target >= 0 && target < n && present.(target) && index_of.(target) <> src_idx then
        index_of.(target)
      else if tries > 10_000 then
        (* Pathologically sparse corner; fall back to a uniform present node. *)
        let rec fallback () =
          let j = Ftr_prng.Rng.int rng m in
          if j <> src_idx then j else fallback ()
        in
        fallback ()
      else attempt (tries + 1)
    in
    attempt 0
  in
  let neighbors =
    Array.init m (fun i ->
        let immediate = (if i > 0 then [ i - 1 ] else []) @ if i < m - 1 then [ i + 1 ] else [] in
        let long = ref [] in
        for _ = 1 to links do
          long := sample_present_index ~src_pos:positions.(i) ~src_idx:i :: !long
        done;
        finish_node ~immediate ~long:!long)
  in
  make ~geometry:Line ~line_size:n ~positions ~rows:neighbors ~links

let ceil_log ~base n =
  if base < 2 then invalid_arg "Network.ceil_log: base must be >= 2";
  let rec go acc power = if power >= n then acc else go (acc + 1) (power * base) in
  go 0 1

let build_deterministic ~n ~base =
  if n < 2 then invalid_arg "Network.build_deterministic: need at least two nodes";
  if base < 2 then invalid_arg "Network.build_deterministic: base must be >= 2";
  Ftr_obs.Span.time "network.build_deterministic" @@ fun () ->
  let digits = ceil_log ~base n in
  let neighbors =
    Array.init n (fun u ->
        let acc = ref [] in
        let add v = if v >= 0 && v < n && v <> u then acc := v :: !acc in
        let power = ref 1 in
        for _ = 0 to digits - 1 do
          for j = 1 to base - 1 do
            add (u + (j * !power));
            add (u - (j * !power))
          done;
          power := !power * base
        done;
        add (u - 1);
        add (u + 1);
        let arr = Array.of_list !acc in
        Array.sort Int.compare arr;
        (* Deduplicate the sorted neighbour list. *)
        let uniq = ref [] in
        Array.iter
          (fun v -> match !uniq with w :: _ when w = v -> () | _ -> uniq := v :: !uniq)
          arr;
        Array.of_list (List.rev !uniq))
  in
  let links = (base - 1) * digits in
  make ~geometry:Line ~line_size:n ~positions:(Array.init n (fun i -> i)) ~rows:neighbors ~links

let build_geometric ~n ~base =
  if n < 2 then invalid_arg "Network.build_geometric: need at least two nodes";
  if base < 2 then invalid_arg "Network.build_geometric: base must be >= 2";
  Ftr_obs.Span.time "network.build_geometric" @@ fun () ->
  let neighbors =
    Array.init n (fun u ->
        let acc = ref [] in
        let add v = if v >= 0 && v < n && v <> u then acc := v :: !acc in
        let power = ref 1 in
        while !power < n do
          add (u + !power);
          add (u - !power);
          power := !power * base
        done;
        let arr = Array.of_list !acc in
        Array.sort Int.compare arr;
        let uniq = ref [] in
        Array.iter
          (fun v -> match !uniq with w :: _ when w = v -> () | _ -> uniq := v :: !uniq)
          arr;
        Array.of_list (List.rev !uniq))
  in
  make ~geometry:Line ~line_size:n
    ~positions:(Array.init n (fun i -> i))
    ~rows:neighbors ~links:(ceil_log ~base n)

(* Lengths of all links except the two ring links (the nearest present node
   on each side); these are the long-distance links whose distribution
   Figure 5 plots. *)
let long_link_lengths t =
  let result = ref [] in
  let n = size t in
  for i = 0 to n - 1 do
    let ring_left, ring_right =
      match t.geometry with
      | Line ->
          ((if i > 0 then Some (i - 1) else None), if i < n - 1 then Some (i + 1) else None)
      | Circle -> (Some ((i - 1 + n) mod n), Some ((i + 1) mod n))
    in
    let seen_left = ref false and seen_right = ref false in
    let matches o j = match o with Some r -> r = j | None -> false in
    Csr.iter_row t.adj i (fun j ->
        let is_ring =
          (matches ring_left j && not !seen_left && (seen_left := true; true))
          || (matches ring_right j && not !seen_right && (seen_right := true; true))
        in
        if not is_ring then result := distance t i j :: !result)
  done;
  !result

(* A full circle of [n] nodes: every node linked to both ring neighbours
   (wrapping) and to [links] long-distance draws with Pr[v] proportional to
   1/arc(u,v). The circle is the paper's other one-dimensional space
   (Section 7: "the line or a circle") and matches Chord's identifier
   circle; it has no boundary, so every node sees the same distance
   profile. *)
let build_ring ?(exponent = 1.0) ~n ~links rng =
  if n < 3 then invalid_arg "Network.build_ring: need at least three nodes";
  if links < 0 then invalid_arg "Network.build_ring: negative link count";
  Ftr_obs.Span.time "network.build_ring" @@ fun () ->
  let max_d = n / 2 in
  (* Weight per arc distance d: (number of nodes at distance d) / d^a.
     Two nodes per distance except the antipode of an even ring. *)
  let weights =
    Array.init max_d (fun i ->
        let d = i + 1 in
        let count = if 2 * d = n then 1.0 else 2.0 in
        count /. Float.pow (float_of_int d) exponent)
  in
  let cdf = Ftr_prng.Sample.cdf_of_weights weights in
  let neighbors =
    Array.init n (fun u ->
        let immediate = [ (u + 1) mod n; (u - 1 + n) mod n ] in
        let long = ref [] in
        for _ = 1 to links do
          let d = 1 + Ftr_prng.Sample.cdf_draw cdf rng in
          let v =
            if 2 * d = n then (u + d) mod n
            else if Ftr_prng.Rng.bool rng then (u + d) mod n
            else (u - d + n) mod n
          in
          long := v :: !long
        done;
        let arr = Array.of_list (List.rev_append immediate !long) in
        Array.sort Int.compare arr;
        arr)
  in
  make ~geometry:Circle ~line_size:n ~positions:(Array.init n (fun i -> i)) ~rows:neighbors ~links

(* Chord as an instance of this framework (Section 3: Chord's nodes "can be
   thought of as embedded on grid points on a real circle"): clockwise
   links at distances base^i on the circle. One-sided greedy routing over
   this network takes exactly Chord's finger-table routes. *)
let build_chordlike ?(base = 2) ?(predecessor = false) ~n () =
  if n < 3 then invalid_arg "Network.build_chordlike: need at least three nodes";
  if base < 2 then invalid_arg "Network.build_chordlike: base must be >= 2";
  Ftr_obs.Span.time "network.build_chordlike" @@ fun () ->
  let neighbors =
    Array.init n (fun u ->
        (* Chord keeps only the successor; the optional predecessor makes
           two-sided routing total on the same finger set. *)
        let acc =
          ref (((u + 1) mod n) :: (if predecessor then [ (u - 1 + n) mod n ] else []))
        in
        let power = ref 1 in
        while !power < n do
          for j = 1 to base - 1 do
            let v = (u + (j * !power)) mod n in
            if v <> u then acc := v :: !acc
          done;
          power := !power * base
        done;
        let arr = Array.of_list !acc in
        Array.sort Int.compare arr;
        let uniq = ref [] in
        Array.iter
          (fun v -> match !uniq with w :: _ when w = v -> () | _ -> uniq := v :: !uniq)
          arr;
        Array.of_list (List.rev !uniq))
  in
  make ~geometry:Circle ~line_size:n
    ~positions:(Array.init n (fun i -> i))
    ~rows:neighbors
    ~links:((base - 1) * ceil_log ~base n)
