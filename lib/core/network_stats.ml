(* Structural anatomy of an overlay: the quantities the paper's arguments
   lean on without plotting — in-degree balance (every incoming link is
   routing capacity and an attack surface), link-length spread, and how
   much the line's boundary distorts the distribution. *)

module Summary = Ftr_stats.Summary

let out_degree_summary net =
  let s = Summary.create () in
  for i = 0 to Network.size net - 1 do
    Summary.add_int s (Network.degree net i)
  done;
  s

let in_degrees net =
  let n = Network.size net in
  let degrees = Array.make n 0 in
  for i = 0 to n - 1 do
    Network.iter_neighbors net i (fun j -> degrees.(j) <- degrees.(j) + 1)
  done;
  degrees

let in_degree_summary net = Summary.of_array (Array.map float_of_int (in_degrees net))

(* The heaviest in-degree relative to the mean: >1 means some node is a
   disproportionate routing target. For the 1/d network this stays small;
   nothing concentrates. *)
let in_degree_hotspot net =
  let s = in_degree_summary net in
  Summary.max_value s /. Summary.mean s

let length_percentiles net =
  let lengths =
    Array.of_list (List.map float_of_int (Network.long_link_lengths net))
  in
  if Array.length lengths = 0 then None
  else
    Some
      ( Ftr_stats.Quantile.compute lengths 0.5,
        Ftr_stats.Quantile.compute lengths 0.9,
        Ftr_stats.Quantile.compute lengths 0.99 )

(* Boundary distortion: mean long-link length of nodes in the middle third
   of the line over that of nodes in the outer sixths. On a circle this is
   1 by symmetry; on the line, edge nodes reach farther (their whole mass
   points inward). *)
let boundary_distortion net =
  let n = Network.size net in
  if n < 6 then invalid_arg "Network_stats.boundary_distortion: network too small";
  let middle = Summary.create () and edge = Summary.create () in
  for i = 0 to n - 1 do
    let bucket =
      if i < n / 6 || i >= n - (n / 6) then Some edge
      else if i >= n / 3 && i < n - (n / 3) then Some middle
      else None
    in
    match bucket with
    | None -> ()
    | Some s ->
        let ring_left, ring_right =
          match Network.geometry net with
          | Network.Line -> (i - 1, i + 1)
          | Network.Circle -> ((i - 1 + n) mod n, (i + 1) mod n)
        in
        let seen_left = ref false and seen_right = ref false in
        Network.iter_neighbors net i (fun j ->
            let is_ring =
              (j = ring_left && not !seen_left
              &&
              (seen_left := true;
               true))
              || j = ring_right
                 && (not !seen_right)
                 &&
                 (seen_right := true;
                  true)
            in
            if not is_ring then Summary.add_int s (Network.distance net i j))
  done;
  Summary.mean edge /. Summary.mean middle

type anatomy = {
  nodes : int;
  mean_out_degree : float;
  mean_in_degree : float;
  max_in_degree : int;
  in_degree_hotspot : float;
  median_length : float;
  p90_length : float;
  p99_length : float;
  boundary_distortion : float;
}

let anatomy net =
  let in_s = in_degree_summary net in
  let med, p90, p99 =
    match length_percentiles net with Some t -> t | None -> (nan, nan, nan)
  in
  {
    nodes = Network.size net;
    mean_out_degree = Summary.mean (out_degree_summary net);
    mean_in_degree = Summary.mean in_s;
    max_in_degree = int_of_float (Summary.max_value in_s);
    in_degree_hotspot = Summary.max_value in_s /. Summary.mean in_s;
    median_length = med;
    p90_length = p90;
    p99_length = p99;
    boundary_distortion = boundary_distortion net;
  }
