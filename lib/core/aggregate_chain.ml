module Rng = Ftr_prng.Rng

(* A ∆ distribution in the sense of Section 4.2.2: every node's offset set
   is drawn independently, always contains ±1, and includes each further
   offset ±d independently with probability [p d].

   Simulations never need the whole ∆ — greedy steps only consume the
   included offsets nearest the current position. Because inclusions are
   independent, the extreme included offset of a range can be drawn
   directly by inverting the exact survival function
   P[no inclusion in (y, x]] = prod_{d in (y, x]} (1 - p d), whose log is
   precomputed as a prefix sum — O(log n) per draw instead of O(n)
   Bernoulli trials. *)
type dist = {
  max_offset : int;
  p : int -> float;
  certain_upto : int; (* p d = 1 for every d <= certain_upto (at least 1) *)
  log_survival : float array;
      (* log_survival.(d) = sum over k in (certain_upto, d] of ln(1 - p k);
         0 for d <= certain_upto; a non-increasing sequence *)
}

let make ~max_offset ~p =
  if max_offset < 1 then invalid_arg "Aggregate_chain.make: max_offset must be >= 1";
  let clamp d =
    let v = p d in
    if Float.is_nan v || v < 0.0 || v > 1.0 then
      invalid_arg "Aggregate_chain.make: inclusion probability outside [0,1]";
    v
  in
  let certain_upto =
    let rec scan d = if d <= max_offset && clamp d >= 1.0 then scan (d + 1) else d - 1 in
    max 1 (scan 1)
  in
  let log_survival = Array.make (max_offset + 1) 0.0 in
  for d = certain_upto + 1 to max_offset do
    let pd = clamp d in
    (* A later certain offset would break the prefix trick; treat it as a
       (measure-zero) near-certainty instead. *)
    let pd = Float.min pd (1.0 -. 1e-12) in
    log_survival.(d) <- log_survival.(d - 1) +. log1p (-.pd)
  done;
  { max_offset; p; certain_upto; log_survival }

(* Largest included offset <= upto; at least 1 always exists. *)
let largest_included dist rng ~upto =
  if upto < 1 then invalid_arg "Aggregate_chain.largest_included: upto must be >= 1";
  let upto = min upto dist.max_offset in
  if upto <= dist.certain_upto then upto
  else begin
    (* P[largest < y] = P[no inclusion in [y, upto]]
                      = exp(ls.(upto) - ls.(y - 1)) for y > certain_upto. *)
    let u = Rng.float rng in
    if u < exp (dist.log_survival.(upto) -. dist.log_survival.(dist.certain_upto)) then
      dist.certain_upto
    else begin
      (* Largest y with exp(ls.(upto) - ls.(y - 1)) <= u, i.e. the
         inclusion at y "survived" the u-threshold. G(y) is monotone
         increasing in y; binary search the crossing. *)
      let target = dist.log_survival.(upto) -. log u in
      (* want largest y with ls.(y - 1) >= target... ls decreasing, so the
         set of valid y is a prefix; binary search its end. *)
      let lo = ref (dist.certain_upto + 1) and hi = ref upto in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if dist.log_survival.(mid - 1) >= target then lo := mid else hi := mid - 1
      done;
      !lo
    end
  end

(* Smallest included offset in (above, max_offset]; None if the whole
   range came up empty. *)
let smallest_included_above dist rng ~above =
  if above >= dist.max_offset then None
  else if above < dist.certain_upto then Some (above + 1)
  else begin
    let base = max above dist.certain_upto in
    let u = Rng.float rng in
    if u < exp (dist.log_survival.(dist.max_offset) -. dist.log_survival.(base)) then None
    else begin
      (* P[smallest > z] = exp(ls.(z) - ls.(base)); find smallest z whose
         inclusion crosses the u-threshold. *)
      let target = dist.log_survival.(base) +. log u in
      (* smallest z in (base, max] with ls.(z) <= target. *)
      let lo = ref (base + 1) and hi = ref dist.max_offset in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if dist.log_survival.(mid) <= target then hi := mid else lo := mid + 1
      done;
      Some !lo
    end
  end

(* The harmonic distribution matching the paper's upper-bound model: offset
   ±d present with probability min(1, c/d), scaled so the expected number
   of long offsets per side is about [links]. *)
let harmonic ~links ~max_offset =
  if links < 1 then invalid_arg "Aggregate_chain.harmonic: links must be >= 1";
  let h = Ftr_stats.Harmonic.number max_offset in
  let c = float_of_int links /. h in
  make ~max_offset ~p:(fun d ->
      if d = 1 then 1.0 else Float.min 1.0 (c /. float_of_int d))

let uniform ~links ~max_offset =
  if links < 1 then invalid_arg "Aggregate_chain.uniform: links must be >= 1";
  let p = Float.min 1.0 (float_of_int links /. float_of_int max_offset) in
  make ~max_offset ~p:(fun d -> if d = 1 then 1.0 else p)

let mean_size dist =
  (* E|∆| counting both signs. *)
  let acc = ref 0.0 in
  for d = 1 to dist.max_offset do
    acc := !acc +. (2.0 *. dist.p d)
  done;
  !acc

(* Draw the positive half of a ∆ set, sorted ascending; 1 is always
   included. Sufficient for the one-sided chain, which never uses negative
   offsets. *)
let sample_positive dist rng =
  let acc = ref [] in
  for d = dist.max_offset downto 2 do
    if Rng.bernoulli rng (dist.p d) then acc := d :: !acc
  done;
  Array.of_list (1 :: !acc)

(* One-sided greedy single-point chain (Section 4.2.3): from x > 0 bound
   for 0, jump to x - δ for the largest sampled δ <= x. Counts steps to
   absorption. *)
let simulate_single_point dist rng ~start =
  if start < 0 then invalid_arg "Aggregate_chain.simulate_single_point: negative start";
  let steps = ref 0 and x = ref start in
  while !x > 0 do
    (* The only statistic of ∆ a one-sided greedy step consumes. *)
    x := !x - largest_included dist rng ~upto:!x;
    incr steps
  done;
  !steps

(* One-sided aggregate chain (Section 4.2.3): the state is the interval
   {1..k}, split by a fresh ∆ into subranges jumping by the same offset;
   the successor subrange is chosen with probability proportional to its
   size (equation 14). Absorbing state is {0}. *)
let simulate_aggregate dist rng ~start =
  if start < 1 then invalid_arg "Aggregate_chain.simulate_aggregate: start must be >= 1";
  let steps = ref 0 and k = ref start in
  while !k > 0 do
    (* Nodes x in [δ_i, min(k, δ_{i+1} - 1)] all jump by δ_i. Within that
       subrange, x = δ_i lands on 0 (σ = 0) and the rest land on
       {1 .. m_i} (σ = +). Choose among all non-empty pieces with
       probability proportional to size. *)
    let total = !k in
    let u = Rng.int rng total + 1 in
    (* u is the rank of a uniformly chosen node of {1..k}; find its piece
       and apply the jump, which is exactly the size-proportional choice. *)
    let x = u in
    let jump = largest_included dist rng ~upto:x in
    let landed = x - jump in
    if landed = 0 then k := 0
    else begin
      (* The subrange containing x is [jump, min(k, next - 1)]; its σ = +
         part maps onto {1 .. m} with m = min(k, next - 1) - jump. The
         greedy choice already rules inclusions in (jump, x] out, so the
         next-larger offset lives in (x, max]. *)
      let next =
        match smallest_included_above dist rng ~above:x with
        | Some d -> d
        | None -> max_int
      in
      let hi = min !k (if next = max_int then !k else next - 1) in
      k := hi - jump
    end;
    incr steps
  done;
  !steps

(* Empirical check of Lemma 6: Pr[|S^{t+1}| <= |S^t| / a] <= 3 ℓ / a,
   estimated over [trials] one-step transitions from state {1..k}. *)
let lemma6_drop_probability dist rng ~k ~a ~trials =
  if k < 1 then invalid_arg "Aggregate_chain.lemma6_drop_probability: k must be >= 1";
  if a < 1.0 then invalid_arg "Aggregate_chain.lemma6_drop_probability: a must be >= 1";
  if trials < 1 then invalid_arg "Aggregate_chain.lemma6_drop_probability: trials must be >= 1";
  let threshold = float_of_int k /. a in
  let drops = ref 0 in
  for _ = 1 to trials do
    let x = Rng.int rng k + 1 in
    let jump = largest_included dist rng ~upto:x in
    let landed = x - jump in
    let size =
      if landed = 0 then 1
      else begin
        let next =
          match smallest_included_above dist rng ~above:x with
          | Some d -> d
          | None -> max_int
        in
        let hi = min k (if next = max_int then k else next - 1) in
        hi - jump
      end
    in
    if float_of_int size <= threshold then incr drops
  done;
  float_of_int !drops /. float_of_int trials

let mean_steps ~simulate dist rng ~start ~trials =
  if trials < 1 then invalid_arg "Aggregate_chain.mean_steps: trials must be >= 1";
  let summary = Ftr_stats.Summary.create () in
  for _ = 1 to trials do
    Ftr_stats.Summary.add_int summary (simulate dist rng ~start)
  done;
  summary

let mean_single_point = mean_steps ~simulate:simulate_single_point

let mean_aggregate = mean_steps ~simulate:simulate_aggregate

(* Draw a full ∆ (both signs), sorted ascending, always containing ±1. *)
let sample_full dist rng =
  let acc = ref [ 1 ] in
  for d = 2 to dist.max_offset do
    if Rng.bernoulli rng (dist.p d) then acc := d :: !acc
  done;
  let neg = ref [ -1 ] in
  for d = 2 to dist.max_offset do
    if Rng.bernoulli rng (dist.p d) then neg := -d :: !neg
  done;
  let arr = Array.of_list (List.rev_append !neg !acc) in
  Array.sort Int.compare arr;
  arr

(* Two-sided greedy single-point chain (Section 4.2.1): from x bound for 0,
   jump to the x - δ of smallest absolute value; ties to the smaller
   magnitude of δ first encountered. |x| strictly decreases (δ = sign(x))
   so absorption is certain. *)
let simulate_two_sided dist rng ~start =
  if start < 0 then invalid_arg "Aggregate_chain.simulate_two_sided: negative start";
  let steps = ref 0 and x = ref start in
  while !x <> 0 do
    (* By symmetry treat x > 0; negative offsets only move a positive x
       away from 0, so the two candidates a greedy two-sided step can take
       are the nearest included offsets on either side of x. *)
    let ax = abs !x in
    let below = largest_included dist rng ~upto:ax in
    let above = smallest_included_above dist rng ~above:ax in
    let landed_below = ax - below in
    let landed =
      match above with
      | Some d when d - ax < landed_below -> ax - d (* overshoot, closer in absolute value *)
      | Some _ | None -> landed_below
    in
    x := (if !x > 0 then landed else -landed);
    incr steps
  done;
  !steps

let mean_two_sided = mean_steps ~simulate:simulate_two_sided
