module Torus = Ftr_metric.Torus
module Sample = Ftr_prng.Sample
module Csr = Ftr_graph.Adjacency.Csr
module I32 = Ftr_graph.Adjacency.I32

type t = {
  torus : Torus.t;
  adj : Csr.t; (* sorted per-row neighbour indices, flat form *)
  links : int;
  alpha : float;
}

let torus t = t.torus

let size t = Torus.size t.torus

let dims t = Torus.dims t.torus

let links t = t.links

let alpha t = t.alpha

let neighbors t u = Csr.row t.adj u

(* Offset table shared by all nodes: every non-zero offset vector weighted
   by d(offset)^-alpha, where d is the wraparound L1 distance. Kleinberg's
   construction generalised to any dimension; alpha = dims is his optimal
   exponent. *)
let build_offset_cdf torus ~alpha =
  let total = Torus.size torus in
  let offsets = Array.make (total - 1) 0 in
  let weights = Array.make (total - 1) 0.0 in
  let k = ref 0 in
  for off = 1 to total - 1 do
    let d = Torus.distance torus 0 off in
    offsets.(!k) <- off;
    weights.(!k) <- 1.0 /. Float.pow (float_of_int d) alpha;
    incr k
  done;
  (offsets, Sample.cdf_of_weights weights)

(* Add an offset vector (encoded as a point relative to the origin) to a
   point, axis by axis with wraparound. *)
let add_offset torus u off =
  let cu = Torus.coords torus u and co = Torus.coords torus off in
  let d = Torus.dims torus in
  let result = Array.make d 0 in
  for i = 0 to d - 1 do
    result.(i) <- (cu.(i) + co.(i)) mod Torus.side torus
  done;
  Torus.index torus result

let build ?alpha ?(links = 1) ~dims ~side rng =
  if dims < 1 then invalid_arg "Multidim.build: dims must be >= 1";
  if side < 3 then invalid_arg "Multidim.build: side must be >= 3";
  if links < 0 then invalid_arg "Multidim.build: negative link count";
  let torus = Torus.create ~dims ~side in
  let alpha = match alpha with Some a -> a | None -> float_of_int dims in
  let offsets, cdf = build_offset_cdf torus ~alpha in
  let rows =
    Array.init (Torus.size torus) (fun u ->
        let lattice = Torus.neighbors torus u in
        let long = ref [] in
        for _ = 1 to links do
          let off = offsets.(Sample.cdf_draw cdf rng) in
          long := add_offset torus u off :: !long
        done;
        let arr = Array.of_list (List.rev_append lattice !long) in
        Array.sort Int.compare arr;
        arr)
  in
  { torus; adj = Csr.of_rows rows; links; alpha }

type outcome = Delivered of { hops : int } | Failed of { hops : int; stuck_at : int }

let delivered = function Delivered _ -> true | Failed _ -> false

let hops = function Delivered { hops } -> hops | Failed { hops; _ } -> hops

type strategy = Terminate | Backtrack of { history : int }

(* Greedy routing with node failures and the Section 6 stuck-message
   strategies, lifted to the torus. The same semantics as {!Route} on the
   line: forward to the live neighbour closest to the target; when stuck,
   terminate or backtrack through a bounded history (where a backtracked
   node may route around a hole through a farther neighbour). *)
let route ?(alive = fun _ -> true) ?(strategy = Terminate) ?(max_hops = 1_000_000) t ~src ~dst =
  if not (Torus.contains t.torus src && Torus.contains t.torus dst) then
    invalid_arg "Multidim.route: node off the torus";
  if not (alive src && alive dst) then invalid_arg "Multidim.route: endpoint is dead";
  let dist u = Torus.distance t.torus u dst in
  (* Tried links keyed by their flat CSR slot: one hash probe per
     candidate instead of a List.mem walk over a per-node list. *)
  let { Csr.offsets; targets } = t.adj in
  let tried : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let best ~any cur =
    let limit = if any then max_int else dist cur in
    let base = I32.get offsets cur in
    let best = ref (-1) and best_idx = ref (-1) and best_d = ref limit in
    for k = 0 to I32.get offsets (cur + 1) - base - 1 do
      let v = I32.get targets (base + k) in
      if alive v && not (Hashtbl.mem tried (base + k)) then begin
        let d = dist v in
        if d < !best_d then begin
          best := v;
          best_idx := k;
          best_d := d
        end
      end
    done;
    if !best < 0 then None else Some (!best_idx, !best)
  in
  let record cur idx =
    match strategy with
    | Backtrack _ -> Hashtbl.replace tried (I32.get offsets cur + idx) ()
    | Terminate -> ()
  in
  match strategy with
  | Terminate ->
      let rec go cur h =
        if cur = dst then Delivered { hops = h }
        else if h >= max_hops then Failed { hops = h; stuck_at = cur }
        else
          match best ~any:false cur with
          | Some (_, v) -> go v (h + 1)
          | None -> Failed { hops = h; stuck_at = cur }
      in
      go src 0
  | Backtrack { history = limit } ->
      if limit < 1 then invalid_arg "Multidim.route: history must be >= 1";
      let trim l =
        let rec take k = function
          | [] -> []
          | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
        in
        take limit l
      in
      let rec forward cur h hist =
        if cur = dst then Delivered { hops = h }
        else if h >= max_hops then Failed { hops = h; stuck_at = cur }
        else
          match best ~any:false cur with
          | Some (idx, v) ->
              record cur idx;
              forward v (h + 1) (trim (cur :: hist))
          | None -> backtrack cur h hist
      and backtrack stuck h = function
        | [] -> Failed { hops = h; stuck_at = stuck }
        | y :: rest ->
            let h = h + 1 in
            if h >= max_hops then Failed { hops = h; stuck_at = y }
            else begin
              match best ~any:true y with
              | Some (idx, v) ->
                  record y idx;
                  forward v (h + 1) (trim (y :: rest))
              | None -> backtrack y h rest
            end
      in
      forward src 0 []

let route_hops ?alive ?strategy ?max_hops t ~src ~dst =
  match route ?alive ?strategy ?max_hops t ~src ~dst with
  | Delivered { hops } -> hops
  | Failed _ -> invalid_arg "Multidim.route_hops: routing failed"
