(* Section 7's second future-work direction: "study the security properties
   of greedy routing schemes to see how they can be adapted to provide ...
   robustness against Byzantine failures."

   We model the classic blackhole adversary: a Byzantine node accepts a
   message and silently drops it. A naive sender learns nothing and the
   search dies. A defended sender keeps a per-search suspect list: when no
   progress acknowledgement arrives, it writes the suspect off and retries
   its next-best neighbour — the same machinery that routes around crashed
   nodes, at one wasted message per Byzantine encounter. *)

type outcome =
  | Delivered of { hops : int; wasted : int }  (** [wasted] = messages eaten by blackholes *)
  | Failed of { hops : int; wasted : int }

let delivered = function Delivered _ -> true | Failed _ -> false

let hops = function Delivered { hops; _ } | Failed { hops; _ } -> hops

let wasted = function Delivered { wasted; _ } | Failed { wasted; _ } -> wasted

type defense =
  | Naive  (** senders never learn; the first blackhole on the path wins *)
  | Retry  (** senders time out, blacklist the suspect and take the next-best link *)
  | Retry_backtrack of { history : int }
      (** {!Retry} plus the Section 6 backtracking strategy when a node's
          candidates are exhausted *)

(* The misrouting adversary: instead of dropping, a Byzantine node
   forwards the message to its neighbour FARTHEST from the target — silent
   sabotage no timeout can see. Honest greedy progress must outrun the
   adversarial regressions; the TTL decides who wins. *)
let route_misroute ?(max_hops = 1_000) net ~byzantine ~src ~dst =
  if src < 0 || src >= Network.size net || dst < 0 || dst >= Network.size net then
    invalid_arg "Byzantine.route_misroute: node out of range";
  if byzantine src || byzantine dst then
    invalid_arg "Byzantine.route_misroute: endpoint is Byzantine";
  let dist v = Network.distance net v dst in
  let { Ftr_graph.Adjacency.Csr.offsets; targets } = Network.csr net in
  let module I32 = Ftr_graph.Adjacency.I32 in
  let rec go cur h sabotaged =
    if cur = dst then Delivered { hops = h; wasted = sabotaged }
    else if h >= max_hops then Failed { hops = h; wasted = sabotaged }
    else if byzantine cur then begin
      (* Sabotage: hand the message to the worst neighbour. *)
      if I32.get offsets (cur + 1) = I32.get offsets cur then
        invalid_arg "Byzantine.route_misroute: node has no neighbours";
      let first = I32.get targets (I32.get offsets cur) in
      let worst = ref first and worst_d = ref (dist first) in
      for k = I32.get offsets cur to I32.get offsets (cur + 1) - 1 do
        let v = I32.get targets k in
        let d = dist v in
        if d > !worst_d then begin
          worst := v;
          worst_d := d
        end
      done;
      go !worst (h + 1) (sabotaged + 1)
    end
    else begin
      (* Honest greedy step. *)
      let cur_d = dist cur in
      let best = ref (-1) and best_d = ref cur_d in
      for k = I32.get offsets cur to I32.get offsets (cur + 1) - 1 do
        let v = I32.get targets k in
        let d = dist v in
        if d < !best_d then begin
          best := v;
          best_d := d
        end
      done;
      if !best < 0 then Failed { hops = h; wasted = sabotaged } else go !best (h + 1) sabotaged
    end
  in
  go src 0 0

let route ?(defense = Naive) ?(max_hops = 1_000_000) net ~byzantine ~src ~dst =
  if src < 0 || src >= Network.size net || dst < 0 || dst >= Network.size net then
    invalid_arg "Byzantine.route: node out of range";
  if byzantine src || byzantine dst then invalid_arg "Byzantine.route: endpoint is Byzantine";
  (* Tried links keyed by their CSR slot — a flat int key per (node, idx)
     pair, so membership is one hash probe instead of a List.mem walk. *)
  let { Ftr_graph.Adjacency.Csr.offsets; targets } = Network.csr net in
  let module I32 = Ftr_graph.Adjacency.I32 in
  let tried : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let record cur idx = Hashtbl.replace tried (I32.get offsets cur + idx) () in
  let dist v = Network.distance net v dst in
  (* Senders cannot see who is Byzantine, so candidates include them. *)
  let best ~any cur =
    let limit = if any then max_int else dist cur in
    let base = I32.get offsets cur in
    let best = ref (-1) and best_idx = ref (-1) and best_d = ref limit in
    for k = 0 to I32.get offsets (cur + 1) - base - 1 do
      let v = I32.get targets (base + k) in
      if not (Hashtbl.mem tried (base + k)) then begin
        let d = dist v in
        if d < !best_d then begin
          best := v;
          best_idx := k;
          best_d := d
        end
      end
    done;
    if !best < 0 then None else Some (!best_idx, !best)
  in
  match defense with
  | Naive ->
      (* Pure greedy; stepping onto a blackhole ends the search. *)
      let rec go cur h =
        if cur = dst then Delivered { hops = h; wasted = 0 }
        else if h >= max_hops then Failed { hops = h; wasted = 0 }
        else
          match best ~any:false cur with
          | None -> Failed { hops = h; wasted = 0 }
          | Some (_, v) ->
              if byzantine v then Failed { hops = h + 1; wasted = 1 } else go v (h + 1)
      in
      go src 0
  | Retry | Retry_backtrack _ ->
      let history_limit =
        match defense with Retry_backtrack { history } -> history | Retry | Naive -> 0
      in
      let trim l =
        let rec take k = function
          | [] -> []
          | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
        in
        take history_limit l
      in
      let wasted = ref 0 in
      let rec forward cur h hist =
        if cur = dst then Delivered { hops = h; wasted = !wasted }
        else if h >= max_hops then Failed { hops = h; wasted = !wasted }
        else
          match best ~any:false cur with
          | Some (idx, v) ->
              record cur idx;
              if byzantine v then begin
                (* The blackhole ate one message; the sender times out and
                   tries its next candidate. *)
                incr wasted;
                forward cur (h + 1) hist
              end
              else forward v (h + 1) (trim (cur :: hist))
          | None -> backtrack cur h hist
      and backtrack stuck h = function
        | [] -> Failed { hops = h; wasted = !wasted }
        | y :: rest ->
            let h = h + 1 in
            if h >= max_hops then Failed { hops = h; wasted = !wasted }
            else begin
              match best ~any:true y with
              | Some (idx, v) ->
                  record y idx;
                  if byzantine v then begin
                    incr wasted;
                    backtrack stuck h (y :: rest)
                  end
                  else forward v (h + 1) (trim (y :: rest))
              | None -> backtrack y h rest
            end
      in
      forward src 0 []

type sweep_row = {
  byzantine_fraction : float;
  naive_failed : float;
  retry_failed : float;
  backtrack_failed : float;
  retry_wasted : float;  (** mean messages eaten per search under Retry *)
}

(* Failed-search fractions for the three defenses as the Byzantine
   population grows — the shape of the paper's security question. *)
let sweep ?(n = 4096) ?links ?(fractions = [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.4 ]) ?(networks = 3)
    ?(messages = 200) ~seed () =
  let links = match links with Some l -> l | None -> int_of_float (Theory.lg n) in
  let rng = Ftr_prng.Rng.of_int seed in
  List.map
    (fun fraction ->
      let naive = ref 0 and retry = ref 0 and back = ref 0 and eaten = ref 0 and total = ref 0 in
      for _ = 1 to networks do
        let r = Ftr_prng.Rng.split rng in
        let net = Network.build_ideal ~n ~links r in
        (* Byzantine nodes are a uniformly random subset. *)
        let mask = Failure.random_node_fraction r ~n ~fraction in
        let byzantine v = not (Ftr_graph.Bitset.get mask v) in
        let honest () =
          let rec go () =
            let v = Ftr_prng.Rng.int r n in
            if byzantine v then go () else v
          in
          go ()
        in
        for _ = 1 to messages do
          let src = honest () and dst = honest () in
          incr total;
          if not (delivered (route ~defense:Naive net ~byzantine ~src ~dst)) then incr naive;
          let rr = route ~defense:Retry net ~byzantine ~src ~dst in
          if not (delivered rr) then incr retry;
          eaten := !eaten + wasted rr;
          if
            not
              (delivered
                 (route ~defense:(Retry_backtrack { history = 5 }) net ~byzantine ~src ~dst))
          then incr back
        done
      done;
      let frac x = float_of_int x /. float_of_int !total in
      {
        byzantine_fraction = fraction;
        naive_failed = frac !naive;
        retry_failed = frac !retry;
        backtrack_failed = frac !back;
        retry_wasted = float_of_int !eaten /. float_of_int !total;
      })
    fractions
