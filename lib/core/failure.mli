(** Failure models of Sections 4.3.3–4.3.4 and 6.

    A failure view answers two questions during routing: is node [i] alive,
    and is the [idx]-th outgoing link of node [src] usable. Immediate
    (nearest-neighbour) links are kept alive by the link-failure builders,
    matching the paper's assumption that a message can always crawl. *)

type t

val none : t
(** Everything alive. *)

val make :
  ?node_alive:(int -> bool) -> ?link_alive:(src:int -> idx:int -> bool) -> unit -> t
(** Assemble a view from predicates (defaults: everything alive). *)

val node_alive : t -> int -> bool
(** Whether node index [i] is alive. *)

val link_alive : t -> src:int -> idx:int -> bool
(** Whether the [idx]-th outgoing link of [src] is usable. *)

val compose : t -> t -> t
(** Both views must agree that an entity is alive. Concrete fast-path forms
    survive composition with {!none}-like views; any other combination
    falls back to the general closure form. *)


(** {1 Node failures (Section 6, Theorem 18)} *)

val of_node_mask : Ftr_graph.Bitset.t -> t
(** View from an aliveness bitset (set bit = alive). *)

val random_node_fraction : Ftr_prng.Rng.t -> n:int -> fraction:float -> Ftr_graph.Bitset.t
(** Exactly [⌊fraction·n⌋] uniformly random nodes dead — the Section 6
    experiment setup. @raise Invalid_argument unless [0 <= fraction < 1]. *)

val bernoulli_node_mask : Ftr_prng.Rng.t -> n:int -> death_p:float -> Ftr_graph.Bitset.t
(** Each node independently dead with probability [death_p] (Theorem 18's
    model). *)

(** {1 Link failures (Theorems 15–16)} *)

type link_mask
(** Per-link aliveness, one bit per (node, neighbour-index). *)

val random_link_mask : Ftr_prng.Rng.t -> Network.t -> present_p:float -> link_mask
(** Every long-distance link independently present with probability
    [present_p]; nearest-neighbour links always present. *)

val link_mask_alive : link_mask -> src:int -> idx:int -> bool
(** Query the mask directly. *)

val of_link_mask : link_mask -> t
(** Failure view from a link mask. *)

(** {1 Fast-path views}

    The routing inner loop tests liveness millions of times; these
    accessors expose the concrete masks behind the common failure models so
    the loop can test a bit directly instead of calling a closure. Each
    returns [None] (or [false]) when the view is the general closure form,
    in which case callers must go through {!node_alive}/{!link_alive}. *)

val node_alive_bits : t -> Ftr_graph.Bitset.t option
(** The aliveness bitset behind {!of_node_mask} views (set bit = alive). *)

val node_all_alive : t -> bool
(** Whether the node view is statically "everything alive". *)

val link_alive_mask : t -> link_mask option
(** The per-link mask behind {!of_link_mask} views. *)

val link_all_alive : t -> bool
(** Whether the link view is statically "everything alive". *)

val node_view_label : t -> string
(** Stable name of the resolved node view — ["all-alive"], ["bitset"] or
    ["predicate"] — as printed in flight-recorder trace headers. *)

val link_view_label : t -> string
(** Stable name of the resolved link view — ["all-alive"], ["mask"] or
    ["predicate"]. *)
