(** Many routes per {!Ftr_exec.Pool} job — the batch layer that turns the
    single-message router into an aggregate-throughput engine.

    [run] partitions the request vector into fixed-size chunks (a pure
    function of the pair count, never of the worker count), routes each
    chunk as one pool job with per-domain scratch, and merges the results
    in request order. The merged outcome vector is byte-identical across
    [--jobs 1/2/4] and [FTR_EXEC_SEQ=1]: per-route generators are derived
    from [(seed, route index)] with {!Ftr_exec.Seed.rng_for}, so no route
    observes another's randomness regardless of scheduling. *)

val default_chunk : int
(** Routes per pool job when [?chunk] is omitted (1024). *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?failures:Failure.t ->
  ?side:Route.side ->
  ?strategy:Route.strategy ->
  ?max_hops:int ->
  ?seed:int ->
  Network.t ->
  pairs:(int * int) array ->
  Route.outcome array
(** [run net ~pairs] routes every [(src, dst)] pair and returns the
    outcomes in request order. [jobs] defaults to
    {!Ftr_exec.Pool.default_jobs}; [chunk] (default {!default_chunk})
    trades scheduling overhead against load balance; [seed] (default 0)
    feeds the per-route generator derivation used by
    {!Route.Random_reroute}. Route options mean exactly what they mean on
    {!Route.route}.
    @raise Invalid_argument if [chunk < 1] or any endpoint is out of
    range or dead. *)
