module IntSet = Set.Make (Int)
module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample

type replacement = Proportional | Oldest

type arrival = Random_order | Sequential

(* Nearest member of [present] to point [w]: the owner of w's basin of
   attraction. Ties go to the left. *)
let nearest_present present w =
  let above = IntSet.find_first_opt (fun (x : int) -> x >= w) present in
  let below = IntSet.find_last_opt (fun (x : int) -> x <= w) present in
  match (below, above) with
  | None, None -> None
  | Some b, None -> Some b
  | None, Some a -> Some a
  | Some b, Some a -> if w - b <= a - w then Some b else Some a

let build ?(exponent = 1.0) ?(replacement = Proportional) ?(arrival = Random_order) ~n ~links rng
    =
  if n < 2 then invalid_arg "Heuristic.build: need at least two nodes";
  if links < 1 then invalid_arg "Heuristic.build: need at least one long link";
  Ftr_obs.Span.time "heuristic.build" @@ fun () ->
  let pl = Sample.power_law ~exponent ~max_length:(n - 1) in
  let long = Array.make_matrix n links (-1) in
  let birth = Array.make_matrix n links 0 in
  let tick = ref 0 in
  let next_tick () =
    incr tick;
    !tick
  in
  let present = ref IntSet.empty in
  (* Owner of the basin containing the 1/d-sampled sink for a node at
     position [src]. None while [src] is the only point that would exist. *)
  let sample_basin_owner ~src =
    if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr "heuristic_basin_lookups_total";
    if IntSet.is_empty !present then None
    else
      let w = Network.sample_long_target pl rng ~n ~src in
      nearest_present !present w
  in
  (* Node [u] is asked to redirect one of its existing long links to the
     newly arrived [v] (Section 5). Acceptance probability p_{k+1}/sum p_j
     preserves the 1/d invariant; the victim is chosen proportionally to
     its own link probability, or by age under the Oldest strategy. *)
  let consider_redirect ~u ~v =
    let weights = Array.map (fun t -> if t < 0 then 0.0 else 1.0 /. float_of_int (abs (u - t))) long.(u) in
    let sum_old = Array.fold_left ( +. ) 0.0 weights in
    if sum_old > 0.0 then begin
      let p_new = 1.0 /. float_of_int (abs (u - v)) in
      if Rng.float rng < p_new /. (sum_old +. p_new) then begin
        let victim =
          match replacement with
          | Oldest ->
              let best = ref (-1) in
              Array.iteri
                (fun i t ->
                  if t >= 0 && (!best < 0 || birth.(u).(i) < birth.(u).(!best)) then best := i)
                long.(u);
              !best
          | Proportional ->
              let target = Rng.float rng *. sum_old in
              let acc = ref 0.0 and chosen = ref (-1) in
              Array.iteri
                (fun i w ->
                  if !chosen < 0 && w > 0.0 then begin
                    acc := !acc +. w;
                    if !acc > target then chosen := i
                  end)
                weights;
              if !chosen < 0 then
                (* Floating-point slack at the top of the CDF: take the
                   last live slot. *)
                Array.iteri (fun i t -> if t >= 0 then chosen := i) long.(u);
              !chosen
        in
        if victim >= 0 then begin
          if Ftr_obs.Flag.enabled () then begin
            Ftr_obs.Metrics.incr
              ~labels:
                [
                  ( "replacement",
                    match replacement with Proportional -> "proportional" | Oldest -> "oldest" );
                ]
              "heuristic_redirects_total";
            (* Construction-phase forensics for the flight-recorder stream:
               which link the Section 5 redirect rule rewired, and what it
               evicted. *)
            Ftr_obs.Events.emit ~kind:"heuristic.redirect"
              [
                ("node", Ftr_obs.Json.Int u);
                ("newcomer", Ftr_obs.Json.Int v);
                ("evicted", Ftr_obs.Json.Int long.(u).(victim));
                ("slot", Ftr_obs.Json.Int victim);
              ]
          end;
          long.(u).(victim) <- v;
          birth.(u).(victim) <- next_tick ()
        end
      end
    end
  in
  let order =
    match arrival with
    | Random_order -> Rng.permutation rng n
    | Sequential -> Array.init n (fun i -> i)
  in
  Array.iter
    (fun v ->
      (* Outgoing links: ℓ sinks sampled by the 1/d law, each claimed by
         its basin owner. *)
      for s = 0 to links - 1 do
        match sample_basin_owner ~src:v with
        | Some u ->
            long.(v).(s) <- u;
            birth.(v).(s) <- next_tick ()
        | None -> ()
      done;
      (* Incoming links: v estimates how many links "should" end at it with
         a Poisson(ℓ) draw and solicits redirects from the basin owners of
         1/d-sampled points. *)
      let solicit = Sample.poisson rng ~lambda:(float_of_int links) in
      for _ = 1 to solicit do
        match sample_basin_owner ~src:v with
        | Some u -> consider_redirect ~u ~v
        | None -> ()
      done;
      present := IntSet.add v !present)
    order;
  (* The very first arrival had no possible sinks; give its empty slots
     fresh draws now that the space is fully populated. *)
  for v = 0 to n - 1 do
    for s = 0 to links - 1 do
      if long.(v).(s) < 0 then begin
        let rec fresh tries =
          let w = Network.sample_long_target pl rng ~n ~src:v in
          match nearest_present (IntSet.remove v !present) w with
          | Some u -> u
          | None -> if tries > 100 then (v + 1) mod n else fresh (tries + 1)
        in
        long.(v).(s) <- fresh 0;
        birth.(v).(s) <- next_tick ()
      end
    done
  done;
  let neighbors =
    Array.init n (fun v ->
        let immediate = (if v > 0 then [ v - 1 ] else []) @ if v < n - 1 then [ v + 1 ] else [] in
        let arr = Array.of_list (List.rev_append immediate (Array.to_list long.(v))) in
        Array.sort Int.compare arr;
        arr)
  in
  Network.of_neighbor_indices ~line_size:n ~positions:(Array.init n (fun i -> i)) ~neighbors
    ~links ()

let length_distribution net =
  let n = Network.line_size net in
  let counts = Array.make n 0 in
  let total = ref 0 in
  List.iter
    (fun d ->
      if d >= 1 && d < n then begin
        counts.(d) <- counts.(d) + 1;
        incr total
      end)
    (Network.long_link_lengths net);
  if !total = 0 then Array.make n 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int !total) counts

let ideal_distribution ?(exponent = 1.0) ~n () =
  if n < 2 then invalid_arg "Heuristic.ideal_distribution: need n >= 2";
  let pmf = Array.make n 0.0 in
  let total = ref 0.0 in
  for d = 1 to n - 1 do
    let w = 1.0 /. Float.pow (float_of_int d) exponent in
    pmf.(d) <- w;
    total := !total +. w
  done;
  for d = 1 to n - 1 do
    pmf.(d) <- pmf.(d) /. !total
  done;
  pmf

(* Repair after a failure wave (Section 5: "the same heuristic can be used
   for regeneration of links when a node crashes"): the survivors compact
   into a smaller network; links between survivors are kept, and every
   link that pointed at a dead node is regenerated with a fresh 1/d draw
   conditioned on landing on a survivor — which is exactly the Theorem 17
   distribution, so "failures leave behind yet another random graph". *)
let repair ?(exponent = 1.0) ~alive net rng =
  let n = Network.size net in
  let live = ref [] in
  for i = n - 1 downto 0 do
    if alive i then live := i :: !live
  done;
  let live = Array.of_list !live in
  let m = Array.length live in
  if m < 2 then invalid_arg "Heuristic.repair: fewer than two survivors";
  Ftr_obs.Span.time "heuristic.repair" @@ fun () ->
  (* Old index -> new compacted index. *)
  let index_of = Array.make n (-1) in
  Array.iteri (fun new_i old_i -> index_of.(old_i) <- new_i) live;
  let line_size = Network.line_size net in
  let pl = Sample.power_law ~exponent ~max_length:(line_size - 1) in
  let present = Array.make line_size false in
  Array.iter (fun old_i -> present.(Network.position net old_i) <- true) live;
  let position_index = Hashtbl.create m in
  Array.iteri (fun new_i old_i -> Hashtbl.replace position_index (Network.position net old_i) new_i)
    live;
  let sample_live_index ~src_pos ~self =
    let rec attempt tries =
      let target = Network.sample_long_target pl rng ~n:line_size ~src:src_pos in
      match Hashtbl.find_opt position_index target with
      | Some j when j <> self -> j
      | Some _ | None ->
          if tries > 10_000 then (self + 1) mod m else attempt (tries + 1)
    in
    attempt 0
  in
  let neighbors =
    Array.mapi
      (fun new_i old_i ->
        let pos = Network.position net old_i in
        (* Ring links to the nearest survivors. *)
        let immediate =
          (if new_i > 0 then [ new_i - 1 ] else [])
          @ if new_i < m - 1 then [ new_i + 1 ] else []
        in
        let long = ref [] in
        (* Skip the old ring links — the first occurrence of each adjacent
           index; later duplicates are genuine long links. The new ring
           above replaces them. *)
        let seen_left = ref false and seen_right = ref false in
        Network.iter_neighbors net old_i (fun v ->
            let is_ring =
              (v = old_i - 1 && (not !seen_left)
              &&
              (seen_left := true;
               true))
              || v = old_i + 1
                 && (not !seen_right)
                 &&
                 (seen_right := true;
                  true)
            in
            if not is_ring then
              if alive v then long := index_of.(v) :: !long
              else long := sample_live_index ~src_pos:pos ~self:new_i :: !long);
        let arr = Array.of_list (List.rev_append immediate !long) in
        Array.sort Int.compare arr;
        arr)
      live
  in
  Network.of_neighbor_indices
    ~geometry:(Network.geometry net)
    ~line_size
    ~positions:(Array.map (Network.position net) live)
    ~neighbors ~links:(Network.links net) ()
