(** Experiment drivers for every table and figure in the paper's
    evaluation. Each function returns structured rows; the bench harness
    and the CLI do the printing. All randomness flows from the [seed]
    argument, so every row is reproducible. *)

(** {1 Measurement kernel} *)

type measurement = {
  failed_fraction : float;  (** fraction of searches that failed *)
  mean_hops : float;
      (** mean delivery time of successful searches, counting every message
          hop including backtracking steps *)
  hops_ci95 : float;  (** 95% confidence half-width of [mean_hops] *)
  mean_path_hops : float;
      (** mean loop-erased route length of successful searches — the
          delivery-time scale of Figure 6(b) (identical to [mean_hops] for
          strategies that never revisit a node) *)
  messages : int;  (** number of messages routed *)
}

val measure :
  ?failures:Failure.t ->
  ?side:Route.side ->
  ?strategy:Route.strategy ->
  ?pairs:(int * int) array ->
  messages:int ->
  rng:Ftr_prng.Rng.t ->
  Network.t ->
  measurement
(** Route [messages] messages between random live pairs (or the supplied
    [pairs]) and summarise, as in Section 6. *)

val random_live_pairs :
  Ftr_prng.Rng.t -> Failure.t -> n:int -> messages:int -> (int * int) array
(** Pre-draw (src, dst) pairs of live nodes, for variance reduction when
    comparing strategies on identical traffic. *)

(** {1 Figure 5 — heuristic link-length distribution} *)

type figure5_point = { length : int; derived : float; ideal : float; error : float }

type figure5_result = {
  points : figure5_point list;  (** log-spaced sample of the curve *)
  max_abs_error : float;  (** paper: ≈ 0.022 *)
  max_abs_error_length : int;  (** paper: at length 2 *)
  total_variation : float;
  networks : int;
}

val figure5 :
  ?replacement:Heuristic.replacement ->
  ?networks:int ->
  n:int ->
  links:int ->
  seed:int ->
  unit ->
  figure5_result
(** Average the derived pmf over [networks] constructions (paper: 10
    networks of 2^14 nodes, 14 links) and compare with the ideal 1/d law. *)

(** {1 Figure 6 — failure strategies} *)

type figure6_row = {
  fail_fraction : float;
  terminate : measurement;
  reroute : measurement;
  backtrack : measurement;
}

val figure6 :
  ?n:int ->
  ?links:int ->
  ?networks:int ->
  ?messages:int ->
  ?fractions:float list ->
  seed:int ->
  unit ->
  figure6_row list
(** Fail a fraction of nodes, route identical traffic under the three
    Section 6 strategies. Paper scale: n = 2^17, 17 links, 1000 sims of
    100 messages. *)

(** {1 Figure 7 — ideal vs constructed network} *)

type figure7_row = { death_p : float; ideal_failed : float; constructed_failed : float }

val figure7 :
  ?n:int ->
  ?links:int ->
  ?networks:int ->
  ?messages:int ->
  ?probs:float list ->
  seed:int ->
  unit ->
  figure7_row list
(** Failed-search fraction of the ideal builder vs the Section 5 heuristic
    on the same failure masks (paper: 16384 nodes, 10 networks, 1000
    messages). *)

(** {1 Table 1 — bounds vs measurement} *)

type scaling_row = {
  label : string;
  parameter : float;  (** the swept quantity (n, ℓ, p, exponent, ...) *)
  measured : float;  (** mean delivery time (hops) *)
  bound : float;  (** the corresponding Table 1 formula *)
  ratio : float;  (** measured / bound *)
}

val sweep_single_link :
  ?ns:int list -> ?networks:int -> ?messages:int -> seed:int -> unit -> scaling_row list
(** Theorem 12: ℓ = 1, bound 2H_n². *)

val sweep_multi_link :
  ?n:int -> ?links_list:int list -> ?networks:int -> ?messages:int -> seed:int -> unit ->
  scaling_row list
(** Theorem 13: delivery time scales as log²n / ℓ. *)

val sweep_deterministic :
  ?ns:int list -> ?base:int -> ?messages:int -> seed:int -> unit -> scaling_row list
(** Theorem 14: digit-fixing delivers in ≤ ⌈log_b n⌉ hops. *)

val sweep_link_failure :
  ?n:int -> ?links:int -> ?probs:float list -> ?networks:int -> ?messages:int -> seed:int ->
  unit -> scaling_row list
(** Theorem 15: randomized links, survival probability p. *)

val sweep_geometric_link_failure :
  ?n:int -> ?base:int -> ?probs:float list -> ?networks:int -> ?messages:int -> seed:int ->
  unit -> scaling_row list
(** Theorem 16: geometric links, survival probability p. *)

val sweep_binomial_nodes :
  ?n:int -> ?links:int -> ?probs:float list -> ?networks:int -> ?messages:int -> seed:int ->
  unit -> scaling_row list
(** Theorem 17: binomially present nodes; delivery time is unchanged. *)

val sweep_node_failure :
  ?n:int -> ?links:int -> ?probs:float list -> ?networks:int -> ?messages:int -> seed:int ->
  unit -> scaling_row list
(** Theorem 18: nodes die with probability p after linking. *)

val sweep_lower_bound :
  ?ns:int list -> ?links:int -> ?trials:int -> seed:int -> unit -> scaling_row list
(** Theorem 10: simulated one-sided routing vs the Ω(log²n / ℓ loglog n)
    leading term; ratios ≥ 1 support the bound. *)

val sweep_exponent :
  ?n:int -> ?links:int -> ?exponents:float list -> ?networks:int -> ?messages:int -> seed:int ->
  unit -> scaling_row list
(** Ablation: power-law exponents other than 1 (Kleinberg's brittleness). *)

val sweep_sides :
  ?n:int -> ?links:int -> ?networks:int -> ?messages:int -> seed:int -> unit -> scaling_row list
(** Ablation: one-sided vs two-sided greedy routing. *)

type backtrack_row = { history : int; result : measurement }

val sweep_backtrack_history :
  ?n:int -> ?links:int -> ?fraction:float -> ?histories:int list -> ?networks:int ->
  ?messages:int -> seed:int -> unit -> backtrack_row list
(** Ablation: backtracking history length (the paper fixes 5). *)

val sweep_geometry :
  ?n:int -> ?links:int -> ?networks:int -> ?messages:int -> seed:int -> unit -> scaling_row list
(** Extension: line vs circle (Section 7's other one-dimensional space) at
    matched parameters. *)

type dimension_row = {
  dims : int;
  nodes : int;
  mean_hops_nd : float;  (** backtracking delivery time under failures *)
  failed_nd : float;  (** failed fraction under failures *)
}

val sweep_dimensions :
  ?configs:(int * int) list ->
  ?links:int ->
  ?death_p:float ->
  ?networks:int ->
  ?messages:int ->
  seed:int ->
  unit ->
  dimension_row list
(** Extension (Section 7 future work): the construction in 1, 2 and 3
    dimensions at matched node counts, measured under node failures with
    backtracking. [configs] lists (dims, side) pairs. *)

type stretch_row = {
  stretch_links : int;
  mean_stretch : float;  (** greedy hops / shortest-path hops, averaged *)
  max_stretch : float;
  mean_greedy : float;
  mean_optimal : float;
}

val sweep_stretch :
  ?n:int -> ?links_list:int list -> ?pairs:int -> seed:int -> unit -> stretch_row list
(** Ablation: the price of locality — greedy routing versus global
    shortest paths on the same overlays. *)

(** {1 Parallel drivers}

    Multicore siblings of the drivers above, built on {!Ftr_exec}. Each
    job draws from its own [Ftr_exec.Seed]-derived stream keyed by job
    index, and results merge in index order, so the output is a pure
    function of the arguments — byte-identical for any [?jobs] (which
    defaults to [Ftr_exec.Pool.default_jobs]) and for the
    [FTR_EXEC_SEQ=1] sequential fallback. They are {e siblings}, not
    drop-in equivalents, of the sequential drivers: those thread a single
    generator through the run and so produce different (equally valid)
    samples of the same distributions. *)

val measure_par :
  ?failures:Failure.t ->
  ?side:Route.side ->
  ?strategy:Route.strategy ->
  ?shards:int ->
  ?jobs:int ->
  pairs:(int * int) array ->
  seed:int ->
  Network.t ->
  measurement
(** {!measure} over pre-drawn [pairs], split into [shards] fixed slices
    (default 16) routed as independent jobs. Shard boundaries depend only
    on [shards], never on [jobs]. *)

val figure5_par :
  ?replacement:Heuristic.replacement ->
  ?networks:int ->
  ?jobs:int ->
  n:int ->
  links:int ->
  seed:int ->
  unit ->
  figure5_result
(** {!figure5} with one job per network construction. *)

val figure6_par :
  ?n:int ->
  ?links:int ->
  ?networks:int ->
  ?messages:int ->
  ?fractions:float list ->
  ?jobs:int ->
  seed:int ->
  unit ->
  figure6_row list
(** {!figure6} as a [fractions × networks] sweep — one job per (fraction,
    network) pair, each routing identical traffic under all three
    strategies. *)

val table1_grid :
  ?jobs:int ->
  ?ns:int list ->
  ?big:int ->
  ?networks:int ->
  ?messages:int ->
  ?trials:int ->
  seed:int ->
  unit ->
  (string * scaling_row list) list
(** The whole Table 1 battery (Theorems 12–18 and the Theorem 10 lower
    bound) as captioned sections run as pool jobs. Every section derives
    its own generator from [seed], exactly as the bench harness calls the
    sequential sweeps, so the rows match a sequential run byte for
    byte. *)
