module I32 = Ftr_graph.Adjacency.I32
module Csr = Ftr_graph.Adjacency.Csr

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let format_version = 1

let magic = "FTRSNAP1"

(* Written in native order; a foreign-endian writer produces the byteswap
   of this value, which [check_header] names explicitly. *)
let endian_tag = 0x0A0B0C0Dl

let endian_tag_swapped = 0x0D0C0B0Al

let header_bytes = 64

(* Header field offsets (see snapshot.mli for the format table). *)
let off_magic = 0
let off_endian = 8
let off_version = 12
let off_geometry = 16
let off_line_size = 20
let off_nodes = 28
let off_edges = 36
let off_links = 44

type info = {
  version : int;
  geometry : Network.geometry;
  line_size : int;
  nodes : int;
  edges : int;
  links : int;
  file_bytes : int;
}

let payload_words ~nodes ~edges = nodes + (nodes + 1) + edges

let expected_bytes ~nodes ~edges = header_bytes + (4 * payload_words ~nodes ~edges)

let encode_header net =
  let b = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 b off_magic (String.length magic);
  Bytes.set_int32_ne b off_endian endian_tag;
  Bytes.set_int32_ne b off_version (Int32.of_int format_version);
  Bytes.set_int32_ne b off_geometry
    (match Network.geometry net with Network.Line -> 0l | Network.Circle -> 1l);
  Bytes.set_int64_ne b off_line_size (Int64.of_int (Network.line_size net));
  Bytes.set_int64_ne b off_nodes (Int64.of_int (Network.size net));
  Bytes.set_int64_ne b off_edges (Int64.of_int (Csr.edge_count (Network.csr net)));
  Bytes.set_int32_ne b off_links (Int32.of_int (Network.links net));
  b

(* Decode and cross-check everything the header claims; every exit is a
   [Corrupt] with a message naming the defect. [file_bytes] lets the size
   the header implies be checked against the actual file before any
   payload access — a truncated file is refused here, never mapped. *)
let decode_header ~file_bytes b =
  if Bytes.sub_string b off_magic (String.length magic) <> magic then
    corrupt "bad magic (not a network snapshot): %S"
      (Bytes.sub_string b off_magic (String.length magic));
  let tag = Bytes.get_int32_ne b off_endian in
  if Int32.equal tag endian_tag_swapped then
    corrupt "byte order mismatch: snapshot written on an opposite-endian host";
  if not (Int32.equal tag endian_tag) then
    corrupt "corrupt endianness tag 0x%08lx" tag;
  let version = Int32.to_int (Bytes.get_int32_ne b off_version) in
  if version <> format_version then
    corrupt "unsupported snapshot version %d (this build reads version %d)" version
      format_version;
  let geometry =
    match Bytes.get_int32_ne b off_geometry with
    | 0l -> Network.Line
    | 1l -> Network.Circle
    | g -> corrupt "invalid geometry tag %ld" g
  in
  let int64_field name off =
    let v = Bytes.get_int64_ne b off in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int I32.max_value) > 0 then
      corrupt "%s %Ld outside the int32-indexable range" name v;
    Int64.to_int v
  in
  let line_size = int64_field "line_size" off_line_size in
  let nodes = int64_field "node count" off_nodes in
  let edges = int64_field "edge count" off_edges in
  let links = Int32.to_int (Bytes.get_int32_ne b off_links) in
  if links < 0 then corrupt "negative link count %d" links;
  if nodes > line_size then corrupt "%d nodes on a %d-point grid" nodes line_size;
  let expected = expected_bytes ~nodes ~edges in
  if file_bytes <> expected then
    corrupt "file is %d bytes, header implies %d (%s)" file_bytes expected
      (if file_bytes < expected then "truncated" else "trailing garbage");
  { version; geometry; line_size; nodes; edges; links; file_bytes }

let write_fully fd b =
  let len = Bytes.length b in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd b !sent (len - !sent)
  done

let read_header fd ~file_bytes =
  if file_bytes < header_bytes then
    corrupt "file is %d bytes, smaller than the %d-byte header" file_bytes header_bytes;
  let b = Bytes.create header_bytes in
  let got = ref 0 in
  (try
     let continue = ref true in
     while !continue && !got < header_bytes do
       let r = Unix.read fd b !got (header_bytes - !got) in
       if r = 0 then continue := false else got := !got + r
     done
   with Unix.Unix_error (e, _, _) -> corrupt "header read failed: %s" (Unix.error_message e));
  if !got < header_bytes then corrupt "short read of header (%d of %d bytes)" !got header_bytes;
  b

let with_fd path ~flags ~perm f =
  let fd = Unix.openfile path flags perm in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

let map_payload fd ~shared ~words =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int header_bytes) Bigarray.int32 Bigarray.c_layout shared
       [| words |])

let save net ~path =
  Ftr_obs.Span.time "snapshot.save" @@ fun () ->
  let nodes = Network.size net and adj = Network.csr net in
  let edges = Csr.edge_count adj in
  with_fd path ~flags:[ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] ~perm:0o644 @@ fun fd ->
  write_fully fd (encode_header net);
  (* A shared mapping extends the file to its full size; the three payload
     sections are then memcpy-speed blits of the in-memory vectors. *)
  let payload = map_payload fd ~shared:true ~words:(payload_words ~nodes ~edges) in
  I32.blit (Network.positions net) (I32.sub payload 0 nodes);
  I32.blit adj.Csr.offsets (I32.sub payload nodes (nodes + 1));
  if edges > 0 then I32.blit adj.Csr.targets (I32.sub payload ((2 * nodes) + 1) edges)

let info ~path =
  with_fd path ~flags:[ Unix.O_RDONLY ] ~perm:0 @@ fun fd ->
  let file_bytes = (Unix.fstat fd).Unix.st_size in
  decode_header ~file_bytes (read_header fd ~file_bytes)

let load ?(mmap = true) ?(validate = true) ~path () =
  Ftr_obs.Span.time "snapshot.load" @@ fun () ->
  with_fd path ~flags:[ Unix.O_RDONLY ] ~perm:0 @@ fun fd ->
  let file_bytes = (Unix.fstat fd).Unix.st_size in
  let h = decode_header ~file_bytes (read_header fd ~file_bytes) in
  let nodes = h.nodes and edges = h.edges in
  (* shared:false — a private copy-on-write mapping: read-only use serves
     straight from the page cache, and nothing this process does can write
     back to the file. *)
  let payload = map_payload fd ~shared:false ~words:(payload_words ~nodes ~edges) in
  let view off len = I32.sub payload off len in
  let copy off len =
    let a = I32.create len in
    if len > 0 then I32.blit (view off len) a;
    a
  in
  let slice = if mmap then view else copy in
  let positions = slice 0 nodes in
  let offsets = slice nodes (nodes + 1) in
  let targets = slice ((2 * nodes) + 1) edges in
  (* Cheap frame checks always run, even with [validate:false]: the two
     ends of the offsets vector anchor every row bound the router trusts. *)
  if I32.get offsets 0 <> 0 then corrupt "offsets do not start at 0";
  if I32.get offsets nodes <> edges then
    corrupt "offsets end at %d, header claims %d edges" (I32.get offsets nodes) edges;
  try
    Network.of_flat ~validate ~geometry:h.geometry ~line_size:h.line_size ~positions
      ~adj:{ Csr.offsets; targets } ~links:h.links ()
  with Invalid_argument msg -> corrupt "invalid payload: %s" msg
