module Rng = Ftr_prng.Rng
module Summary = Ftr_stats.Summary
module Gof = Ftr_stats.Gof

(* Shared measurement kernel: route [messages] messages between uniformly
   random live (src, dst) pairs and summarise failure fraction and the
   delivery time of successful searches, as in Section 6. *)

type measurement = {
  failed_fraction : float;
  mean_hops : float;
  hops_ci95 : float;
  mean_path_hops : float;
  messages : int;
}

let pick_live rng failures ~n =
  let rec attempt tries =
    if tries > 1_000_000 then invalid_arg "Experiment.pick_live: no live node found";
    let v = Rng.int rng n in
    if Failure.node_alive failures v then v else attempt (tries + 1)
  in
  attempt 0

let measure ?(failures = Failure.none) ?(side = Route.Two_sided) ?(strategy = Route.Terminate)
    ?pairs ~messages ~rng net =
  let n = Network.size net in
  let hops = Summary.create () in
  let path_hops = Summary.create () in
  let failed = ref 0 in
  let pair i =
    match pairs with
    | Some p -> p.(i)
    | None ->
        let src = pick_live rng failures ~n in
        let rec dst_loop tries =
          let d = pick_live rng failures ~n in
          if d <> src || tries > 1000 then d else dst_loop (tries + 1)
        in
        (src, dst_loop 0)
  in
  (* One scratch for the whole batch keeps backtracking runs off the
     minor heap (see {!Route.scratch}). *)
  let scratch = Route.scratch net in
  for i = 0 to messages - 1 do
    let src, dst = pair i in
    let path = ref [ src ] in
    let on_hop v = path := v :: !path in
    match Route.route ~failures ~side ~strategy ~rng ~on_hop ~scratch net ~src ~dst with
    | Route.Delivered { hops = h } ->
        Summary.add_int hops h;
        Summary.add_int path_hops (Route.loop_erased_length (List.rev !path))
    | Route.Failed _ -> incr failed
  done;
  {
    failed_fraction = float_of_int !failed /. float_of_int messages;
    mean_hops = Summary.mean hops;
    hops_ci95 = Summary.ci95_halfwidth hops;
    mean_path_hops = Summary.mean path_hops;
    messages;
  }

let random_live_pairs rng failures ~n ~messages =
  Array.init messages (fun _ ->
      let src = pick_live rng failures ~n in
      let rec dst_loop tries =
        let d = pick_live rng failures ~n in
        if d <> src || tries > 1000 then d else dst_loop (tries + 1)
      in
      (src, dst_loop 0))

(* ------------------------------------------------------------------ *)
(* Figure 5: link-length distribution of the Section 5 heuristic.      *)
(* ------------------------------------------------------------------ *)

type figure5_point = { length : int; derived : float; ideal : float; error : float }

type figure5_result = {
  points : figure5_point list;
  max_abs_error : float;
  max_abs_error_length : int;
  total_variation : float;
  networks : int;
}

(* Log-spaced report lengths 1, 2, 4, ..., plus 3 and 6 for detail at the
   head of the curve where the paper's largest error sits. *)
let report_lengths ~n =
  let rec powers acc v = if v >= n then List.rev acc else powers (v :: acc) (v * 2) in
  List.sort_uniq Int.compare (3 :: 6 :: powers [] 1)

(* Shared tail of the sequential and parallel drivers: average the
   accumulated pmf mass and compare with the ideal 1/d law. *)
let figure5_finish ~networks ~n sum =
  let derived = Array.map (fun s -> s /. float_of_int networks) sum in
  let ideal = Heuristic.ideal_distribution ~n () in
  let max_abs_error, max_abs_error_length = Gof.max_abs_error ~empirical:derived ~model:ideal in
  let total_variation = Gof.total_variation ~empirical:derived ~model:ideal in
  let points =
    List.map
      (fun d ->
        { length = d; derived = derived.(d); ideal = ideal.(d); error = derived.(d) -. ideal.(d) })
      (report_lengths ~n)
  in
  { points; max_abs_error; max_abs_error_length; total_variation; networks }

let figure5 ?(replacement = Heuristic.Proportional) ?(networks = 10) ~n ~links ~seed () =
  if networks < 1 then invalid_arg "Experiment.figure5: networks must be >= 1";
  let rng = Rng.of_int seed in
  let sum = Array.make n 0.0 in
  for _ = 1 to networks do
    let net = Heuristic.build ~replacement ~n ~links (Rng.split rng) in
    let pmf = Heuristic.length_distribution net in
    for d = 0 to n - 1 do
      sum.(d) <- sum.(d) +. pmf.(d)
    done
  done;
  figure5_finish ~networks ~n sum

(* ------------------------------------------------------------------ *)
(* Figure 6: the three stuck-message strategies under node failures.   *)
(* ------------------------------------------------------------------ *)

type figure6_row = {
  fail_fraction : float;
  terminate : measurement;
  reroute : measurement;
  backtrack : measurement;
}

let figure6 ?(n = 1 lsl 15) ?links ?(networks = 10) ?(messages = 100)
    ?(fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ]) ~seed () =
  let links = match links with Some l -> l | None -> int_of_float (Theory.lg n) in
  let rng = Rng.of_int seed in
  List.map
    (fun fraction ->
      let accum = Array.init 3 (fun _ -> (Summary.create (), Summary.create (), Summary.create ())) in
      for _ = 1 to networks do
        let net_rng = Rng.split rng in
        let net = Network.build_ideal ~n ~links net_rng in
        let mask = Failure.random_node_fraction net_rng ~n ~fraction in
        let failures = Failure.of_node_mask mask in
        let pairs = random_live_pairs net_rng failures ~n ~messages in
        List.iteri
          (fun si strategy ->
            let m = measure ~failures ~strategy ~pairs ~messages ~rng:net_rng net in
            let failed_s, hops_s, path_s = accum.(si) in
            Summary.add failed_s m.failed_fraction;
            if not (Float.is_nan m.mean_hops) then begin
              Summary.add hops_s m.mean_hops;
              Summary.add path_s m.mean_path_hops
            end)
          [
            Route.Terminate;
            Route.Random_reroute { attempts = 1 };
            Route.Backtrack { history = 5 };
          ]
      done;
      let result si =
        let failed_s, hops_s, path_s = accum.(si) in
        {
          failed_fraction = Summary.mean failed_s;
          mean_hops = Summary.mean hops_s;
          hops_ci95 = Summary.ci95_halfwidth hops_s;
          mean_path_hops = Summary.mean path_s;
          messages = networks * messages;
        }
      in
      { fail_fraction = fraction; terminate = result 0; reroute = result 1; backtrack = result 2 })
    fractions

(* ------------------------------------------------------------------ *)
(* Figure 7: ideal vs heuristically constructed network.               *)
(* ------------------------------------------------------------------ *)

type figure7_row = { death_p : float; ideal_failed : float; constructed_failed : float }

let figure7 ?(n = 16384) ?links ?(networks = 10) ?(messages = 1000)
    ?(probs = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]) ~seed () =
  let links = match links with Some l -> l | None -> int_of_float (Theory.lg n) in
  let rng = Rng.of_int seed in
  (* Build the networks once and reuse them across failure probabilities,
     as the paper's "10 iterations" does. *)
  let nets =
    List.init networks (fun _ ->
        let r = Rng.split rng in
        (Network.build_ideal ~n ~links r, Heuristic.build ~n ~links r))
  in
  List.map
    (fun death_p ->
      let ideal_s = Summary.create () and constructed_s = Summary.create () in
      List.iter
        (fun (ideal_net, constructed_net) ->
          let r = Rng.split rng in
          let fraction = Float.min death_p 0.99 in
          let mask = Failure.random_node_fraction r ~n ~fraction in
          let failures = Failure.of_node_mask mask in
          let pairs = random_live_pairs r failures ~n ~messages in
          let mi = measure ~failures ~pairs ~messages ~rng:r ideal_net in
          let mc = measure ~failures ~pairs ~messages ~rng:r constructed_net in
          Summary.add ideal_s mi.failed_fraction;
          Summary.add constructed_s mc.failed_fraction)
        nets;
      { death_p; ideal_failed = Summary.mean ideal_s; constructed_failed = Summary.mean constructed_s })
    probs

(* ------------------------------------------------------------------ *)
(* Table 1: scaling sweeps against the closed-form bounds.             *)
(* ------------------------------------------------------------------ *)

type scaling_row = {
  label : string;
  parameter : float; (* the swept quantity: n, links, p, ... *)
  measured : float;
  bound : float;
  ratio : float; (* measured / bound; <= 1 certifies the upper bound *)
}

let row ~label ~parameter ~measured ~bound =
  { label; parameter; measured; bound; ratio = measured /. bound }

let mean_delivery ?failures ?side ?strategy ~messages ~rng net =
  (measure ?failures ?side ?strategy ~messages ~rng net).mean_hops

let sweep_single_link ?(ns = [ 256; 1024; 4096; 16384 ]) ?(networks = 5) ?(messages = 200) ~seed
    () =
  let rng = Rng.of_int seed in
  List.map
    (fun n ->
      let s = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let net = Network.build_ideal ~n ~links:1 r in
        Summary.add s (mean_delivery ~messages ~rng:r net)
      done;
      row ~label:"single-link" ~parameter:(float_of_int n) ~measured:(Summary.mean s)
        ~bound:(Theory.upper_single_link n))
    ns

let sweep_multi_link ?(n = 16384) ?(links_list = [ 1; 2; 4; 8; 14 ]) ?(networks = 5)
    ?(messages = 200) ~seed () =
  let rng = Rng.of_int seed in
  List.map
    (fun links ->
      let s = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let net = Network.build_ideal ~n ~links r in
        Summary.add s (mean_delivery ~messages ~rng:r net)
      done;
      row ~label:"multi-link" ~parameter:(float_of_int links) ~measured:(Summary.mean s)
        ~bound:(Theory.upper_multi_link ~links n))
    links_list

let sweep_deterministic ?(ns = [ 256; 1024; 4096; 16384 ]) ?(base = 2) ?(messages = 200) ~seed ()
    =
  let rng = Rng.of_int seed in
  List.map
    (fun n ->
      let net = Network.build_deterministic ~n ~base in
      row ~label:(Printf.sprintf "deterministic-base-%d" base) ~parameter:(float_of_int n)
        ~measured:(mean_delivery ~messages ~rng net)
        ~bound:(Theory.upper_deterministic ~base n))
    ns

let sweep_link_failure ?(n = 16384) ?links ?(probs = [ 1.0; 0.8; 0.6; 0.4; 0.2 ])
    ?(networks = 5) ?(messages = 200) ~seed () =
  let links = match links with Some l -> l | None -> int_of_float (Theory.lg n) in
  let rng = Rng.of_int seed in
  List.map
    (fun present_p ->
      let s = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let net = Network.build_ideal ~n ~links r in
        let failures = Failure.of_link_mask (Failure.random_link_mask r net ~present_p) in
        Summary.add s (mean_delivery ~failures ~messages ~rng:r net)
      done;
      row ~label:"link-failure" ~parameter:present_p ~measured:(Summary.mean s)
        ~bound:(Theory.upper_link_failure ~links ~present_p n))
    probs

let sweep_geometric_link_failure ?(n = 16384) ?(base = 2) ?(probs = [ 1.0; 0.8; 0.6; 0.4 ])
    ?(networks = 5) ?(messages = 200) ~seed () =
  let rng = Rng.of_int seed in
  List.map
    (fun present_p ->
      let s = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let net = Network.build_geometric ~n ~base in
        let failures = Failure.of_link_mask (Failure.random_link_mask r net ~present_p) in
        Summary.add s (mean_delivery ~failures ~messages ~rng:r net)
      done;
      row ~label:(Printf.sprintf "geometric-base-%d" base) ~parameter:present_p
        ~measured:(Summary.mean s)
        ~bound:(Theory.upper_geometric_link_failure ~base ~present_p n))
    probs

let sweep_binomial_nodes ?(n = 16384) ?(links = 1) ?(probs = [ 1.0; 0.7; 0.5; 0.3 ])
    ?(networks = 5) ?(messages = 200) ~seed () =
  let rng = Rng.of_int seed in
  List.map
    (fun present_p ->
      let s = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let net = Network.build_binomial ~n ~links ~present_p r in
        Summary.add s (mean_delivery ~messages ~rng:r net)
      done;
      (* Theorem 17: the bound is the failure-free O(H_n²), independent of
         p — absent nodes just shrink the random graph. *)
      row ~label:"binomial-nodes" ~parameter:present_p ~measured:(Summary.mean s)
        ~bound:(Theory.upper_single_link n))
    probs

let sweep_node_failure ?(n = 16384) ?links ?(probs = [ 0.0; 0.2; 0.4; 0.6 ]) ?(networks = 5)
    ?(messages = 200) ~seed () =
  let links = match links with Some l -> l | None -> int_of_float (Theory.lg n) in
  let rng = Rng.of_int seed in
  List.map
    (fun death_p ->
      let s = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let net = Network.build_ideal ~n ~links r in
        let mask = Failure.bernoulli_node_mask r ~n ~death_p in
        let failures = Failure.of_node_mask mask in
        (* Theorem 18 concerns delivery time; measure hops of successful
           searches under the backtracking strategy so most messages make
           it through. *)
        Summary.add s
          (mean_delivery ~failures ~strategy:(Route.Backtrack { history = 5 }) ~messages ~rng:r
             net)
      done;
      row ~label:"node-failure" ~parameter:death_p ~measured:(Summary.mean s)
        ~bound:(Theory.upper_node_failure ~links ~death_p n))
    probs

(* Lower-bound row: single-point one-sided simulation vs the Theorem 10
   leading term. ratio >= 1 supports the lower bound. *)
let sweep_lower_bound ?(ns = [ 1024; 4096; 16384; 65536 ]) ?(links = 4) ?(trials = 300) ~seed ()
    =
  let rng = Rng.of_int seed in
  List.map
    (fun n ->
      let dist = Aggregate_chain.harmonic ~links ~max_offset:(n - 1) in
      let steps = ref 0 in
      for _ = 1 to trials do
        steps :=
          !steps + Aggregate_chain.simulate_single_point dist rng ~start:(1 + Rng.int rng n)
      done;
      let measured = float_of_int !steps /. float_of_int trials in
      row ~label:"lower-bound-one-sided" ~parameter:(float_of_int n) ~measured
        ~bound:(Theory.lower_one_sided ~links:(2 * links) n))
    ns

(* Ablation: Kleinberg's brittleness claim — exponents away from 1 hurt. *)
let sweep_exponent ?(n = 16384) ?(links = 2)
    ?(exponents = [ 0.0; 0.5; 0.8; 1.0; 1.2; 1.5; 2.0 ]) ?(networks = 5) ?(messages = 200) ~seed
    () =
  let rng = Rng.of_int seed in
  List.map
    (fun exponent ->
      let s = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let net = Network.build_ideal ~exponent ~n ~links r in
        Summary.add s (mean_delivery ~messages ~rng:r net)
      done;
      row ~label:"exponent" ~parameter:exponent ~measured:(Summary.mean s)
        ~bound:(Theory.upper_multi_link ~links n))
    exponents

(* Ablation: one-sided vs two-sided greedy on the same networks. *)
let sweep_sides ?(n = 16384) ?(links = 4) ?(networks = 5) ?(messages = 200) ~seed () =
  let rng = Rng.of_int seed in
  let one = Summary.create () and two = Summary.create () in
  for _ = 1 to networks do
    let r = Rng.split rng in
    let net = Network.build_ideal ~n ~links r in
    Summary.add one (mean_delivery ~side:Route.One_sided ~messages ~rng:r net);
    Summary.add two (mean_delivery ~side:Route.Two_sided ~messages ~rng:r net)
  done;
  [
    row ~label:"one-sided" ~parameter:1.0 ~measured:(Summary.mean one)
      ~bound:(Theory.upper_multi_link ~links n);
    row ~label:"two-sided" ~parameter:2.0 ~measured:(Summary.mean two)
      ~bound:(Theory.upper_multi_link ~links n);
  ]

(* Ablation: backtracking history length at a fixed failure fraction. *)
type backtrack_row = { history : int; result : measurement }

let sweep_backtrack_history ?(n = 1 lsl 14) ?links ?(fraction = 0.5)
    ?(histories = [ 1; 2; 5; 10; 20 ]) ?(networks = 5) ?(messages = 200) ~seed () =
  let links = match links with Some l -> l | None -> int_of_float (Theory.lg n) in
  let rng = Rng.of_int seed in
  List.map
    (fun history ->
      let failed = Summary.create () and hops = Summary.create () and path = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let net = Network.build_ideal ~n ~links r in
        let mask = Failure.random_node_fraction r ~n ~fraction in
        let failures = Failure.of_node_mask mask in
        let m =
          measure ~failures ~strategy:(Route.Backtrack { history }) ~messages ~rng:r net
        in
        Summary.add failed m.failed_fraction;
        if not (Float.is_nan m.mean_hops) then begin
          Summary.add hops m.mean_hops;
          Summary.add path m.mean_path_hops
        end
      done;
      {
        history;
        result =
          {
            failed_fraction = Summary.mean failed;
            mean_hops = Summary.mean hops;
            hops_ci95 = Summary.ci95_halfwidth hops;
            mean_path_hops = Summary.mean path;
            messages = networks * messages;
          };
      })
    histories

(* Extension: line vs circle at matched parameters (Section 7: "the line
   or a circle"). The circle has no boundary, so its per-node distance
   profile is uniform. *)
let sweep_geometry ?(n = 8192) ?(links = 8) ?(networks = 5) ?(messages = 200) ~seed () =
  let rng = Rng.of_int seed in
  let line = Summary.create () and circle = Summary.create () in
  for _ = 1 to networks do
    let r = Rng.split rng in
    Summary.add line (mean_delivery ~messages ~rng:r (Network.build_ideal ~n ~links r));
    Summary.add circle (mean_delivery ~messages ~rng:r (Network.build_ring ~n ~links r))
  done;
  [
    row ~label:"line" ~parameter:1.0 ~measured:(Summary.mean line)
      ~bound:(Theory.upper_multi_link ~links n);
    row ~label:"circle" ~parameter:2.0 ~measured:(Summary.mean circle)
      ~bound:(Theory.upper_multi_link ~links n);
  ]

(* Extension: higher-dimensional tori at matched node counts (Section 7
   future work), with alpha = dims per Kleinberg. *)
type dimension_row = { dims : int; nodes : int; mean_hops_nd : float; failed_nd : float }

let sweep_dimensions ?(configs = [ (1, 4096); (2, 64); (3, 16) ]) ?(links = 4)
    ?(death_p = 0.3) ?(networks = 3) ?(messages = 200) ~seed () =
  let rng = Rng.of_int seed in
  List.map
    (fun (dims, side) ->
      let hops_s = Summary.create () and failed_s = Summary.create () in
      for _ = 1 to networks do
        let r = Rng.split rng in
        let m = Multidim.build ~dims ~side ~links r in
        let n = Multidim.size m in
        let mask = Failure.bernoulli_node_mask r ~n ~death_p in
        let alive = Ftr_graph.Bitset.get mask in
        let failed = ref 0 and hops = ref 0 and ok = ref 0 in
        for _ = 1 to messages do
          let rec live () =
            let v = Rng.int r n in
            if alive v then v else live ()
          in
          let src = live () and dst = live () in
          match
            Multidim.route ~alive ~strategy:(Multidim.Backtrack { history = 5 }) m ~src ~dst
          with
          | Multidim.Delivered { hops = h } ->
              incr ok;
              hops := !hops + h
          | Multidim.Failed _ -> incr failed
        done;
        Summary.add failed_s (float_of_int !failed /. float_of_int messages);
        if !ok > 0 then Summary.add hops_s (float_of_int !hops /. float_of_int !ok)
      done;
      {
        dims;
        nodes = (let rec pow acc k = if k = 0 then acc else pow (acc * side) (k - 1) in
                 pow 1 dims);
        mean_hops_nd = Summary.mean hops_s;
        failed_nd = Summary.mean failed_s;
      })
    configs

(* Greedy stretch: greedy hop count over the true shortest path on the same
   overlay. Greedy uses only local information; BFS sees the whole graph —
   the gap prices the paper's decentralisation. *)
type stretch_row = {
  stretch_links : int;
  mean_stretch : float;
  max_stretch : float;
  mean_greedy : float;
  mean_optimal : float;
}

let sweep_stretch ?(n = 4096) ?(links_list = [ 1; 4; 12 ]) ?(pairs = 100) ~seed () =
  let rng = Rng.of_int seed in
  List.map
    (fun links ->
      let net = Network.build_ideal ~n ~links (Rng.split rng) in
      let adj = Network.to_adjacency net in
      let stretch = Summary.create () in
      let greedy_s = Summary.create () and optimal_s = Summary.create () in
      for _ = 1 to pairs do
        let src = Rng.int rng n in
        let dst =
          let rec pick () =
            let d = Rng.int rng n in
            if d = src then pick () else d
          in
          pick ()
        in
        let greedy = Route.hops (Route.route net ~src ~dst) in
        let optimal = (Ftr_graph.Bfs.distances adj ~src).(dst) in
        if optimal > 0 then begin
          Summary.add stretch (float_of_int greedy /. float_of_int optimal);
          Summary.add_int greedy_s greedy;
          Summary.add_int optimal_s optimal
        end
      done;
      {
        stretch_links = links;
        mean_stretch = Summary.mean stretch;
        max_stretch = Summary.max_value stretch;
        mean_greedy = Summary.mean greedy_s;
        mean_optimal = Summary.mean optimal_s;
      })
    links_list

(* ------------------------------------------------------------------ *)
(* Parallel variants (Ftr_exec): same row shapes, multicore execution. *)
(* ------------------------------------------------------------------ *)

(* The drivers below never share a generator across jobs: each job gets a
   Seed-derived stream keyed by its index, and results merge in index
   order, so the output is a pure function of the arguments — identical
   for any [?jobs] and for the FTR_EXEC_SEQ=1 fallback. They are siblings
   of the sequential drivers above, not replacements: the sequential ones
   thread one generator through the whole run and therefore produce
   different (equally valid) samples. *)

module Pool = Ftr_exec.Pool
module Sweep = Ftr_exec.Sweep

let measure_par ?(failures = Failure.none) ?(side = Route.Two_sided)
    ?(strategy = Route.Terminate) ?(shards = 16) ?jobs ~pairs ~seed net =
  let messages = Array.length pairs in
  if messages = 0 then invalid_arg "Experiment.measure_par: pairs must be non-empty";
  (* Shard boundaries are fixed by [shards] alone — never by the worker
     count — so the job decomposition is part of the experiment
     definition and the merged summary is scheduling-invariant. *)
  let shards = max 1 (min shards messages) in
  let shard_results =
    Pool.map_seeded ?jobs ~seed ~count:shards (fun ~index ~rng ->
        let lo = index * messages / shards and hi = (index + 1) * messages / shards in
        let failed = ref 0 and hops = ref [] and path_hops = ref [] in
        (* Per-shard scratch: jobs may run on different domains, and
           scratch state must never be shared across them. *)
        let scratch = Route.scratch net in
        for i = lo to hi - 1 do
          let src, dst = pairs.(i) in
          let path = ref [ src ] in
          let on_hop v = path := v :: !path in
          (match Route.route ~failures ~side ~strategy ~rng ~on_hop ~scratch net ~src ~dst with
          | Route.Delivered { hops = h } ->
              hops := h :: !hops;
              path_hops := Route.loop_erased_length (List.rev !path) :: !path_hops
          | Route.Failed _ -> incr failed)
        done;
        (!failed, List.rev !hops, List.rev !path_hops))
  in
  let hops = Summary.create () and path_hops = Summary.create () in
  let failed = ref 0 in
  Array.iter
    (fun (f, hs, ps) ->
      failed := !failed + f;
      List.iter (Summary.add_int hops) hs;
      List.iter (Summary.add_int path_hops) ps)
    shard_results;
  {
    failed_fraction = float_of_int !failed /. float_of_int messages;
    mean_hops = Summary.mean hops;
    hops_ci95 = Summary.ci95_halfwidth hops;
    mean_path_hops = Summary.mean path_hops;
    messages;
  }

let figure5_par ?(replacement = Heuristic.Proportional) ?(networks = 10) ?jobs ~n ~links ~seed ()
    =
  if networks < 1 then invalid_arg "Experiment.figure5_par: networks must be >= 1";
  let pmfs =
    Pool.map_seeded ?jobs ~seed ~count:networks (fun ~index:_ ~rng ->
        Heuristic.length_distribution (Heuristic.build ~replacement ~n ~links rng))
  in
  let sum = Array.make n 0.0 in
  Array.iter
    (fun pmf ->
      for d = 0 to n - 1 do
        sum.(d) <- sum.(d) +. pmf.(d)
      done)
    pmfs;
  figure5_finish ~networks ~n sum

let figure6_par ?(n = 1 lsl 15) ?links ?(networks = 10) ?(messages = 100)
    ?(fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ]) ?jobs ~seed () =
  let links = match links with Some l -> l | None -> int_of_float (Theory.lg n) in
  (* One job per (fraction, network): builds its own overlay, failure mask
     and traffic, then routes the identical traffic under all three
     strategies (the paper's variance-reduction pairing). *)
  let sweep =
    Sweep.create
      ~run:(fun ~index:_ ~rng (fraction, _net) ->
        let net = Network.build_ideal ~n ~links rng in
        let mask = Failure.random_node_fraction rng ~n ~fraction in
        let failures = Failure.of_node_mask mask in
        let pairs = random_live_pairs rng failures ~n ~messages in
        List.map
          (fun strategy -> measure ~failures ~strategy ~pairs ~messages ~rng net)
          [
            Route.Terminate;
            Route.Random_reroute { attempts = 1 };
            Route.Backtrack { history = 5 };
          ])
      (Sweep.grid2 fractions (List.init networks Fun.id))
  in
  let results = Sweep.run ?jobs ~seed sweep in
  (* grid2 is row-major, so a fraction's [networks] jobs are consecutive;
     folding them in index order keeps the output jobs-invariant. *)
  List.mapi
    (fun fi fraction ->
      let accum = Array.init 3 (fun _ -> (Summary.create (), Summary.create (), Summary.create ())) in
      for k = 0 to networks - 1 do
        List.iteri
          (fun si m ->
            let failed_s, hops_s, path_s = accum.(si) in
            Summary.add failed_s m.failed_fraction;
            if not (Float.is_nan m.mean_hops) then begin
              Summary.add hops_s m.mean_hops;
              Summary.add path_s m.mean_path_hops
            end)
          results.((fi * networks) + k)
      done;
      let result si =
        let failed_s, hops_s, path_s = accum.(si) in
        {
          failed_fraction = Summary.mean failed_s;
          mean_hops = Summary.mean hops_s;
          hops_ci95 = Summary.ci95_halfwidth hops_s;
          mean_path_hops = Summary.mean path_s;
          messages = networks * messages;
        }
      in
      { fail_fraction = fraction; terminate = result 0; reroute = result 1; backtrack = result 2 })
    fractions

let table1_grid ?jobs ?(ns = [ 256; 1024; 4096; 16384 ]) ?(big = 1 lsl 14) ?(networks = 4)
    ?(messages = 200) ?(trials = 300) ~seed () =
  (* Each section is a self-contained closure that derives its own
     generator from [seed] (exactly as the sequential bench harness calls
     it), so running sections on pool workers is byte-identical to running
     them in a loop. *)
  let sections =
    [|
      (fun () ->
        ( "no failures, 1 link: T = O(H_n^2)  [Theorem 12]",
          sweep_single_link ~ns ~networks ~messages ~seed () ));
      (fun () ->
        ( Printf.sprintf "no failures, l links, n=%d: T = O(log^2 n / l)  [Theorem 13]" big,
          sweep_multi_link ~n:big ~links_list:[ 1; 2; 4; 8; 14 ] ~networks ~messages ~seed () ));
      (fun () ->
        ( "deterministic base-2 links: T <= ceil(log2 n)  [Theorem 14]",
          sweep_deterministic ~ns ~base:2 ~messages ~seed () ));
      (fun () ->
        ( "deterministic base-16 links: T <= ceil(log16 n)  [Theorem 14]",
          sweep_deterministic ~ns ~base:16 ~messages ~seed () ));
      (fun () ->
        ( Printf.sprintf "link failures, n=%d: T = O(log^2 n / p l)  [Theorem 15]" big,
          sweep_link_failure ~n:big ~probs:[ 1.0; 0.8; 0.6; 0.4; 0.2 ] ~networks ~messages ~seed
            () ));
      (fun () ->
        ( Printf.sprintf "geometric links + failures, n=%d: T = O(b log n / p)  [Theorem 16]" big,
          sweep_geometric_link_failure ~n:big ~base:2 ~probs:[ 1.0; 0.8; 0.6; 0.4 ] ~networks
            ~messages ~seed () ));
      (fun () ->
        ( Printf.sprintf "binomial node presence, n=%d, 1 link: T = O(log^2 n)  [Theorem 17]" big,
          sweep_binomial_nodes ~n:big ~links:1 ~probs:[ 1.0; 0.7; 0.5; 0.3 ] ~networks ~messages
            ~seed () ));
      (fun () ->
        ( Printf.sprintf "node failures, n=%d: T = O(log^2 n / (1-p) l)  [Theorem 18]" big,
          sweep_node_failure ~n:big ~probs:[ 0.0; 0.2; 0.4; 0.6 ] ~networks ~messages ~seed () ));
      (fun () ->
        ( "one-sided greedy vs Omega(log^2 n / l loglog n)  [Theorem 10]",
          sweep_lower_bound ~ns ~links:3 ~trials ~seed () ));
    |]
  in
  Array.to_list (Pool.map ?jobs ~count:(Array.length sections) (fun i -> sections.(i) ()))
