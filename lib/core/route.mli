(** Greedy routing over a {!Network.t} (Sections 4 and 6).

    A message at node [cur] bound for node [dst] is forwarded to the live
    neighbour closest to [dst]; one-sided routing additionally refuses to
    jump past the target (Section 4.2.1). When no live neighbour is
    strictly closer, one of the three Section 6 strategies applies:

    - {!Terminate}: give up (strategy 1);
    - {!Random_reroute}: deliver the message to a uniformly random live
      node and retry from there, Valiant-style (strategy 2);
    - {!Backtrack}: walk back through the last [history] visited nodes and
      try their next-best untried neighbours (strategy 3; the paper uses
      [history = 5]). Forward motion stays strictly greedy, but a
      backtracked node that has exhausted its closer options may continue
      through a farther neighbour to route around a hole — the reading of
      "chooses the next best neighbor" that reproduces Figure 6's failure
      fractions (requiring monotone live paths caps success far below the
      paper's curve at high failure rates).

    A node never forwards to a dead neighbour — liveness is checked before
    the hop — and, per the paper, never retries a different link of the
    same node once its best choice is exhausted except through the explicit
    backtracking strategy. *)

type side = One_sided | Two_sided

type strategy =
  | Terminate
  | Random_reroute of { attempts : int }
  | Backtrack of { history : int }

type reason =
  | No_live_neighbor  (** stuck: no live neighbour closer to the target *)
  | Hop_limit  (** exceeded [max_hops] *)
  | No_live_reroute_target  (** reroute could not find a live node *)

type outcome =
  | Delivered of { hops : int }
  | Failed of { hops : int; stuck_at : int; reason : reason }

val delivered : outcome -> bool
(** Whether the message reached its destination. *)

val reason_label : reason -> string
(** Stable snake_case name of a stuck reason, as used by the telemetry
    labels (e.g. route_stuck_total{reason="no_live_neighbor"}) and the
    [--json] CLI outputs. *)

val strategy_label : strategy -> string
(** Stable snake_case name of a recovery strategy (["terminate"],
    ["random_reroute"], ["backtrack"]), as printed in flight-recorder
    trace headers and CLI output. *)

val hops : outcome -> int
(** Hops consumed, delivered or not (backtracking steps count). *)

type scratch
(** Reusable working state for {!route}: the epoch-stamped per-link
    "tried" array and the preallocated backtrack window, sized to a
    network's CSR edge count. With a caller-held scratch, routing performs
    zero minor-heap allocations per hop in steady state; a scratch passed
    for a larger network than it was built for is regrown transparently.
    Not thread-safe: one scratch per domain. *)

val scratch : Network.t -> scratch
(** Fresh scratch sized for [net]. *)

val route :
  ?failures:Failure.t ->
  ?side:side ->
  ?strategy:strategy ->
  ?max_hops:int ->
  ?rng:Ftr_prng.Rng.t ->
  ?scratch:scratch ->
  ?on_hop:(int -> unit) ->
  Network.t ->
  src:int ->
  dst:int ->
  outcome
(** Route a message between node indices. Defaults: no failures, two-sided,
    terminate-on-stuck, one million hop budget. [rng] is required only by
    {!Random_reroute}; [on_hop] observes every node the message visits.
    [scratch] lets callers routing many messages reuse the working arrays
    (outcomes are identical with or without it).
    @raise Invalid_argument if an endpoint is out of range or dead. *)

val loop_erased_length : int list -> int
(** Hop count of a visit sequence after erasing every excursion (a revisit
    truncates back to the first visit). Total hops charge the full
    exploration cost of backtracking; the loop-erased length is the final
    route's length — the scale on which Figure 6(b) plots delivery time. *)

val route_path :
  ?failures:Failure.t ->
  ?side:side ->
  ?strategy:strategy ->
  ?max_hops:int ->
  ?rng:Ftr_prng.Rng.t ->
  ?scratch:scratch ->
  Network.t ->
  src:int ->
  dst:int ->
  outcome * int list
(** As {!route}, also returning the full sequence of visited nodes
    (starting with [src]). *)
