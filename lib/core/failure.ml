module Bitset = Ftr_graph.Bitset
module I32 = Ftr_graph.Adjacency.I32

type link_mask = { offsets : I32.t; bits : Bitset.t }

let link_mask_alive m ~src ~idx = Bitset.get m.bits (I32.get m.offsets src + idx)

(* The hot routing loop wants to test a bit, not call a closure; the views
   below expose the concrete masks behind the two common failure models so
   [Route] can specialise, while arbitrary predicates stay expressible as
   the general fallback. *)
type node_view = N_all | N_bits of Bitset.t | N_pred of (int -> bool)

type link_view = L_all | L_mask of link_mask | L_pred of (src:int -> idx:int -> bool)

type t = { node_view : node_view; link_view : link_view }

let none = { node_view = N_all; link_view = L_all }

let of_node_mask mask = { none with node_view = N_bits mask }

let random_node_fraction rng ~n ~fraction =
  if fraction < 0.0 || fraction >= 1.0 then
    invalid_arg "Failure.random_node_fraction: fraction must be in [0,1)";
  let mask = Bitset.create n in
  Bitset.fill mask true;
  let deaths = int_of_float (fraction *. float_of_int n) in
  (* Kill a uniformly random subset of exactly [deaths] nodes: take the
     prefix of a random permutation. *)
  let perm = Ftr_prng.Rng.permutation rng n in
  for i = 0 to deaths - 1 do
    Bitset.clear mask perm.(i)
  done;
  mask

let bernoulli_node_mask rng ~n ~death_p =
  if death_p < 0.0 || death_p > 1.0 then
    invalid_arg "Failure.bernoulli_node_mask: death_p must be in [0,1]";
  let mask = Bitset.create n in
  for i = 0 to n - 1 do
    if not (Ftr_prng.Rng.bernoulli rng death_p) then Bitset.set mask i
  done;
  mask

let random_link_mask rng net ~present_p =
  if present_p < 0.0 || present_p > 1.0 then
    invalid_arg "Failure.random_link_mask: present_p must be in [0,1]";
  let n = Network.size net in
  (* The network's CSR offsets are exactly the per-link slot layout; share
     the vector instead of recomputing it (read-only on both sides). *)
  let { Ftr_graph.Adjacency.Csr.offsets; targets } = Network.csr net in
  let bits = Bitset.create (I32.get offsets n) in
  for i = 0 to n - 1 do
    for k = I32.get offsets i to I32.get offsets (i + 1) - 1 do
      let j = I32.get targets k in
      (* The links to the nearest neighbour on either side are assumed
         always present (Theorems 15 and 16). *)
      let immediate = j = i - 1 || j = i + 1 in
      if immediate || Ftr_prng.Rng.bernoulli rng present_p then Bitset.set bits k
    done
  done;
  { offsets; bits }

let of_link_mask m = { none with link_view = L_mask m }

let node_alive t i =
  match t.node_view with N_all -> true | N_bits b -> Bitset.get b i | N_pred f -> f i

let link_alive t ~src ~idx =
  match t.link_view with
  | L_all -> true
  | L_mask m -> link_mask_alive m ~src ~idx
  | L_pred f -> f ~src ~idx

let compose a b =
  let node_view =
    match (a.node_view, b.node_view) with
    | N_all, v | v, N_all -> v
    | _, _ -> N_pred (fun i -> node_alive a i && node_alive b i)
  in
  let link_view =
    match (a.link_view, b.link_view) with
    | L_all, v | v, L_all -> v
    | _, _ -> L_pred (fun ~src ~idx -> link_alive a ~src ~idx && link_alive b ~src ~idx)
  in
  { node_view; link_view }

let make ?node_alive ?link_alive () =
  {
    node_view = (match node_alive with None -> N_all | Some f -> N_pred f);
    link_view = (match link_alive with None -> L_all | Some f -> L_pred f);
  }

(* Constant-string names of the resolved views, for trace headers and
   report lines; allocation-free by construction. *)
let node_view_label t =
  match t.node_view with N_all -> "all-alive" | N_bits _ -> "bitset" | N_pred _ -> "predicate"

let link_view_label t =
  match t.link_view with L_all -> "all-alive" | L_mask _ -> "mask" | L_pred _ -> "predicate"

let node_alive_bits t = match t.node_view with N_bits b -> Some b | N_all | N_pred _ -> None

let node_all_alive t = match t.node_view with N_all -> true | N_bits _ | N_pred _ -> false

let link_alive_mask t = match t.link_view with L_mask m -> Some m | L_all | L_pred _ -> None

let link_all_alive t = match t.link_view with L_all -> true | L_mask _ | L_pred _ -> false
