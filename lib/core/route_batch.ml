module Pool = Ftr_exec.Pool
module Seed = Ftr_exec.Seed

(* Batch routing on the exec pool. Determinism comes from three choices:
   the chunk grid is a pure function of (count, chunk) — never of the
   worker count; each route's generator is derived from (seed, global
   route index) by [Seed.rng_for], not drawn from a shared stream; and
   [Pool.map] returns chunk results in job-index order. The merged vector
   is therefore byte-identical across --jobs 1/2/4 and FTR_EXEC_SEQ=1
   (qcheck-pinned, and re-asserted by bench.scale on every @perf run).

   Scratch is per domain, not per route: [Route.route] with no explicit
   scratch borrows the Domain.DLS-cached one, so a chunk of backtracking
   routes costs one scratch per worker domain, amortized to nothing. *)

let default_chunk = 1024

let run ?jobs ?(chunk = default_chunk) ?failures ?side ?strategy ?max_hops ?(seed = 0) net
    ~pairs =
  if chunk < 1 then invalid_arg "Route_batch.run: chunk must be >= 1";
  let count = Array.length pairs in
  if count = 0 then [||]
  else begin
    (* Only Random_reroute consumes randomness; the derivation per route
       index is skipped entirely for the deterministic strategies. *)
    let needs_rng =
      match strategy with
      | Some (Route.Random_reroute _) -> true
      | Some (Route.Terminate | Route.Backtrack _) | None -> false
    in
    let chunks = (count + chunk - 1) / chunk in
    let route_one i =
      let src, dst = pairs.(i) in
      let rng = if needs_rng then Some (Seed.rng_for ~seed ~index:i) else None in
      Route.route ?failures ?side ?strategy ?max_hops ?rng net ~src ~dst
    in
    let per_chunk =
      Pool.map ?jobs ~count:chunks (fun c ->
          let lo = c * chunk in
          let len = min chunk (count - lo) in
          Array.init len (fun k -> route_one (lo + k)))
    in
    Array.concat (Array.to_list per_chunk)
  end
