(* Span profiler: wall-clock timers with nesting, aggregated per span name
   into count / total / min / max / p50 / p99. Aggregation reuses
   [Ftr_stats.Summary] (count, total, min, max) and [Ftr_stats.Quantile]
   (exact percentiles over a bounded ring of the most recent durations —
   recent-window percentiles, not lifetime, once a span exceeds
   [sample_capacity] recordings).

   The clock is injectable ([set_clock]) so tests drive deterministic
   durations; the default is [Unix.gettimeofday], the finest-grained clock
   the stdlib toolchain offers here. Spans instrument coarse operations
   (engine runs, network builds, bench sections), not per-hop paths, so a
   closure per [time] call is acceptable; the per-hop layers use the
   [Metrics] counters behind a [Flag.enabled] guard instead. *)

module Summary = Ftr_stats.Summary
module Quantile = Ftr_stats.Quantile

let sample_capacity = 4096

type record = {
  summary : Summary.t;
  samples : float array; (* ring buffer of the most recent durations *)
  mutable filled : int;
  mutable next : int;
}

let records : (string, record) Hashtbl.t = Hashtbl.create 16

(* Open spans, innermost first: (name, start time). *)
let stack : (string * float) list ref = ref []

let clock = ref (fun () -> Unix.gettimeofday ())

let set_clock f = clock := f

let reset () =
  Hashtbl.reset records;
  stack := []

let depth () = List.length !stack

let record_duration name dt =
  let r =
    match Hashtbl.find_opt records name with
    | Some r -> r
    | None ->
        let r =
          { summary = Summary.create (); samples = Array.make sample_capacity 0.0; filled = 0; next = 0 }
        in
        Hashtbl.replace records name r;
        r
  in
  Summary.add r.summary dt;
  r.samples.(r.next) <- dt;
  r.next <- (r.next + 1) mod sample_capacity;
  if r.filled < sample_capacity then r.filled <- r.filled + 1

let enter_always name =
  if String.equal name "" then invalid_arg "Span.enter: span name must be non-empty";
  stack := (name, !clock ()) :: !stack

let leave_always name =
  match !stack with
  | (top, t0) :: rest when top = name ->
      stack := rest;
      record_duration name (!clock () -. t0)
  | (top, _) :: _ ->
      invalid_arg (Printf.sprintf "Span.leave: closing %S but innermost open span is %S" name top)
  | [] -> invalid_arg (Printf.sprintf "Span.leave: closing %S with no span open" name)

let enter name = if Flag.enabled () then enter_always name

let leave name = if Flag.enabled () then leave_always name

(* Time [f] under [name]. The enabled decision is taken once, so a mode
   flip inside [f] cannot unbalance the stack. *)
let time name f =
  if not (Flag.enabled ()) then f ()
  else begin
    enter_always name;
    match f () with
    | v ->
        leave_always name;
        v
    | exception e ->
        leave_always name;
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Aggregated statistics                                               *)
(* ------------------------------------------------------------------ *)

type stat = {
  span_name : string;
  count : int;
  total : float;
  min_s : float;
  max_s : float;
  p50 : float;
  p99 : float;
}

let stat_of name r =
  let window = Array.sub r.samples 0 r.filled in
  Array.sort Float.compare window;
  {
    span_name = name;
    count = Summary.count r.summary;
    total = Summary.total r.summary;
    min_s = Summary.min_value r.summary;
    max_s = Summary.max_value r.summary;
    p50 = (if r.filled = 0 then nan else Quantile.of_sorted window 0.5);
    p99 = (if r.filled = 0 then nan else Quantile.of_sorted window 0.99);
  }

let find name =
  Option.map (stat_of name) (Hashtbl.find_opt records name)

let stats () =
  Hashtbl.fold (fun name r acc -> stat_of name r :: acc) records []
  |> List.sort (fun a b -> String.compare a.span_name b.span_name)
