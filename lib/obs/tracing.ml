(* Route flight recorder: per-route causal traces (docs/OBSERVABILITY.md,
   "Tracing").

   Aggregate telemetry ([Metrics], [Span]) answers "how often do routes
   fail"; this module answers "why did *this* route fail" — the hop-by-hop
   decision record the paper makes analytically in Sections 4 and 6: every
   candidate neighbour scanned, its distance to the target, the verdict
   that excluded it (dead link, dead node, already tried, not closer), the
   chosen edge, and the backtrack/redirect events of the recovery
   strategies.

   Contracts, in the order they matter:

   - Zero overhead when off. [begin_route] returns the shared [null]
     sentinel unless both [Flag.enabled] and the recorder are on; callers
     keep one immediate bool ([is_live]) and guard every recording call on
     it, so a hot routing loop pays one branch per candidate and allocates
     nothing. All allocation happens inside this module, behind the gate.

   - Determinism. Trace identity derives from [(seed, route index)]
     through a splitmix-style mixer — no clocks, no [Random], no pointer
     identity — so the same seeded run produces byte-identical traces, and
     worker domains (which suppress [Flag]) record nothing, keeping
     rendered output invariant across `--jobs 1/2/4` and `FTR_EXEC_SEQ=1`.
     Full-fidelity sampling is a function of the trace id, not of arrival
     order.

   - Bounded memory. Completed traces land in a bounded ring (the last N
     routes); failed routes are additionally pinned in their own bounded
     list so forensics survive a burst of later successes. Per-trace step
     counts are capped; records past the cap are counted, not stored.

   Time is ambient: [Sim.Engine] publishes the simulation clock through
   [note_time] while dispatching events, so overlay lookups get sim-time
   stamps (the Chrome trace-event export feeds on them) and static routes
   fall back to hop counts. *)

type verdict =
  | Chosen
  | Dead_link
  | Dead_node
  | Already_tried
  | Not_closer
  | Not_best
  | Overshoot

let verdict_label = function
  | Chosen -> "chosen"
  | Dead_link -> "dead_link"
  | Dead_node -> "dead_node"
  | Already_tried -> "already_tried"
  | Not_closer -> "not_closer"
  | Not_best -> "not_best"
  | Overshoot -> "overshoot"

type step =
  | Hop of { hop : int; node : int; time : float }
  | Candidate of { hop : int; cur : int; cand : int; dist : int; verdict : verdict }
  | Backtrack of { hop : int; from_node : int; to_node : int }
  | Reroute of { hop : int; from_node : int; target : int }

type status =
  | Pending
  | Done_delivered of { hops : int }
  | Done_failed of { hops : int; stuck_at : int; reason : string }

type t = {
  live : bool; (* false only for the [null] sentinel *)
  id : int64;
  t_seed : int;
  t_index : int;
  src : int;
  dst : int;
  full : bool; (* sampled in for candidate-level fidelity *)
  start_time : float;
  mutable nodes_view : string;
  mutable links_view : string;
  mutable strategy : string;
  mutable rev_steps : step list; (* newest first *)
  mutable n_steps : int;
  mutable dropped_steps : int;
  mutable hop_count : int;
  mutable sim_timed : bool; (* true once a hop carried a sim-time stamp *)
  mutable end_time : float;
  mutable status : status;
}

let null =
  {
    live = false;
    id = 0L;
    t_seed = 0;
    t_index = 0;
    src = 0;
    dst = 0;
    full = false;
    start_time = 0.0;
    nodes_view = "";
    links_view = "";
    strategy = "";
    rev_steps = [];
    n_steps = 0;
    dropped_steps = 0;
    hop_count = 0;
    sim_timed = false;
    end_time = 0.0;
    status = Pending;
  }

let is_live tr = tr.live

(* ------------------------------------------------------------------ *)
(* Recorder state and configuration                                    *)
(* ------------------------------------------------------------------ *)

(* FTR_OBS_TRACE=0 turns the recorder off while leaving the rest of the
   telemetry layer alone; unset or any other value keeps it riding the
   FTR_OBS master switch ([Flag.enabled] is consulted on every
   [begin_route], so the recorder is inert whenever telemetry is off). *)
let recording_ref =
  ref
    (match Sys.getenv_opt "FTR_OBS_TRACE" with
    | Some ("0" | "false" | "off" | "no") -> false
    | Some _ | None -> true)

let set_recording on = recording_ref := on

let recording () = Flag.enabled () && !recording_ref

let seed_ref = ref 0

let next_index = ref 0

let sample_every = ref 1

let force_full_ref = ref false

let ring_capacity = ref 32

let pin_capacity = ref 16

let max_steps = ref 4096

(* The run seed traces derive their identity from; resets the route index
   so a re-run of the same seeded workload reproduces the same ids. *)
let set_seed s =
  seed_ref := s;
  next_index := 0

let set_next_index i =
  if i < 0 then invalid_arg "Tracing.set_next_index: index must be non-negative";
  next_index := i

let set_sampling ~every =
  if every < 1 then invalid_arg "Tracing.set_sampling: every must be >= 1";
  sample_every := every

let force_full on = force_full_ref := on

let set_capacity ?ring ?pinned ?steps () =
  (match ring with
  | Some r when r < 1 -> invalid_arg "Tracing.set_capacity: ring must be >= 1"
  | Some r -> ring_capacity := r
  | None -> ());
  (match pinned with
  | Some p when p < 1 -> invalid_arg "Tracing.set_capacity: pinned must be >= 1"
  | Some p -> pin_capacity := p
  | None -> ());
  match steps with
  | Some s when s < 1 -> invalid_arg "Tracing.set_capacity: steps must be >= 1"
  | Some s -> max_steps := s
  | None -> ()

(* Ambient simulation clock, published by [Sim.Engine] while it dispatches
   events; NaN means "no simulation running" and hop counts stand in. *)
let now_ref = ref nan

let note_time t = now_ref := t

(* Retained and pinned traces, newest first, each list bounded by its
   capacity (the oldest entry falls off). A failed route appears in both:
   the ring answers "what happened recently", the pins answer "what went
   wrong" even after the ring has cycled. *)
let retained : t list ref = ref []

let pinned : t list ref = ref []

let evicted_count = ref 0

let completed_count = ref 0

let reset () =
  retained := [];
  pinned := [];
  evicted_count := 0;
  completed_count := 0;
  next_index := 0;
  now_ref := nan

let retained_traces () = List.rev !retained

let pinned_traces () = List.rev !pinned

let retained_count () = List.length !retained

let pinned_count () = List.length !pinned

let evicted () = !evicted_count

let completed () = !completed_count

let latest () = match !retained with [] -> None | tr :: _ -> Some tr

let steps tr = List.rev tr.rev_steps

let step_count tr = tr.n_steps

let dropped_steps tr = tr.dropped_steps

(* ------------------------------------------------------------------ *)
(* Trace identity and lifecycle                                        *)
(* ------------------------------------------------------------------ *)

(* Splitmix64 finalizer: a bijective avalanche over the (seed, index)
   pair. Implemented inline so [lib/obs] stays dependency-free below
   [ftr_stats]. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let trace_id ~seed ~index =
  mix64
    (Int64.logxor
       (mix64 (Int64.of_int seed))
       (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (index + 1))))

let id_hex tr = Printf.sprintf "%016Lx" tr.id

(* Deterministic hash-based sampling: whether a trace records candidate-
   level detail is a pure function of its id, so the set of full-fidelity
   traces is identical across job counts and re-runs. *)
let sampled_full id =
  !force_full_ref
  || !sample_every = 1
  || Int64.rem (Int64.logand id Int64.max_int) (Int64.of_int !sample_every) = 0L

let begin_route ~src ~dst =
  if not (recording ()) then null
  else begin
    let index = !next_index in
    next_index := index + 1;
    let id = trace_id ~seed:!seed_ref ~index in
    let time = if Float.is_nan !now_ref then 0.0 else !now_ref in
    {
      live = true;
      id;
      t_seed = !seed_ref;
      t_index = index;
      src;
      dst;
      full = sampled_full id;
      start_time = time;
      nodes_view = "";
      links_view = "";
      strategy = "";
      rev_steps = [];
      n_steps = 0;
      dropped_steps = 0;
      hop_count = 0;
      sim_timed = not (Float.is_nan !now_ref);
      end_time = time;
      status = Pending;
    }
  end

let set_context tr ~nodes ~links ~strategy =
  if tr.live then begin
    tr.nodes_view <- nodes;
    tr.links_view <- links;
    tr.strategy <- strategy
  end

let push_step tr s =
  if tr.n_steps >= !max_steps then tr.dropped_steps <- tr.dropped_steps + 1
  else begin
    tr.rev_steps <- s :: tr.rev_steps;
    tr.n_steps <- tr.n_steps + 1
  end

let hop tr ~node =
  if tr.live then begin
    tr.hop_count <- tr.hop_count + 1;
    let time =
      if Float.is_nan !now_ref then float_of_int tr.hop_count
      else begin
        tr.sim_timed <- true;
        !now_ref
      end
    in
    tr.end_time <- time;
    push_step tr (Hop { hop = tr.hop_count; node; time })
  end

let candidate tr ~cur ~cand ~dist verdict =
  if tr.live && tr.full then
    push_step tr (Candidate { hop = tr.hop_count; cur; cand; dist; verdict })

let backtrack tr ~from_node ~to_node =
  if tr.live then push_step tr (Backtrack { hop = tr.hop_count; from_node; to_node })

let reroute tr ~from_node ~target =
  if tr.live then push_step tr (Reroute { hop = tr.hop_count; from_node; target })

let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let finish tr ~delivered ~hops ~stuck_at ~reason =
  if tr.live then begin
    tr.status <-
      (if delivered then Done_delivered { hops } else Done_failed { hops; stuck_at; reason });
    if not (Float.is_nan !now_ref) then tr.end_time <- !now_ref;
    completed_count := !completed_count + 1;
    if List.length !retained >= !ring_capacity then incr evicted_count;
    retained := take !ring_capacity (tr :: !retained);
    if not delivered then pinned := take !pin_capacity (tr :: !pinned)
  end

(* ------------------------------------------------------------------ *)
(* Human-readable hop tree                                             *)
(* ------------------------------------------------------------------ *)

let status_line tr =
  match tr.status with
  | Pending -> "outcome: PENDING"
  | Done_delivered { hops } -> Printf.sprintf "outcome: DELIVERED in %d hops" hops
  | Done_failed { hops; stuck_at; reason } ->
      Printf.sprintf "outcome: FAILED after %d hops: %s, stuck at %d" hops reason stuck_at

(* Forensics summary: how many candidates each verdict claimed, plus the
   recovery-event counts — the "why it got stuck" line `p2psim explain`
   leads with. Verdict order is the declaration order, fixed. *)
let forensics tr =
  let n_verdicts = 7 in
  let counts = Array.make n_verdicts 0 in
  let slot = function
    | Chosen -> 0
    | Dead_link -> 1
    | Dead_node -> 2
    | Already_tried -> 3
    | Not_closer -> 4
    | Not_best -> 5
    | Overshoot -> 6
  in
  let backtracks = ref 0 and reroutes = ref 0 in
  List.iter
    (fun s ->
      match s with
      | Candidate { verdict; _ } -> counts.(slot verdict) <- counts.(slot verdict) + 1
      | Backtrack _ -> incr backtracks
      | Reroute _ -> incr reroutes
      | Hop _ -> ())
    tr.rev_steps;
  let scanned = Array.fold_left ( + ) 0 counts in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "scanned %d candidates" scanned);
  let labels = [| Chosen; Dead_link; Dead_node; Already_tried; Not_closer; Not_best; Overshoot |] in
  Array.iteri
    (fun i v ->
      if counts.(i) > 0 then
        Buffer.add_string buf (Printf.sprintf ", %d %s" counts.(i) (verdict_label v)))
    labels;
  if !backtracks > 0 then Buffer.add_string buf (Printf.sprintf "; %d backtracks" !backtracks);
  if !reroutes > 0 then Buffer.add_string buf (Printf.sprintf "; %d reroutes" !reroutes);
  Buffer.contents buf

let render tr =
  if not tr.live then "(null trace)\n"
  else begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "trace %s  route #%d  seed %d  %d -> %d\n" (id_hex tr) tr.t_index tr.t_seed
         tr.src tr.dst);
    Buffer.add_string buf
      (Printf.sprintf "  strategy=%s nodes=%s links=%s fidelity=%s\n"
         (if String.equal tr.strategy "" then "?" else tr.strategy)
         (if String.equal tr.nodes_view "" then "?" else tr.nodes_view)
         (if String.equal tr.links_view "" then "?" else tr.links_view)
         (if tr.full then "full" else "hops-only"));
    let at = ref (-1) in
    List.iter
      (fun s ->
        match s with
        | Candidate { cur; cand; dist; verdict; hop } ->
            if cur <> !at then begin
              Buffer.add_string buf (Printf.sprintf "  at %d (hop %d):\n" cur hop);
              at := cur
            end;
            Buffer.add_string buf
              (Printf.sprintf "    cand %-6d d=%-6d %s\n" cand dist (verdict_label verdict))
        | Hop { hop; node; time } ->
            at := -1;
            if tr.sim_timed then
              Buffer.add_string buf (Printf.sprintf "  hop %d -> %d  t=%g\n" hop node time)
            else Buffer.add_string buf (Printf.sprintf "  hop %d -> %d\n" hop node)
        | Backtrack { hop; from_node; to_node } ->
            at := -1;
            Buffer.add_string buf
              (Printf.sprintf "  backtrack (hop %d): %d -> %d\n" hop from_node to_node)
        | Reroute { hop; from_node; target } ->
            at := -1;
            Buffer.add_string buf
              (Printf.sprintf "  reroute (hop %d): restart from %d toward random target %d\n" hop
                 from_node target))
      (steps tr);
    if tr.dropped_steps > 0 then
      Buffer.add_string buf
        (Printf.sprintf "  [%d steps dropped at cap %d]\n" tr.dropped_steps !max_steps);
    Buffer.add_string buf (Printf.sprintf "  %s\n" (status_line tr));
    Buffer.add_string buf (Printf.sprintf "  forensics: %s\n" (forensics tr));
    Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* JSON and JSONL export                                               *)
(* ------------------------------------------------------------------ *)

let step_json tr s =
  let common hop rest = ("trace", Json.String (id_hex tr)) :: ("hop", Json.Int hop) :: rest in
  match s with
  | Hop { hop; node; time } ->
      common hop
        [ ("step", Json.String "hop"); ("node", Json.Int node); ("time", Json.Float time) ]
  | Candidate { hop; cur; cand; dist; verdict } ->
      common hop
        [
          ("step", Json.String "candidate");
          ("cur", Json.Int cur);
          ("cand", Json.Int cand);
          ("dist", Json.Int dist);
          ("verdict", Json.String (verdict_label verdict));
        ]
  | Backtrack { hop; from_node; to_node } ->
      common hop
        [
          ("step", Json.String "backtrack");
          ("from", Json.Int from_node);
          ("to", Json.Int to_node);
        ]
  | Reroute { hop; from_node; target } ->
      common hop
        [
          ("step", Json.String "reroute");
          ("from", Json.Int from_node);
          ("target", Json.Int target);
        ]

let status_json tr =
  match tr.status with
  | Pending -> [ ("status", Json.String "pending") ]
  | Done_delivered { hops } ->
      [ ("status", Json.String "delivered"); ("hops", Json.Int hops) ]
  | Done_failed { hops; stuck_at; reason } ->
      [
        ("status", Json.String "failed");
        ("hops", Json.Int hops);
        ("stuck_at", Json.Int stuck_at);
        ("reason", Json.String reason);
      ]

let header_fields tr =
  [
    ("trace", Json.String (id_hex tr));
    ("seed", Json.Int tr.t_seed);
    ("route", Json.Int tr.t_index);
    ("src", Json.Int tr.src);
    ("dst", Json.Int tr.dst);
    ("full", Json.Bool tr.full);
    ("strategy", Json.String tr.strategy);
  ]

let to_json tr =
  Json.Obj
    (header_fields tr
    @ status_json tr
    @ [
        ("steps", Json.List (List.map (fun s -> Json.Obj (step_json tr s)) (steps tr)));
        ("dropped_steps", Json.Int tr.dropped_steps);
      ])

(* Replay a completed trace into the [Events] sink as trace.begin /
   trace.step / trace.done JSONL lines. Emission is gated and sampled by
   [Events] itself; per-kind sampling applies to trace.step like any
   other kind. *)
let emit_events tr =
  if tr.live && Flag.enabled () then begin
    Events.emit ~kind:"trace.begin" (header_fields tr);
    List.iter (fun s -> Events.emit ~kind:"trace.step" (step_json tr s)) (steps tr);
    Events.emit ~kind:"trace.done" (("trace", Json.String (id_hex tr)) :: status_json tr)
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

(* The Trace Event Format consumed by chrome://tracing and Perfetto: one
   "X" (complete) slice per route on its own thread lane (tid = route
   index), instant events for hops, backtracks and reroutes. Timestamps
   are microseconds; sim time is treated as seconds, hop-count fallback
   time as microsecond ticks scaled the same way, which only affects the
   axis label. *)
let us t = Json.Float (t *. 1_000_000.0)

let chrome_events tr =
  let name =
    Printf.sprintf "route #%d %d->%d%s" tr.t_index tr.src tr.dst
      (match tr.status with
      | Pending -> ""
      | Done_delivered _ -> " (delivered)"
      | Done_failed _ -> " (failed)")
  in
  let dur = Float.max (tr.end_time -. tr.start_time) 1e-6 in
  let base =
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "route");
        ("ph", Json.String "X");
        ("ts", us tr.start_time);
        ("dur", us dur);
        ("pid", Json.Int 0);
        ("tid", Json.Int tr.t_index);
        ("args", Json.Obj (header_fields tr @ status_json tr));
      ]
  in
  let instant ~name ~time args =
    Json.Obj
      [
        ("name", Json.String name);
        ("cat", Json.String "route");
        ("ph", Json.String "i");
        ("s", Json.String "t");
        ("ts", us time);
        ("pid", Json.Int 0);
        ("tid", Json.Int tr.t_index);
        ("args", Json.Obj args);
      ]
  in
  let last_time = ref tr.start_time in
  let events =
    List.filter_map
      (fun s ->
        match s with
        | Hop { hop; node; time } ->
            last_time := time;
            Some
              (instant
                 ~name:(Printf.sprintf "hop %d -> %d" hop node)
                 ~time
                 [ ("hop", Json.Int hop); ("node", Json.Int node) ])
        | Backtrack { hop; from_node; to_node } ->
            Some
              (instant
                 ~name:(Printf.sprintf "backtrack %d -> %d" from_node to_node)
                 ~time:!last_time
                 [ ("hop", Json.Int hop) ])
        | Reroute { hop; from_node; target } ->
            Some
              (instant
                 ~name:(Printf.sprintf "reroute %d -> %d" from_node target)
                 ~time:!last_time
                 [ ("hop", Json.Int hop) ])
        | Candidate _ -> None)
      (steps tr)
  in
  base :: events

let chrome_trace ?traces () =
  let traces = match traces with Some l -> l | None -> retained_traces () in
  Json.Obj
    [
      ("traceEvents", Json.List (List.concat_map chrome_events traces));
      ("displayTimeUnit", Json.String "ms");
    ]

let chrome_trace_string ?traces () = Json.to_string (chrome_trace ?traces ())
