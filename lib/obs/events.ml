(* Structured event sink: one JSON object per line (JSONL), covering
   per-hop route events, engine dispatch, overlay membership changes and
   anything else a layer wants to narrate. Disabled unless both the
   [Flag] is on and a sink is installed, so an un-instrumented run writes
   nothing and pays one bool load per potential event.

   Sampling is deterministic, per event kind: [set_sampling ~every:k]
   keeps the 1st, (k+1)-th, (2k+1)-th... occurrence of each kind, which
   makes runs reproducible (no RNG involved) while still thinning the
   per-hop firehose. *)

type sink = To_buffer of Buffer.t | To_channel of out_channel

let sink : sink option ref = ref None

let set_sink s = sink := s

let every = ref 1

let set_sampling ~every:k =
  if k < 1 then invalid_arg "Events.set_sampling: every must be >= 1";
  every := k

let seen : (string, int ref) Hashtbl.t = Hashtbl.create 16

let emitted_count = ref 0

let suppressed_count = ref 0

let emitted () = !emitted_count

let suppressed () = !suppressed_count

(* Clear counters and sampling state; the sink installation survives. *)
let reset () =
  Hashtbl.reset seen;
  emitted_count := 0;
  suppressed_count := 0

let emit ?time ~kind fields =
  if Flag.enabled () then
    match !sink with
    | None -> ()
    | Some s ->
        let c =
          match Hashtbl.find_opt seen kind with
          | Some c -> c
          | None ->
              let c = ref 0 in
              Hashtbl.replace seen kind c;
              c
        in
        incr c;
        if (!c - 1) mod !every = 0 then begin
          let base =
            ("kind", Json.String kind)
            :: (match time with Some t -> [ ("time", Json.Float t) ] | None -> [])
          in
          let line = Json.to_string (Json.Obj (base @ fields)) in
          (match s with
          | To_buffer b ->
              Buffer.add_string b line;
              Buffer.add_char b '\n'
          | To_channel oc ->
              output_string oc line;
              output_char oc '\n');
          incr emitted_count
        end
        else incr suppressed_count

(* Run [f] with events captured into a fresh buffer, restoring the
   previous sink; returns [f]'s result and the captured JSONL. *)
let with_buffer f =
  let buf = Buffer.create 1024 in
  let saved = !sink in
  sink := Some (To_buffer buf);
  let finally () = sink := saved in
  let v = Fun.protect ~finally f in
  (v, Buffer.contents buf)
