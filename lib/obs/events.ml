(* Structured event sink: one JSON object per line (JSONL), covering
   per-hop route events, engine dispatch, overlay membership changes and
   anything else a layer wants to narrate. Disabled unless both the
   [Flag] is on and a sink is installed, so an un-instrumented run writes
   nothing and pays one bool load per potential event.

   Sampling is deterministic, per event kind: [set_sampling ~every:k]
   keeps the 1st, (k+1)-th, (2k+1)-th... occurrence of each kind, which
   makes runs reproducible (no RNG involved) while still thinning the
   per-hop firehose. *)

type sink = To_buffer of Buffer.t | To_channel of out_channel

(* Destination resolution, in precedence order: a programmatic [set_sink]
   (including [set_sink None] — "explicitly nowhere") always wins; absent
   one, FTR_OBS_SINK=<path> names a file the JSONL stream (route events,
   trace replays, everything) is appended to. The env sink is opened
   lazily on the first emission that needs it, so a run that never emits —
   FTR_OBS off, or telemetry on but eventless — never creates the file.
   FTR_OBS remains the master gate either way: with the flag off no sink,
   env or programmatic, sees a single byte. *)
let explicit : sink option ref = ref None

let explicit_set = ref false

let env_sink =
  lazy
    (match Sys.getenv_opt "FTR_OBS_SINK" with
    | Some path when String.length path > 0 ->
        let oc = open_out path in
        at_exit (fun () -> try flush oc with Sys_error _ -> ());
        Some (To_channel oc)
    | Some _ | None -> None)

let current_sink () = if !explicit_set then !explicit else Lazy.force env_sink

let set_sink s =
  explicit := s;
  explicit_set := true

(* Push buffered bytes through a channel sink (the env-redirect file is
   otherwise only flushed at exit); a no-op for buffers and no-sink. *)
let flush_sink () =
  match current_sink () with
  | Some (To_channel oc) -> flush oc
  | Some (To_buffer _) | None -> ()

(* One process-wide exit hook that flushes whatever sink is current at
   exit time. The env sink's own lazy [at_exit] only covers the channel
   it opened; a programmatic [set_sink (To_channel ...)] installed later
   had no such cover, so a CLI that exits early (usage error, selfcheck
   failure) could lose its tail. Idempotent: one hook however often the
   entry point calls it. *)
let exit_flush_installed = ref false

let install_exit_flush () =
  if not !exit_flush_installed then begin
    exit_flush_installed := true;
    at_exit flush_sink
  end

let every = ref 1

let set_sampling ~every:k =
  if k < 1 then invalid_arg "Events.set_sampling: every must be >= 1";
  every := k

let seen : (string, int ref) Hashtbl.t = Hashtbl.create 16

let emitted_count = ref 0

let suppressed_count = ref 0

let emitted () = !emitted_count

let suppressed () = !suppressed_count

(* Clear counters and sampling state; the sink installation survives. *)
let reset () =
  Hashtbl.reset seen;
  emitted_count := 0;
  suppressed_count := 0

let emit ?time ~kind fields =
  if Flag.enabled () then
    match current_sink () with
    | None -> ()
    | Some s ->
        let c =
          match Hashtbl.find_opt seen kind with
          | Some c -> c
          | None ->
              let c = ref 0 in
              Hashtbl.replace seen kind c;
              c
        in
        incr c;
        if (!c - 1) mod !every = 0 then begin
          let base =
            ("kind", Json.String kind)
            :: (match time with Some t -> [ ("time", Json.Float t) ] | None -> [])
          in
          let line = Json.to_string (Json.Obj (base @ fields)) in
          (match s with
          | To_buffer b ->
              Buffer.add_string b line;
              Buffer.add_char b '\n'
          | To_channel oc ->
              output_string oc line;
              output_char oc '\n');
          incr emitted_count
        end
        else incr suppressed_count

(* Run [f] with events captured into a fresh buffer, restoring the
   previous sink; returns [f]'s result and the captured JSONL. *)
let with_buffer f =
  let buf = Buffer.create 1024 in
  let saved = !explicit and saved_set = !explicit_set in
  explicit := Some (To_buffer buf);
  explicit_set := true;
  let finally () =
    explicit := saved;
    explicit_set := saved_set
  in
  let v = Fun.protect ~finally f in
  (v, Buffer.contents buf)
