(* Minimal JSON tree, encoder and parser — enough for the telemetry
   exporters, the JSONL event stream and the `--json` CLI outputs, without
   pulling in an external dependency. The parser exists so the @obs gate
   and the tests can verify that every emitted line is well-formed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_nan x then "null" (* JSON has no NaN/inf; degrade to null *)
  else if Float.equal x infinity then "null"
  else if Float.equal x neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    (* "%.12g" may print "1e+06" (valid JSON) or "1" (valid); it never
       prints a bare trailing point like [string_of_float] does. *)
    s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_errorf fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Recursive-descent over a string; positions advance through a ref. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let peek_is c = !pos < n && Char.equal s.[!pos] c in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> parse_errorf "expected %c at offset %d, found %c" c !pos d
    | None -> parse_errorf "expected %c at offset %d, found end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_errorf "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_errorf "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then parse_errorf "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then parse_errorf "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with Failure _ -> parse_errorf "bad \\u escape %S" hex
                   in
                   (* Decode to UTF-8 bytes; surrogate pairs are not needed
                      by our own emitter and are rejected for simplicity. *)
                   if code >= 0xD800 && code <= 0xDFFF then
                     parse_errorf "surrogate \\u escape unsupported"
                   else if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 5
               | c -> parse_errorf "bad escape \\%c" c);
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some x -> Float x
        | None -> parse_errorf "bad number %S at offset %d" tok start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_errorf "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek_is ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek_is ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek_is '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek_is ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_errorf "trailing garbage at offset %d" !pos;
  v

let parse_opt s = match parse s with v -> Some v | exception Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors for the few shapes the CLI gate inspects                  *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
