(* Process-wide metrics registry: named counters, gauges and log-scale
   histograms, each optionally carrying labelled dimensions
   (e.g. route_stuck_total{reason="no_live_neighbor"}). Call sites guard on
   [Flag.enabled] so an instrumented hot path pays one bool load when the
   registry is off; everything here only runs when telemetry is on, so
   clarity wins over nanoseconds.

   A name is bound to exactly one metric kind for its lifetime (Prometheus
   semantics); mixing kinds under one name raises. *)

module Summary = Ftr_stats.Summary

(* Histogram buckets are powers of two: bucket 0 counts observations <= 1,
   bucket i >= 1 counts observations in (2^(i-1), 2^i]. 64 buckets cover
   every hop count, queue depth or microsecond duration this simulator can
   produce; larger values clamp into the last bucket. *)
let bucket_count = 64

let bucket_upper i = if i <= 0 then 1.0 else Float.pow 2.0 (float_of_int i)

let bucket_index v =
  if v <= 1.0 then 0
  else begin
    let i = ref 0 and ub = ref 1.0 in
    while v > !ub && !i < bucket_count - 1 do
      incr i;
      ub := !ub *. 2.0
    done;
    !i
  end

type histogram = { buckets : int array; summary : Summary.t }

type metric =
  | Counter of { mutable c : int }
  | Gauge of { mutable g : float }
  | Histogram of histogram

type kind = Counter_kind | Gauge_kind | Histogram_kind

let kind_name = function
  | Counter_kind -> "counter"
  | Gauge_kind -> "gauge"
  | Histogram_kind -> "histogram"

type entry = { name : string; labels : (string * string) list; metric : metric }

type t = {
  table : (string, entry) Hashtbl.t; (* keyed by name + rendered labels *)
  kinds : (string, kind) Hashtbl.t; (* one kind per metric name *)
}

let create () = { table = Hashtbl.create 64; kinds = Hashtbl.create 64 }

(* The process-wide registry every instrumentation site defaults to. *)
let default = create ()

let reset t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.kinds

let labels_key labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

(* Labels are string pairs; keep their ordering typed so the registry key
   never depends on polymorphic compare. *)
let compare_label (ka, va) (kb, vb) =
  let c = String.compare ka kb in
  if c <> 0 then c else String.compare va vb

let find_or_create t ~name ~labels ~kind make =
  if String.equal name "" then invalid_arg "Metrics: metric name must be non-empty";
  (match Hashtbl.find_opt t.kinds name with
  | Some k when k <> kind ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is a %s, used as a %s" name (kind_name k) (kind_name kind))
  | Some _ -> ()
  | None -> Hashtbl.replace t.kinds name kind);
  let labels = List.sort compare_label labels in
  let key = name ^ "{" ^ labels_key labels ^ "}" in
  match Hashtbl.find_opt t.table key with
  | Some e -> e.metric
  | None ->
      let metric = make () in
      Hashtbl.replace t.table key { name; labels; metric };
      metric

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)
(* ------------------------------------------------------------------ *)

let incr_by ?(registry = default) ?(labels = []) name by =
  match find_or_create registry ~name ~labels ~kind:Counter_kind (fun () -> Counter { c = 0 }) with
  | Counter r ->
      if by < 0 then invalid_arg "Metrics.incr_by: counters only go up";
      r.c <- r.c + by
  | Gauge _ | Histogram _ -> assert false

let incr ?registry ?labels name = incr_by ?registry ?labels name 1

let set_gauge ?(registry = default) ?(labels = []) name v =
  match find_or_create registry ~name ~labels ~kind:Gauge_kind (fun () -> Gauge { g = 0.0 }) with
  | Gauge r -> r.g <- v
  | Counter _ | Histogram _ -> assert false

let observe ?(registry = default) ?(labels = []) name v =
  match
    find_or_create registry ~name ~labels ~kind:Histogram_kind (fun () ->
        Histogram { buckets = Array.make bucket_count 0; summary = Summary.create () })
  with
  | Histogram h ->
      let i = bucket_index v in
      h.buckets.(i) <- h.buckets.(i) + 1;
      Summary.add h.summary v
  | Counter _ | Gauge _ -> assert false

let observe_int ?registry ?labels name v = observe ?registry ?labels name (float_of_int v)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let lookup t ~name ~labels =
  let labels = List.sort compare_label labels in
  Hashtbl.find_opt t.table (name ^ "{" ^ labels_key labels ^ "}")

let counter_value ?(registry = default) ?(labels = []) name =
  match lookup registry ~name ~labels with
  | Some { metric = Counter r; _ } -> r.c
  | Some _ | None -> 0

let gauge_value ?(registry = default) ?(labels = []) name =
  match lookup registry ~name ~labels with
  | Some { metric = Gauge r; _ } -> r.g
  | Some _ | None -> nan

(* ------------------------------------------------------------------ *)
(* Snapshots for the exporters                                         *)
(* ------------------------------------------------------------------ *)

type histogram_view = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
      (* (inclusive upper bound, count), non-cumulative, trimmed to the
         highest non-empty bucket *)
}

type view =
  | Counter_view of int
  | Gauge_view of float
  | Histogram_view of histogram_view

type item = { item_name : string; item_labels : (string * string) list; item_view : view }

let histogram_view h =
  let last = ref (-1) in
  Array.iteri (fun i c -> if c > 0 then last := i) h.buckets;
  let buckets = List.init (!last + 1) (fun i -> (bucket_upper i, h.buckets.(i))) in
  {
    h_count = Summary.count h.summary;
    h_sum = Summary.total h.summary;
    h_min = Summary.min_value h.summary;
    h_max = Summary.max_value h.summary;
    h_buckets = buckets;
  }

let snapshot ?(registry = default) () =
  let items =
    Hashtbl.fold
      (fun _ e acc ->
        let view =
          match e.metric with
          | Counter r -> Counter_view r.c
          | Gauge r -> Gauge_view r.g
          | Histogram h -> Histogram_view (histogram_view h)
        in
        { item_name = e.name; item_labels = e.labels; item_view = view } :: acc)
      registry.table []
  in
  List.sort
    (fun a b ->
      let c = String.compare a.item_name b.item_name in
      if c <> 0 then c else List.compare compare_label a.item_labels b.item_labels)
    items

let size ?(registry = default) () = Hashtbl.length registry.table

(* Quantile estimate from a log-scale histogram: find the bucket holding
   the target rank, then interpolate linearly within it (the
   Prometheus-style assumption that observations fill a bucket uniformly),
   and clamp to the observed [min, max] so the estimate never leaves the
   data's range. Linear — not log-linear — within-bucket interpolation
   keeps percentiles continuous in the target rank without biasing them
   toward the bucket's lower edge, and makes the expected values exact
   enough to assert in tests. *)
let histogram_quantile v q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.histogram_quantile: q must be in [0,1]";
  if v.h_count = 0 then nan
  else begin
    let target = q *. float_of_int v.h_count in
    let rec scan cum = function
      | [] -> v.h_max
      | (ub, c) :: rest ->
          let cum' = cum +. float_of_int c in
          if c > 0 && cum' >= target then begin
            let lo = if ub <= 1.0 then 0.0 else ub /. 2.0 in
            let frac = if c = 0 then 1.0 else (target -. cum) /. float_of_int c in
            let frac = Float.max 0.0 (Float.min 1.0 frac) in
            lo +. (frac *. (ub -. lo))
          end
          else scan cum' rest
    in
    let est = scan 0.0 v.h_buckets in
    Float.max v.h_min (Float.min v.h_max est)
  end
