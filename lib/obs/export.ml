(* Exporters over the metrics registry and the span profiler: a
   human-readable text report, a JSON snapshot (one tree, machine
   friendly), and the Prometheus text exposition format. *)

let labels_string labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             let escaped =
               String.concat ""
                 (List.map
                    (function
                      | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
                    (List.init (String.length v) (String.get v)))
             in
             Printf.sprintf "%s=\"%s\"" k escaped)
           labels)
    ^ "}"

(* ------------------------------------------------------------------ *)
(* Text report                                                         *)
(* ------------------------------------------------------------------ *)

let span_report () =
  let buf = Buffer.create 512 in
  let stats = Span.stats () in
  if List.is_empty stats then Buffer.add_string buf "spans: none recorded\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%-28s %8s %12s %12s %12s %12s %12s\n" "span" "count" "total(s)" "min(s)"
         "p50(s)" "p99(s)" "max(s)");
    List.iter
      (fun (s : Span.stat) ->
        Buffer.add_string buf
          (Printf.sprintf "%-28s %8d %12.6f %12.6f %12.6f %12.6f %12.6f\n" s.Span.span_name
             s.Span.count s.Span.total s.Span.min_s s.Span.p50 s.Span.p99 s.Span.max_s))
      stats
  end;
  Buffer.contents buf

let metrics_report ?registry () =
  let buf = Buffer.create 1024 in
  let items = Metrics.snapshot ?registry () in
  if List.is_empty items then Buffer.add_string buf "metrics: registry empty\n"
  else
    List.iter
      (fun (i : Metrics.item) ->
        let id = i.Metrics.item_name ^ labels_string i.Metrics.item_labels in
        match i.Metrics.item_view with
        | Metrics.Counter_view c -> Buffer.add_string buf (Printf.sprintf "%-52s %12d\n" id c)
        | Metrics.Gauge_view g -> Buffer.add_string buf (Printf.sprintf "%-52s %12.3f\n" id g)
        | Metrics.Histogram_view h ->
            Buffer.add_string buf
              (Printf.sprintf "%-52s count=%d sum=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f\n" id
                 h.Metrics.h_count h.Metrics.h_sum h.Metrics.h_min
                 (Metrics.histogram_quantile h 0.5) (Metrics.histogram_quantile h 0.99)
                 h.Metrics.h_max))
      items;
  Buffer.contents buf

let text_report ?registry () =
  "== metrics ==\n" ^ metrics_report ?registry () ^ "\n== spans ==\n" ^ span_report ()

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)
(* ------------------------------------------------------------------ *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let json_snapshot ?registry () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (i : Metrics.item) ->
      let base =
        [ ("name", Json.String i.Metrics.item_name); ("labels", labels_json i.Metrics.item_labels) ]
      in
      match i.Metrics.item_view with
      | Metrics.Counter_view c -> counters := Json.Obj (base @ [ ("value", Json.Int c) ]) :: !counters
      | Metrics.Gauge_view g -> gauges := Json.Obj (base @ [ ("value", Json.Float g) ]) :: !gauges
      | Metrics.Histogram_view h ->
          histograms :=
            Json.Obj
              (base
              @ [
                  ("count", Json.Int h.Metrics.h_count);
                  ("sum", Json.Float h.Metrics.h_sum);
                  ("min", Json.Float h.Metrics.h_min);
                  ("max", Json.Float h.Metrics.h_max);
                  ("p50", Json.Float (Metrics.histogram_quantile h 0.5));
                  ("p99", Json.Float (Metrics.histogram_quantile h 0.99));
                  ( "buckets",
                    Json.List
                      (List.map
                         (fun (le, c) -> Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
                         h.Metrics.h_buckets) );
                ])
            :: !histograms)
    (Metrics.snapshot ?registry ());
  let spans =
    List.map
      (fun (s : Span.stat) ->
        Json.Obj
          [
            ("name", Json.String s.Span.span_name);
            ("count", Json.Int s.Span.count);
            ("total", Json.Float s.Span.total);
            ("min", Json.Float s.Span.min_s);
            ("p50", Json.Float s.Span.p50);
            ("p99", Json.Float s.Span.p99);
            ("max", Json.Float s.Span.max_s);
          ])
      (Span.stats ())
  in
  Json.Obj
    [
      ("counters", Json.List (List.rev !counters));
      ("gauges", Json.List (List.rev !gauges));
      ("histograms", Json.List (List.rev !histograms));
      ("spans", Json.List spans);
    ]

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition format                                   *)
(* ------------------------------------------------------------------ *)

let prometheus ?registry () =
  let buf = Buffer.create 2048 in
  let typed = Hashtbl.create 16 in
  let declare name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (i : Metrics.item) ->
      let name = i.Metrics.item_name and labels = i.Metrics.item_labels in
      match i.Metrics.item_view with
      | Metrics.Counter_view c ->
          declare name "counter";
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name (labels_string labels) c)
      | Metrics.Gauge_view g ->
          declare name "gauge";
          Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name (labels_string labels) (Json.float_repr g))
      | Metrics.Histogram_view h ->
          declare name "histogram";
          let cum = ref 0 in
          List.iter
            (fun (le, c) ->
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (labels_string (labels @ [ ("le", Json.float_repr le) ]))
                   !cum))
            h.Metrics.h_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (labels_string (labels @ [ ("le", "+Inf") ]))
               h.Metrics.h_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (labels_string labels) (Json.float_repr h.Metrics.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (labels_string labels) h.Metrics.h_count))
    (Metrics.snapshot ?registry ());
  List.iter
    (fun (s : Span.stat) ->
      declare "ftr_span_seconds" "summary";
      let l q = labels_string [ ("name", s.Span.span_name); ("quantile", q) ] in
      Buffer.add_string buf
        (Printf.sprintf "ftr_span_seconds%s %s\n" (l "0.5") (Json.float_repr s.Span.p50));
      Buffer.add_string buf
        (Printf.sprintf "ftr_span_seconds%s %s\n" (l "0.99") (Json.float_repr s.Span.p99));
      Buffer.add_string buf
        (Printf.sprintf "ftr_span_seconds_sum%s %s\n"
           (labels_string [ ("name", s.Span.span_name) ])
           (Json.float_repr s.Span.total));
      Buffer.add_string buf
        (Printf.sprintf "ftr_span_seconds_count%s %d\n"
           (labels_string [ ("name", s.Span.span_name) ])
           s.Span.count))
    (Span.stats ());
  Buffer.contents buf
