(* The telemetry switch. Mirrors [Ftr_debug.Debug]: sits below every
   instrumented layer so hot paths (greedy hops, event dispatch, overlay
   repairs) can guard their metric updates and event emissions on a single
   mutable bool — one load and one branch when off, nothing allocated. The
   collectors themselves live in [Metrics], [Span] and [Events]; this
   module is the part every call site can afford to consult.

   Enable with the environment variable FTR_OBS=1 (read once at start-up)
   or programmatically via [set_mode]. *)

let env_enabled =
  match Sys.getenv_opt "FTR_OBS" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

let enabled_ref = ref env_enabled

(* The collectors ([Metrics], [Span], [Events]) are plain hashtables and
   refs — fast, but not domain-safe. [Ftr_exec.Pool] therefore suppresses
   telemetry inside its worker domains (the coordinator records pool-level
   metrics on their behalf). Suppression is domain-local state so flipping
   it in a worker cannot blind the coordinator. The off fast path is
   unchanged: [enabled_ref] is read first and short-circuits before the
   DLS lookup. *)
let suppressed_key = Domain.DLS.new_key (fun () -> false)

(* Workers only read; writes ([set_mode]/[with_mode]) are harness-side and
   happen before the pool spawns domains. ftr-lint: disable T1 *)
let enabled () = !enabled_ref && not (Domain.DLS.get suppressed_key)

let suppress_in_domain on = Domain.DLS.set suppressed_key on

let set_mode on = enabled_ref := on

(* Run [f] with telemetry forced on (or off), restoring the previous mode. *)
let with_mode on f =
  let saved = !enabled_ref in
  enabled_ref := on;
  Fun.protect ~finally:(fun () -> enabled_ref := saved) f
