(* The telemetry switch. Mirrors [Ftr_debug.Debug]: sits below every
   instrumented layer so hot paths (greedy hops, event dispatch, overlay
   repairs) can guard their metric updates and event emissions on a single
   mutable bool — one load and one branch when off, nothing allocated. The
   collectors themselves live in [Metrics], [Span] and [Events]; this
   module is the part every call site can afford to consult.

   Enable with the environment variable FTR_OBS=1 (read once at start-up)
   or programmatically via [set_mode]. *)

let env_enabled =
  match Sys.getenv_opt "FTR_OBS" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

let enabled_ref = ref env_enabled

let enabled () = !enabled_ref

let set_mode on = enabled_ref := on

(* Run [f] with telemetry forced on (or off), restoring the previous mode. *)
let with_mode on f =
  let saved = !enabled_ref in
  enabled_ref := on;
  Fun.protect ~finally:(fun () -> enabled_ref := saved) f
