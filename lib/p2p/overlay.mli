(** The paper's overlay as a running message-passing protocol on the
    discrete-event engine.

    Nodes live at line positions and keep (a) ring links to the nearest
    live node on each side and (b) ℓ long-distance links maintained by the
    Section 5 heuristic. All interaction is by messages with a fixed
    latency: lookups route greedily hop by hop; joins find their ring slot
    and their long links through routed lookups and solicit incoming links
    with the Poisson/redirect rule; crashes are discovered by probes during
    routing, and dead links are regenerated with fresh 1/d draws
    (self-healing). *)

type t

type stats = {
  mutable lookups_issued : int;  (** user lookups (via {!lookup}) *)
  mutable lookups_ok : int;
  mutable lookups_failed : int;
  mutable hops_on_success : int;  (** total hops over successful user lookups *)
  mutable maintenance_issued : int;
      (** protocol-internal lookups: join placement, link setup, repair *)
  mutable maintenance_failed : int;
  mutable messages : int;  (** routed protocol messages *)
  mutable probes : int;  (** failure-detection and ring-repair probes *)
  mutable repairs : int;  (** links regenerated after a failure *)
  mutable joins : int;
  mutable crashes : int;
  mutable leaves : int;
}

val create :
  ?latency:float ->
  ?latency_model:Ftr_sim.Latency.t ->
  ?ttl:int ->
  ?regenerate:bool ->
  ?trace:Ftr_sim.Trace.t ->
  line_size:int ->
  links:int ->
  rng:Ftr_prng.Rng.t ->
  Ftr_sim.Engine.t ->
  t
(** An empty overlay bound to an engine. [latency] is a fixed per-message
    delay (default 1.0); [latency_model] overrides it with a jittered or
    heavy-tailed model, so experiments can check that conclusions survive
    asynchrony. [ttl] caps lookup hops (default 256). [regenerate]
    (default [true]) controls Section 5's link regeneration: when [false],
    dead links are still detected, removed and the ring repaired, but no
    replacement 1/d lookups are issued — the link set only shrinks. With a
    constant latency model this makes a lookup's outcome a pure function
    of the link state and the failure set (no RNG draws on the routing
    path), which is what the {!Ftr_svc} equivalence harness pins against.
    @raise Invalid_argument on non-positive latency or sizes. *)

val engine : t -> Ftr_sim.Engine.t
(** The engine this overlay schedules on. *)

val stats : t -> stats
(** Live statistics (mutated as the simulation runs). *)

val node_count : t -> int
(** Number of live nodes. *)

val is_alive : t -> int -> bool
(** Whether a live node sits at the position. *)

val live_positions : t -> int list
(** Sorted positions of live nodes. *)

val bootstrap_node : t -> pos:int -> int
(** Place the very first node without any protocol traffic; returns its
    position. @raise Invalid_argument if the position is occupied. *)

val populate : t -> positions:int list -> unit
(** Instantaneously instantiate a whole network (ring plus ideally-drawn
    long links) as a churn starting point, bypassing join traffic.
    @raise Invalid_argument on empty or out-of-range positions. *)

val join : t -> pos:int -> via:int -> unit
(** Schedule the full join protocol for a new node at [pos], bootstrapped
    through the live node at [via].
    @raise Invalid_argument if [pos] is occupied or [via] is dead. *)

val leave : t -> pos:int -> unit
(** Graceful departure: splice the ring, then go. No-op if absent. *)

val crash : t -> pos:int -> unit
(** Fail-stop: the node disappears without telling anyone; neighbours
    discover it by probes. No-op if absent. *)

val lookup :
  t -> from:int -> target:int -> ?callback:(owner:int -> hops:int -> unit) -> unit -> unit
(** Issue a greedy routed lookup for a line point from a live node. The
    callback (if any) fires with the owning node when the lookup resolves;
    failures are counted in {!stats}.
    @raise Invalid_argument if [from] is dead or [target] off the line. *)

(** {1 Introspection for the invariant sanitizer} *)

type node_view = {
  view_pos : int;
  view_alive : bool;
  view_left : int option;  (** nearest known live node to the left *)
  view_right : int option;
  view_long : int list;  (** long-distance link targets (positions) *)
  view_births : int list;  (** arrival ticks, aligned with [view_long] *)
}

val line_size : t -> int
(** Number of grid points on the underlying line. *)

val links : t -> int
(** The per-node long-link budget ℓ. *)

val ttl : t -> int
(** The lookup hop cap this overlay was created with. *)

val known : t -> int -> bool
(** Whether a node (live or dead) ever existed at the position. *)

val iter_nodes : t -> (node_view -> unit) -> unit
(** Visit every node in the registry, dead ones included, in no
    particular order. *)

val enable_stabilization : ?period:float -> ?checks_per_tick:int -> until:float -> t -> unit
(** Background self-healing until virtual time [until]: every [period]
    (default 10.0), [checks_per_tick] (default 8) random live nodes each
    probe one random neighbour and regenerate it if dead — repair traffic
    decoupled from lookups, so damage heals even on an idle overlay.
    @raise Invalid_argument on non-positive period or zero checks. *)
