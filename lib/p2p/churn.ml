module Engine = Ftr_sim.Engine
module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample

type config = {
  duration : float;
  join_rate : float;
  crash_rate : float;
  leave_rate : float;
  lookup_rate : float;
  min_nodes : int;
}

let default_config =
  {
    duration = 1000.0;
    join_rate = 0.05;
    crash_rate = 0.02;
    leave_rate = 0.02;
    lookup_rate = 1.0;
    min_nodes = 8;
  }

(* Uniformly random live node via reservoir sampling over the registry. *)
let random_live overlay rng =
  let chosen = ref None and seen = ref 0 in
  List.iter
    (fun pos ->
      incr seen;
      if Rng.int rng !seen = 0 then chosen := Some pos)
    (Overlay.live_positions overlay);
  !chosen

let random_vacant overlay rng ~line_size =
  let rec attempt tries =
    if tries > 10_000 then None
    else
      let pos = Rng.int rng line_size in
      if Overlay.is_alive overlay pos then attempt (tries + 1) else Some pos
  in
  attempt 0

(* A recurring Poisson process: perform [action], then reschedule after an
   exponential gap, until the horizon. *)
let recurring engine rng ~rate ~until action =
  if rate > 0.0 then begin
    let rec tick () =
      if Engine.now engine < until then begin
        action ();
        let gap = Sample.exponential rng ~rate in
        ignore (Engine.schedule_after engine ~delay:gap (fun () -> tick ()))
      end
    in
    let first = Sample.exponential rng ~rate in
    ignore (Engine.schedule_after engine ~delay:first (fun () -> tick ()))
  end

let install ?(config = default_config) ~line_size overlay rng =
  let engine = Overlay.engine overlay in
  let until = Engine.now engine +. config.duration in
  recurring engine rng ~rate:config.join_rate ~until (fun () ->
      match (random_vacant overlay rng ~line_size, random_live overlay rng) with
      | Some pos, Some via -> Overlay.join overlay ~pos ~via
      | _ -> ());
  recurring engine rng ~rate:config.crash_rate ~until (fun () ->
      if Overlay.node_count overlay > config.min_nodes then
        match random_live overlay rng with
        | Some pos -> Overlay.crash overlay ~pos
        | None -> ());
  recurring engine rng ~rate:config.leave_rate ~until (fun () ->
      if Overlay.node_count overlay > config.min_nodes then
        match random_live overlay rng with
        | Some pos -> Overlay.leave overlay ~pos
        | None -> ());
  recurring engine rng ~rate:config.lookup_rate ~until (fun () ->
      match random_live overlay rng with
      | Some from ->
          let target = Rng.int rng line_size in
          Overlay.lookup overlay ~from ~target ()
      | None -> ());
  until

type report = {
  final_nodes : int;
  lookups_issued : int;
  lookups_ok : int;
  lookups_failed : int;
  success_rate : float;
  mean_hops : float;
  messages : int;
  probes : int;
  repairs : int;
  joins : int;
  crashes : int;
  leaves : int;
}

let report overlay =
  let s = Overlay.stats overlay in
  let resolved = s.Overlay.lookups_ok + s.Overlay.lookups_failed in
  {
    final_nodes = Overlay.node_count overlay;
    lookups_issued = s.Overlay.lookups_issued;
    lookups_ok = s.Overlay.lookups_ok;
    lookups_failed = s.Overlay.lookups_failed;
    success_rate =
      (if resolved = 0 then nan
       else float_of_int s.Overlay.lookups_ok /. float_of_int resolved);
    mean_hops =
      (if s.Overlay.lookups_ok = 0 then nan
       else float_of_int s.Overlay.hops_on_success /. float_of_int s.Overlay.lookups_ok);
    messages = s.Overlay.messages;
    probes = s.Overlay.probes;
    repairs = s.Overlay.repairs;
    joins = s.Overlay.joins;
    crashes = s.Overlay.crashes;
    leaves = s.Overlay.leaves;
  }

let run ?config ?(seed = 42) ~line_size ~initial_nodes ~links () =
  if initial_nodes < 2 then invalid_arg "Churn.run: need at least two initial nodes";
  if initial_nodes > line_size then invalid_arg "Churn.run: more nodes than line points";
  Ftr_obs.Span.time "churn.run" @@ fun () ->
  let rng = Rng.of_int seed in
  let engine = Engine.create () in
  let overlay = Overlay.create ~line_size ~links ~rng:(Rng.split rng) engine in
  let positions =
    (* Evenly spread the initial population, as an even hash would. *)
    List.init initial_nodes (fun i -> i * line_size / initial_nodes)
  in
  Overlay.populate overlay ~positions;
  let until = install ?config ~line_size overlay (Rng.split rng) in
  Engine.run ~until engine;
  (* Let in-flight traffic settle. *)
  Engine.run ~max_events:1_000_000 engine;
  report overlay

type join_cost_row = {
  line_size : int;
  mean_messages_per_join : float;
  mean_lookups_per_join : float;
}

(* Per-join maintenance cost as the network grows: each join issues
   1 placement lookup + links outgoing-link lookups + Poisson(links)
   solicitations, each costing O(log n) messages — so the total should
   grow as O(links * log n). The paper's scalability requirement is that
   this stays polylogarithmic. *)
let join_cost ?(links = 8) ?(joins = 50) ?(seed = 7) ~line_sizes () =
  List.map
    (fun line_size ->
      if line_size < 64 then invalid_arg "Churn.join_cost: line too small";
      let rng = Rng.of_int seed in
      let engine = Engine.create () in
      let overlay = Overlay.create ~line_size ~links ~rng:(Rng.split rng) engine in
      let initial = line_size / 8 in
      Overlay.populate overlay
        ~positions:(List.init initial (fun i -> i * line_size / initial));
      let s = Overlay.stats overlay in
      let messages_before = s.Overlay.messages and lookups_before = s.Overlay.maintenance_issued in
      let performed = ref 0 in
      let join_rng = Rng.split rng in
      while !performed < joins do
        let pos = Rng.int join_rng line_size in
        if not (Overlay.is_alive overlay pos) then begin
          Overlay.join overlay ~pos ~via:0;
          Engine.run engine;
          incr performed
        end
      done;
      {
        line_size;
        mean_messages_per_join =
          float_of_int (s.Overlay.messages - messages_before) /. float_of_int joins;
        mean_lookups_per_join =
          float_of_int (s.Overlay.maintenance_issued - lookups_before) /. float_of_int joins;
      })
    line_sizes
