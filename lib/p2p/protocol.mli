(** The overlay's routing decisions as pure functions — the message
    protocol extracted from {!Overlay}'s synchronous paths so the
    actor-based service ({!Ftr_svc}) makes exactly the same choices.
    Every function is a total function of its arguments: no node state,
    no RNG, no engine. *)

val advances : pos:int -> target:int -> cand:int -> bool
(** Section 4's greedy advance rule with the tie walk: [cand] advances a
    lookup for [target] sitting at [pos] when it is strictly closer, or
    equidistant at a smaller position. *)

val better : best:int -> best_dist:int -> cand:int -> dist:int -> bool
(** The min-scan total order: [cand] at [dist] beats the current [best]
    at [best_dist] on smaller distance, position breaking ties. *)

val best_candidate : pos:int -> target:int -> int list -> (int * int) option
(** One min-scan over a neighbour set: the advancing candidate with
    minimal (distance, position) and its distance, or [None] when no
    neighbour advances — the scanning node owns the target's basin.
    Liveness is not consulted; the caller probes the chosen candidate
    and re-scans after repairing a dead pick. *)

val probe_ring :
  alive:(int -> bool) ->
  line_size:int ->
  self:int ->
  from:int ->
  dir:int ->
  on_probe:(unit -> unit) ->
  int option
(** Ring repair by walking the line from [from] in direction [dir] (±1),
    one [on_probe] charge per grid point, until [alive] answers at a
    position other than [self] or the line ends. *)
