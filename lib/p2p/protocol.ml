(* The overlay's routing decisions as pure functions, extracted from the
   synchronous [Overlay] paths so the message-passing service ([Ftr_svc])
   makes byte-for-byte the same choices at every hop. Nothing here touches
   node state, RNGs or the engine: every function is a total function of
   its arguments, which is what lets two very different schedulers — the
   event heap and the actor rounds — agree on owners, hop counts and
   repair targets. *)

(* Section 4's greedy rule with the tie walk: a strictly closer neighbour
   advances the lookup; an equidistant neighbour at a smaller position
   also does, so a point midway between two nodes resolves to the same
   owner from either direction (the tie walk moves leftward once and
   stops). *)
let advances ~pos ~target ~cand =
  let my_dist = abs (pos - target) and d = abs (cand - target) in
  d < my_dist || (d = my_dist && cand < pos)

(* Among advancing candidates, the one with minimal (distance, position)
   wins — the total order that makes the min-scan deterministic. *)
let better ~best ~best_dist ~cand ~dist = dist < best_dist || (dist = best_dist && cand < best)

(* One min-scan over the neighbour set; [None] means no neighbour
   advances, i.e. the scanning node owns the target's basin. Liveness is
   deliberately not consulted here: the caller probes the single chosen
   candidate and, on a dead pick, repairs the link set and re-scans —
   the paper's failure-detection-by-probing, shared by both runtimes. *)
let best_candidate ~pos ~target neighbors =
  let my_dist = abs (pos - target) in
  let best = ref (-1) and best_dist = ref max_int in
  List.iter
    (fun cand ->
      let dist = abs (cand - target) in
      if
        (dist < my_dist || (dist = my_dist && cand < pos))
        && better ~best:!best ~best_dist:!best_dist ~cand ~dist
      then begin
        best := cand;
        best_dist := dist
      end)
    neighbors;
  if !best < 0 then None else Some (!best, !best_dist)

(* Ring repair: walk the line away from the dead neighbour, one probe per
   grid point, until a live node answers or the line ends. [alive] is the
   caller's liveness oracle (registry lookup in the synchronous overlay,
   the frozen per-round view in the service); [on_probe] charges each
   probe to the caller's accounting. The walking node itself never
   answers its own probe. *)
let probe_ring ~alive ~line_size ~self ~from ~dir ~on_probe =
  let rec walk pos =
    if pos < 0 || pos >= line_size then None
    else begin
      on_probe ();
      if alive pos && pos <> self then Some pos else walk (pos + dir)
    end
  in
  walk (from + dir)
