module Engine = Ftr_sim.Engine
module Trace = Ftr_sim.Trace
module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample

type node = {
  pos : int;
  mutable alive : bool;
  mutable left : int option; (* nearest known live node to the left *)
  mutable right : int option;
  mutable long : int list; (* long-distance link targets (positions) *)
  mutable birth_order : int list; (* arrival ticks, aligned with [long] *)
}

type stats = {
  mutable lookups_issued : int;
  mutable lookups_ok : int;
  mutable lookups_failed : int;
  mutable hops_on_success : int;
  mutable maintenance_issued : int;
  mutable maintenance_failed : int;
  mutable messages : int;
  mutable probes : int; (* failure-detection probes and repair traffic *)
  mutable repairs : int;
  mutable joins : int;
  mutable crashes : int;
  mutable leaves : int;
}

type pending_request = {
  callback : (owner:int -> hops:int -> unit) option;
  user : bool; (* user lookups and protocol/maintenance traffic are
                  accounted separately *)
  trace : Ftr_obs.Tracing.t;
      (* flight-recorder trace for user lookups when the recorder is on;
         the shared null sentinel otherwise *)
}

type t = {
  engine : Engine.t;
  trace : Trace.t;
  rng : Rng.t;
  latency : Ftr_sim.Latency.t;
  line_size : int;
  links : int;
  ttl : int;
  regenerate : bool;
  pl : Sample.power_law;
  nodes : (int, node) Hashtbl.t;
  pending : (int, pending_request) Hashtbl.t;
  stats : stats;
  mutable next_request : int;
  mutable tick : int;
}

let create ?latency ?latency_model ?(ttl = 256) ?(regenerate = true) ?(trace = Trace.create ())
    ~line_size ~links ~rng engine =
  if line_size < 2 then invalid_arg "Overlay.create: line_size must be >= 2";
  if links < 1 then invalid_arg "Overlay.create: links must be >= 1";
  let latency =
    match (latency_model, latency) with
    | Some model, _ -> model
    | None, Some v ->
        if v <= 0.0 then invalid_arg "Overlay.create: latency must be positive";
        Ftr_sim.Latency.constant v
    | None, None -> Ftr_sim.Latency.constant 1.0
  in
  {
    engine;
    trace;
    rng;
    latency;
    line_size;
    links;
    ttl;
    regenerate;
    pl = Sample.power_law ~exponent:1.0 ~max_length:(line_size - 1);
    nodes = Hashtbl.create 1024;
    pending = Hashtbl.create 64;
    stats =
      {
        lookups_issued = 0;
        lookups_ok = 0;
        lookups_failed = 0;
        hops_on_success = 0;
        maintenance_issued = 0;
        maintenance_failed = 0;
        messages = 0;
        probes = 0;
        repairs = 0;
        joins = 0;
        crashes = 0;
        leaves = 0;
      };
    next_request = 0;
    tick = 0;
  }

let stats t = t.stats

let engine t = t.engine

let node_count t =
  Hashtbl.fold (fun _ node acc -> if node.alive then acc + 1 else acc) t.nodes 0

let live_node t pos =
  match Hashtbl.find_opt t.nodes pos with
  | Some node when node.alive -> Some node
  | Some _ | None -> None

let is_alive t pos = Option.is_some (live_node t pos)

let live_positions t =
  let acc = ref [] in
  Hashtbl.iter (fun pos node -> if node.alive then acc := pos :: !acc) t.nodes;
  List.sort Int.compare !acc

let neighbors_of node =
  let ring = Option.to_list node.left @ Option.to_list node.right in
  ring @ node.long

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* Sanitizer hook: per-node structural invariants, re-checked after every
   mutation when FTR_CHECK is on. The ring pointers must frame the node,
   the age bookkeeping must stay aligned with the link list, and the link
   list must respect the budget ℓ. *)
let debug_check_node t node =
  (match node.left with
  | Some l when l >= node.pos ->
      Ftr_debug.Debug.failf "Overlay: node %d has left pointer %d on its right" node.pos l
  | Some _ | None -> ());
  (match node.right with
  | Some r when r <= node.pos ->
      Ftr_debug.Debug.failf "Overlay: node %d has right pointer %d on its left" node.pos r
  | Some _ | None -> ());
  let nl = List.length node.long and nb = List.length node.birth_order in
  if nl <> nb then
    Ftr_debug.Debug.failf "Overlay: node %d has %d long links but %d birth ticks" node.pos nl nb;
  if nl > t.links then
    Ftr_debug.Debug.failf "Overlay: node %d holds %d long links, budget is %d" node.pos nl
      t.links;
  if List.mem node.pos node.long then
    Ftr_debug.Debug.failf "Overlay: node %d holds a long link to itself" node.pos

(* ------------------------------------------------------------------ *)
(* Link maintenance                                                    *)
(* ------------------------------------------------------------------ *)

let remove_long node target =
  let rec drop ls bs =
    match (ls, bs) with
    | [], [] -> ([], [])
    | l :: ls', b :: bs' ->
        if l = target then (ls', bs')
        else
          let ls'', bs'' = drop ls' bs' in
          (l :: ls'', b :: bs'')
    | _ -> (ls, bs)
  in
  let ls, bs = drop node.long node.birth_order in
  node.long <- ls;
  node.birth_order <- bs

let add_long t node target =
  node.long <- target :: node.long;
  node.birth_order <- next_tick t :: node.birth_order;
  if Ftr_debug.Debug.enabled () then debug_check_node t node

(* Section 5's replacement rule, applied when [v] solicits a link from
   [node]: accept with probability p_{k+1}/sum, evict proportionally. *)
let consider_redirect t node ~newcomer =
  if newcomer <> node.pos then begin
    let weights = List.map (fun l -> 1.0 /. float_of_int (abs (node.pos - l))) node.long in
    let sum_old = List.fold_left ( +. ) 0.0 weights in
    if sum_old > 0.0 then begin
      let p_new = 1.0 /. float_of_int (abs (node.pos - newcomer)) in
      if Rng.float t.rng < p_new /. (sum_old +. p_new) then begin
        let target = Rng.float t.rng *. sum_old in
        let victim =
          let rec scan acc = function
            | [] -> None
            | (l, w) :: rest -> if acc +. w > target then Some l else scan (acc +. w) rest
          in
          scan 0.0 (List.combine node.long weights)
        in
        match victim with
        | Some v ->
            if Ftr_obs.Flag.enabled () then begin
              Ftr_obs.Metrics.incr "overlay_link_redirects_total";
              Ftr_obs.Events.emit ~time:(Engine.now t.engine) ~kind:"overlay.redirect"
                [
                  ("node", Ftr_obs.Json.Int node.pos);
                  ("newcomer", Ftr_obs.Json.Int newcomer);
                  ("evicted", Ftr_obs.Json.Int v);
                ]
            end;
            remove_long node v;
            add_long t node newcomer
        | None -> ()
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Greedy lookup with failure detection                                *)
(* ------------------------------------------------------------------ *)

(* The flight-recorder trace attached to a pending request, for the hop
   and candidate records of the steps below; null when tracing is off or
   the request is untraced maintenance traffic. *)
let request_trace t request =
  match Hashtbl.find_opt t.pending request with
  | Some { trace; _ } -> trace
  | None -> Ftr_obs.Tracing.null

let fail_request t request ~hops ~stuck_at ~reason =
  match Hashtbl.find_opt t.pending request with
  | Some { user; trace; _ } ->
      Hashtbl.remove t.pending request;
      if Ftr_obs.Flag.enabled () && Ftr_obs.Tracing.is_live trace then
        Ftr_obs.Tracing.finish trace ~delivered:false ~hops ~stuck_at ~reason;
      if user then t.stats.lookups_failed <- t.stats.lookups_failed + 1
      else t.stats.maintenance_failed <- t.stats.maintenance_failed + 1
  | None -> ()

let resolve_request t ~owner ~request ~hops =
  match Hashtbl.find_opt t.pending request with
  | Some { callback; user; trace } ->
      Hashtbl.remove t.pending request;
      if Ftr_obs.Flag.enabled () && Ftr_obs.Tracing.is_live trace then
        Ftr_obs.Tracing.finish trace ~delivered:true ~hops ~stuck_at:(-1) ~reason:"";
      if user then begin
        t.stats.lookups_ok <- t.stats.lookups_ok + 1;
        t.stats.hops_on_success <- t.stats.hops_on_success + hops
      end;
      (match callback with Some f -> f ~owner ~hops | None -> ())
  | None -> ()

(* One greedy step at the node sitting at [at]. Dead neighbours are
   detected by a probe (costing a message and a latency round trip) and
   repaired out of the link set before the next-best candidate is tried. *)
let rec lookup_step t ~at ~target ~request ~hops =
  match live_node t at with
  | None ->
      (* The carrier died with the message in hand. *)
      Trace.debugf t.trace ~time:(Engine.now t.engine) "lookup %d lost at dead node %d" request
        at;
      fail_request t request ~hops ~stuck_at:at ~reason:"carrier_died"
  | Some node ->
      (* Flight recorder: every arrival at a decision point — including
         re-entries after a dead-link repair — is a hop record carrying
         the engine's sim time (via [Tracing.note_time] in the event
         dispatcher). *)
      if Ftr_obs.Flag.enabled () then begin
        let tr = request_trace t request in
        if Ftr_obs.Tracing.is_live tr then Ftr_obs.Tracing.hop tr ~node:at
      end;
      if hops >= t.ttl then fail_request t request ~hops ~stuck_at:node.pos ~reason:"ttl_exceeded"
      else begin
        (* Only the single best candidate — minimal (distance, position)
           among the advancing neighbours, per [Protocol.best_candidate]
           — is ever tried before the link set changes (a dead pick
           repairs the link and re-enters this step), so one min-scan
           replaces the sorted candidate list the previous version
           built. *)
        let choice = Protocol.best_candidate ~pos:node.pos ~target (neighbors_of node) in
        let best = match choice with Some (v, _) -> v | None -> -1 in
        (* Flight recorder, full-fidelity lane: name every neighbour the
           min-scan rejected and the candidate it kept. Dead picks are
           recorded by [try_candidate] when the probe discovers them. *)
        if Ftr_obs.Flag.enabled () then begin
          let tr = request_trace t request in
          if Ftr_obs.Tracing.is_live tr then begin
            List.iter
              (fun v ->
                if v <> best then begin
                  let d = abs (v - target) in
                  Ftr_obs.Tracing.candidate tr ~cur:node.pos ~cand:v ~dist:d
                    (if Protocol.advances ~pos:node.pos ~target ~cand:v then
                       Ftr_obs.Tracing.Not_best
                     else Ftr_obs.Tracing.Not_closer)
                end)
              (neighbors_of node);
            match choice with
            | Some (v, d) ->
                Ftr_obs.Tracing.candidate tr ~cur:node.pos ~cand:v ~dist:d
                  Ftr_obs.Tracing.Chosen
            | None -> ()
          end
        end;
        match choice with
        | None ->
            (* No live neighbour closer: this node owns the target's basin. *)
            resolve_request t ~owner:node.pos ~request ~hops
        | Some (v, _) -> try_candidate t node ~v ~target ~request ~hops
      end

and try_candidate t node ~v ~target ~request ~hops =
  match live_node t v with
  | Some _ ->
      t.stats.messages <- t.stats.messages + 1;
      ignore
        (Engine.schedule_after t.engine ~delay:(Ftr_sim.Latency.sample t.latency t.rng) (fun () ->
             (* The neighbour may have crashed in flight; arrival
                re-checks and bounces back on failure. *)
             match live_node t v with
             | Some _ -> lookup_step t ~at:v ~target ~request ~hops:(hops + 1)
             | None ->
                 record_dead_candidate t ~request ~cur:node.pos ~v ~target;
                 ignore
                   (Engine.schedule_after t.engine ~delay:(Ftr_sim.Latency.sample t.latency t.rng) (fun () ->
                        on_dead_neighbor t node ~dead:v ~target ~request ~hops))))
  | None ->
      (* Probe discovers the neighbour is already dead. *)
      t.stats.probes <- t.stats.probes + 1;
      record_dead_candidate t ~request ~cur:node.pos ~v ~target;
      on_dead_neighbor t node ~dead:v ~target ~request ~hops

(* The chosen candidate turned out to be dead (probe or in-flight crash):
   overwrite the optimistic "chosen" verdict with a dead_node record so
   the trace explains the repair that follows. *)
and record_dead_candidate t ~request ~cur ~v ~target =
  if Ftr_obs.Flag.enabled () then begin
    let tr = request_trace t request in
    if Ftr_obs.Tracing.is_live tr then
      Ftr_obs.Tracing.candidate tr ~cur ~cand:v ~dist:(abs (v - target))
        Ftr_obs.Tracing.Dead_node
  end

and on_dead_neighbor t node ~dead ~target ~request ~hops =
  if not node.alive then
    fail_request t request ~hops ~stuck_at:node.pos ~reason:"origin_died"
  else begin
    drop_dead_link t node ~dead;
    lookup_step t ~at:node.pos ~target ~request ~hops
  end

(* Remove a dead link and regenerate it (Section 5's "same heuristic can
   be used for regeneration of links when a node crashes"). Ring links are
   repaired by probing outward along the line. *)
and drop_dead_link t node ~dead =
  let obs = Ftr_obs.Flag.enabled () in
  if List.mem dead node.long then begin
    remove_long node dead;
    t.stats.repairs <- t.stats.repairs + 1;
    if obs then Ftr_obs.Metrics.incr "overlay_link_repairs_total";
    if t.regenerate then regenerate_long_link t node
  end;
  let points_at o = match o with Some p -> p = dead | None -> false in
  if points_at node.left then begin
    node.left <- probe_ring t node ~from:dead ~dir:(-1);
    t.stats.repairs <- t.stats.repairs + 1;
    if obs then Ftr_obs.Metrics.incr "overlay_ring_repairs_total"
  end;
  if points_at node.right then begin
    node.right <- probe_ring t node ~from:dead ~dir:1;
    t.stats.repairs <- t.stats.repairs + 1;
    if obs then Ftr_obs.Metrics.incr "overlay_ring_repairs_total"
  end;
  if Ftr_debug.Debug.enabled () then debug_check_node t node

and probe_ring t node ~from ~dir =
  (* The shared walk-outward rule; probes are charged to this overlay's
     failure-detection accounting. *)
  Protocol.probe_ring ~alive:(is_alive t) ~line_size:t.line_size ~self:node.pos ~from ~dir
    ~on_probe:(fun () -> t.stats.probes <- t.stats.probes + 1)

and regenerate_long_link t node =
  (* Sample a fresh sink by the 1/d law and claim its basin owner through
     a routed lookup issued by this node. *)
  let sink = Ftr_core.Network.sample_long_target t.pl t.rng ~n:t.line_size ~src:node.pos in
  internal_lookup t ~from:node.pos ~target:sink
    ~callback:
      (Some
         (fun ~owner ~hops:_ ->
           if node.alive && owner <> node.pos && not (List.mem owner node.long) then
             add_long t node owner))
    ()

and internal_lookup t ?(user = false) ~from ~target ~callback () =
  let request = t.next_request in
  t.next_request <- request + 1;
  (* Only user lookups are traced: maintenance traffic (link regeneration,
     join placement) would flood the ring and drown the requests the
     forensics are for. *)
  let trace =
    if Ftr_obs.Flag.enabled () && user then begin
      let tr = Ftr_obs.Tracing.begin_route ~src:from ~dst:target in
      if Ftr_obs.Tracing.is_live tr then
        Ftr_obs.Tracing.set_context tr ~nodes:"overlay" ~links:"overlay"
          ~strategy:"overlay_lookup";
      tr
    end
    else Ftr_obs.Tracing.null
  in
  Hashtbl.replace t.pending request { callback; user; trace };
  if user then t.stats.lookups_issued <- t.stats.lookups_issued + 1
  else t.stats.maintenance_issued <- t.stats.maintenance_issued + 1;
  lookup_step t ~at:from ~target ~request ~hops:0

let lookup t ~from ~target ?callback () =
  if not (is_alive t from) then invalid_arg "Overlay.lookup: source is not a live node";
  if target < 0 || target >= t.line_size then invalid_arg "Overlay.lookup: target off the line";
  internal_lookup t ~user:true ~from ~target ~callback ()

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)
(* ------------------------------------------------------------------ *)

let insert_into_ring t node ~owner_pos =
  match live_node t owner_pos with
  | None -> ()
  | Some owner when owner.pos = node.pos ->
      (* The placement lookup resolved to the joining node itself: the node
         is already visible to ring probes while its own join is in flight,
         so a concurrent repair can route the lookup straight back to it.
         Treating itself as owner would write self-pointers (caught by the
         sanitizer); probe both directions instead to splice in. *)
      node.left <- probe_ring t node ~from:node.pos ~dir:(-1);
      node.right <- probe_ring t node ~from:node.pos ~dir:1;
      (match Option.bind node.left (live_node t) with
      | Some l -> l.right <- Some node.pos
      | None -> ());
      (match Option.bind node.right (live_node t) with
      | Some r -> r.left <- Some node.pos
      | None -> ());
      if Ftr_debug.Debug.enabled () then debug_check_node t node
  | Some owner ->
      if owner.pos < node.pos then begin
        (* v sits between owner and owner's right neighbour. The owner's
           pointer may still name a dead previous occupant of [node.pos]
           itself; inheriting it verbatim would make the new node its own
           neighbour (a self-loop the sanitizer flagged under churn), so
           re-probe the ring past the stale entry instead. *)
        let succ =
          match owner.right with
          | Some r when r = node.pos -> probe_ring t node ~from:node.pos ~dir:1
          | r -> r
        in
        node.left <- Some owner.pos;
        node.right <- succ;
        (match Option.bind succ (live_node t) with
        | Some r -> r.left <- Some node.pos
        | None -> ());
        owner.right <- Some node.pos
      end
      else begin
        let pred =
          match owner.left with
          | Some l when l = node.pos -> probe_ring t node ~from:node.pos ~dir:(-1)
          | l -> l
        in
        node.left <- pred;
        node.right <- Some owner.pos;
        (match Option.bind pred (live_node t) with
        | Some l -> l.right <- Some node.pos
        | None -> ());
        owner.left <- Some node.pos
      end;
      if Ftr_debug.Debug.enabled () then begin
        debug_check_node t node;
        debug_check_node t owner
      end

let bootstrap_node t ~pos =
  if Hashtbl.mem t.nodes pos then invalid_arg "Overlay.bootstrap_node: position occupied";
  let node = { pos; alive = true; left = None; right = None; long = []; birth_order = [] } in
  Hashtbl.replace t.nodes pos node;
  t.stats.joins <- t.stats.joins + 1;
  if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr "overlay_joins_total";
  node.pos

let join t ~pos ~via =
  if pos < 0 || pos >= t.line_size then invalid_arg "Overlay.join: position off the line";
  (match Hashtbl.find_opt t.nodes pos with
  | Some node when node.alive -> invalid_arg "Overlay.join: position occupied"
  | Some _ | None -> ());
  if not (is_alive t via) then invalid_arg "Overlay.join: bootstrap node is dead";
  let node = { pos; alive = true; left = None; right = None; long = []; birth_order = [] } in
  Hashtbl.replace t.nodes pos node;
  t.stats.joins <- t.stats.joins + 1;
  if Ftr_obs.Flag.enabled () then begin
    Ftr_obs.Metrics.incr "overlay_joins_total";
    Ftr_obs.Events.emit ~time:(Engine.now t.engine) ~kind:"overlay.join"
      [ ("pos", Ftr_obs.Json.Int pos); ("via", Ftr_obs.Json.Int via) ]
  end;
  Trace.infof t.trace ~time:(Engine.now t.engine) "join %d via %d" pos via;
  (* Step 1: find our place on the ring by looking up our own position. *)
  internal_lookup t ~from:via ~target:pos
    ~callback:
      (Some
         (fun ~owner ~hops:_ ->
           if node.alive then begin
             insert_into_ring t node ~owner_pos:owner;
             (* Step 2: ℓ outgoing long links through routed lookups. *)
             for _ = 1 to t.links do
               let sink =
                 Ftr_core.Network.sample_long_target t.pl t.rng ~n:t.line_size ~src:pos
               in
               internal_lookup t ~from:pos ~target:sink
                 ~callback:
                   (Some
                      (fun ~owner ~hops:_ ->
                        if node.alive && owner <> pos then add_long t node owner))
                 ()
             done;
             (* Step 3: solicit Poisson(ℓ) incoming links. *)
             let solicit = Sample.poisson t.rng ~lambda:(float_of_int t.links) in
             for _ = 1 to solicit do
               let sink =
                 Ftr_core.Network.sample_long_target t.pl t.rng ~n:t.line_size ~src:pos
               in
               internal_lookup t ~from:pos ~target:sink
                 ~callback:
                   (Some
                      (fun ~owner ~hops:_ ->
                        t.stats.messages <- t.stats.messages + 1;
                        match live_node t owner with
                        | Some owner_node when node.alive ->
                            consider_redirect t owner_node ~newcomer:pos
                        | Some _ | None -> ()))
                 ()
             done
           end))
    ()

let crash t ~pos =
  match live_node t pos with
  | None -> ()
  | Some node ->
      node.alive <- false;
      t.stats.crashes <- t.stats.crashes + 1;
      if Ftr_obs.Flag.enabled () then begin
        Ftr_obs.Metrics.incr "overlay_crashes_total";
        Ftr_obs.Events.emit ~time:(Engine.now t.engine) ~kind:"overlay.crash"
          [ ("pos", Ftr_obs.Json.Int pos) ]
      end;
      Trace.infof t.trace ~time:(Engine.now t.engine) "crash %d" pos

let leave t ~pos =
  match live_node t pos with
  | None -> ()
  | Some node ->
      (* Graceful departure: splice the ring before going. *)
      (match (Option.bind node.left (live_node t), Option.bind node.right (live_node t)) with
      | Some l, Some r ->
          l.right <- Some r.pos;
          r.left <- Some l.pos;
          t.stats.messages <- t.stats.messages + 2
      | Some l, None -> l.right <- None
      | None, Some r -> r.left <- None
      | None, None -> ());
      node.alive <- false;
      t.stats.leaves <- t.stats.leaves + 1;
      if Ftr_obs.Flag.enabled () then begin
        Ftr_obs.Metrics.incr "overlay_leaves_total";
        Ftr_obs.Events.emit ~time:(Engine.now t.engine) ~kind:"overlay.leave"
          [ ("pos", Ftr_obs.Json.Int pos) ]
      end;
      Trace.infof t.trace ~time:(Engine.now t.engine) "leave %d" pos

(* Instantiate a whole network at time zero without paying the join
   message cost, for tests and as a churn starting point. *)
let populate t ~positions =
  match positions with
  | [] -> invalid_arg "Overlay.populate: need at least one position"
  | first :: rest ->
      let sorted = List.sort_uniq Int.compare (first :: rest) in
      List.iter
        (fun pos ->
          if pos < 0 || pos >= t.line_size then invalid_arg "Overlay.populate: off the line";
          ignore (bootstrap_node t ~pos))
        sorted;
      (* Ring links. *)
      let arr = Array.of_list sorted in
      Array.iteri
        (fun i pos ->
          let node = Hashtbl.find t.nodes pos in
          if i > 0 then node.left <- Some arr.(i - 1);
          if i < Array.length arr - 1 then node.right <- Some arr.(i + 1))
        arr;
      (* Long links by direct sampling (the ideal distribution). *)
      Array.iter
        (fun pos ->
          let node = Hashtbl.find t.nodes pos in
          for _ = 1 to t.links do
            let sink = Ftr_core.Network.sample_long_target t.pl t.rng ~n:t.line_size ~src:pos in
            (* Snap to the nearest populated position. *)
            let owner =
              let rec nearest d =
                let lo = sink - d and hi = sink + d in
                if lo < 0 && hi >= t.line_size then node.pos
                else if lo >= 0 && Hashtbl.mem t.nodes lo then lo
                else if hi < t.line_size && Hashtbl.mem t.nodes hi then hi
                else nearest (d + 1)
              in
              nearest 0
            in
            if owner <> pos then add_long t node owner
          done)
        arr

(* ------------------------------------------------------------------ *)
(* Introspection for the invariant sanitizer                           *)
(* ------------------------------------------------------------------ *)

type node_view = {
  view_pos : int;
  view_alive : bool;
  view_left : int option;
  view_right : int option;
  view_long : int list;
  view_births : int list;
}

let line_size t = t.line_size

let links t = t.links

let ttl t = t.ttl

let known t pos = Hashtbl.mem t.nodes pos

let iter_nodes t f =
  Hashtbl.iter
    (fun _ node ->
      f
        {
          view_pos = node.pos;
          view_alive = node.alive;
          view_left = node.left;
          view_right = node.right;
          view_long = node.long;
          view_births = node.birth_order;
        })
    t.nodes

(* ------------------------------------------------------------------ *)
(* Proactive stabilization                                             *)
(* ------------------------------------------------------------------ *)

(* Periodic self-healing, independent of lookup traffic: every [period],
   [checks_per_tick] random live nodes each probe one random neighbour and
   repair it if dead (the paper's repair mechanism "trying to heal the
   damage" in the background, with cost amortised over time rather than
   over searches). *)
let enable_stabilization ?(period = 10.0) ?(checks_per_tick = 8) ~until t =
  if period <= 0.0 then invalid_arg "Overlay.enable_stabilization: period must be positive";
  if checks_per_tick < 1 then
    invalid_arg "Overlay.enable_stabilization: checks_per_tick must be >= 1";
  let random_live () =
    (* Reservoir sample over the registry. *)
    let chosen = ref None and seen = ref 0 in
    Hashtbl.iter
      (fun pos node ->
        if node.alive then begin
          incr seen;
          if Rng.int t.rng !seen = 0 then chosen := Some pos
        end)
      t.nodes;
    !chosen
  in
  let check_one () =
    match random_live () with
    | None -> ()
    | Some pos -> (
        match live_node t pos with
        | None -> ()
        | Some node -> (
            let candidates = Array.of_list (neighbors_of node) in
            if Array.length candidates > 0 then begin
              let v = candidates.(Rng.int t.rng (Array.length candidates)) in
              t.stats.probes <- t.stats.probes + 1;
              if not (is_alive t v) then drop_dead_link t node ~dead:v
            end))
  in
  let rec tick () =
    if Engine.now t.engine < until then begin
      for _ = 1 to checks_per_tick do
        check_one ()
      done;
      ignore (Engine.schedule_after t.engine ~delay:period (fun () -> tick ()))
    end
  in
  ignore (Engine.schedule_after t.engine ~delay:period (fun () -> tick ()))
