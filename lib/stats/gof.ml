(* Goodness-of-fit distances between an empirical distribution and a model,
   used to check that generated links follow the intended 1/d law. *)

let total_variation ~empirical ~model =
  let n = Array.length empirical in
  if n <> Array.length model then invalid_arg "Gof.total_variation: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. abs_float (empirical.(i) -. model.(i))
  done;
  0.5 *. !acc

let max_abs_error ~empirical ~model =
  let n = Array.length empirical in
  if n <> Array.length model then invalid_arg "Gof.max_abs_error: length mismatch";
  let best = ref 0.0 and best_i = ref 0 in
  for i = 0 to n - 1 do
    let e = abs_float (empirical.(i) -. model.(i)) in
    if e > !best then begin
      best := e;
      best_i := i
    end
  done;
  (!best, !best_i)

let ks_statistic ~empirical ~model =
  (* Maximum gap between the two CDFs built from the pmfs. *)
  let n = Array.length empirical in
  if n <> Array.length model then invalid_arg "Gof.ks_statistic: length mismatch";
  let ce = ref 0.0 and cm = ref 0.0 and best = ref 0.0 in
  for i = 0 to n - 1 do
    ce := !ce +. empirical.(i);
    cm := !cm +. model.(i);
    let gap = abs_float (!ce -. !cm) in
    if gap > !best then best := gap
  done;
  !best

let chi_square ~observed ~expected =
  let n = Array.length observed in
  if n <> Array.length expected then invalid_arg "Gof.chi_square: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    if expected.(i) > 0.0 then begin
      let d = float_of_int observed.(i) -. expected.(i) in
      acc := !acc +. (d *. d /. expected.(i))
    end
    else if observed.(i) > 0 then
      invalid_arg "Gof.chi_square: observation in a zero-expectation cell"
  done;
  !acc

let ks_two_sample xs ys =
  let a = Array.copy xs and b = Array.copy ys in
  Array.sort Float.compare a;
  Array.sort Float.compare b;
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Gof.ks_two_sample: empty sample";
  let best = ref 0.0 in
  let i = ref 0 and j = ref 0 in
  (* Advance both pointers past ties together so equal samples contribute
     a zero gap. *)
  while !i < na && !j < nb do
    let v = Float.min a.(!i) b.(!j) in
    while !i < na && Float.equal a.(!i) v do
      incr i
    done;
    while !j < nb && Float.equal b.(!j) v do
      incr j
    done;
    let fa = float_of_int !i /. float_of_int na in
    let fb = float_of_int !j /. float_of_int nb in
    let gap = abs_float (fa -. fb) in
    if gap > !best then best := gap
  done;
  !best
