(* Minimal RFC-4180 CSV writing, so every benchmark table can be exported
   for external plotting and regression-diffing of experiment outputs. *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buffer = Buffer.create (String.length s + 8) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else s

let row_to_string fields = String.concat "," (List.map escape_field fields)

let add_row buffer fields =
  Buffer.add_string buffer (row_to_string fields);
  Buffer.add_char buffer '\n'

let to_string ~header ~rows =
  let width = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg (Printf.sprintf "Csv.to_string: row %d has %d fields, header has %d" i
                       (List.length row) width))
    rows;
  let buffer = Buffer.create 1024 in
  add_row buffer header;
  List.iter (add_row buffer) rows;
  Buffer.contents buffer

(* [Sys.mkdir] has no -p: a nested output directory like out/2026/bench
   would fail with ENOENT. Create the ancestry leaf-last; racing creators
   are harmless (the final existence check is what matters). Shared by the
   bench CSV exporter and the exec checkpoint/output paths. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if not (String.equal parent dir || String.equal parent "") then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_file ~path ~header ~rows =
  Out_channel.with_open_text path (fun oc -> output_string oc (to_string ~header ~rows))

let float_field v = Printf.sprintf "%.6g" v

let int_field = string_of_int
