(** RFC-4180 CSV output for experiment tables. *)

val escape_field : string -> string
(** Quote a field if it contains commas, quotes or newlines; double the
    embedded quotes. *)

val row_to_string : string list -> string
(** One CSV line, without the trailing newline. *)

val to_string : header:string list -> rows:string list list -> string
(** The whole document, header first.
    @raise Invalid_argument if any row's width differs from the header's. *)

val mkdir_p : string -> unit
(** Create a directory and its missing ancestors ([mkdir -p]); existing
    directories (including races with concurrent creators) are fine. *)

val write_file : path:string -> header:string list -> rows:string list list -> unit
(** Write the document to a file. *)

val float_field : float -> string
(** Compact float rendering ([%.6g]). *)

val int_field : int -> string
(** Integer rendering. *)
