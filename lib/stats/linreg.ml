type fit = { slope : float; intercept : float; r2 : float }

let fit ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Linreg.fit: length mismatch";
  if n < 2 then invalid_arg "Linreg.fit: need at least two points";
  let nf = float_of_int n in
  let sum_x = Array.fold_left ( +. ) 0.0 xs in
  let sum_y = Array.fold_left ( +. ) 0.0 ys in
  let mean_x = sum_x /. nf and mean_y = sum_y /. nf in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mean_x and dy = ys.(i) -. mean_y in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0.0 then invalid_arg "Linreg.fit: xs are constant";
  let slope = !sxy /. !sxx in
  let intercept = mean_y -. (slope *. mean_x) in
  let r2 = if Float.equal !syy 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let predict f x = f.intercept +. (f.slope *. x)

let loglog_fit ~xs ~ys =
  let check a =
    Array.iter (fun v -> if v <= 0.0 then invalid_arg "Linreg.loglog_fit: non-positive value") a
  in
  check xs;
  check ys;
  fit ~xs:(Array.map log xs) ~ys:(Array.map log ys)
