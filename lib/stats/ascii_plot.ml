(* Minimal terminal scatter/line plots for the benchmark harness: enough to
   see the Figure 5/6/7 shapes without leaving the terminal. *)

type series = { glyph : char; label : string; points : (float * float) list }

let series ~glyph ~label points = { glyph; label; points }

let finite v = Float.is_finite v

let transform ~log v = if log then log10 v else v

let valid_point ~x_log ~y_log (x, y) =
  finite x && finite y && ((not x_log) || x > 0.0) && ((not y_log) || y > 0.0)

let render ?(width = 64) ?(height = 20) ?(x_log = false) ?(y_log = false) ?(x_label = "x")
    ?(y_label = "y") series_list =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.render: canvas too small";
  let points =
    List.concat_map
      (fun s -> List.filter (valid_point ~x_log ~y_log) s.points)
      series_list
  in
  if List.is_empty points then "(no plottable points)\n"
  else begin
    let xs = List.map (fun (x, _) -> transform ~log:x_log x) points in
    let ys = List.map (fun (_, y) -> transform ~log:y_log y) points in
    let min_l = List.fold_left Float.min infinity in
    let max_l = List.fold_left Float.max neg_infinity in
    let x_min = min_l xs and x_max = max_l xs in
    let y_min = min_l ys and y_max = max_l ys in
    let x_span = if x_max -. x_min <= 0.0 then 1.0 else x_max -. x_min in
    let y_span = if y_max -. y_min <= 0.0 then 1.0 else y_max -. y_min in
    let canvas = Array.make_matrix height width ' ' in
    let plot s =
      List.iter
        (fun p ->
          if valid_point ~x_log ~y_log p then begin
            let x, y = p in
            let cx =
              int_of_float
                (Float.round
                   ((transform ~log:x_log x -. x_min) /. x_span *. float_of_int (width - 1)))
            in
            let cy =
              int_of_float
                (Float.round
                   ((transform ~log:y_log y -. y_min) /. y_span *. float_of_int (height - 1)))
            in
            (* Row 0 is the top of the canvas. *)
            canvas.(height - 1 - cy).(cx) <- s.glyph
          end)
        s.points
    in
    List.iter plot series_list;
    let buffer = Buffer.create ((width + 12) * (height + 4)) in
    let axis_value ~log v = if log then Float.pow 10.0 v else v in
    Buffer.add_string buffer
      (Printf.sprintf "%s%s vs %s%s\n"
         (if y_log then "log " else "")
         y_label
         (if x_log then "log " else "")
         x_label);
    Array.iteri
      (fun row line ->
        let y_here =
          y_max -. (float_of_int row /. float_of_int (height - 1) *. y_span)
        in
        let label =
          if row = 0 || row = height - 1 then Printf.sprintf "%10.3g" (axis_value ~log:y_log y_here)
          else String.make 10 ' '
        in
        Buffer.add_string buffer label;
        Buffer.add_string buffer " |";
        Buffer.add_string buffer (String.init width (fun i -> line.(i)));
        Buffer.add_char buffer '\n')
      canvas;
    Buffer.add_string buffer (String.make 11 ' ');
    Buffer.add_char buffer '+';
    Buffer.add_string buffer (String.make width '-');
    Buffer.add_char buffer '\n';
    Buffer.add_string buffer
      (Printf.sprintf "%s %.3g .. %.3g   " x_label (axis_value ~log:x_log x_min)
         (axis_value ~log:x_log x_max));
    List.iter
      (fun s -> Buffer.add_string buffer (Printf.sprintf "[%c] %s  " s.glyph s.label))
      series_list;
    Buffer.add_char buffer '\n';
    Buffer.contents buffer
  end
