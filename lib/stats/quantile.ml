let of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Quantile.of_sorted: q must be in [0,1]";
  if n = 1 then sorted.(0)
  else begin
    (* Linear interpolation between order statistics (type-7 estimator). *)
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let compute xs q =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  of_sorted sorted q

let median xs = compute xs 0.5

let iqr xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  of_sorted sorted 0.75 -. of_sorted sorted 0.25

let five_number xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  ( of_sorted sorted 0.0,
    of_sorted sorted 0.25,
    of_sorted sorted 0.5,
    of_sorted sorted 0.75,
    of_sorted sorted 1.0 )
