(* Invariant sanitizer for the simulator, in the ASan/TSan spirit:
   composable validators that walk a structure and report every breached
   invariant as a [violation] instead of failing fast. Each validator is
   pure — build the structure, run the validator, inspect the report.

   The cheap, always-available counterpart lives in the hot paths
   themselves ([Ftr_debug.Debug.enabled]-guarded checks inside Heap, Engine,
   Route, Network, Overlay and Store); this module is the exhaustive
   battery run by `p2psim check`, the qcheck properties and the @lint
   alias. See docs/CHECKING.md for the invariant-to-paper-section map. *)

module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Failure = Ftr_core.Failure
module Heap = Ftr_sim.Heap
module Engine = Ftr_sim.Engine
module Overlay = Ftr_p2p.Overlay
module Store = Ftr_dht.Store
module Gof = Ftr_stats.Gof
module Pool = Ftr_exec.Pool
module Seed = Ftr_exec.Seed
module Rng = Ftr_prng.Rng

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type violation = {
  code : string;  (** stable machine-readable id, e.g. "net.ring-broken" *)
  subject : string;  (** where: "node 17", "hop 3 (12->15)", "slot 4" *)
  detail : string;  (** what the invariant expected vs what was found *)
}

let violation code subject fmt =
  Printf.ksprintf (fun detail -> { code; subject; detail }) fmt

let pp_violation ppf { code; subject; detail } =
  Format.fprintf ppf "[%s] %s: %s" code subject detail

let pp_report ?(label = "check") ppf = function
  | [] -> Format.fprintf ppf "%s: ok (0 violations)@." label
  | vs ->
      Format.fprintf ppf "%s: %d violation%s@." label (List.length vs)
        (if List.length vs = 1 then "" else "s");
      List.iter (fun x -> Format.fprintf ppf "  %a@." pp_violation x) vs

(* Re-export the runtime switch so callers only need one module. *)
let set_mode = Ftr_debug.Debug.set_mode

let mode_enabled = Ftr_debug.Debug.enabled

let with_mode = Ftr_debug.Debug.with_mode

(* ------------------------------------------------------------------ *)
(* Network structure (Sections 3-4: the ring plus 1/d long links)       *)
(* ------------------------------------------------------------------ *)

type ring_policy = Both_sides | Successor_only

let mem_sorted ns x =
  (* [ns] is sorted; binary search. *)
  let lo = ref 0 and hi = ref (Array.length ns) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ns.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length ns && ns.(!lo) = x

(* Link membership via binary search directly on the CSR row — the trace
   replay below asks this once per hop, and the flat form answers without
   copying the row the way [Network.neighbors] now does. *)
let mem_link net u x =
  let module I32 = Ftr_graph.Adjacency.I32 in
  let { Ftr_graph.Adjacency.Csr.offsets; targets } = Network.csr net in
  let lo = ref (I32.get offsets u) and hi = ref (I32.get offsets (u + 1)) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if I32.get targets mid < x then lo := mid + 1 else hi := mid
  done;
  !lo < I32.get offsets (u + 1) && I32.get targets !lo = x

let network ?expected_links ?(multi_edges = `Allowed) ?(ring = Both_sides) net =
  let out = ref [] in
  let emit x = out := x :: !out in
  let n = Network.size net in
  let line_size = Network.line_size net in
  (* Positions: strictly increasing grid points of the line. *)
  for i = 0 to n - 1 do
    let p = Network.position net i in
    if p < 0 || p >= line_size then
      emit (violation "net.position-off-line" (Printf.sprintf "node %d" i)
              "position %d outside [0,%d)" p line_size);
    if i > 0 && Network.position net (i - 1) >= p then
      emit (violation "net.position-order" (Printf.sprintf "node %d" i)
              "position %d not greater than predecessor %d" p (Network.position net (i - 1)))
  done;
  let ring_expected i =
    (* Neighbour *indices* every node must link to: the nearest present
       node on each side (the "short links" making greedy routing total). *)
    match Network.geometry net with
    | Network.Line ->
        (if i > 0 && ring <> Successor_only then [ i - 1 ] else [])
        @ (if i < n - 1 then [ i + 1 ] else [])
    | Network.Circle ->
        (if ring <> Successor_only then [ (i - 1 + n) mod n ] else [])
        @ [ (i + 1) mod n ]
  in
  for i = 0 to n - 1 do
    let subject = Printf.sprintf "node %d" i in
    let ns = Network.neighbors net i in
    Array.iteri
      (fun k j ->
        if j < 0 || j >= n then
          emit (violation "net.dead-endpoint" subject
                  "neighbor entry %d is index %d outside [0,%d)" k j n)
        else if j = i then
          emit (violation "net.self-link" subject "neighbor entry %d links node to itself" k);
        if k > 0 then begin
          if ns.(k - 1) > j then
            emit (violation "net.unsorted" subject
                    "neighbor entries %d,%d out of order (%d > %d)" (k - 1) k ns.(k - 1) j)
          else if ns.(k - 1) = j && multi_edges = `Forbidden then
            emit (violation "net.duplicate-link" subject
                    "neighbor %d appears more than once" j)
        end)
      ns;
    List.iter
      (fun r ->
        if not (mem_sorted ns r) then
          emit (violation "net.ring-broken" subject
                  "missing short link to ring neighbor %d" r))
      (ring_expected i);
    (match expected_links with
    | None -> ()
    | Some links ->
        let expect = links + List.length (ring_expected i) in
        if Array.length ns <> expect then
          emit (violation "net.link-count" subject
                  "degree %d, expected %d (ℓ=%d long + %d ring)" (Array.length ns) expect
                  links (List.length (ring_expected i))))
  done;
  List.rev !out

(* The flat CSR storage behind [Network]: offsets must be a monotone
   prefix-sum frame over the target array, every target a valid node
   index, every row sorted, and the [neighbors] copy shim must agree with
   the row the routing inner loop actually scans. [Adjacency.Csr.validate]
   fails fast on the frame invariants at construction time; this validator
   is the exhaustive after-the-fact battery form. *)
let csr net =
  let module I32 = Ftr_graph.Adjacency.I32 in
  let out = ref [] in
  let emit x = out := x :: !out in
  let { Ftr_graph.Adjacency.Csr.offsets; targets } = Network.csr net in
  let n = Network.size net in
  if I32.length offsets <> n + 1 then
    emit (violation "csr.offsets-length" "offsets"
            "length %d, expected n+1 = %d" (I32.length offsets) (n + 1));
  if I32.length offsets > 0 && I32.get offsets 0 <> 0 then
    emit (violation "csr.offsets-start" "offsets" "offsets.(0) = %d, expected 0"
            (I32.get offsets 0));
  for i = 0 to min n (I32.length offsets - 1) - 1 do
    if I32.get offsets (i + 1) < I32.get offsets i then
      emit (violation "csr.offsets-monotone" (Printf.sprintf "node %d" i)
              "offsets.(%d) = %d decreases from offsets.(%d) = %d" (i + 1)
              (I32.get offsets (i + 1)) i (I32.get offsets i))
  done;
  if I32.length offsets = n + 1 && I32.get offsets n <> I32.length targets then
    emit (violation "csr.edge-count" "offsets"
            "offsets.(n) = %d but targets has %d entries" (I32.get offsets n)
            (I32.length targets));
  for k = 0 to I32.length targets - 1 do
    let v = I32.get targets k in
    if v < 0 || v >= n then
      emit (violation "csr.target-range" (Printf.sprintf "slot %d" k)
              "target %d outside [0,%d)" v n)
  done;
  if I32.length offsets = n + 1 then
    for i = 0 to n - 1 do
      for k = I32.get offsets i + 1 to I32.get offsets (i + 1) - 1 do
        if k > 0 && k < I32.length targets && I32.get targets (k - 1) > I32.get targets k then
          emit (violation "csr.row-unsorted" (Printf.sprintf "node %d" i)
                  "row entries at slots %d,%d out of order (%d > %d)" (k - 1) k
                  (I32.get targets (k - 1)) (I32.get targets k))
      done;
      let row = Network.neighbors net i in
      let deg = I32.get offsets (i + 1) - I32.get offsets i in
      if Array.length row <> deg then
        emit (violation "csr.shim-divergence" (Printf.sprintf "node %d" i)
                "neighbors returns %d entries, CSR row has %d" (Array.length row) deg)
      else
        for k = 0 to deg - 1 do
          if row.(k) <> I32.get targets (I32.get offsets i + k) then
            emit (violation "csr.shim-divergence" (Printf.sprintf "node %d" i)
                    "neighbors entry %d is %d, CSR row holds %d" k row.(k)
                    (I32.get targets (I32.get offsets i + k)))
        done
    done;
  List.rev !out

(* Goodness of fit of the long-link length distribution against the 1/d^a
   law (Section 4.3 / Figure 5). Only full networks (every grid point
   present) have a closed-form aggregate model; sparse networks return no
   verdict. *)
let ideal_long_pmf ?(exponent = 1.0) net =
  let n = Network.size net in
  match Network.geometry net with
  | Network.Circle ->
      let max_d = n / 2 in
      let pmf = Array.make max_d 0.0 in
      let total = ref 0.0 in
      for i = 0 to max_d - 1 do
        let d = i + 1 in
        let count = if 2 * d = n then 1.0 else 2.0 in
        let w = count /. Float.pow (float_of_int d) exponent in
        pmf.(i) <- w;
        total := !total +. w
      done;
      Array.map (fun w -> w /. !total) pmf
  | Network.Line ->
      (* Node u draws from 1/d^a over the distances available on its two
         sides, normalised per node; the aggregate is the mixture over u.
         With inv.(u) = 1/T_u, the mass at distance d is
           (Σ_{u>=d} inv(u) + Σ_{u<=n-1-d} inv(u)) / (d^a · n),
         both sums computable from one cumulative pass. *)
      let p = Array.make n 0.0 in
      (* p.(m) = Σ_{k=1..m} k^-a *)
      for m = 1 to n - 1 do
        p.(m) <- p.(m - 1) +. (1.0 /. Float.pow (float_of_int m) exponent)
      done;
      let inv = Array.init n (fun u -> 1.0 /. (p.(u) +. p.(n - 1 - u))) in
      let prefix = Array.make (n + 1) 0.0 in
      for u = 0 to n - 1 do
        prefix.(u + 1) <- prefix.(u) +. inv.(u)
      done;
      let suffix d = prefix.(n) -. prefix.(d) in
      Array.init (n - 1) (fun i ->
          let d = i + 1 in
          (suffix d +. prefix.(n - d)) /. (Float.pow (float_of_int d) exponent *. float_of_int n))

let network_gof ?(exponent = 1.0) ?(ks_threshold = 0.05) ?(chi2_per_dof = 5.0) net =
  if not (Network.is_full net) then []
  else begin
    let model = ideal_long_pmf ~exponent net in
    let bins = Array.length model in
    let counts = Array.make bins 0 in
    let total = ref 0 in
    List.iter
      (fun d ->
        if d >= 1 && d <= bins then begin
          counts.(d - 1) <- counts.(d - 1) + 1;
          incr total
        end)
      (Network.long_link_lengths net);
    if !total = 0 then
      [ violation "gof.no-links" "network" "no long links to test against the 1/d law" ]
    else begin
      let totalf = float_of_int !total in
      let empirical = Array.map (fun c -> float_of_int c /. totalf) counts in
      let out = ref [] in
      (* Small samples fluctuate as 1/sqrt(m) even when drawn from the
         exact law, so the KS gate is floored at the asymptotic critical
         value c/sqrt(m) with a conservative c = 2.0 (far past the 1%
         point); the fixed threshold only binds once the sample is large
         enough to resolve it. *)
      let ks_threshold = Float.max ks_threshold (2.0 /. Float.sqrt totalf) in
      let ks = Gof.ks_statistic ~empirical ~model in
      if ks > ks_threshold then
        out :=
          violation "gof.ks" "network" "KS distance to the 1/d law %.4f exceeds %.4f" ks
            ks_threshold
          :: !out;
      (* χ² over octave buckets [2^k, 2^{k+1}) so expected counts stay
         large enough for the statistic to mean anything. *)
      let observed = ref [] and expected = ref [] in
      let d = ref 1 in
      while !d <= bins do
        let hi = min bins ((2 * !d) - 1) in
        let o = ref 0 and e = ref 0.0 in
        for k = !d to hi do
          o := !o + counts.(k - 1);
          e := !e +. (model.(k - 1) *. totalf)
        done;
        if !e >= 5.0 then begin
          observed := !o :: !observed;
          expected := !e :: !expected
        end;
        d := (2 * !d)
      done;
      let observed = Array.of_list (List.rev !observed) in
      let expected = Array.of_list (List.rev !expected) in
      let dof = Array.length observed in
      if dof > 0 then begin
        let chi2 = Gof.chi_square ~observed ~expected in
        if chi2 /. float_of_int dof > chi2_per_dof then
          out :=
            violation "gof.chi2" "network" "χ²/dof = %.2f over %d octave buckets exceeds %.2f"
              (chi2 /. float_of_int dof) dof chi2_per_dof
            :: !out
      end;
      List.rev !out
    end
  end

(* ------------------------------------------------------------------ *)
(* Route traces (Section 4.2 greedy rule, Section 6 backtracking)       *)
(* ------------------------------------------------------------------ *)

let trace ?(side = Route.Two_sided) ?(strategy = Route.Terminate) ?failures net ~src ~dst
    ~outcome ~path =
  let out = ref [] in
  let emit x = out := x :: !out in
  let rd =
    let s = match side with Route.One_sided -> `One_sided | Route.Two_sided -> `Two_sided in
    fun v -> Network.routing_distance net ~side:s ~src:v ~dst
  in
  (match path with
  | [] -> emit (violation "trace.empty" "trace" "empty path (must contain at least the source)")
  | first :: _ ->
      if first <> src then
        emit (violation "trace.start" "hop 0" "path starts at %d, not the source %d" first src));
  (* Hop accounting: the outcome's hop count is the number of edges in the
     captured trace. *)
  let hops = Route.hops outcome in
  let edges = max 0 (List.length path - 1) in
  if hops <> edges then
    emit (violation "trace.hop-count" "trace" "outcome reports %d hops but the trace has %d edges"
            hops edges);
  (match outcome with
  | Route.Delivered _ ->
      (match List.rev path with
      | last :: _ when last <> dst ->
          emit (violation "trace.not-at-target" (Printf.sprintf "hop %d" edges)
                  "delivered outcome but the trace ends at %d, not %d" last dst)
      | _ -> ())
  | Route.Failed _ -> ());
  (match failures with
  | None -> ()
  | Some f ->
      List.iteri
        (fun k node ->
          if not (Failure.node_alive f node) then
            emit (violation "trace.dead-endpoint" (Printf.sprintf "hop %d" k)
                    "the message visits dead node %d" node))
        path);
  (* Walk the edges. *)
  let check_edge k a b =
    if a = b then
      emit (violation "trace.self-hop" (Printf.sprintf "hop %d" k) "hop from %d to itself" a)
    else if not (mem_link net a b) then
      emit (violation "trace.not-a-link" (Printf.sprintf "hop %d (%d->%d)" k a b)
              "no link %d->%d in the network" a b)
  in
  let check_strict_descent k a b =
    let da = rd a and db = rd b in
    if db >= da then
      emit (violation "trace.non-monotone" (Printf.sprintf "hop %d (%d->%d)" k a b)
              "distance to target went %d -> %d (greedy hops must strictly decrease)" da db)
  in
  let check_no_overshoot k a b =
    if side = Route.One_sided && not (Network.one_sided_admissible net ~cur:a ~v:b ~dst) then
      emit (violation "trace.overshoot" (Printf.sprintf "hop %d (%d->%d)" k a b)
              "one-sided hop passes the target %d" dst)
  in
  let rec edges_of k = function
    | a :: (b :: _ as rest) ->
        check_edge k a b;
        edges_of (k + 1) rest
    | _ -> ()
  in
  (* Backtracking retraces long links in reverse (they are directed), so
     its edges are checked direction-aware inside the replay below. *)
  (match strategy with
  | Route.Backtrack _ -> ()
  | Route.Terminate | Route.Random_reroute _ -> (
      match path with [] -> () | p -> edges_of 1 p));
  (match strategy with
  | Route.Terminate ->
      let rec walk k = function
        | a :: (b :: _ as rest) ->
            check_strict_descent k a b;
            check_no_overshoot k a b;
            walk (k + 1) rest
        | _ -> ()
      in
      walk 1 path
  | Route.Random_reroute _ ->
      (* Legs toward random intermediates are not checkable without the
         intermediate list; edge validity and accounting above suffice. *)
      ()
  | Route.Backtrack { history } ->
      (* Replay the bounded history exactly as Route maintains it: forward
         moves push the departing node (trimmed to the window), a backtrack
         pops the head. A move back to an ancestor that the trimmed window
         no longer holds is a breach of the §6 window discipline. *)
      let trim l =
        let rec take k = function
          | [] -> []
          | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
        in
        take history l
      in
      let window = ref [] and full = ref [] and greedy_prefix = ref true in
      let check_pop_edge k a b =
        (* A pop retraces an earlier forward move b->a, so the link may
           exist in either direction. *)
        if (not (mem_link net a b)) && not (mem_link net b a) then
          emit (violation "trace.not-a-link" (Printf.sprintf "hop %d (%d->%d)" k a b)
                  "backtrack move with no link %d->%d in either direction" a b)
      in
      let rec walk k = function
        | a :: (b :: _ as rest) ->
            (match (!window, !full) with
            | w :: wrest, _ :: frest when w = b ->
                (* Legitimate backtrack to the window head. *)
                check_pop_edge k a b;
                window := wrest;
                full := frest;
                greedy_prefix := false
            | _, f :: frest when f = b && not (mem_link net a b) ->
                (* No forward link a->b, so this can only be a retrace of
                   the earlier b->a move — a pop to an ancestor that the
                   trimmed window no longer holds. (With a forward link the
                   move is indistinguishable from an ordinary hop and is
                   handled by the branch below.) *)
                emit (violation "trace.backtrack-window" (Printf.sprintf "hop %d (%d->%d)" k a b)
                        "backtracks to %d, which is outside the %d-entry history window" b
                        history);
                check_pop_edge k a b;
                window := [];
                full := frest;
                greedy_prefix := false
            | _ ->
                check_edge k a b;
                if !greedy_prefix then check_strict_descent k a b;
                check_no_overshoot k a b;
                window := trim (a :: !window);
                full := a :: !full);
            walk (k + 1) rest
        | _ -> ()
      in
      walk 1 path);
  List.rev !out

(* Convenience: route with the trace captured, then validate it. *)
let route_and_check ?failures ?(side = Route.Two_sided) ?(strategy = Route.Terminate) ?max_hops
    ?rng net ~src ~dst =
  let outcome, path = Route.route_path ?failures ~side ~strategy ?max_hops ?rng net ~src ~dst in
  (outcome, trace ~side ~strategy ?failures net ~src ~dst ~outcome ~path)

(* ------------------------------------------------------------------ *)
(* Event simulator                                                     *)
(* ------------------------------------------------------------------ *)

(* Heap order over the public introspection surface: every slot's item
   must not sort before its parent under the heap's own comparison. *)
let heap ?(subject = "heap") h =
  let out = ref [] in
  let len = Heap.length h in
  for i = 1 to len - 1 do
    let parent = (i - 1) / 2 in
    if Heap.compare_items h (Heap.slot h parent) (Heap.slot h i) > 0 then
      out :=
        violation "heap.order" (Printf.sprintf "%s slot %d" subject i)
          "item at slot %d sorts before its parent at slot %d" i parent
        :: !out
  done;
  List.rev !out

let engine e =
  let out = ref [] in
  let emit x = out := x :: !out in
  let now = Engine.now e in
  let slots = Engine.pending_slots e in
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun i (time, seq) ->
      let subject = Printf.sprintf "event #%d @%g" seq time in
      (* Events order by (time, seq); seq breaks ties FIFO. *)
      if i > 0 then begin
        let pt, ps = slots.((i - 1) / 2) in
        let parent_after =
          let c = Float.compare pt time in
          if c <> 0 then c > 0 else ps > seq
        in
        if parent_after then
          emit
            (violation "heap.order"
               (Printf.sprintf "engine heap slot %d" i)
               "event #%d @%g sorts before its parent event #%d @%g" seq time ps pt)
      end;
      if Float.is_nan time then
        emit (violation "engine.nan-time" subject "pending event has NaN timestamp")
      else if time < now then
        emit
          (violation "engine.event-past" subject
             "pending event timestamp %g is before the clock %g (time must be non-decreasing)"
             time now);
      if Hashtbl.mem seen seq then
        emit (violation "engine.duplicate-id" subject "event sequence number scheduled twice")
      else Hashtbl.add seen seq ())
    slots;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Overlay (Section 5: basins of attraction under churn)               *)
(* ------------------------------------------------------------------ *)

let overlay ?(strict_ring = false) (o : Overlay.t) =
  let out = ref [] in
  let emit x = out := x :: !out in
  let line_size = Overlay.line_size o in
  let views = Hashtbl.create 64 in
  Overlay.iter_nodes o (fun v -> Hashtbl.replace views v.Overlay.view_pos v);
  Hashtbl.iter
    (fun pos (v : Overlay.node_view) ->
      if v.view_alive then begin
        let subject = Printf.sprintf "node %d" pos in
        if pos < 0 || pos >= line_size then
          emit (violation "overlay.off-line" subject "position outside [0,%d)" line_size);
        (match v.view_left with
        | Some l ->
            if l >= pos then
              emit (violation "overlay.ring-order" subject "left pointer %d is not left of %d" l pos);
            if not (Overlay.known o l) then
              emit
                (violation "overlay.unknown-endpoint" subject "left pointer %d was never a node" l)
        | None -> ());
        (match v.view_right with
        | Some r ->
            if r <= pos then
              emit
                (violation "overlay.ring-order" subject "right pointer %d is not right of %d" r pos);
            if not (Overlay.known o r) then
              emit
                (violation "overlay.unknown-endpoint" subject "right pointer %d was never a node" r)
        | None -> ());
        (* Age bookkeeping rides along with the link list one-for-one; a
           length drift means an add/remove path forgot one side. *)
        let nl = List.length v.view_long and nb = List.length v.view_births in
        if nl <> nb then
          emit (violation "overlay.birth-order-skew" subject "%d long links but %d birth ticks" nl nb);
        if nl > Overlay.links o then
          emit
            (violation "overlay.link-count" subject "%d long links exceed the budget l=%d" nl
               (Overlay.links o));
        List.iter
          (fun t ->
            if t = pos then emit (violation "overlay.self-link" subject "long link to itself")
            else if t < 0 || t >= line_size then
              emit (violation "overlay.off-line" subject "long link to %d outside [0,%d)" t line_size)
            else if not (Overlay.known o t) then
              emit
                (violation "overlay.unknown-endpoint" subject "long link target %d was never a node"
                   t))
          v.view_long
      end)
    views;
  if strict_ring then begin
    (* In a quiescent overlay (no unresolved joins, no unrepaired crashes)
       the ring must be exact: each live node's neighbours are the nearest
       live nodes, which is precisely what makes every point's basin of
       attraction owned by the closest node. *)
    let live = Array.of_list (Overlay.live_positions o) in
    let pp_opt = function Some x -> string_of_int x | None -> "none" in
    Array.iteri
      (fun i pos ->
        match Hashtbl.find_opt views pos with
        | None ->
            emit
              (violation "overlay.basin" (Printf.sprintf "node %d" pos)
                 "live position has no node record")
        | Some (v : Overlay.node_view) ->
            let subject = Printf.sprintf "node %d" pos in
            let expect_left = if i > 0 then Some live.(i - 1) else None in
            let expect_right = if i < Array.length live - 1 then Some live.(i + 1) else None in
            if v.view_left <> expect_left then
              emit
                (violation "overlay.basin" subject "left is %s, nearest live node is %s"
                   (pp_opt v.view_left) (pp_opt expect_left));
            if v.view_right <> expect_right then
              emit
                (violation "overlay.basin" subject "right is %s, nearest live node is %s"
                   (pp_opt v.view_right) (pp_opt expect_right)))
      live
  end;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Exec subsystem (Ftr_exec): scheduling-invariant merged results       *)
(* ------------------------------------------------------------------ *)

(* The executor's whole contract is that worker count never touches
   output. This validator runs a canonical job — a couple of draws from
   the per-job stream tagged with the job index — under several worker
   counts and reports any divergence from the jobs=1 reference, plus any
   breach of the stream-derivation rules (distinct per-index streams,
   none of them the root). Any scheduling leak (a job reading a worker's
   generator, a merge slot holding the wrong job) changes a value. *)
let exec ?(seed = 0xF7A) ?(count = 24) () =
  let out = ref [] in
  let emit x = out := x :: !out in
  let job ~index ~rng =
    let a = Rng.bits64 rng in
    let b = Rng.bits64 rng in
    (index, Printf.sprintf "%Lx:%Lx" a b)
  in
  let reference = Pool.map_seeded ~jobs:1 ~seed ~count job in
  Array.iteri
    (fun i (idx, _) ->
      if idx <> i then
        emit
          (violation "exec.merge-order" (Printf.sprintf "slot %d" i)
             "slot holds job %d's result (results must merge in index order)" idx))
    reference;
  List.iter
    (fun jobs ->
      let got = Pool.map_seeded ~jobs ~seed ~count job in
      Array.iteri
        (fun i r ->
          if r <> reference.(i) then
            emit
              (violation "exec.nondeterministic" (Printf.sprintf "job %d" i)
                 "result under jobs=%d differs from the jobs=1 reference" jobs))
        got)
    [ 2; 4 ];
  (* Stream derivation: per-index streams must be pairwise distinct and
     never the sweep's root stream (the regression FTR_CHECK also guards
     inside Pool.map_seeded itself). *)
  let first index = Rng.bits64 (Seed.rng_for ~seed ~index) in
  let root_first = Rng.bits64 (Seed.root ~seed) in
  let seen = Hashtbl.create count in
  for index = 0 to count - 1 do
    let f = first index in
    if f = root_first then
      emit
        (violation "exec.root-leak" (Printf.sprintf "job %d" index)
           "derived stream coincides with the root generator's");
    match Hashtbl.find_opt seen f with
    | Some j ->
        emit
          (violation "exec.stream-collision" (Printf.sprintf "job %d" index)
             "derived stream coincides with job %d's" j)
    | None -> Hashtbl.add seen f index
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* DHT store (Section 2: keys live with their basin owners)            *)
(* ------------------------------------------------------------------ *)

let store ?(complete = false) (s : Store.t) =
  let out = ref [] in
  let emit x = out := x :: !out in
  let owners = Hashtbl.create 256 in
  let owners_of key =
    match Hashtbl.find_opt owners key with
    | Some os -> os
    | None ->
        let os = Store.replica_owners s key in
        Hashtbl.replace owners key os;
        os
  in
  (* node -> its (key -> value) table, rebuilt from the iteration surface. *)
  let tables : (int, (string, string) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  Store.iter_stored s (fun ~node ~key ~value ->
      let tbl =
        match Hashtbl.find_opt tables node with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 8 in
            Hashtbl.replace tables node tbl;
            tbl
      in
      Hashtbl.replace tbl key value;
      if not (List.mem node (owners_of key)) then
        emit
          (violation "store.misplaced" (Printf.sprintf "node %d" node)
             "holds key %S but is not one of its replica owners" key));
  if complete then begin
    (* Every key present anywhere must be present — with the same value —
       at every one of its replica owners (the state `put` establishes). *)
    let values = Hashtbl.create 256 in
    Hashtbl.iter (fun _ tbl -> Hashtbl.iter (fun k v -> Hashtbl.replace values k v) tbl) tables;
    Hashtbl.iter
      (fun key value ->
        List.iter
          (fun o ->
            let stored =
              match Hashtbl.find_opt tables o with
              | None -> None
              | Some tbl -> Hashtbl.find_opt tbl key
            in
            match stored with
            | None ->
                emit
                  (violation "store.missing-replica" (Printf.sprintf "node %d" o)
                     "replica owner is missing key %S" key)
            | Some v when v <> value ->
                emit
                  (violation "store.divergent" (Printf.sprintf "node %d" o)
                     "key %S disagrees across replicas" key)
            | Some _ -> ())
          (owners_of key))
      values
  end;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Service subsystem (Ftr_svc): deterministic mailboxes and actors      *)
(* ------------------------------------------------------------------ *)

(* The bounded-mailbox rule and the delivery order. [well_ordered] is the
   load-bearing one: a mailbox out of delivery order means some post or
   drain bypassed the sorted insert, and the scheduler's jobs-invariance
   claim is void. *)
let mailbox ?(subject = "mailbox") (mb : _ Ftr_svc.Mailbox.t) =
  let out = ref [] in
  let emit x = out := x :: !out in
  let module M = Ftr_svc.Mailbox in
  if M.length mb > M.capacity mb then
    emit
      (violation "svc.mailbox-bound" subject "length %d exceeds capacity %d" (M.length mb)
         (M.capacity mb));
  if M.high_water mb > M.capacity mb then
    emit
      (violation "svc.mailbox-bound" subject "high water %d exceeds capacity %d"
         (M.high_water mb) (M.capacity mb));
  if M.length mb <> List.length (M.keys mb) then
    emit
      (violation "svc.mailbox-count" subject "length %d disagrees with %d stored keys"
         (M.length mb) (List.length (M.keys mb)));
  if not (M.well_ordered mb) then
    emit (violation "svc.mailbox-order" subject "entries are not in delivery order");
  List.rev !out

(* Structural invariants of a running (or finished) service: request
   conservation, ring sanity, link budgets and every actor's mailbox.
   Sorted actor order comes from [iter_actors], so the report is
   deterministic. *)
let service (svc : Ftr_svc.Service.t) =
  let out = ref [] in
  let emit x = out := x :: !out in
  let module S = Ftr_svc.Service in
  let stats = S.stats svc in
  let pending = List.length (S.pending_requests svc) in
  if
    stats.S.issued
    <> stats.S.ok + stats.S.failed + stats.S.timed_out + pending
  then
    emit
      (violation "svc.conservation" "service"
         "issued %d but delivered %d + failed %d + timed_out %d + pending %d" stats.S.issued
         stats.S.ok stats.S.failed stats.S.timed_out pending);
  if stats.S.maint_issued < stats.S.maint_ok + stats.S.maint_failed then
    emit
      (violation "svc.conservation" "service"
         "maintenance completions %d exceed issues %d"
         (stats.S.maint_ok + stats.S.maint_failed)
         stats.S.maint_issued);
  let line_size = S.line_size svc in
  let links = S.links svc in
  S.iter_actors svc (fun v ->
      let subject = Printf.sprintf "actor %d" v.S.av_pos in
      if v.S.av_pos < 0 || v.S.av_pos >= line_size then
        emit (violation "svc.off-line" subject "position outside [0,%d)" line_size);
      if v.S.av_alive then begin
        (match v.S.av_left with
        | Some l when l >= v.S.av_pos ->
            emit (violation "svc.ring-order" subject "left pointer %d is not left of %d" l v.S.av_pos)
        | Some _ | None -> ());
        (match v.S.av_right with
        | Some r when r <= v.S.av_pos ->
            emit
              (violation "svc.ring-order" subject "right pointer %d is not right of %d" r
                 v.S.av_pos)
        | Some _ | None -> ());
        let nl = List.length v.S.av_long and nb = List.length v.S.av_births in
        if nl <> nb then
          emit (violation "svc.birth-order-skew" subject "%d long links but %d birth ticks" nl nb);
        if nl > links then
          emit (violation "svc.link-count" subject "%d long links exceed the budget l=%d" nl links);
        List.iter
          (fun tgt ->
            if tgt = v.S.av_pos then emit (violation "svc.self-link" subject "long link to itself")
            else if tgt < 0 || tgt >= line_size then
              emit (violation "svc.off-line" subject "long link to %d outside [0,%d)" tgt line_size))
          v.S.av_long
      end;
      if v.S.av_mail_length > v.S.av_mail_capacity then
        emit
          (violation "svc.mailbox-bound" subject "length %d exceeds capacity %d"
             v.S.av_mail_length v.S.av_mail_capacity);
      if v.S.av_mail_high_water > v.S.av_mail_capacity then
        emit
          (violation "svc.mailbox-bound" subject "high water %d exceeds capacity %d"
             v.S.av_mail_high_water v.S.av_mail_capacity);
      if not v.S.av_mail_well_ordered then
        emit (violation "svc.mailbox-order" subject "entries are not in delivery order"));
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Snapshot subsystem (Ftr_core.Snapshot): mmap-able network files      *)
(* ------------------------------------------------------------------ *)

(* Round-trip fidelity and corruption rejection in one battery section.
   A snapshot that loads is trusted byte-for-byte by the router (the CSR
   invariants are what make the unsafe reads safe), so the section checks
   both directions: a saved network must come back identical in both load
   modes, and every corrupted variant — truncated, bad magic, wrong
   version, foreign endianness, out-of-range payload, trailing bytes —
   must be refused with [Snapshot.Corrupt], never accepted or crashed. *)
let snapshot ?(seed = 0x5A9) () =
  let module Snapshot = Ftr_core.Snapshot in
  let module I32 = Ftr_graph.Adjacency.I32 in
  let module Csr = Ftr_graph.Adjacency.Csr in
  let out = ref [] in
  let emit x = out := x :: !out in
  let rng = Rng.of_int seed in
  let net = Network.build_ideal ~n:192 ~links:3 rng in
  let path = Filename.temp_file "ftr_check_snapshot" ".ftrsnap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Snapshot.save net ~path;
  let compare_loaded label net' =
    if Network.geometry net' <> Network.geometry net then
      emit (violation "snapshot.roundtrip" label "geometry changed across the round-trip");
    if Network.line_size net' <> Network.line_size net then
      emit
        (violation "snapshot.roundtrip" label "line_size %d, expected %d"
           (Network.line_size net') (Network.line_size net));
    if Network.links net' <> Network.links net then
      emit
        (violation "snapshot.roundtrip" label "links %d, expected %d" (Network.links net')
           (Network.links net));
    if not (I32.equal (Network.positions net') (Network.positions net)) then
      emit (violation "snapshot.roundtrip" label "positions differ");
    if not (Csr.equal (Network.csr net') (Network.csr net)) then
      emit (violation "snapshot.roundtrip" label "CSR adjacency differs");
    (* Outcome fidelity: the loaded network must route exactly like the
       original (structural equality should imply it; this catches any
       accessor reading through the wrong layer). *)
    for i = 0 to 7 do
      let src = (i * 37) mod Network.size net
      and dst = (i * 91) mod Network.size net in
      if src <> dst then begin
        let o = Route.route net ~src ~dst and o' = Route.route net' ~src ~dst in
        if o <> o' then
          emit
            (violation "snapshot.route-divergence" label "route %d->%d differs after reload" src
               dst)
      end
    done
  in
  (match Snapshot.load ~path () with
  | net' -> compare_loaded "mmap load" net'
  | exception Snapshot.Corrupt msg ->
      emit (violation "snapshot.rejects-valid" "mmap load" "refused a valid snapshot: %s" msg));
  (match Snapshot.load ~mmap:false ~path () with
  | net' -> compare_loaded "copy load" net'
  | exception Snapshot.Corrupt msg ->
      emit (violation "snapshot.rejects-valid" "copy load" "refused a valid snapshot: %s" msg));
  (match Snapshot.info ~path with
  | i ->
      if i.Snapshot.nodes <> Network.size net then
        emit
          (violation "snapshot.info" "info" "node count %d, expected %d" i.Snapshot.nodes
             (Network.size net))
  | exception Snapshot.Corrupt msg ->
      emit (violation "snapshot.rejects-valid" "info" "refused a valid snapshot: %s" msg));
  (* Corruption matrix: every variant must raise [Corrupt]. *)
  let original = In_channel.with_open_bin path In_channel.input_all in
  let corrupt_path = Filename.temp_file "ftr_check_snapshot_bad" ".ftrsnap" in
  Fun.protect ~finally:(fun () -> try Sys.remove corrupt_path with Sys_error _ -> ())
  @@ fun () ->
  let expect_rejected label contents =
    Out_channel.with_open_bin corrupt_path (fun oc -> Out_channel.output_string oc contents);
    match Snapshot.load ~path:corrupt_path () with
    | _ ->
        emit (violation "snapshot.accepts-corrupt" label "corrupted file loaded without error")
    | exception Snapshot.Corrupt _ -> ()
    | exception e ->
        emit
          (violation "snapshot.wrong-exception" label "raised %s instead of Corrupt"
             (Printexc.to_string e))
  in
  let patched off f =
    let b = Bytes.of_string original in
    f b off;
    Bytes.to_string b
  in
  expect_rejected "empty file" "";
  expect_rejected "truncated header" (String.sub original 0 40);
  expect_rejected "truncated payload" (String.sub original 0 (String.length original - 8));
  expect_rejected "trailing garbage" (original ^ "junk");
  expect_rejected "bad magic" (patched 0 (fun b off -> Bytes.set b off 'X'));
  expect_rejected "wrong version" (patched 12 (fun b off -> Bytes.set_int32_ne b off 99l));
  expect_rejected "foreign endianness"
    (patched 8 (fun b off -> Bytes.set_int32_ne b off 0x0D0C0B0Al));
  expect_rejected "out-of-range target"
    (patched
       (String.length original - 4)
       (fun b off -> Bytes.set_int32_ne b off Int32.max_int));
  List.rev !out
