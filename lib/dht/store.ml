module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Failure = Ftr_core.Failure

type t = {
  net : Network.t;
  replicas : int;
  tables : (string, string) Hashtbl.t array; (* one table per node index *)
}

let create ?(replicas = 1) net =
  if replicas < 1 then invalid_arg "Store.create: need at least one replica";
  {
    net;
    replicas;
    tables = Array.init (Network.size net) (fun _ -> Hashtbl.create 8);
  }

let network t = t.net

let replicas t = t.replicas

(* The node responsible for a key's [salt]-th replica: the present node
   nearest to the hashed point (its basin owner). *)
let replica_owner t ~salt key =
  let point = Keyspace.replica_point ~line_size:(Network.line_size t.net) ~salt key in
  Network.nearest_index t.net ~position:point

let owner t key = replica_owner t ~salt:0 key

let replica_owners t key =
  (* Distinct owners in salt order; collisions between salted points simply
     reduce the effective replica count for that key. *)
  let rec collect salt acc =
    if salt = t.replicas then List.rev acc
    else
      let o = replica_owner t ~salt key in
      collect (salt + 1) (if List.mem o acc then acc else o :: acc)
  in
  collect 0 []

let put t ~key ~value =
  if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr "store_put_total";
  List.iter (fun o -> Hashtbl.replace t.tables.(o) key value) (replica_owners t key);
  (* Sanitizer hook: a put must land the key with its basin owner. *)
  if Ftr_debug.Debug.enabled () then begin
    let o = owner t key in
    if o < 0 || o >= Network.size t.net then
      Ftr_debug.Debug.failf "Store: owner %d of key %S is not a node" o key;
    let landed =
      match Hashtbl.find_opt t.tables.(o) key with
      | Some stored -> String.equal stored value
      | None -> false
    in
    if not landed then
      Ftr_debug.Debug.failf "Store: key %S missing at its primary owner %d after put" key o
  end

let get t ~key =
  let rec scan = function
    | [] -> None
    | o :: rest -> (
        match Hashtbl.find_opt t.tables.(o) key with
        | Some v -> Some v
        | None -> scan rest)
  in
  let result = scan (replica_owners t key) in
  if Ftr_obs.Flag.enabled () then
    Ftr_obs.Metrics.incr
      ~labels:[ ("result", match result with Some _ -> "hit" | None -> "miss") ]
      "store_get_total";
  result

let remove t ~key =
  List.iter (fun o -> Hashtbl.remove t.tables.(o) key) (replica_owners t key)

let stored_pairs t =
  Array.fold_left (fun acc table -> acc + Hashtbl.length table) 0 t.tables

let keys_at t node = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables.(node) []

let iter_stored t f =
  Array.iteri (fun node table -> Hashtbl.iter (fun key value -> f ~node ~key ~value) table)
    t.tables

(* ------------------------------------------------------------------ *)
(* Routed operations                                                   *)
(* ------------------------------------------------------------------ *)

type routed = {
  value : string option;  (** the value, for gets that found one *)
  hops : int;  (** total message hops spent, over all attempted replicas *)
  reached : int list;  (** replica owners actually reached *)
}

let route_to t ~failures ~strategy ~rng ~src ~dst ~hops =
  match Route.route ~failures ~strategy ?rng t.net ~src ~dst with
  | Route.Delivered { hops = h } -> (true, hops + h)
  | Route.Failed { hops = h; _ } -> (false, hops + h)

let routed_put ?(failures = Failure.none) ?(strategy = Route.Terminate) ?rng t ~src ~key ~value
    =
  if not (Failure.node_alive failures src) then invalid_arg "Store.routed_put: source is dead";
  let hops = ref 0 and reached = ref [] in
  List.iter
    (fun o ->
      if Failure.node_alive failures o then begin
        let ok, h = route_to t ~failures ~strategy ~rng ~src ~dst:o ~hops:!hops in
        hops := h;
        if ok then begin
          Hashtbl.replace t.tables.(o) key value;
          reached := o :: !reached
        end
      end)
    (replica_owners t key);
  { value = None; hops = !hops; reached = List.rev !reached }

let routed_get ?(failures = Failure.none) ?(strategy = Route.Terminate) ?rng t ~src ~key =
  if not (Failure.node_alive failures src) then invalid_arg "Store.routed_get: source is dead";
  let hops = ref 0 in
  let rec scan reached = function
    | [] -> { value = None; hops = !hops; reached = List.rev reached }
    | o :: rest ->
        if Failure.node_alive failures o then begin
          let ok, h = route_to t ~failures ~strategy ~rng ~src ~dst:o ~hops:!hops in
          hops := h;
          if ok then begin
            match Hashtbl.find_opt t.tables.(o) key with
            | Some v -> { value = Some v; hops = !hops; reached = List.rev (o :: reached) }
            | None -> scan (o :: reached) rest
          end
          else scan reached rest
        end
        else scan reached rest
  in
  let r = scan [] (replica_owners t key) in
  if Ftr_obs.Flag.enabled () then
    Ftr_obs.Metrics.incr
      ~labels:[ ("result", match r.value with Some _ -> "hit" | None -> "miss") ]
      "store_get_total";
  r
