(** The hash-table functionality the paper promises (Section 2), over a
    static {!Ftr_core.Network.t}.

    A key hashes to a point; the present node nearest that point (the
    basin owner) stores the value. With [replicas = k], the key is also
    stored at the owners of k-1 independent salted points, so reads
    survive the primary's failure. Routed variants pay the greedy-routing
    cost and respect failure views, so storage operations can be measured
    under exactly the Section 6 failure models. *)

type t

val create : ?replicas:int -> Ftr_core.Network.t -> t
(** Empty store over the network (default: one replica).
    @raise Invalid_argument if [replicas < 1]. *)

val network : t -> Ftr_core.Network.t
(** The underlying overlay. *)

val replicas : t -> int
(** Configured replica count. *)

val owner : t -> string -> int
(** Node index responsible for a key's primary point. *)

val replica_owners : t -> string -> int list
(** Distinct owners of all the key's replica points, primary first. *)

val put : t -> key:string -> value:string -> unit
(** Store at every replica owner (no routing cost — the omniscient view
    used by tests and to seed experiments). *)

val get : t -> key:string -> string option
(** Read from the first replica owner holding the key. *)

val remove : t -> key:string -> unit
(** Delete the key from every replica owner. *)

val stored_pairs : t -> int
(** Total key-value pairs held across all nodes (replicas count). *)

val keys_at : t -> int -> string list
(** Keys stored at one node. *)

val iter_stored : t -> (node:int -> key:string -> value:string -> unit) -> unit
(** Visit every stored (node, key, value) triple — replicas included — so
    the invariant sanitizer can audit key placement. *)

(** {1 Routed operations} *)

type routed = {
  value : string option;  (** the value, for gets that found one *)
  hops : int;  (** total message hops spent, over all attempted replicas *)
  reached : int list;  (** replica owners actually reached *)
}

val routed_put :
  ?failures:Ftr_core.Failure.t ->
  ?strategy:Ftr_core.Route.strategy ->
  ?rng:Ftr_prng.Rng.t ->
  t ->
  src:int ->
  key:string ->
  value:string ->
  routed
(** Route from [src] to every live replica owner and store where routing
    succeeds. @raise Invalid_argument if [src] is dead. *)

val routed_get :
  ?failures:Ftr_core.Failure.t ->
  ?strategy:Ftr_core.Route.strategy ->
  ?rng:Ftr_prng.Rng.t ->
  t ->
  src:int ->
  key:string ->
  routed
(** Route to replica owners in salt order until one returns the value.
    @raise Invalid_argument if [src] is dead. *)
