module Ring = Ftr_metric.Ring

type t = {
  ring : Ring.t;
  nodes : int array; (* sorted identifiers of present nodes *)
  finger_stride : int; (* fingers per node (= identifier bits m) *)
  fingers : int array; (* flat: node i's finger j at slot i*stride + j *)
}

let ring_size t = Ring.size t.ring

let node_count t = Array.length t.nodes

let nodes t = t.nodes

(* Index of the first node whose identifier is >= id, wrapping to 0. *)
let successor_index nodes ring_size id =
  let id = ((id mod ring_size) + ring_size) mod ring_size in
  let n = Array.length nodes in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if nodes.(mid) >= id then search lo mid else search (mid + 1) hi
  in
  let i = search 0 n in
  if i = n then 0 else i

let successor t id = t.nodes.(successor_index t.nodes (ring_size t) id)

let bits_of m =
  let rec go acc v = if v >= m then acc else go (acc + 1) (v * 2) in
  go 0 1

let create ~ring_size ~node_ids =
  if ring_size < 2 then invalid_arg "Chord.create: ring_size must be >= 2";
  let nodes = Array.copy node_ids in
  Array.sort Int.compare nodes;
  let n = Array.length nodes in
  if n < 1 then invalid_arg "Chord.create: need at least one node";
  Array.iteri
    (fun i id ->
      if id < 0 || id >= ring_size then invalid_arg "Chord.create: identifier off the ring";
      if i > 0 && nodes.(i - 1) = id then invalid_arg "Chord.create: duplicate identifier")
    nodes;
  let m = bits_of ring_size in
  (* Finger j of a node with identifier u is the first node succeeding
     u + 2^j (j = 0 is the immediate successor). Stored flat, one stride-m
     segment per node, so routing scans a contiguous slice. *)
  let fingers = Array.make (n * m) 0 in
  Array.iteri
    (fun i u ->
      for j = 0 to m - 1 do
        fingers.((i * m) + j) <-
          nodes.(successor_index nodes ring_size ((u + (1 lsl j)) mod ring_size))
      done)
    nodes;
  { ring = Ring.create ring_size; nodes; finger_stride = m; fingers }

let create_full ~n =
  if n < 2 then invalid_arg "Chord.create_full: need at least two nodes";
  create ~ring_size:n ~node_ids:(Array.init n (fun i -> i))

let fingers_of t ~id =
  let i = successor_index t.nodes (ring_size t) id in
  Array.sub t.fingers (i * t.finger_stride) t.finger_stride

(* Greedy clockwise routing: forward to the finger that gets farthest
   around the ring without passing the target's node. One-sided by
   construction, like the paper's Chord discussion. *)
let route ?(max_hops = 1_000_000) t ~src ~key =
  let target = successor t key in
  let rec go cur hops =
    if cur = target then Some hops
    else if hops >= max_hops then None
    else begin
      let remaining = Ring.clockwise_distance t.ring ~src:cur ~dst:target in
      let base = successor_index t.nodes (ring_size t) cur * t.finger_stride in
      let best = ref cur and best_gain = ref 0 in
      for j = 0 to t.finger_stride - 1 do
        let f = t.fingers.(base + j) in
        let gain = Ring.clockwise_distance t.ring ~src:cur ~dst:f in
        if gain > !best_gain && gain <= remaining then begin
          best := f;
          best_gain := gain
        end
      done;
      if !best = cur then None (* cannot happen with finger 0 present *)
      else go !best (hops + 1)
    end
  in
  go src 0

let route_hops t ~src ~key =
  match route t ~src ~key with
  | Some h -> h
  | None -> invalid_arg "Chord.route_hops: routing failed"

(* ------------------------------------------------------------------ *)
(* Routing under node failures                                         *)
(* ------------------------------------------------------------------ *)

(* Chord's fault tolerance rests on two mechanisms the paper's Section 6
   alludes to when it says its results "appear to perform as well" as
   Chord's: fingers are skipped when dead, and a successor list of [r]
   live fallbacks guarantees clockwise progress unless all r die at once. *)

let successor_list t ~id ~r =
  let n = Array.length t.nodes in
  let start = successor_index t.nodes (ring_size t) id in
  List.init (min r n) (fun k -> t.nodes.((start + k) mod n))

let route_with_failures ?(max_hops = 1_000_000) ?(successors = 1) t ~alive ~src ~key =
  if successors < 1 then invalid_arg "Chord.route_with_failures: successors must be >= 1";
  let target = successor t key in
  if not (alive src && alive target) then
    invalid_arg "Chord.route_with_failures: endpoint is dead";
  let rec go cur hops =
    if cur = target then Some hops
    else if hops >= max_hops then None
    else begin
      let remaining = Ring.clockwise_distance t.ring ~src:cur ~dst:target in
      (* Farthest live finger that does not overshoot. *)
      let base = successor_index t.nodes (ring_size t) cur * t.finger_stride in
      let best = ref cur and best_gain = ref 0 in
      for j = 0 to t.finger_stride - 1 do
        let f = t.fingers.(base + j) in
        if alive f then begin
          let gain = Ring.clockwise_distance t.ring ~src:cur ~dst:f in
          if gain > !best_gain && gain <= remaining then begin
            best := f;
            best_gain := gain
          end
        end
      done;
      if !best <> cur then go !best (hops + 1)
      else begin
        (* Every useful finger is dead: fall back to the successor list. *)
        let fallback =
          List.find_opt
            (fun s ->
              alive s
              && s <> cur
              && Ring.clockwise_distance t.ring ~src:cur ~dst:s <= remaining)
            (successor_list t ~id:((cur + 1) mod ring_size t) ~r:successors)
        in
        match fallback with None -> None | Some s -> go s (hops + 1)
      end
    end
  in
  go src 0

type failure_row = {
  fail_fraction : float;
  failed_r1 : float;  (** failed searches with a 1-entry successor list *)
  failed_r4 : float;  (** with 4 successors *)
  hops_r4 : float;  (** mean hops of successful r=4 searches *)
}

(* Chord's own Figure-6-style sweep, for the cross-system comparison. *)
let failure_sweep ?(n = 4096) ?(fractions = [ 0.0; 0.2; 0.4; 0.6; 0.8 ]) ?(messages = 300)
    ~seed () =
  let t = create_full ~n in
  let rng = Ftr_prng.Rng.of_int seed in
  List.map
    (fun fraction ->
      let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction in
      let alive = Ftr_graph.Bitset.get mask in
      let live () =
        let rec go () =
          let v = Ftr_prng.Rng.int rng n in
          if alive v then v else go ()
        in
        go ()
      in
      let f1 = ref 0 and f4 = ref 0 and hops4 = ref 0 and ok4 = ref 0 in
      for _ = 1 to messages do
        let src = live () and key = live () in
        (match route_with_failures ~successors:1 t ~alive ~src ~key with
        | Some _ -> ()
        | None -> incr f1);
        match route_with_failures ~successors:4 t ~alive ~src ~key with
        | Some h ->
            incr ok4;
            hops4 := !hops4 + h
        | None -> incr f4
      done;
      {
        fail_fraction = fraction;
        failed_r1 = float_of_int !f1 /. float_of_int messages;
        failed_r4 = float_of_int !f4 /. float_of_int messages;
        hops_r4 = float_of_int !hops4 /. float_of_int (max 1 !ok4);
      })
    fractions
