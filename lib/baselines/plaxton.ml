(* Tapestry-style prefix routing (Plaxton/Rajaraman/Richa, Section 3 of
   the paper): identifiers are strings of [digits] base-[base] digits;
   each hop "fixes" the highest-order digit on which the current node and
   the target disagree, so delivery takes at most [digits] hops with
   (base-1)·digits routing-table entries per node.

   This model is the full-namespace instance (every identifier occupied),
   the cleanest comparison point against Theorem 14's digit-fixing on the
   line — the two are the same idea in different metrics. *)

type t = {
  base : int;
  digits : int;
  size : int;
  weights : int array; (* weights.(pos) = base^(digits-1-pos), pos 0 most significant *)
}

let create ~base ~digits =
  if base < 2 then invalid_arg "Plaxton.create: base must be >= 2";
  if digits < 1 then invalid_arg "Plaxton.create: digits must be >= 1";
  let rec pow acc k = if k = 0 then acc else pow (acc * base) (k - 1) in
  let size = pow 1 digits in
  if size > 1 lsl 30 then invalid_arg "Plaxton.create: namespace too large";
  let weights = Array.init digits (fun pos -> pow 1 (digits - 1 - pos)) in
  { base; digits; size; weights }

let size t = t.size

let base t = t.base

let digits t = t.digits

let table_entries t = (t.base - 1) * t.digits

let digit t id ~position =
  if position < 0 || position >= t.digits then invalid_arg "Plaxton.digit: bad position";
  (* position 0 is the most significant digit. *)
  id / t.weights.(position) mod t.base

let check t id = if id < 0 || id >= t.size then invalid_arg "Plaxton: identifier out of range"

(* Number of leading digits two identifiers share. *)
let shared_prefix t a b =
  check t a;
  check t b;
  let rec scan pos =
    if pos >= t.digits then t.digits
    else if digit t a ~position:pos = digit t b ~position:pos then scan (pos + 1)
    else pos
  in
  scan 0

(* One routing step: fix the first differing digit, preserving everything
   above it and copying the target's digit — the routing-table entry a real
   Tapestry node would hold for (prefix length, digit). *)
let next_hop t ~cur ~dst =
  check t cur;
  check t dst;
  if cur = dst then None
  else begin
    let pos = shared_prefix t cur dst in
    (* Replace cur's digit at [pos] with dst's. *)
    let weight = t.weights.(pos) in
    let cur_digit = digit t cur ~position:pos in
    let dst_digit = digit t dst ~position:pos in
    Some (cur + ((dst_digit - cur_digit) * weight))
  end

let route t ~src ~dst =
  let rec go cur hops path =
    match next_hop t ~cur ~dst with
    | None -> (hops, List.rev path)
    | Some v -> go v (hops + 1) (v :: path)
  in
  go src 0 [ src ]

let route_hops t ~src ~dst = fst (route t ~src ~dst)

(* The exact delivery time: the number of digit positions where src and
   dst disagree — at most [digits]. *)
let differing_digits t a b =
  check t a;
  check t b;
  let count = ref 0 in
  for pos = 0 to t.digits - 1 do
    if digit t a ~position:pos <> digit t b ~position:pos then incr count
  done;
  !count
