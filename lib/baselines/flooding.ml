module Adjacency = Ftr_graph.Adjacency
module Rng = Ftr_prng.Rng

(* Unstructured overlay in the Gnutella mould: every node links to
   [degree] uniformly random peers (made symmetric so floods travel both
   ways). *)
let random_overlay ~n ~degree rng =
  if n < 2 then invalid_arg "Flooding.random_overlay: need at least two nodes";
  if degree < 1 then invalid_arg "Flooding.random_overlay: degree must be >= 1";
  let buckets = Array.make n [] in
  for u = 0 to n - 1 do
    for _ = 1 to degree do
      let rec pick () =
        let v = Rng.int rng n in
        if v = u then pick () else v
      in
      let v = pick () in
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v)
    done
  done;
  Adjacency.of_arrays
    (Array.map (fun l -> Array.of_list (List.sort_uniq Int.compare l)) buckets)

type result = { found : bool; messages : int; rounds : int }

(* Breadth-first flood with a TTL: every node that receives the query for
   the first time forwards it to all its neighbours. [messages] counts
   every forwarded copy — the cost the paper's introduction holds against
   flooding-based systems. *)
let search ?(ttl = max_int) graph ~src ~dst =
  let n = Adjacency.size graph in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Flooding.search: out of range";
  if src = dst then { found = true; messages = 0; rounds = 0 }
  else begin
    let seen = Array.make n false in
    seen.(src) <- true;
    let frontier = ref [ src ] in
    let messages = ref 0 in
    let rec go round =
      if round >= ttl || !frontier = [] then { found = false; messages = !messages; rounds = round }
      else begin
        let next = ref [] in
        let hit = ref false in
        List.iter
          (fun u ->
            Array.iter
              (fun v ->
                incr messages;
                if v = dst then hit := true;
                if not seen.(v) then begin
                  seen.(v) <- true;
                  next := v :: !next
                end)
              (Adjacency.neighbors graph u))
          !frontier;
        if !hit then { found = true; messages = !messages; rounds = round + 1 }
        else begin
          frontier := !next;
          go (round + 1)
        end
      end
    in
    go 0
  end
