module Torus = Ftr_metric.Torus
module Csr = Ftr_graph.Adjacency.Csr
module I32 = Ftr_graph.Adjacency.I32

type t = {
  torus : Torus.t;
  adj : Csr.t; (* lattice neighbours, flat, preserving [Torus.neighbors] order *)
}

let create ~dims ~side =
  if side < 3 then invalid_arg "Lattice.create: side must be >= 3";
  let torus = Torus.create ~dims ~side in
  let rows = Array.init (Torus.size torus) (fun u -> Array.of_list (Torus.neighbors torus u)) in
  { torus; adj = Csr.of_rows rows }

let torus t = t.torus

let size t = Torus.size t.torus

(* CAN-style greedy: only lattice neighbours, pick any that strictly
   reduces L1 distance (first axis with a gap). Hop count equals the L1
   distance, i.e. Θ(d · n^{1/d}) in the worst case. *)
let route ?(max_hops = 100_000_000) t ~src ~dst =
  if not (Torus.contains t.torus src && Torus.contains t.torus dst) then
    invalid_arg "Lattice.route: node off the torus";
  let { Csr.offsets; targets } = t.adj in
  let rec go cur hops =
    if cur = dst then Some hops
    else if hops >= max_hops then None
    else begin
      let cd = Torus.distance t.torus cur dst in
      (* First neighbour (in [Torus.neighbors] order) strictly closer. *)
      let next = ref (-1) in
      let k = ref (I32.get offsets cur) in
      while !next < 0 && !k < I32.get offsets (cur + 1) do
        let v = I32.get targets !k in
        if Torus.distance t.torus v dst < cd then next := v;
        incr k
      done;
      if !next < 0 then None else go !next (hops + 1)
    end
  in
  go src 0

let route_hops t ~src ~dst =
  match route t ~src ~dst with
  | Some h -> h
  | None -> invalid_arg "Lattice.route_hops: routing failed"

let expected_hops t = float_of_int (Torus.dims t.torus) *. float_of_int (Torus.side t.torus) /. 4.0
