(** A pool of OCaml 5 domains with chunked work distribution and a
    deterministic contract: {!map} returns results in job-index order, so
    output never depends on how jobs landed on workers.

    Parallel execution only changes {e wall-clock}, never results,
    provided each job is a pure function of its index (and of a generator
    derived from the index — see {!Seed}). Worker domains run with
    {!Ftr_obs} telemetry suppressed ([Ftr_obs.Flag.suppress_in_domain]):
    the registries are not domain-safe, so the coordinator records the
    pool's own metrics ([exec_jobs_completed_total],
    [exec_pool_workers], [exec_queue_depth], the per-worker
    [exec_worker_busy_seconds] histogram and the [exec.pool.run] span)
    on the workers' behalf. Consequence: per-hop metrics recorded inside
    jobs only appear in sequential runs — the determinism contract covers
    merged results, not telemetry (docs/PARALLELISM.md). *)

val sequential_forced : unit -> bool
(** [true] when the environment demands the sequential fallback
    ([FTR_EXEC_SEQ] set to [1], [true], [on] or [yes]). Read per call, so
    tests can flip it with [Unix.putenv]. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: 1 when
    {!sequential_forced} or when [Domain.recommended_domain_count ()] is
    1, else the recommended domain count. *)

val map : ?jobs:int -> count:int -> (int -> 'a) -> 'a array
(** [map ~count f] evaluates [f i] for every [i] in [0, count) and
    returns [[| f 0; ...; f (count-1) |]]. With [jobs <= 1] (or inside a
    worker domain, or [count <= 1]) everything runs on the calling
    domain; otherwise [min jobs count] worker domains pull chunks of
    indices from a shared atomic cursor. A job's exception is re-raised
    on the caller once all workers have joined.
    @raise Invalid_argument if [count < 0] or [jobs < 1]. *)

(** {1 Resident pool}

    {!map} spawns fresh domains per call — fine for sweeps, dominant for
    a serving loop that fans out thousands of sub-millisecond rounds. A
    [resident] keeps its workers parked on a condition variable between
    rounds. The mutex hand-offs at round start/end give happens-before
    edges in both directions, so effects written by workers during a
    round are visible to the coordinator when {!run_resident} returns —
    the guarantee {!Ftr_svc}'s barrier-separated mailbox discipline is
    built on (docs/SERVICE.md). *)

type resident
(** A crew of parked worker domains. The worker count is fixed at
    creation: {!sequential_forced}, a single-job request, or creation
    from inside another pool's worker all degrade the crew to inline
    sequential execution. *)

val create_resident : ?jobs:int -> unit -> resident
(** Spawn the crew ([jobs] defaults to {!default_jobs}); the caller must
    eventually {!shutdown_resident}. Prefer {!with_resident}.
    @raise Invalid_argument if [jobs < 1]. *)

val run_resident : resident -> count:int -> (int -> unit) -> unit
(** One round: evaluate [f i] for every [i] in [0, count), effects only.
    Each index is run exactly once; which worker runs it is unspecified,
    so only effects keyed by index (e.g. writing slot [i] of a
    caller-owned array) are deterministic. Blocks until every worker has
    drained the round. A job's exception is re-raised here after the
    round settles; indices not yet claimed when a job raised may be
    skipped, so a raising round's effects are unspecified.
    @raise Invalid_argument if [count < 0] or after shutdown. *)

val resident_jobs : resident -> int
(** Effective parallelism of the crew (1 when degraded to inline). *)

val resident_rounds : resident -> int
(** Rounds run so far (including inline ones), for reporting. *)

val shutdown_resident : resident -> unit
(** Stop and join the workers; idempotent. Further rounds raise. *)

val with_resident : ?jobs:int -> (resident -> 'a) -> 'a
(** [create_resident] / run [f] / [shutdown_resident], exception-safe. *)

val map_seeded :
  ?jobs:int -> seed:int -> count:int -> (index:int -> rng:Ftr_prng.Rng.t -> 'a) -> 'a array
(** {!map} with each job handed its {!Seed.rng_for}-derived generator.
    Under [FTR_CHECK=1] asserts that no job received the sweep's root
    generator (physically or as an identical stream) — the regression the
    derivation scheme exists to prevent. *)
