(** A pool of OCaml 5 domains with chunked work distribution and a
    deterministic contract: {!map} returns results in job-index order, so
    output never depends on how jobs landed on workers.

    Parallel execution only changes {e wall-clock}, never results,
    provided each job is a pure function of its index (and of a generator
    derived from the index — see {!Seed}). Worker domains run with
    {!Ftr_obs} telemetry suppressed ([Ftr_obs.Flag.suppress_in_domain]):
    the registries are not domain-safe, so the coordinator records the
    pool's own metrics ([exec_jobs_completed_total],
    [exec_pool_workers], [exec_queue_depth], the per-worker
    [exec_worker_busy_seconds] histogram and the [exec.pool.run] span)
    on the workers' behalf. Consequence: per-hop metrics recorded inside
    jobs only appear in sequential runs — the determinism contract covers
    merged results, not telemetry (docs/PARALLELISM.md). *)

val sequential_forced : unit -> bool
(** [true] when the environment demands the sequential fallback
    ([FTR_EXEC_SEQ] set to [1], [true], [on] or [yes]). Read per call, so
    tests can flip it with [Unix.putenv]. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: 1 when
    {!sequential_forced} or when [Domain.recommended_domain_count ()] is
    1, else the recommended domain count. *)

val map : ?jobs:int -> count:int -> (int -> 'a) -> 'a array
(** [map ~count f] evaluates [f i] for every [i] in [0, count) and
    returns [[| f 0; ...; f (count-1) |]]. With [jobs <= 1] (or inside a
    worker domain, or [count <= 1]) everything runs on the calling
    domain; otherwise [min jobs count] worker domains pull chunks of
    indices from a shared atomic cursor. A job's exception is re-raised
    on the caller once all workers have joined.
    @raise Invalid_argument if [count < 0] or [jobs < 1]. *)

val map_seeded :
  ?jobs:int -> seed:int -> count:int -> (index:int -> rng:Ftr_prng.Rng.t -> 'a) -> 'a array
(** {!map} with each job handed its {!Seed.rng_for}-derived generator.
    Under [FTR_CHECK=1] asserts that no job received the sweep's root
    generator (physically or as an identical stream) — the regression the
    derivation scheme exists to prevent. *)
