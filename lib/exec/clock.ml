(* The one place in lib/exec allowed to read the wall clock (ftr_lint R1
   allowlists this file); everything else calls [now]. *)

let default () = Unix.gettimeofday ()

let clock = ref default

let set f = clock := f

let reset () = clock := default

(* The injection point is written by [set]/[reset] before the pool spawns
   domains; workers only dereference. ftr-lint: disable T1 *)
let now () = !clock ()
