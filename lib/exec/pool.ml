module Rng = Ftr_prng.Rng
module Debug = Ftr_debug.Debug
module Flag = Ftr_obs.Flag
module Metrics = Ftr_obs.Metrics
module Span = Ftr_obs.Span

let sequential_forced () =
  match Sys.getenv_opt "FTR_EXEC_SEQ" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

let default_jobs () =
  if sequential_forced () then 1 else max 1 (Domain.recommended_domain_count ())

(* Nested parallelism guard: a job that itself calls [map] must not spawn
   a second generation of domains under the first (the pool would
   oversubscribe quadratically). Worker domains mark themselves and any
   [map] they run degrades to the sequential path. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)

let run_sequential ~count f = Array.init count f

(* Chunk size: enough chunks per worker (4x) that an uneven job mix still
   balances, big enough that the atomic cursor is not contended. The
   results are chunking-invariant either way; only wall-clock cares. *)
let chunk_size ~count ~jobs = max 1 (count / (jobs * 4))

let run_parallel ~jobs ~count f =
  let results = Array.make count None in
  let errors = Array.make jobs None in
  let busy = Array.make jobs 0.0 in
  let next = Atomic.make 0 in
  let chunk = chunk_size ~count ~jobs in
  let worker w () =
    Domain.DLS.set in_worker_key true;
    (* The obs registries are not domain-safe; the coordinator reports for
       the pool (see pool.mli). *)
    Flag.suppress_in_domain true;
    let t0 = Clock.now () in
    (try
       let continue = ref true in
       while !continue do
         let lo = Atomic.fetch_and_add next chunk in
         if lo >= count then continue := false
         else
           for i = lo to min (lo + chunk) count - 1 do
             results.(i) <- Some (f i)
           done
       done
     with e -> errors.(w) <- Some e);
    busy.(w) <- Clock.now () -. t0
  in
  if Flag.enabled () then Metrics.set_gauge "exec_queue_depth" (float_of_int count);
  let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
  Array.iter Domain.join domains;
  if Flag.enabled () then begin
    Metrics.set_gauge "exec_queue_depth" 0.0;
    Metrics.set_gauge "exec_pool_workers" (float_of_int jobs);
    Array.iteri
      (fun w t ->
        Metrics.observe ~labels:[ ("worker", string_of_int w) ] "exec_worker_busy_seconds" t)
      busy
  end;
  Array.iter (function Some e -> raise e | None -> ()) errors;
  Array.map
    (function
      | Some v -> v
      | None ->
          (* Unreachable: every chunk was consumed and no worker erred. *)
          assert false)
    results

let map ?jobs ~count f =
  if count < 0 then invalid_arg "Pool.map: count must be non-negative";
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let completed r =
    if Flag.enabled () then Metrics.incr_by "exec_jobs_completed_total" count;
    r
  in
  if jobs = 1 || count <= 1 || Domain.DLS.get in_worker_key then
    completed (run_sequential ~count f)
  else
    Span.time "exec.pool.run" (fun () -> completed (run_parallel ~jobs:(min jobs count) ~count f))

(* Two generators share a stream iff their next draws agree; copies probe
   that without advancing either. One draw is no proof of equality in
   general, but the root and every derived stream differ in their first
   word with overwhelming probability, which is what the regression guard
   needs. *)
let same_stream a b = a == b || Rng.bits64 (Rng.copy a) = Rng.bits64 (Rng.copy b)

(* ------------------------------------------------------------------ *)
(* Resident pool: parked workers for round-based actor loops           *)
(* ------------------------------------------------------------------ *)

(* [map] spawns fresh domains on every call, which is fine for a sweep
   that runs seconds per call but dominates the cost of a serving loop
   that fans out thousands of sub-millisecond rounds. A [resident] keeps
   the worker domains parked on a condition variable between rounds: the
   coordinator publishes (task, count) under the mutex, bumps a
   generation counter, and waits until every worker has drained the
   shared cursor and checked back in. The mutex hand-offs give the
   happens-before edges in both directions, so effects written by
   workers during a round are visible to the coordinator when [run]
   returns — the same guarantee [Domain.join] gives [map].

   Rounds are effects-only ([f : int -> unit]); results travel through
   caller-owned slots where index [i] is written only by the job for
   [i], so the deterministic-output contract is the caller's chunking
   discipline, not this scheduler's. Like [map], the work distribution
   (which worker runs which index) is unspecified; only effects keyed by
   index are meaningful. *)

type resident = {
  r_jobs : int; (* parked worker domains; 0 = everything runs inline *)
  mutable r_task : int -> unit;
  mutable r_count : int;
  r_cursor : int Atomic.t;
  r_mutex : Mutex.t;
  r_rouse : Condition.t; (* workers wait here for a generation bump *)
  r_settle : Condition.t; (* the coordinator waits here for check-ins *)
  mutable r_generation : int;
  mutable r_checked_in : int;
  mutable r_stop : bool;
  mutable r_error : exn option;
  mutable r_domains : unit Domain.t array;
  mutable r_rounds : int;
}

let resident_jobs r = max 1 r.r_jobs

let resident_rounds r = r.r_rounds

let resident_worker r () =
  Domain.DLS.set in_worker_key true;
  (* Same policy as [map]: the obs registries are not domain-safe, so
     the coordinator reports on the workers' behalf. *)
  Flag.suppress_in_domain true;
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock r.r_mutex;
    while (not r.r_stop) && r.r_generation = !seen do
      Condition.wait r.r_rouse r.r_mutex
    done;
    if r.r_stop then begin
      running := false;
      Mutex.unlock r.r_mutex
    end
    else begin
      seen := r.r_generation;
      Mutex.unlock r.r_mutex;
      (try
         let chunk = max 1 (r.r_count / (r.r_jobs * 4)) in
         let pulling = ref true in
         while !pulling do
           let lo = Atomic.fetch_and_add r.r_cursor chunk in
           if lo >= r.r_count then pulling := false
           else
             for i = lo to min (lo + chunk) r.r_count - 1 do
               r.r_task i
             done
         done
       with e -> (
         Mutex.lock r.r_mutex;
         (match r.r_error with None -> r.r_error <- Some e | Some _ -> ());
         Mutex.unlock r.r_mutex));
      Mutex.lock r.r_mutex;
      r.r_checked_in <- r.r_checked_in + 1;
      Condition.broadcast r.r_settle;
      Mutex.unlock r.r_mutex
    end
  done

let create_resident ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create_resident: jobs must be >= 1";
  (* The sequential conditions [map] re-checks per call are captured
     once at creation: a resident's worker count is part of its
     identity (documented in pool.mli). *)
  let jobs = if sequential_forced () || Domain.DLS.get in_worker_key then 1 else jobs in
  let r =
    {
      r_jobs = (if jobs <= 1 then 0 else jobs);
      r_task = ignore;
      r_count = 0;
      r_cursor = Atomic.make 0;
      r_mutex = Mutex.create ();
      r_rouse = Condition.create ();
      r_settle = Condition.create ();
      r_generation = 0;
      r_checked_in = 0;
      r_stop = false;
      r_error = None;
      r_domains = [||];
      r_rounds = 0;
    }
  in
  if r.r_jobs > 0 then begin
    r.r_domains <- Array.init r.r_jobs (fun _ -> Domain.spawn (resident_worker r));
    if Flag.enabled () then Metrics.set_gauge "exec_resident_workers" (float_of_int r.r_jobs)
  end;
  r

let run_resident r ~count f =
  if count < 0 then invalid_arg "Pool.run_resident: count must be non-negative";
  if r.r_stop then invalid_arg "Pool.run_resident: pool already shut down";
  r.r_rounds <- r.r_rounds + 1;
  if r.r_jobs = 0 || count <= 1 then
    for i = 0 to count - 1 do
      f i
    done
  else begin
    Mutex.lock r.r_mutex;
    r.r_task <- f;
    r.r_count <- count;
    Atomic.set r.r_cursor 0;
    r.r_checked_in <- 0;
    r.r_generation <- r.r_generation + 1;
    Condition.broadcast r.r_rouse;
    while r.r_checked_in < r.r_jobs do
      Condition.wait r.r_settle r.r_mutex
    done;
    r.r_task <- ignore;
    let err = r.r_error in
    r.r_error <- None;
    Mutex.unlock r.r_mutex;
    match err with Some e -> raise e | None -> ()
  end;
  if Flag.enabled () then Metrics.incr_by "exec_jobs_completed_total" count

let shutdown_resident r =
  if not r.r_stop then begin
    Mutex.lock r.r_mutex;
    r.r_stop <- true;
    Condition.broadcast r.r_rouse;
    Mutex.unlock r.r_mutex;
    Array.iter Domain.join r.r_domains;
    r.r_domains <- [||];
    if Flag.enabled () then begin
      Metrics.set_gauge "exec_resident_workers" 0.0;
      Metrics.incr_by "exec_resident_rounds_total" r.r_rounds
    end
  end

let with_resident ?jobs f =
  let r = create_resident ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown_resident r) (fun () -> f r)

let map_seeded ?jobs ~seed ~count f =
  let rngs = Array.init count (fun index -> Seed.rng_for ~seed ~index) in
  Debug.check
    (fun () ->
      let root = Seed.root ~seed in
      not (Array.exists (fun rng -> same_stream rng root) rngs))
    "Pool.map_seeded: a job received the root generator (seed %d)" seed;
  map ?jobs ~count (fun i -> f ~index:i ~rng:rngs.(i))
