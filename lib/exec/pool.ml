module Rng = Ftr_prng.Rng
module Debug = Ftr_debug.Debug
module Flag = Ftr_obs.Flag
module Metrics = Ftr_obs.Metrics
module Span = Ftr_obs.Span

let sequential_forced () =
  match Sys.getenv_opt "FTR_EXEC_SEQ" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

let default_jobs () =
  if sequential_forced () then 1 else max 1 (Domain.recommended_domain_count ())

(* Nested parallelism guard: a job that itself calls [map] must not spawn
   a second generation of domains under the first (the pool would
   oversubscribe quadratically). Worker domains mark themselves and any
   [map] they run degrades to the sequential path. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)

let run_sequential ~count f = Array.init count f

(* Chunk size: enough chunks per worker (4x) that an uneven job mix still
   balances, big enough that the atomic cursor is not contended. The
   results are chunking-invariant either way; only wall-clock cares. *)
let chunk_size ~count ~jobs = max 1 (count / (jobs * 4))

let run_parallel ~jobs ~count f =
  let results = Array.make count None in
  let errors = Array.make jobs None in
  let busy = Array.make jobs 0.0 in
  let next = Atomic.make 0 in
  let chunk = chunk_size ~count ~jobs in
  let worker w () =
    Domain.DLS.set in_worker_key true;
    (* The obs registries are not domain-safe; the coordinator reports for
       the pool (see pool.mli). *)
    Flag.suppress_in_domain true;
    let t0 = Clock.now () in
    (try
       let continue = ref true in
       while !continue do
         let lo = Atomic.fetch_and_add next chunk in
         if lo >= count then continue := false
         else
           for i = lo to min (lo + chunk) count - 1 do
             results.(i) <- Some (f i)
           done
       done
     with e -> errors.(w) <- Some e);
    busy.(w) <- Clock.now () -. t0
  in
  if Flag.enabled () then Metrics.set_gauge "exec_queue_depth" (float_of_int count);
  let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
  Array.iter Domain.join domains;
  if Flag.enabled () then begin
    Metrics.set_gauge "exec_queue_depth" 0.0;
    Metrics.set_gauge "exec_pool_workers" (float_of_int jobs);
    Array.iteri
      (fun w t ->
        Metrics.observe ~labels:[ ("worker", string_of_int w) ] "exec_worker_busy_seconds" t)
      busy
  end;
  Array.iter (function Some e -> raise e | None -> ()) errors;
  Array.map
    (function
      | Some v -> v
      | None ->
          (* Unreachable: every chunk was consumed and no worker erred. *)
          assert false)
    results

let map ?jobs ~count f =
  if count < 0 then invalid_arg "Pool.map: count must be non-negative";
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let completed r =
    if Flag.enabled () then Metrics.incr_by "exec_jobs_completed_total" count;
    r
  in
  if jobs = 1 || count <= 1 || Domain.DLS.get in_worker_key then
    completed (run_sequential ~count f)
  else
    Span.time "exec.pool.run" (fun () -> completed (run_parallel ~jobs:(min jobs count) ~count f))

(* Two generators share a stream iff their next draws agree; copies probe
   that without advancing either. One draw is no proof of equality in
   general, but the root and every derived stream differ in their first
   word with overwhelming probability, which is what the regression guard
   needs. *)
let same_stream a b = a == b || Rng.bits64 (Rng.copy a) = Rng.bits64 (Rng.copy b)

let map_seeded ?jobs ~seed ~count f =
  let rngs = Array.init count (fun index -> Seed.rng_for ~seed ~index) in
  Debug.check
    (fun () ->
      let root = Seed.root ~seed in
      not (Array.exists (fun rng -> same_stream rng root) rngs))
    "Pool.map_seeded: a job received the root generator (seed %d)" seed;
  map ?jobs ~count (fun i -> f ~index:i ~rng:rngs.(i))
