(** JSONL journal of completed sweep jobs, so an interrupted sweep can
    resume by skipping what is already done.

    Format (one JSON object per line, written via {!Ftr_obs.Json}):
    - line 1, the header: [{"kind":"sweep","seed":S,"jobs_total":N}] —
      the sweep's identity; resuming against a journal whose header
      disagrees with the live sweep is refused rather than silently
      merging incompatible results;
    - every other line: [{"job":I,"result":R}] with [0 <= I < N] and [R]
      the job's encoded result.

    A journal killed mid-write ends in a truncated line; {!open_} ignores
    any line that does not parse (and any out-of-range or duplicate
    index, keeping the first), so resume degrades to re-running at most
    the one job whose record was cut. Appends are flushed per record:
    after [append] returns, that job survives a kill. *)

type t

val open_ : ?fresh:bool -> path:string -> seed:int -> count:int -> unit -> t
(** Open (creating parent directories as needed) the journal at [path]
    for a sweep of [count] jobs rooted at [seed]. An existing journal is
    read and its completed jobs exposed via {!completed}; a missing or
    empty one is started with a fresh header. [~fresh:true] truncates any
    existing journal first.
    @raise Failure if an existing header names a different seed or job
    count. *)

val completed : t -> (int * Ftr_obs.Json.t) list
(** Jobs already journalled, in increasing index order, as read at
    {!open_} time (appends after opening are not re-read). *)

val append : t -> index:int -> Ftr_obs.Json.t -> unit
(** Journal one completed job and flush.
    @raise Invalid_argument if [index] is outside [0, count). *)

val close : t -> unit
(** Close the journal's channel. Idempotent. *)
