(** Injectable wall-clock seam for the execution subsystem, mirroring
    [Ftr_obs.Span.set_clock]: the pool's worker busy-time accounting reads
    the clock through this ref so tests can drive deterministic durations
    and the static analyzer can confine raw [Unix.gettimeofday] to one
    allowlisted definition (rule R1, docs/LINTING.md).

    The clock only feeds telemetry (worker busy seconds); simulation
    results never depend on it, which is exactly the property R1 guards:
    any *new* wall-clock read must come through here, where its influence
    is visibly limited to observability. *)

val now : unit -> float
(** Current time in seconds through the injected clock. The default is
    [Unix.gettimeofday], the finest-grained clock the stdlib toolchain
    offers here. *)

val set : (unit -> float) -> unit
(** Replace the clock. The injected function may be called from worker
    domains concurrently; injecting while a pool is running is a race and
    is only meant for tests. *)

val reset : unit -> unit
(** Restore the default wall clock. *)
