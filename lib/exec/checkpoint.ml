module Json = Ftr_obs.Json

type t = {
  count : int;
  mutable oc : out_channel option;
  completed : (int * Json.t) list; (* increasing index order *)
}

let header ~seed ~count =
  Json.Obj [ ("kind", Json.String "sweep"); ("seed", Json.Int seed); ("jobs_total", Json.Int count) ]

(* Parse an existing journal. Unparseable lines are skipped (a kill mid-
   append truncates exactly one trailing line); so are out-of-range and
   duplicate indices (first record wins — it was flushed first). *)
let read_existing ~path ~seed ~count =
  if not (Sys.file_exists path) then None
  else begin
    let lines = In_channel.with_open_text path In_channel.input_lines in
    let lines = List.filter (fun l -> not (String.equal (String.trim l) "")) lines in
    match lines with
    | [] -> None
    | first :: rest ->
        (match Json.parse_opt first with
        | Some h
          when (match Json.member "kind" h with
               | Some (Json.String k) -> String.equal k "sweep"
               | Some _ | None -> false) ->
            let check field expected =
              match Json.member field h with
              | Some (Json.Int v) when v = expected -> ()
              | got ->
                  failwith
                    (Printf.sprintf
                       "Checkpoint: %s was journalled for %s=%s, this sweep has %s=%d \
                        (delete %s or fix the grid/seed flags)"
                       path field
                       (match got with Some (Json.Int v) -> string_of_int v | _ -> "?")
                       field expected path)
            in
            check "seed" seed;
            check "jobs_total" count
        | Some _ | None ->
            failwith (Printf.sprintf "Checkpoint: %s does not start with a sweep header" path));
        let seen = Hashtbl.create 64 in
        List.iter
          (fun line ->
            match Json.parse_opt line with
            | Some j -> (
                match (Json.member "job" j, Json.member "result" j) with
                | Some (Json.Int i), Some r
                  when i >= 0 && i < count && not (Hashtbl.mem seen i) ->
                    Hashtbl.replace seen i r
                | _ -> ())
            | None -> ())
          rest;
        let entries =
          Hashtbl.fold (fun i r acc -> (i, r) :: acc) seen []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        Some entries
  end

let write_line oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc

let open_ ?(fresh = false) ~path ~seed ~count () =
  let dir = Filename.dirname path in
  if not (String.equal dir "" || String.equal dir ".") then Ftr_stats.Csv.mkdir_p dir;
  let existing = if fresh then None else read_existing ~path ~seed ~count in
  match existing with
  | Some completed ->
      let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
      { count; oc = Some oc; completed }
  | None ->
      let oc = open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 path in
      write_line oc (header ~seed ~count);
      { count; oc = Some oc; completed = [] }

let completed t = t.completed

let append t ~index result =
  if index < 0 || index >= t.count then
    invalid_arg (Printf.sprintf "Checkpoint.append: job %d outside [0,%d)" index t.count);
  match t.oc with
  | None -> invalid_arg "Checkpoint.append: journal is closed"
  | Some oc -> write_line oc (Json.Obj [ ("job", Json.Int index); ("result", result) ])

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      close_out oc;
      t.oc <- None
