module Rng = Ftr_prng.Rng

type ('p, 'r) t = { grid : 'p array; job : index:int -> rng:Rng.t -> 'p -> 'r }

let create ~run params = { grid = Array.of_list params; job = run }

let size t = Array.length t.grid

let params t = t.grid

let grid2 xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let grid3 xs ys zs =
  List.concat_map (fun x -> List.concat_map (fun y -> List.map (fun z -> (x, y, z)) zs) ys) xs

let grid4 xs ys zs ws =
  List.concat_map
    (fun x ->
      List.concat_map
        (fun y -> List.concat_map (fun z -> List.map (fun w -> (x, y, z, w)) ws) zs)
        ys)
    xs

let run ?jobs ~seed t =
  Pool.map_seeded ?jobs ~seed ~count:(size t) (fun ~index ~rng ->
      t.job ~index ~rng t.grid.(index))

let run_checkpointed ?jobs ?(wave = 32) ?fresh ~path ~seed ~encode ~decode t =
  let wave = max 1 wave in
  let count = size t in
  let journal = Checkpoint.open_ ?fresh ~path ~seed ~count () in
  Fun.protect ~finally:(fun () -> Checkpoint.close journal) @@ fun () ->
  let results = Array.make count None in
  List.iter
    (fun (index, j) ->
      match decode j with Some r -> results.(index) <- Some r | None -> ())
    (Checkpoint.completed journal);
  let pending =
    Array.of_list (List.filter (fun i -> Option.is_none results.(i)) (List.init count Fun.id))
  in
  (* Waves bound how much work a kill can lose; within a wave the pool
     already merges in index order, so journal records stay sorted. *)
  let n_pending = Array.length pending in
  let offset = ref 0 in
  while !offset < n_pending do
    let batch = Array.sub pending !offset (min wave (n_pending - !offset)) in
    let fresh_results =
      Pool.map ?jobs ~count:(Array.length batch) (fun k ->
          let index = batch.(k) in
          t.job ~index ~rng:(Seed.rng_for ~seed ~index) t.grid.(index))
    in
    Array.iteri
      (fun k r ->
        let index = batch.(k) in
        Checkpoint.append journal ~index (encode r);
        results.(index) <- Some r)
      fresh_results;
    offset := !offset + Array.length batch
  done;
  Array.map (function Some r -> r | None -> assert false) results
