module Splitmix64 = Ftr_prng.Splitmix64
module Rng = Ftr_prng.Rng

(* Weyl increment of SplitMix64 — multiplying the job index by it spreads
   consecutive indices across the whole 64-bit space before the SplitMix
   finaliser mixes them. *)
let golden = 0x9E3779B97F4A7C15L

(* One fixed draw from a SplitMix64 stream seeded by [seed]: the sweep's
   stream base. Everything a sweep randomises descends from this value. *)
let base seed = Splitmix64.next_int64 (Splitmix64.of_int seed)

let rng_for ~seed ~index =
  if index < 0 then invalid_arg "Seed.rng_for: index must be non-negative";
  (* [index + 1] keeps job 0 off the root's own derivation path: the root
     uses [base] directly, job k uses [base XOR (k+1)*golden] re-mixed. *)
  let stream = Int64.logxor (base seed) (Int64.mul (Int64.of_int (index + 1)) golden) in
  Rng.create ~seed:(Splitmix64.next_int64 (Splitmix64.create stream)) ()

let root ~seed = Rng.create ~seed:(base seed) ()
