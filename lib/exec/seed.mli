(** Per-job generator derivation — the only sanctioned way a sweep job
    obtains randomness.

    {!Ftr_prng.Rng.t} is mutable state with no internal synchronisation:
    sharing one generator between domains is a data race, and handing the
    root generator to any job would make results depend on scheduling.
    Instead every job's generator is a pure function of the root [seed]
    and the job's [index] — never of worker identity or completion order —
    so a sweep's merged output is invariant to the worker count
    (docs/PARALLELISM.md). *)

val rng_for : seed:int -> index:int -> Ftr_prng.Rng.t
(** [rng_for ~seed ~index] is the generator for job [index] of a sweep
    rooted at [seed]. Pure: calling it twice yields two generators with
    identical streams. Distinct indices yield decorrelated streams
    (SplitMix64 of the root stream base xored with a golden-ratio
    multiple of [index + 1], then fed to xoshiro seeding).
    @raise Invalid_argument if [index < 0]. *)

val root : seed:int -> Ftr_prng.Rng.t
(** The root generator a sequential driver rooted at [seed] would use.
    Exposed so {!Pool}'s [FTR_CHECK] assertion can verify no job ever
    receives it; jobs themselves must only use {!rng_for}. *)
