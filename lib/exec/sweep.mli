(** The task layer: expand a parameter grid into independent jobs, run
    them on the {!Pool}, and merge results in job order.

    The determinism contract (docs/PARALLELISM.md): a job's result is a
    function of the sweep [seed] and the job's index only — its generator
    comes from {!Seed.rng_for}, never from worker identity — and results
    are returned in index order, so the merged output is byte-identical
    for any worker count, including the sequential fallback. *)

type ('p, 'r) t
(** A sweep: an ordered parameter array plus the per-job function. *)

val create : run:(index:int -> rng:Ftr_prng.Rng.t -> 'p -> 'r) -> 'p list -> ('p, 'r) t
(** [create ~run params] — job [i] computes [run ~index:i ~rng params_i]
    with [rng = Seed.rng_for ~seed ~index:i]. *)

val size : ('p, 'r) t -> int

val params : ('p, 'r) t -> 'p array
(** The expanded grid, in job order (the array is the sweep's own). *)

val grid2 : 'a list -> 'b list -> ('a * 'b) list
(** Cartesian product in row-major order: the first axis varies
    slowest. *)

val grid3 : 'a list -> 'b list -> 'c list -> ('a * 'b * 'c) list

val grid4 : 'a list -> 'b list -> 'c list -> 'd list -> ('a * 'b * 'c * 'd) list

val run : ?jobs:int -> seed:int -> ('p, 'r) t -> 'r array
(** Run every job and return results in job order. [?jobs] defaults to
    {!Pool.default_jobs} and never changes the results. *)

val run_checkpointed :
  ?jobs:int ->
  ?wave:int ->
  ?fresh:bool ->
  path:string ->
  seed:int ->
  encode:('r -> Ftr_obs.Json.t) ->
  decode:(Ftr_obs.Json.t -> 'r option) ->
  ('p, 'r) t ->
  'r array
(** Like {!run}, journalling completed jobs to the {!Checkpoint} at
    [path]: jobs already journalled are decoded instead of re-run
    (a record [decode] rejects is re-run), and fresh results are
    journalled in waves of [wave] jobs (default 32) so an interrupted
    sweep loses at most one wave. The merged output is byte-identical to
    an uninterrupted {!run} as long as [decode] inverts [encode]
    exactly — encode floats by bits, not by decimal rendering.
    [~fresh:true] discards any existing journal.
    @raise Failure on a journal header mismatch (see {!Checkpoint}). *)
