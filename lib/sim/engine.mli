(** Sequential discrete-event simulation engine.

    Events are closures scheduled at virtual times; same-time events run in
    scheduling order so a run is a deterministic function of its inputs and
    seed. The dynamic protocol ([Ftr_p2p]) runs join/leave/lookup traffic on
    top of this engine. *)

type t
(** An engine: event queue plus virtual clock. *)

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t
(** Fresh engine at time 0 with an empty queue. *)

val now : t -> float
(** Current virtual time. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Schedule an action at an absolute virtual time.
    @raise Invalid_argument if the time is NaN or in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** Schedule an action [delay] after the current time.
    @raise Invalid_argument on a negative delay. *)

val cancel : t -> handle -> unit
(** Cancel a scheduled event (no-op if it already ran). *)

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : ?max_events:int -> ?until:float -> t -> unit
(** Run until the queue empties, [max_events] events have executed, or the
    next event lies beyond [until]. *)

val pending_events : t -> int
(** Events scheduled and not yet executed or cancelled. *)

val executed_events : t -> int
(** Total events executed so far. *)

val drain : t -> unit
(** Discard all pending events. *)

val pending_slots : t -> (float * int) array
(** [(time, seq)] of every queued event in internal heap-array order
    (cancelled-but-not-yet-popped events included), so the sanitizer can
    re-check heap order and clock monotonicity from outside. *)
