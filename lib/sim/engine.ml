type event = {
  time : float;
  seq : int; (* tie-breaker: FIFO among same-time events, for determinism *)
  id : int;
  action : unit -> unit;
}

type t = {
  heap : event Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable now : float;
  mutable next_seq : int;
  mutable next_id : int;
  mutable executed : int;
}

type handle = int

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    heap = Heap.create ~compare:compare_events;
    cancelled = Hashtbl.create 64;
    now = 0.0;
    next_seq = 0;
    next_id = 0;
    executed = 0;
  }

let now t = t.now

let executed_events t = t.executed

let pending_events t = Heap.length t.heap - Hashtbl.length t.cancelled

let schedule_at t ~time action =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { time; seq; id; action };
  id

let schedule_after t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.now +. delay) action

(* Lazy deletion: cancelled ids are skipped (and forgotten) at pop time. *)
let cancel t handle = Hashtbl.replace t.cancelled handle ()

let rec step t =
  match Heap.pop t.heap with
  | None -> false
  | Some ev ->
      if Hashtbl.mem t.cancelled ev.id then begin
        Hashtbl.remove t.cancelled ev.id;
        step t
      end
      else begin
        if Ftr_debug.Debug.enabled () && ev.time < t.now then
          Ftr_debug.Debug.failf
            "Engine: event #%d at time %g popped with the clock already at %g" ev.id ev.time
            t.now;
        t.now <- ev.time;
        t.executed <- t.executed + 1;
        (* Telemetry: dispatch count, queue depth and a (sampled) per-event
           record; the flight recorder additionally learns the simulation
           clock so trace steps recorded inside [ev.action] carry sim-time
           stamps (the Chrome export's timeline). One bool load when
           FTR_OBS is off. *)
        if Ftr_obs.Flag.enabled () then begin
          Ftr_obs.Tracing.note_time ev.time;
          Ftr_obs.Metrics.incr "engine_events_total";
          Ftr_obs.Metrics.set_gauge "engine_queue_depth" (float_of_int (pending_events t));
          Ftr_obs.Events.emit ~time:ev.time ~kind:"engine.event"
            [ ("id", Ftr_obs.Json.Int ev.id); ("seq", Ftr_obs.Json.Int ev.seq) ]
        end;
        ev.action ();
        true
      end

let run ?max_events ?until t =
  let budget = match max_events with None -> max_int | Some m -> m in
  let horizon = match until with None -> infinity | Some h -> h in
  let rec loop remaining =
    if remaining = 0 then ()
    else
      match Heap.peek t.heap with
      | None -> ()
      | Some ev ->
          if ev.time > horizon then ()
          else if step t then loop (remaining - 1)
          else ()
  in
  if Ftr_obs.Flag.enabled () then Ftr_obs.Span.time "engine.run" (fun () -> loop budget)
  else loop budget

let drain t =
  Heap.clear t.heap;
  Hashtbl.reset t.cancelled

let pending_slots t =
  Array.init (Heap.length t.heap) (fun i ->
      let ev = Heap.slot t.heap i in
      (ev.time, ev.seq))
