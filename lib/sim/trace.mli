(** Bounded in-memory trace of simulation events, timestamped in virtual
    time. Cheap enough to leave on in big runs; tests assert on its
    contents. *)

type level = Debug | Info | Warn

type entry = { time : float; level : level; message : string }

type t

val create : ?capacity:int -> ?min_level:level -> unit -> t
(** Trace buffer holding at most [capacity] entries (older entries are
    discarded). @raise Invalid_argument if [capacity < 1]. *)

val set_min_level : t -> level -> unit
(** Entries below this level are ignored. *)

val record : t -> time:float -> level:level -> string -> unit
(** Append one entry. *)

val debugf : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!Debug} entry. *)

val infof : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!Info} entry. *)

val warnf : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!Warn} entry. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val length : t -> int
(** Number of retained entries. *)

val dropped : t -> int
(** Total entries lost: below [min_level] plus evicted at capacity. *)

val dropped_below_level : t -> int
(** Entries discarded because their level was below [min_level]. *)

val dropped_by_eviction : t -> int
(** Entries discarded when the buffer exceeded its capacity. *)

val entry_to_json : entry -> Ftr_obs.Json.t
(** One entry as a JSON object [{time; level; message}]. *)

val to_json : t -> Ftr_obs.Json.t
(** The whole trace — capacity, retention, drop counts and retained
    entries — as one JSON object, for joining the JSONL event stream. *)

val emit_events : ?kind:string -> t -> unit
(** Replay the retained entries into [Ftr_obs.Events] (default kind
    ["trace"]); a no-op when telemetry is off or no sink is installed. *)

val dump : Format.formatter -> t -> unit
(** Print all retained entries, one per line. *)
