(* ftr-lint: hot -- event-loop heap, every sim event passes through here *)

(* Binary min-heap keyed by a caller-supplied comparison. Array-backed with
   amortised growth; the hot path of the event loop. *)

type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable length : int;
}

let create ~compare = { compare; data = [||]; length = 0 }

let length t = t.length

let is_empty t = t.length = 0

let grow t item =
  let capacity = Array.length t.data in
  if t.length = capacity then begin
    let next = max 16 (2 * capacity) in
    let data = Array.make next item in
    Array.blit t.data 0 data 0 t.length;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.compare t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  if left < t.length then begin
    let right = left + 1 in
    let smallest = if right < t.length && t.compare t.data.(right) t.data.(left) < 0 then right else left in
    if t.compare t.data.(smallest) t.data.(i) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(smallest);
      t.data.(smallest) <- tmp;
      sift_down t smallest
    end
  end

let slot t i =
  if i < 0 || i >= t.length then invalid_arg "Heap.slot: index out of range";
  t.data.(i)

let compare_items t = t.compare

(* Sanitizer hook: full heap-property sweep, run after every mutation when
   FTR_CHECK is on. O(n), but only ever paid in debug mode. *)
let debug_validate t =
  for i = 1 to t.length - 1 do
    let parent = (i - 1) / 2 in
    if t.compare t.data.(parent) t.data.(i) > 0 then
      (* Sanitizer-only sweep (FTR_CHECK): the format literal allocation
         never runs on the hot path. ftr-lint: disable T4 *)
      Ftr_debug.Debug.failf "Heap: order violated between slot %d and its parent %d" i parent
  done

let push t item =
  grow t item;
  t.data.(t.length) <- item;
  t.length <- t.length + 1;
  sift_up t (t.length - 1);
  (* Telemetry: push volume and the queue's high-water mark. *)
  if Ftr_obs.Flag.enabled () then begin
    Ftr_obs.Metrics.incr "heap_pushes_total";
    let hw = Ftr_obs.Metrics.gauge_value "heap_high_water" in
    if Float.is_nan hw || float_of_int t.length > hw then
      Ftr_obs.Metrics.set_gauge "heap_high_water" (float_of_int t.length)
  end;
  if Ftr_debug.Debug.enabled () then debug_validate t

let peek t = if t.length = 0 then None else Some t.data.(0)

let pop t =
  if t.length = 0 then None
  else begin
    let top = t.data.(0) in
    t.length <- t.length - 1;
    if t.length > 0 then begin
      t.data.(0) <- t.data.(t.length);
      sift_down t 0
    end;
    if Ftr_debug.Debug.enabled () then debug_validate t;
    Some top
  end

let clear t = t.length <- 0

let to_sorted_list t =
  if t.length = 0 then []
  else begin
    let copy = { compare = t.compare; data = Array.sub t.data 0 t.length; length = t.length } in
    let rec drain acc =
      match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
    in
    drain []
  end
