(** Array-backed binary min-heap, the event queue's core. *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [compare] (smallest first). *)

val push : 'a t -> 'a -> unit
(** Insert; O(log n). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element; O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val length : 'a t -> int
(** Number of elements. *)

val is_empty : 'a t -> bool
(** Whether the heap holds no elements. *)

val clear : 'a t -> unit
(** Drop all elements. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive sorted drain (for tests and debugging). *)

(** {1 Introspection for the invariant sanitizer} *)

val slot : 'a t -> int -> 'a
(** The element stored at array slot [i] of the implicit binary tree,
    [0 <= i < length]. Slot 0 is the minimum; the children of slot [i]
    are [2i+1] and [2i+2]. @raise Invalid_argument out of range. *)

val compare_items : 'a t -> 'a -> 'a -> int
(** The heap's own ordering, so external validators can re-check the
    heap property without knowing the element type's comparison. *)
