type level = Debug | Info | Warn

type entry = { time : float; level : level; message : string }

type t = {
  mutable entries : entry list; (* most recent first *)
  mutable count : int;
  capacity : int;
  mutable min_level : level;
  mutable dropped_below_level : int;
  mutable dropped_by_eviction : int;
}

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let create ?(capacity = 10_000) ?(min_level = Info) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    entries = [];
    count = 0;
    capacity;
    min_level;
    dropped_below_level = 0;
    dropped_by_eviction = 0;
  }

let set_min_level t level = t.min_level <- level

let record t ~time ~level message =
  if level_rank level >= level_rank t.min_level then begin
    t.entries <- { time; level; message } :: t.entries;
    t.count <- t.count + 1;
    if t.count > t.capacity then begin
      (* Drop the oldest half; amortised O(1) per record. *)
      let keep = t.capacity / 2 in
      let rec take n acc = function
        | [] -> List.rev acc
        | x :: rest -> if n = 0 then List.rev acc else take (n - 1) (x :: acc) rest
      in
      t.entries <- take keep [] t.entries;
      t.dropped_by_eviction <- t.dropped_by_eviction + (t.count - keep);
      t.count <- keep
    end
  end
  else t.dropped_below_level <- t.dropped_below_level + 1

let debugf t ~time fmt = Format.kasprintf (record t ~time ~level:Debug) fmt

let infof t ~time fmt = Format.kasprintf (record t ~time ~level:Info) fmt

let warnf t ~time fmt = Format.kasprintf (record t ~time ~level:Warn) fmt

let entries t = List.rev t.entries

let length t = t.count

let dropped_below_level t = t.dropped_below_level

let dropped_by_eviction t = t.dropped_by_eviction

let dropped t = t.dropped_below_level + t.dropped_by_eviction

let entry_to_json e =
  Ftr_obs.Json.Obj
    [
      ("time", Ftr_obs.Json.Float e.time);
      ("level", Ftr_obs.Json.String (level_name e.level));
      ("message", Ftr_obs.Json.String e.message);
    ]

let to_json t =
  Ftr_obs.Json.Obj
    [
      ("capacity", Ftr_obs.Json.Int t.capacity);
      ("retained", Ftr_obs.Json.Int t.count);
      ("dropped_below_level", Ftr_obs.Json.Int t.dropped_below_level);
      ("dropped_by_eviction", Ftr_obs.Json.Int t.dropped_by_eviction);
      ("entries", Ftr_obs.Json.List (List.map entry_to_json (entries t)));
    ]

(* Replay the retained entries into the structured event sink so a trace
   joins the JSONL stream alongside route/engine/overlay events. *)
let emit_events ?(kind = "trace") t =
  if Ftr_obs.Flag.enabled () then
    List.iter
      (fun e ->
        Ftr_obs.Events.emit ~time:e.time ~kind
          [
            ("level", Ftr_obs.Json.String (level_name e.level));
            ("message", Ftr_obs.Json.String e.message);
          ])
      (entries t)

let pp_entry ppf e =
  Format.fprintf ppf "[%10.4f %-5s] %s" e.time (level_name e.level) e.message

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
