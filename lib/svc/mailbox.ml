(* A deterministic actor mailbox. Entries are kept sorted by the delivery
   key (deliver_at, sender, per-sender sequence number) at all times, so
   draining is "take the due prefix" and the order a drain hands messages
   to the handler is a pure function of what was posted — never of which
   domain posted first or how the scheduler interleaved rounds. The key is
   strict: a sender never reuses a sequence number, so no two entries
   compare equal and there is no tie left for arrival order to break.

   Concurrency contract (the seam ftr_lint T1 sanctions): the coordinator
   posts between rounds, the owning shard's worker drains during a round,
   and the round barrier (Pool.run_resident's mutex hand-off, or
   Domain.join under Pool.map) sequences the two — the mailbox itself
   needs no lock because it is never touched from two domains without a
   barrier between the accesses (docs/SERVICE.md). *)

type 'a entry = { e_time : int; e_src : int; e_seq : int; e_msg : 'a }

type 'a t = {
  owner : int;
  capacity : int;
  mutable entries : 'a entry list; (* sorted by (e_time, e_src, e_seq) *)
  mutable length : int;
  mutable dropped : int;
  mutable high_water : int;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) ~owner () =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
  { owner; capacity; entries = []; length = 0; dropped = 0; high_water = 0 }

let owner t = t.owner

let capacity t = t.capacity

let length t = t.length

let dropped t = t.dropped

let high_water t = t.high_water

let is_empty t = t.length = 0

(* The delivery order. *)
let precedes a b =
  a.e_time < b.e_time
  || (a.e_time = b.e_time
     && (a.e_src < b.e_src || (a.e_src = b.e_src && a.e_seq < b.e_seq)))

(* Insertion keeps the list sorted; O(length), which is fine at mailbox
   scale (a node's in-flight fan-in, not a queue of the whole network).
   Posting past capacity drops the newcomer deterministically — the
   bounded-mailbox rule — and the drop is accounted so the no-lost-message
   invariant can tell overflow from a scheduler bug. *)
let post t ~time ~src ~seq msg =
  if t.length >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let e = { e_time = time; e_src = src; e_seq = seq; e_msg = msg } in
    let rec insert = function
      | [] -> [ e ]
      | hd :: _ as l when precedes e hd -> e :: l
      | hd :: tl -> hd :: insert tl
    in
    t.entries <- insert t.entries;
    t.length <- t.length + 1;
    if t.length > t.high_water then t.high_water <- t.length;
    true
  end

let next_due t = match t.entries with [] -> None | e :: _ -> Some e.e_time

(* Remove and return every entry due at or before [now], in delivery
   order. *)
let take_due t ~now =
  let rec split acc = function
    | e :: tl when e.e_time <= now -> split (e :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let due, rest = split [] t.entries in
  t.entries <- rest;
  t.length <- t.length - List.length due;
  due

(* The stored keys in stored order, for the invariant validators: the
   sanitizer re-checks that this is strictly increasing under the
   delivery order. *)
let keys t = List.map (fun e -> (e.e_time, e.e_src, e.e_seq)) t.entries

let well_ordered t =
  let rec check = function
    | a :: (b :: _ as tl) -> precedes a b && check tl
    | [ _ ] | [] -> true
  in
  check t.entries
