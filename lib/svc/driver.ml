(* The serve workload driver: builds a populated overlay, snapshots it
   into a [Service.t], then runs a tick loop that injects user lookups
   and (optionally) mid-run churn — joins, crashes, graceful leaves,
   stabilization pulses — before draining the scheduler clean.

   All randomness comes from [Ftr_exec.Seed] streams: per-actor RNGs use
   the actor's line position as the stream index, the driver's own
   workload RNG uses index [line_size] and the overlay construction RNG
   uses index [line_size + 1], so no stream is ever shared. Wall-clock
   only feeds the requests/s figure, read through [Ftr_exec.Clock]
   (rule R1); everything else in the report is deterministic, and
   [report_lines ~wall:false] renders exactly that deterministic subset
   for the byte-identity selfcheck. *)

module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample
module Seed = Ftr_exec.Seed
module Pool = Ftr_exec.Pool

type config = {
  line_size : int;
  initial : int; (* nodes populated before the service starts *)
  links : int;
  seed : int;
  ticks : int; (* control horizon; draining adds more rounds *)
  rate : int; (* user lookups issued per tick *)
  join_rate : float; (* Poisson means per tick *)
  crash_rate : float;
  leave_rate : float;
  stabilize : int; (* stabilization pulses per tick *)
  ttl : int;
  jobs : int option; (* worker domains; None = recommended *)
  shards : int; (* fixed shard count — must not vary with jobs *)
  capacity : int option; (* mailbox capacity override *)
  regenerate : bool;
  record : bool; (* keep the transcript *)
  explain : int option; (* request id to trace through Ftr_obs.Tracing *)
}

let default_config =
  {
    line_size = 4096;
    initial = 256;
    links = 4;
    seed = 1;
    ticks = 64;
    rate = 8;
    join_rate = 0.0;
    crash_rate = 0.0;
    leave_rate = 0.0;
    stabilize = 0;
    ttl = 256;
    jobs = None;
    shards = 8;
    capacity = None;
    regenerate = true;
    record = false;
    explain = None;
  }

type report = {
  rp_ticks : int;
  rp_rounds : int;
  rp_live : int;
  rp_issued : int;
  rp_delivered : int;
  rp_failed : int;
  rp_timed_out : int;
  rp_mean_hops : float;
  rp_p50_hops : int;
  rp_p99_hops : int;
  rp_messages : int;
  rp_replies : int;
  rp_probes : int;
  rp_repairs : int;
  rp_redirects : int;
  rp_joins : int;
  rp_crashes : int;
  rp_leaves : int;
  rp_bounces : int;
  rp_dropped : int;
  rp_dead_letters : int;
  rp_handled : int;
  rp_maint_issued : int;
  rp_maint_ok : int;
  rp_maint_failed : int;
  rp_wall_seconds : float;
  rp_requests_per_second : float;
}

type result = { res_report : report; res_transcript : string; res_service : Service.t }

(* Exact quantile over the per-hop-count histogram: smallest hop count h
   such that at least [q] of the delivered requests took <= h hops. *)
let hist_quantile hist q =
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then 0
  else begin
    let need = int_of_float (ceil (q *. float_of_int total)) in
    let need = if need < 1 then 1 else need in
    let cum = ref 0 and ans = ref (Array.length hist - 1) and found = ref false in
    Array.iteri
      (fun h n ->
        cum := !cum + n;
        if (not !found) && !cum >= need then begin
          ans := h;
          found := true
        end)
      hist;
    !ans
  end

let report_of svc ~ticks ~wall =
  let s = Service.stats svc in
  let hist = Service.hops_histogram svc in
  {
    rp_ticks = ticks;
    rp_rounds = s.Service.rounds;
    rp_live = Service.live_count svc;
    rp_issued = s.Service.issued;
    rp_delivered = s.Service.ok;
    rp_failed = s.Service.failed;
    rp_timed_out = s.Service.timed_out;
    rp_mean_hops =
      (if s.Service.ok = 0 then 0.0
       else float_of_int s.Service.hops_total /. float_of_int s.Service.ok);
    rp_p50_hops = hist_quantile hist 0.5;
    rp_p99_hops = hist_quantile hist 0.99;
    rp_messages = s.Service.messages;
    rp_replies = s.Service.replies;
    rp_probes = s.Service.probes;
    rp_repairs = s.Service.repairs;
    rp_redirects = s.Service.redirects;
    rp_joins = s.Service.joins;
    rp_crashes = s.Service.crashes;
    rp_leaves = s.Service.leaves;
    rp_bounces = s.Service.bounces;
    rp_dropped = s.Service.dropped;
    rp_dead_letters = s.Service.dead_letters;
    rp_handled = s.Service.handled;
    rp_maint_issued = s.Service.maint_issued;
    rp_maint_ok = s.Service.maint_ok;
    rp_maint_failed = s.Service.maint_failed;
    rp_wall_seconds = wall;
    rp_requests_per_second =
      (if wall > 0.0 then float_of_int s.Service.issued /. wall else 0.0);
  }

(* The deterministic rendering: with [wall = false] (the default) every
   line is a pure function of the run, byte-comparable across jobs. *)
let report_lines ?(wall = false) r =
  let l = ref [] in
  let add fmt = Printf.ksprintf (fun s -> l := s :: !l) fmt in
  add "service report";
  add "  ticks       %d (rounds %d)" r.rp_ticks r.rp_rounds;
  add "  live nodes  %d" r.rp_live;
  add "  requests    issued %d  delivered %d  failed %d  timed_out %d" r.rp_issued
    r.rp_delivered r.rp_failed r.rp_timed_out;
  add "  hops        mean %.3f  p50 %d  p99 %d" r.rp_mean_hops r.rp_p50_hops r.rp_p99_hops;
  add "  traffic     forwards %d  replies %d  probes %d  handled %d" r.rp_messages r.rp_replies
    r.rp_probes r.rp_handled;
  add "  repair      repairs %d  redirects %d  bounces %d" r.rp_repairs r.rp_redirects
    r.rp_bounces;
  add "  churn       joins %d  crashes %d  leaves %d" r.rp_joins r.rp_crashes r.rp_leaves;
  add "  maintenance issued %d  ok %d  failed %d" r.rp_maint_issued r.rp_maint_ok
    r.rp_maint_failed;
  add "  mail        dropped %d  dead_letters %d" r.rp_dropped r.rp_dead_letters;
  if wall then
    add "  wall        %.3fs  (%.0f requests/s)" r.rp_wall_seconds r.rp_requests_per_second;
  List.rev !l

let report_json ?(wall = true) r =
  let module J = Ftr_obs.Json in
  let fields =
    [
      ("ticks", J.Int r.rp_ticks);
      ("rounds", J.Int r.rp_rounds);
      ("live_nodes", J.Int r.rp_live);
      ("issued", J.Int r.rp_issued);
      ("delivered", J.Int r.rp_delivered);
      ("failed", J.Int r.rp_failed);
      ("timed_out", J.Int r.rp_timed_out);
      ("mean_hops", J.Float r.rp_mean_hops);
      ("p50_hops", J.Int r.rp_p50_hops);
      ("p99_hops", J.Int r.rp_p99_hops);
      ("forwards", J.Int r.rp_messages);
      ("replies", J.Int r.rp_replies);
      ("probes", J.Int r.rp_probes);
      ("repairs", J.Int r.rp_repairs);
      ("redirects", J.Int r.rp_redirects);
      ("joins", J.Int r.rp_joins);
      ("crashes", J.Int r.rp_crashes);
      ("leaves", J.Int r.rp_leaves);
      ("bounces", J.Int r.rp_bounces);
      ("dropped", J.Int r.rp_dropped);
      ("dead_letters", J.Int r.rp_dead_letters);
      ("handled", J.Int r.rp_handled);
      ("maint_issued", J.Int r.rp_maint_issued);
      ("maint_ok", J.Int r.rp_maint_ok);
      ("maint_failed", J.Int r.rp_maint_failed);
    ]
  in
  let fields =
    if wall then
      fields
      @ [
          ("wall_seconds", J.Float r.rp_wall_seconds);
          ("requests_per_second", J.Float r.rp_requests_per_second);
        ]
    else fields
  in
  J.Obj fields

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

(* Build the starting network synchronously: a populated overlay is the
   closest thing the paper has to "a long-running system in steady
   state", and reusing [Overlay.populate] keeps the service's initial
   link structure identical to what every other subsystem studies. *)
let build_overlay cfg =
  let rng = Seed.rng_for ~seed:cfg.seed ~index:(cfg.line_size + 1) in
  let engine = Ftr_sim.Engine.create () in
  let ov =
    Ftr_p2p.Overlay.create ~ttl:cfg.ttl ~regenerate:cfg.regenerate ~line_size:cfg.line_size
      ~links:cfg.links ~rng engine
  in
  Ftr_p2p.Overlay.populate ov
    ~positions:(List.init cfg.initial (fun i -> i * cfg.line_size / cfg.initial));
  Ftr_sim.Engine.run engine;
  ov

let pick_live rng svc =
  match Service.live_positions svc with
  | [] -> None
  | live ->
      let arr = Array.of_list live in
      Some arr.(Rng.int rng (Array.length arr))

(* One tick's control inputs, in a fixed order (crashes, leaves, joins,
   stabilize pulses, user requests) so the control stream is part of the
   deterministic prefix every worker count shares. *)
let control cfg rng svc =
  let live_floor = 2 in
  if cfg.crash_rate > 0.0 then
    for _ = 1 to Sample.poisson rng ~lambda:cfg.crash_rate do
      if Service.live_count svc > live_floor then
        match pick_live rng svc with
        | Some pos -> Service.crash svc ~pos
        | None -> ()
    done;
  if cfg.leave_rate > 0.0 then
    for _ = 1 to Sample.poisson rng ~lambda:cfg.leave_rate do
      if Service.live_count svc > live_floor then
        match pick_live rng svc with
        | Some pos -> Service.leave svc ~pos
        | None -> ()
    done;
  if cfg.join_rate > 0.0 then
    for _ = 1 to Sample.poisson rng ~lambda:cfg.join_rate do
      match pick_live rng svc with
      | Some via ->
          (* A fresh position: never-occupied grid points keep the
             registry conservation exact (a position is one actor, ever). *)
          let rec fresh tries =
            if tries = 0 then None
            else
              let pos = Rng.int rng cfg.line_size in
              if Service.known svc pos then fresh (tries - 1) else Some pos
          in
          (match fresh 64 with Some pos -> Service.join svc ~pos ~via | None -> ())
      | None -> ()
    done;
  for _ = 1 to cfg.stabilize do
    match pick_live rng svc with
    | Some pos -> Service.stabilize svc ~pos
    | None -> ()
  done;
  for _ = 1 to cfg.rate do
    match pick_live rng svc with
    | Some src ->
        let target = Rng.int rng cfg.line_size in
        let traced =
          match cfg.explain with Some k -> k = Service.next_request_id svc | None -> false
        in
        ignore (Service.request ~traced svc ~src ~target)
    | None -> ()
  done

let run cfg =
  let ov = build_overlay cfg in
  let svc =
    Service.of_overlay ?capacity:cfg.capacity ~ttl:cfg.ttl ~regenerate:cfg.regenerate
      ~shards:cfg.shards ~record:cfg.record ~seed:cfg.seed ov
  in
  let rng = Seed.rng_for ~seed:cfg.seed ~index:cfg.line_size in
  let wall0 = Ftr_exec.Clock.now () in
  Pool.with_resident ?jobs:cfg.jobs (fun pool ->
      for _tick = 1 to cfg.ticks do
        control cfg rng svc;
        Service.step svc ~pool
      done;
      ignore (Service.drain svc ~pool));
  Service.force_timeouts svc;
  let wall = Ftr_exec.Clock.now () -. wall0 in
  if Ftr_obs.Flag.enabled () then begin
    Ftr_obs.Metrics.incr_by "svc_rounds_total" (Service.stats svc).Service.rounds;
    Ftr_obs.Metrics.set_gauge "svc_live_nodes" (float_of_int (Service.live_count svc))
  end;
  {
    res_report = report_of svc ~ticks:cfg.ticks ~wall;
    res_transcript = Service.transcript svc;
    res_service = svc;
  }

(* ------------------------------------------------------------------ *)
(* Selfcheck invariants                                                *)
(* ------------------------------------------------------------------ *)

(* Structural invariants a finished run must satisfy; each violation is
   one human-readable line. Used by [p2psim serve --selfcheck] and the
   kill-mid-churn test. *)
let invariant_problems res =
  let svc = res.res_service in
  let r = res.res_report in
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if r.rp_issued <> r.rp_delivered + r.rp_failed + r.rp_timed_out then
    bad "request conservation: issued %d <> delivered %d + failed %d + timed_out %d"
      r.rp_issued r.rp_delivered r.rp_failed r.rp_timed_out;
  if r.rp_dropped <> 0 then bad "mailbox overflow dropped %d messages" r.rp_dropped;
  Service.iter_actors svc (fun v ->
      if v.Service.av_mail_length <> 0 && v.Service.av_alive then
        bad "actor %d still holds %d undrained messages" v.Service.av_pos
          v.Service.av_mail_length;
      if not v.Service.av_mail_well_ordered then
        bad "actor %d mailbox violates the delivery order" v.Service.av_pos;
      if v.Service.av_mail_high_water > v.Service.av_mail_capacity then
        bad "actor %d mailbox high water %d exceeds capacity %d" v.Service.av_pos
          v.Service.av_mail_high_water v.Service.av_mail_capacity;
      if List.length v.Service.av_long > Service.links svc then
        bad "actor %d carries %d long links (budget %d)" v.Service.av_pos
          (List.length v.Service.av_long) (Service.links svc));
  List.rev !problems
