(* The service's message catalogue: every interaction the synchronous
   overlay performs as a function call is one of these payloads travelling
   between actors. The mapping to the paper (see docs/SERVICE.md):

   - [Lookup]/[Resolved]/[Bounce] are Section 4's greedy search with
     failure detection — the multi-hop conversation a lookup really is.
   - [Lookup] with [Placement]/[Link]/[Solicit] kinds plus [Splice]/
     [Set_left]/[Set_right] are Section 5's join: find the ring slot by
     looking up your own position, splice in, build ℓ links through
     routed lookups, solicit Poisson(ℓ) incoming links.
   - [Stabilize] is the background repair pulse ("trying to heal the
     damage"), [Leave_now] the graceful departure splice.

   Envelopes carry the deterministic delivery key: messages are delivered
   in (deliver_at, sender, per-sender sequence) order, which is what makes
   the merged service transcript a pure function of (seed, logical time,
   sender id, sequence number) — see [Mailbox]. *)

(* Why a routed lookup is in flight. [User] requests are driver traffic
   accounted in the service report; the other three are protocol-internal
   maintenance, mirroring the synchronous overlay's split. *)
type lookup_kind =
  | User
  | Placement of { joiner : int }  (* a join finding its ring slot *)
  | Link  (* building or regenerating a 1/d long link *)
  | Solicit of { newcomer : int }  (* asking the sink's owner for an incoming link *)

type verdict = V_chosen | V_not_best | V_not_closer | V_dead

(* Per-hop decisions accumulated inside a traced lookup's payload; the
   coordinator replays them into [Ftr_obs.Tracing] at completion, so the
   flight recorder sees the same hop tree no matter which worker domain
   ran each hop. *)
type trace_step = T_hop of int | T_cand of { cur : int; cand : int; dist : int; verdict : verdict }

type lookup = {
  request : int;  (* driver-assigned id for [User], -1 for maintenance *)
  origin : int;  (* who wants the answer *)
  target : int;  (* line point being claimed *)
  hops : int;
  kind : lookup_kind;
  traced : bool;
  path_rev : int list;  (* decision points visited, newest first *)
  tlog_rev : trace_step list;  (* flight-recorder log, newest first; empty unless traced *)
}

type payload =
  | Lookup of lookup
  | Resolved of { request : int; owner : int; hops : int; kind : lookup_kind }
  | Splice of { left : int option; right : int option }  (* owner -> joiner: your ring slot *)
  | Set_left of int option
  | Set_right of int option
  | Stabilize  (* probe one random neighbour, repair if dead *)
  | Leave_now  (* splice the ring gracefully, then go *)
  | Bounce of { dead : int; lookup : lookup }
      (* the chosen candidate crashed with the lookup in flight; the
         sender repairs the link and re-scans *)

type outcome =
  | Delivered of { owner : int; hops : int }
  | Failed of { stuck_at : int; hops : int; reason : string }

type envelope = {
  src : int;  (* sending actor's position; -1 = the coordinator/driver *)
  dst : int;
  seq : int;  (* per-sender sequence number *)
  sent_at : int;
  deliver_at : int;
  payload : payload;
}

let string_of_kind = function
  | User -> "user"
  | Placement { joiner } -> Printf.sprintf "placement(%d)" joiner
  | Link -> "link"
  | Solicit { newcomer } -> Printf.sprintf "solicit(%d)" newcomer

(* One deterministic line per payload for the service transcript. *)
let describe = function
  | Lookup l ->
      Printf.sprintf "lookup %s req=%d tgt=%d hops=%d" (string_of_kind l.kind) l.request
        l.target l.hops
  | Resolved r ->
      Printf.sprintf "resolved %s req=%d owner=%d hops=%d" (string_of_kind r.kind) r.request
        r.owner r.hops
  | Splice { left; right } ->
      let p = function Some v -> string_of_int v | None -> "-" in
      Printf.sprintf "splice left=%s right=%s" (p left) (p right)
  | Set_left v -> Printf.sprintf "set_left %s" (match v with Some v -> string_of_int v | None -> "-")
  | Set_right v ->
      Printf.sprintf "set_right %s" (match v with Some v -> string_of_int v | None -> "-")
  | Stabilize -> "stabilize"
  | Leave_now -> "leave_now"
  | Bounce { dead; lookup } -> Printf.sprintf "bounce dead=%d req=%d" dead lookup.request

let describe_outcome = function
  | Delivered { owner; hops } -> Printf.sprintf "ok owner=%d hops=%d" owner hops
  | Failed { stuck_at; hops; reason } ->
      Printf.sprintf "fail %s at=%d hops=%d" reason stuck_at hops
