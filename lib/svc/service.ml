(* The round scheduler: a bulk-synchronous actor runtime whose merged
   transcript is byte-identical across worker counts.

   One round = one logical tick:

   1. (coordinator) control events — joins, crashes, leaves, stabilize
      pulses, request issuance — are applied by the driver before the
      round; dead actors' due mail is drained here, generating bounces.
   2. (workers) due live actors, in sorted position order, are cut into
      [nshards] contiguous slices. Slice boundaries depend only on the
      due set and the fixed shard count — never on [--jobs] — and every
      slice is processed sequentially by whichever worker claims it, so
      the per-slice event order is jobs-invariant too. Handlers write
      only their own actor plus per-shard accumulators.
   3. (coordinator) accumulators are merged in slice order: transcript
      chunks appended, counters added, completions applied, outboxes
      posted into mailboxes (delivery at now+latency), departures
      folded into the liveness view. Since slices partition the sorted
      due list, the merged order equals the order a single worker would
      have produced: delivery order is a pure function of
      (seed, logical time, sender id, sequence number).

   The liveness view is a frozen byte per line position: written by the
   coordinator between rounds, read-only inside one — the second half of
   the barrier discipline that makes the mailboxes safe without locks. *)

module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample
module Seed = Ftr_exec.Seed
module Pool = Ftr_exec.Pool
module Debug = Ftr_debug.Debug
open Message

type stats = {
  mutable issued : int; (* user requests *)
  mutable ok : int;
  mutable failed : int;
  mutable timed_out : int; (* force-timed-out at shutdown *)
  mutable hops_total : int; (* over delivered user requests *)
  mutable maint_issued : int;
  mutable maint_ok : int;
  mutable maint_failed : int;
  mutable messages : int; (* routed lookup forwards *)
  mutable replies : int; (* service replies: Resolved, Splice, Set_left/right *)
  mutable probes : int;
  mutable repairs : int;
  mutable redirects : int;
  mutable joins : int;
  mutable crashes : int;
  mutable leaves : int;
  mutable bounces : int; (* lookups bounced off dead carriers *)
  mutable dropped : int; (* mailbox-capacity drops *)
  mutable dead_letters : int; (* non-lookup mail to dead actors, dropped by protocol *)
  mutable handled : int; (* envelopes processed *)
  mutable rounds : int;
}

type request_state = {
  rq_id : int;
  rq_src : int;
  rq_target : int;
  rq_issued : int;
  rq_traced : bool;
  mutable rq_outcome : outcome option;
  mutable rq_done_at : int;
  mutable rq_path : int list; (* forward visit order, filled at completion *)
}

(* Per-shard accumulator: everything a worker produces besides its own
   actors' state, merged by the coordinator in shard order. *)
type shard_acc = {
  counters : Actor.counters;
  buf : Buffer.t;
  mutable out_rev : envelope list;
  mutable completions_rev : (lookup * outcome) list;
  mutable departs_rev : int list;
}

type t = {
  line_size : int;
  links : int;
  ttl : int;
  seed : int;
  capacity : int option;
  regenerate : bool;
  nshards : int;
  latency : int;
  actors : (int, Actor.t) Hashtbl.t;
  mutable order : int array; (* sorted positions of every registered actor *)
  mutable order_dirty : bool;
  alive_view : Bytes.t;
  pl : Sample.power_law;
  mutable now : int;
  mutable next_request : int;
  mutable coord_seq : int;
  requests : (int, request_state) Hashtbl.t;
  hops_hist : int array; (* per-success hop counts, exact *)
  stats : stats;
  transcript : Buffer.t;
  record : bool;
}

let create ?capacity ?(ttl = 256) ?(regenerate = true) ?(shards = 8) ?(record = false)
    ~line_size ~links ~seed () =
  if line_size < 2 then invalid_arg "Service.create: line_size must be >= 2";
  if links < 1 then invalid_arg "Service.create: links must be >= 1";
  if shards < 1 then invalid_arg "Service.create: shards must be >= 1";
  {
    line_size;
    links;
    ttl;
    seed;
    capacity;
    regenerate;
    nshards = shards;
    latency = 1;
    actors = Hashtbl.create 1024;
    order = [||];
    order_dirty = false;
    alive_view = Bytes.make line_size '\000';
    pl = Sample.power_law ~exponent:1.0 ~max_length:(line_size - 1);
    now = 0;
    next_request = 0;
    coord_seq = 0;
    requests = Hashtbl.create 64;
    hops_hist = Array.make (ttl + 2) 0;
    stats =
      {
        issued = 0;
        ok = 0;
        failed = 0;
        timed_out = 0;
        hops_total = 0;
        maint_issued = 0;
        maint_ok = 0;
        maint_failed = 0;
        messages = 0;
        replies = 0;
        probes = 0;
        repairs = 0;
        redirects = 0;
        joins = 0;
        crashes = 0;
        leaves = 0;
        bounces = 0;
        dropped = 0;
        dead_letters = 0;
        handled = 0;
        rounds = 0;
      };
    transcript = Buffer.create (if record then 65536 else 16);
    record;
  }

let stats t = t.stats

let now t = t.now

let line_size t = t.line_size

let links t = t.links

let seed t = t.seed

let next_request_id t = t.next_request

let transcript t = Buffer.contents t.transcript

let hops_histogram t = Array.copy t.hops_hist

let linef t fmt = Printf.ksprintf (fun s -> Buffer.add_string t.transcript s; Buffer.add_char t.transcript '\n') fmt

(* ------------------------------------------------------------------ *)
(* Membership and registry                                             *)
(* ------------------------------------------------------------------ *)

let refresh_order t =
  if t.order_dirty then begin
    let acc = ref [] in
    Hashtbl.iter (fun pos _ -> acc := pos :: !acc) t.actors;
    let arr = Array.of_list !acc in
    Array.sort Int.compare arr;
    t.order <- arr;
    t.order_dirty <- false
  end

let view_alive t pos = pos >= 0 && pos < t.line_size && Bytes.get t.alive_view pos = '\001'

let known t pos = Hashtbl.mem t.actors pos

let live_positions t =
  refresh_order t;
  Array.to_list (Array.of_seq (Seq.filter (view_alive t) (Array.to_seq t.order)))

let live_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr n) t.alive_view;
  !n

let register t ~pos ~alive =
  if pos < 0 || pos >= t.line_size then invalid_arg "Service.register: position off the line";
  if Hashtbl.mem t.actors pos then invalid_arg "Service.register: position already registered";
  let a = Actor.create ?capacity:t.capacity ~pos ~rng:(Seed.rng_for ~seed:t.seed ~index:pos) () in
  a.Actor.alive <- alive;
  Hashtbl.replace t.actors pos a;
  if alive then Bytes.set t.alive_view pos '\001';
  t.order_dirty <- true;
  a

(* Snapshot constructor: the service starts from exactly the link state
   the synchronous overlay reached (populate, joins, crashes...), so the
   two runtimes can be compared on the same (seed, network, failure set).
   Dead registry entries come along too — their mailboxes are what in-
   flight mail bounces off. *)
let of_overlay ?capacity ?ttl ?(regenerate = true) ?shards ?record ~seed ov =
  let module O = Ftr_p2p.Overlay in
  let t =
    create ?capacity
      ~ttl:(match ttl with Some v -> v | None -> O.ttl ov)
      ~regenerate ?shards ?record ~line_size:(O.line_size ov) ~links:(O.links ov) ~seed ()
  in
  O.iter_nodes ov (fun v ->
      let a = register t ~pos:v.O.view_pos ~alive:v.O.view_alive in
      a.Actor.left <- v.O.view_left;
      a.Actor.right <- v.O.view_right;
      a.Actor.long <- v.O.view_long;
      a.Actor.births <- v.O.view_births;
      a.Actor.birth_tick <- List.fold_left max 0 v.O.view_births);
  refresh_order t;
  t

(* ------------------------------------------------------------------ *)
(* Posting                                                             *)
(* ------------------------------------------------------------------ *)

let post_env t (env : envelope) =
  match Hashtbl.find_opt t.actors env.dst with
  | None ->
      (* Every destination comes out of the registry (neighbour sets,
         origins, join targets), so this is a scheduler bug, not load. *)
      if Debug.enabled () then
        Debug.failf "Service: message for unregistered position %d (from %d)" env.dst env.src
      else t.stats.dead_letters <- t.stats.dead_letters + 1
  | Some a ->
      if Debug.enabled () && env.deliver_at < t.now then
        Debug.failf "Service: delivery time %d before now %d" env.deliver_at t.now;
      if
        not
          (Mailbox.post a.Actor.mailbox ~time:env.deliver_at ~src:env.src ~seq:env.seq
             env.payload)
      then begin
        t.stats.dropped <- t.stats.dropped + 1;
        if t.record then
          linef t "t=%d drop %d<-%d#%d %s" t.now env.dst env.src env.seq (describe env.payload)
      end
      else if Debug.enabled () && not (Mailbox.well_ordered a.Actor.mailbox) then
        Debug.failf "Service: mailbox %d lost its delivery order" env.dst

let coord_send t ~dst ~deliver_at payload =
  let seq = t.coord_seq in
  t.coord_seq <- seq + 1;
  post_env t { src = -1; dst; seq; sent_at = t.now; deliver_at; payload }

(* ------------------------------------------------------------------ *)
(* Completion accounting (coordinator only)                            *)
(* ------------------------------------------------------------------ *)

let verdict_of = function
  | V_chosen -> Ftr_obs.Tracing.Chosen
  | V_not_best -> Ftr_obs.Tracing.Not_best
  | V_not_closer -> Ftr_obs.Tracing.Not_closer
  | V_dead -> Ftr_obs.Tracing.Dead_node

(* Replay a traced request's per-hop log into the flight recorder. The
   log travelled inside the lookup payload, so the replay is identical no
   matter which domains ran the hops; the trace id is pure in
   (Tracing seed, request id) via [set_next_index]. *)
let replay_trace rq (l : lookup) (o : outcome) =
  let module T = Ftr_obs.Tracing in
  T.set_next_index rq.rq_id;
  let tr = T.begin_route ~src:rq.rq_src ~dst:rq.rq_target in
  if T.is_live tr then begin
    T.set_context tr ~nodes:"service" ~links:"overlay" ~strategy:"svc_lookup";
    List.iter
      (function
        | T_hop n -> T.hop tr ~node:n
        | T_cand { cur; cand; dist; verdict } ->
            T.candidate tr ~cur ~cand ~dist (verdict_of verdict))
      (List.rev l.tlog_rev);
    match o with
    | Delivered { hops; _ } -> T.finish tr ~delivered:true ~hops ~stuck_at:(-1) ~reason:""
    | Failed { stuck_at; hops; reason } ->
        T.finish tr ~delivered:false ~hops ~stuck_at ~reason
  end

let complete t (l : lookup) (o : outcome) =
  match l.kind with
  | User -> (
      match Hashtbl.find_opt t.requests l.request with
      | Some rq when Option.is_none rq.rq_outcome ->
          rq.rq_outcome <- Some o;
          rq.rq_done_at <- t.now;
          rq.rq_path <- List.rev l.path_rev;
          (match o with
          | Delivered { hops; _ } ->
              t.stats.ok <- t.stats.ok + 1;
              t.stats.hops_total <- t.stats.hops_total + hops;
              let b = min hops (Array.length t.hops_hist - 1) in
              t.hops_hist.(b) <- t.hops_hist.(b) + 1
          | Failed _ -> t.stats.failed <- t.stats.failed + 1);
          if t.record then linef t "t=%d req %d %s" t.now l.request (describe_outcome o);
          if Ftr_obs.Flag.enabled () then begin
            Ftr_obs.Metrics.incr
              ~labels:
                [ ("outcome", match o with Delivered _ -> "delivered" | Failed _ -> "failed") ]
              "svc_requests_total";
            (match o with
            | Delivered { hops; _ } ->
                Ftr_obs.Metrics.observe "svc_request_hops" (float_of_int hops)
            | Failed _ -> ());
            if rq.rq_traced then replay_trace rq l o
          end
      | Some _ | None -> ())
  | Placement _ | Link | Solicit _ -> (
      match o with
      | Delivered _ -> t.stats.maint_ok <- t.stats.maint_ok + 1
      | Failed _ -> t.stats.maint_failed <- t.stats.maint_failed + 1)

(* ------------------------------------------------------------------ *)
(* Control operations (between rounds)                                 *)
(* ------------------------------------------------------------------ *)

let request ?(traced = false) t ~src ~target =
  if not (view_alive t src) then invalid_arg "Service.request: source is not a live actor";
  if target < 0 || target >= t.line_size then invalid_arg "Service.request: target off the line";
  let id = t.next_request in
  t.next_request <- id + 1;
  Hashtbl.replace t.requests id
    {
      rq_id = id;
      rq_src = src;
      rq_target = target;
      rq_issued = t.now;
      rq_traced = traced;
      rq_outcome = None;
      rq_done_at = -1;
      rq_path = [];
    };
  t.stats.issued <- t.stats.issued + 1;
  if t.record then linef t "t=%d req %d %d->%d" t.now id src target;
  coord_send t ~dst:src ~deliver_at:t.now
    (Lookup
       {
         request = id;
         origin = src;
         target;
         hops = 0;
         kind = User;
         traced;
         path_rev = [];
         tlog_rev = [];
       });
  id

let join t ~pos ~via =
  if pos < 0 || pos >= t.line_size then invalid_arg "Service.join: position off the line";
  if known t pos then invalid_arg "Service.join: position already in the registry";
  if not (view_alive t via) then invalid_arg "Service.join: bootstrap node is dead";
  ignore (register t ~pos ~alive:true);
  refresh_order t;
  t.stats.joins <- t.stats.joins + 1;
  t.stats.maint_issued <- t.stats.maint_issued + 1;
  if t.record then linef t "t=%d join %d via %d" t.now pos via;
  if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr "svc_joins_total";
  coord_send t ~dst:via ~deliver_at:t.now
    (Lookup
       {
         request = -1;
         origin = pos;
         target = pos;
         hops = 0;
         kind = Placement { joiner = pos };
         traced = false;
         path_rev = [];
         tlog_rev = [];
       })

let crash t ~pos =
  match Hashtbl.find_opt t.actors pos with
  | Some a when a.Actor.alive ->
      a.Actor.alive <- false;
      Bytes.set t.alive_view pos '\000';
      t.stats.crashes <- t.stats.crashes + 1;
      if t.record then linef t "t=%d crash %d" t.now pos;
      if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr "svc_crashes_total"
  | Some _ | None -> ()

let leave t ~pos =
  if view_alive t pos then begin
    if t.record then linef t "t=%d leave %d" t.now pos;
    coord_send t ~dst:pos ~deliver_at:t.now Leave_now
  end

let stabilize t ~pos =
  if view_alive t pos then begin
    if t.record then linef t "t=%d stab %d" t.now pos;
    coord_send t ~dst:pos ~deliver_at:t.now Stabilize
  end

(* ------------------------------------------------------------------ *)
(* The round                                                           *)
(* ------------------------------------------------------------------ *)

(* Mail due at a dead actor, drained by the coordinator in sorted order:
   lookups bounce back to their sender after one more latency (the
   overlay's arrival re-check), bounces whose origin died fail the
   request, everything else is dead-lettered — the message-passing form
   of the overlay's [node.alive] callback guards. *)
let drain_dead t (a : Actor.t) =
  List.iter
    (fun (e : payload Mailbox.entry) ->
      t.stats.handled <- t.stats.handled + 1;
      if t.record then
        linef t "t=%d dead %d<-%d#%d %s" t.now a.Actor.pos e.Mailbox.e_src e.Mailbox.e_seq
          (describe e.Mailbox.e_msg);
      match e.Mailbox.e_msg with
      | Lookup l when e.Mailbox.e_src >= 0 ->
          (* The carrier died with the lookup in flight: bounce to the
             sender, who repairs the link and re-scans with its original
             hop count (the +1 charged at send is undone). *)
          t.stats.bounces <- t.stats.bounces + 1;
          let seq = a.Actor.next_seq in
          a.Actor.next_seq <- seq + 1;
          post_env t
            {
              src = a.Actor.pos;
              dst = e.Mailbox.e_src;
              seq;
              sent_at = t.now;
              deliver_at = t.now + t.latency;
              payload = Bounce { dead = a.Actor.pos; lookup = { l with hops = l.hops - 1 } };
            }
      | Lookup l ->
          (* Driver-issued lookup whose source died in the same tick. *)
          complete t l (Failed { stuck_at = a.Actor.pos; hops = l.hops; reason = "carrier_died" })
      | Bounce { lookup; _ } ->
          (* The bounce came home to an origin that has since died. *)
          complete t lookup
            (Failed { stuck_at = a.Actor.pos; hops = lookup.hops; reason = "origin_died" })
      | Resolved _ | Splice _ | Set_left _ | Set_right _ | Stabilize | Leave_now ->
          t.stats.dead_letters <- t.stats.dead_letters + 1)
    (Mailbox.take_due a.Actor.mailbox ~now:t.now)

let fresh_acc () =
  {
    counters = Actor.fresh_counters ();
    buf = Buffer.create 1024;
    out_rev = [];
    completions_rev = [];
    departs_rev = [];
  }

let process_shard t (due : Actor.t array) acc shard =
  let n = Array.length due in
  let lo = shard * n / t.nshards and hi = (shard + 1) * n / t.nshards in
  let ctx =
    {
      Actor.line_size = t.line_size;
      links = t.links;
      ttl = t.ttl;
      regenerate = t.regenerate;
      now = t.now;
      alive_view = t.alive_view;
      pl = t.pl;
      counters = acc.counters;
      send =
        (fun ~src ~dst payload ->
          let seq = src.Actor.next_seq in
          src.Actor.next_seq <- seq + 1;
          acc.out_rev <-
            {
              src = src.Actor.pos;
              dst;
              seq;
              sent_at = t.now;
              deliver_at = t.now + t.latency;
              payload;
            }
            :: acc.out_rev);
      complete = (fun l o -> acc.completions_rev <- (l, o) :: acc.completions_rev);
      depart = (fun pos -> acc.departs_rev <- pos :: acc.departs_rev);
    }
  in
  for i = lo to hi - 1 do
    let a = due.(i) in
    List.iter
      (fun (e : payload Mailbox.entry) ->
        if t.record then
          Buffer.add_string acc.buf
            (Printf.sprintf "t=%d %d<-%d#%d %s\n" t.now a.Actor.pos e.Mailbox.e_src
               e.Mailbox.e_seq (describe e.Mailbox.e_msg));
        Actor.handle ctx a e.Mailbox.e_msg)
      (Mailbox.take_due a.Actor.mailbox ~now:t.now)
  done

let merge_acc t acc =
  let c = acc.counters in
  t.stats.messages <- t.stats.messages + c.Actor.c_messages;
  t.stats.replies <- t.stats.replies + c.Actor.c_replies;
  t.stats.probes <- t.stats.probes + c.Actor.c_probes;
  t.stats.repairs <- t.stats.repairs + c.Actor.c_repairs;
  t.stats.redirects <- t.stats.redirects + c.Actor.c_redirects;
  t.stats.maint_issued <- t.stats.maint_issued + c.Actor.c_maint_issued;
  t.stats.handled <- t.stats.handled + c.Actor.c_handled;
  if t.record then Buffer.add_buffer t.transcript acc.buf;
  List.iter (fun (l, o) -> complete t l o) (List.rev acc.completions_rev);
  List.iter (fun env -> post_env t env) (List.rev acc.out_rev);
  List.iter
    (fun pos ->
      Bytes.set t.alive_view pos '\000';
      t.stats.leaves <- t.stats.leaves + 1;
      if Ftr_obs.Flag.enabled () then Ftr_obs.Metrics.incr "svc_leaves_total")
    (List.rev acc.departs_rev)

(* One round: drain the dead, fan the due live actors out over the
   shards, merge. Advances the logical clock by one tick. *)
let step t ~pool =
  refresh_order t;
  t.stats.rounds <- t.stats.rounds + 1;
  Array.iter
    (fun pos ->
      let a = Hashtbl.find t.actors pos in
      if not a.Actor.alive then
        match Mailbox.next_due a.Actor.mailbox with
        | Some d when d <= t.now -> drain_dead t a
        | Some _ | None -> ())
    t.order;
  let due = ref [] in
  Array.iter
    (fun pos ->
      let a = Hashtbl.find t.actors pos in
      if a.Actor.alive then
        match Mailbox.next_due a.Actor.mailbox with
        | Some d when d <= t.now -> due := a :: !due
        | Some _ | None -> ())
    t.order;
  let due = Array.of_list (List.rev !due) in
  if Array.length due > 0 then begin
    let accs = Array.init t.nshards (fun _ -> fresh_acc ()) in
    let run () = Pool.run_resident pool ~count:t.nshards (fun s -> process_shard t due accs.(s) s) in
    if Ftr_obs.Flag.enabled () then Ftr_obs.Span.time "svc.round" run else run ();
    Array.iter (fun acc -> merge_acc t acc) accs
  end;
  t.now <- t.now + 1

let mail_pending t =
  refresh_order t;
  Array.exists
    (fun pos -> not (Mailbox.is_empty (Hashtbl.find t.actors pos).Actor.mailbox))
    t.order

(* Run rounds with no new control input until every mailbox is empty (or
   the safety cap trips — which the selfcheck would then report as
   leftover mail). Returns the number of rounds it took. *)
let drain ?cap t ~pool =
  let cap = match cap with Some c -> c | None -> (4 * t.ttl) + 16 in
  let rounds = ref 0 in
  while mail_pending t && !rounds < cap do
    step t ~pool;
    incr rounds
  done;
  !rounds

let pending_requests t =
  let acc = ref [] in
  for id = t.next_request - 1 downto 0 do
    match Hashtbl.find_opt t.requests id with
    | Some rq when Option.is_none rq.rq_outcome -> acc := rq :: !acc
    | Some _ | None -> ()
  done;
  !acc

(* Shutdown semantics for requests still open when the service stops:
   they are accounted as timeouts, not losses. *)
let force_timeouts t =
  List.iter
    (fun rq ->
      rq.rq_outcome <-
        Some (Failed { stuck_at = rq.rq_src; hops = 0; reason = "service_shutdown" });
      rq.rq_done_at <- t.now;
      t.stats.timed_out <- t.stats.timed_out + 1;
      if t.record then linef t "t=%d req %d timeout" t.now rq.rq_id)
    (pending_requests t)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type actor_view = {
  av_pos : int;
  av_alive : bool;
  av_left : int option;
  av_right : int option;
  av_long : int list;
  av_births : int list;
  av_mail_length : int;
  av_mail_capacity : int;
  av_mail_dropped : int;
  av_mail_high_water : int;
  av_mail_well_ordered : bool;
  av_mail_keys : (int * int * int) list;
}

let iter_actors t f =
  refresh_order t;
  Array.iter
    (fun pos ->
      let a = Hashtbl.find t.actors pos in
      f
        {
          av_pos = a.Actor.pos;
          av_alive = a.Actor.alive;
          av_left = a.Actor.left;
          av_right = a.Actor.right;
          av_long = a.Actor.long;
          av_births = a.Actor.births;
          av_mail_length = Mailbox.length a.Actor.mailbox;
          av_mail_capacity = Mailbox.capacity a.Actor.mailbox;
          av_mail_dropped = Mailbox.dropped a.Actor.mailbox;
          av_mail_high_water = Mailbox.high_water a.Actor.mailbox;
          av_mail_well_ordered = Mailbox.well_ordered a.Actor.mailbox;
          av_mail_keys = Mailbox.keys a.Actor.mailbox;
        })
    t.order

type request_view = {
  rv_id : int;
  rv_src : int;
  rv_target : int;
  rv_issued : int;
  rv_done_at : int;
  rv_outcome : outcome option;
  rv_path : int list;
}

let request_outcome t ~request =
  match Hashtbl.find_opt t.requests request with
  | Some rq -> rq.rq_outcome
  | None -> None

let iter_requests t f =
  for id = 0 to t.next_request - 1 do
    match Hashtbl.find_opt t.requests id with
    | Some rq ->
        f
          {
            rv_id = rq.rq_id;
            rv_src = rq.rq_src;
            rv_target = rq.rq_target;
            rv_issued = rq.rq_issued;
            rv_done_at = rq.rq_done_at;
            rv_outcome = rq.rq_outcome;
            rv_path = rq.rq_path;
          }
    | None -> ()
  done
