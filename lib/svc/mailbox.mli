(** Deterministic actor mailboxes.

    Entries are kept sorted by the delivery key [(deliver_at, sender,
    per-sender sequence)] at all times, so a drain hands messages to the
    handler in an order that is a pure function of what was posted —
    never of domain scheduling. The key is strict (senders never reuse a
    sequence number), so no two entries tie.

    Concurrency contract — the seam [ftr_lint] T1 sanctions: the
    coordinator posts between rounds, the owning shard's worker drains
    during a round, and the round barrier ([Pool.run_resident]'s mutex
    hand-off, or [Domain.join] under [Pool.map]) sequences the two, so
    the mailbox needs no lock (docs/SERVICE.md). *)

type 'a entry = { e_time : int; e_src : int; e_seq : int; e_msg : 'a }

type 'a t

val default_capacity : int
(** 4096 entries. *)

val create : ?capacity:int -> owner:int -> unit -> 'a t
(** An empty mailbox for the actor at position [owner].
    @raise Invalid_argument if [capacity < 1]. *)

val post : 'a t -> time:int -> src:int -> seq:int -> 'a -> bool
(** Insert at the delivery-order position; [false] means the mailbox was
    at capacity and the message was dropped (and counted in
    {!dropped}) — the bounded-mailbox rule. *)

val next_due : 'a t -> int option
(** Earliest pending delivery time, if any. *)

val take_due : 'a t -> now:int -> 'a entry list
(** Remove and return every entry due at or before [now], in delivery
    order. *)

val owner : 'a t -> int

val capacity : 'a t -> int

val length : 'a t -> int

val dropped : 'a t -> int
(** Messages refused at capacity since creation. *)

val high_water : 'a t -> int
(** Maximum occupancy ever reached. *)

val is_empty : 'a t -> bool

val keys : 'a t -> (int * int * int) list
(** Stored [(time, src, seq)] keys in stored order, for validators. *)

val well_ordered : 'a t -> bool
(** Whether the stored order is strictly increasing under the delivery
    order — the invariant {!Ftr_check.Check.mailbox} re-checks. *)
