(* One overlay node as an actor. The handler is the synchronous overlay's
   protocol re-expressed over messages: every decision delegates to the
   shared pure rules in [Ftr_p2p.Protocol], so for a static network the
   actor and the event-heap overlay choose identical owners, hops and
   repairs (the equivalence property in test/test_svc.ml).

   Determinism discipline — what a handler may touch:
   - its own actor state (links, ring pointers, RNG, sequence counter),
   - the frozen per-round liveness view (read-only during a round),
   - the per-shard accumulators behind the [ctx] callbacks (outbox,
     counters, transcript, completions, departures).
   Nothing else: no other actor's state, no global registries, no wall
   clock. That confinement is what makes the merged transcript a pure
   function of (seed, logical time, sender, sequence). *)

module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample
module Protocol = Ftr_p2p.Protocol
open Message

type t = {
  pos : int;
  mutable alive : bool;
  mutable left : int option;
  mutable right : int option;
  mutable long : int list;
  mutable births : int list; (* local arrival order, aligned with [long] *)
  mutable next_seq : int; (* per-sender sequence numbers for [Mailbox] keys *)
  mutable birth_tick : int; (* local counter feeding [births] *)
  rng : Rng.t; (* per-actor stream: Seed.rng_for ~seed ~index:pos *)
  mailbox : payload Mailbox.t;
}

(* Worker-side event counters, merged by the coordinator in shard order. *)
type counters = {
  mutable c_messages : int; (* routed lookup forwards (overlay stats.messages) *)
  mutable c_replies : int; (* Resolved/Splice/Set_* service replies *)
  mutable c_probes : int;
  mutable c_repairs : int;
  mutable c_redirects : int;
  mutable c_maint_issued : int;
  mutable c_handled : int; (* envelopes processed *)
}

let fresh_counters () =
  {
    c_messages = 0;
    c_replies = 0;
    c_probes = 0;
    c_repairs = 0;
    c_redirects = 0;
    c_maint_issued = 0;
    c_handled = 0;
  }

let merge_counters ~into c =
  into.c_messages <- into.c_messages + c.c_messages;
  into.c_replies <- into.c_replies + c.c_replies;
  into.c_probes <- into.c_probes + c.c_probes;
  into.c_repairs <- into.c_repairs + c.c_repairs;
  into.c_redirects <- into.c_redirects + c.c_redirects;
  into.c_maint_issued <- into.c_maint_issued + c.c_maint_issued;
  into.c_handled <- into.c_handled + c.c_handled

(* Everything a handler is allowed to see beyond its own actor. [send]
   appends to the shard outbox (the coordinator posts it after the round
   barrier), [complete] records a lookup outcome for merge-time
   accounting, [depart] queues a membership change. *)
type ctx = {
  line_size : int;
  links : int;
  ttl : int;
  regenerate : bool;
  now : int;
  alive_view : Bytes.t; (* frozen for the round; 1 = live *)
  pl : Sample.power_law;
  counters : counters;
  send : src:t -> dst:int -> payload -> unit;
  complete : lookup -> outcome -> unit;
  depart : int -> unit;
}

let view_alive ctx pos = pos >= 0 && pos < ctx.line_size && Bytes.get ctx.alive_view pos = '\001'

let create ?capacity ~pos ~rng () =
  {
    pos;
    alive = true;
    left = None;
    right = None;
    long = [];
    births = [];
    next_seq = 0;
    birth_tick = 0;
    rng;
    mailbox = Mailbox.create ?capacity ~owner:pos ();
  }

let neighbors_of a = Option.to_list a.left @ Option.to_list a.right @ a.long

(* ------------------------------------------------------------------ *)
(* Link bookkeeping (mirrors Overlay's)                                *)
(* ------------------------------------------------------------------ *)

let remove_long a target =
  let rec drop ls bs =
    match (ls, bs) with
    | [], [] -> ([], [])
    | l :: ls', b :: bs' ->
        if l = target then (ls', bs')
        else
          let ls'', bs'' = drop ls' bs' in
          (l :: ls'', b :: bs'')
    | _ -> (ls, bs)
  in
  let ls, bs = drop a.long a.births in
  a.long <- ls;
  a.births <- bs

let add_long a target =
  a.birth_tick <- a.birth_tick + 1;
  a.long <- target :: a.long;
  a.births <- a.birth_tick :: a.births

(* Section 5's replacement rule on solicitation, with this actor's own
   stream standing in for the overlay's shared generator. *)
let consider_redirect ctx a ~newcomer =
  if newcomer <> a.pos then begin
    let weights = List.map (fun l -> 1.0 /. float_of_int (abs (a.pos - l))) a.long in
    let sum_old = List.fold_left ( +. ) 0.0 weights in
    if sum_old > 0.0 then begin
      let p_new = 1.0 /. float_of_int (abs (a.pos - newcomer)) in
      if Rng.float a.rng < p_new /. (sum_old +. p_new) then begin
        let target = Rng.float a.rng *. sum_old in
        let victim =
          let rec scan acc = function
            | [] -> None
            | (l, w) :: rest -> if acc +. w > target then Some l else scan (acc +. w) rest
          in
          scan 0.0 (List.combine a.long weights)
        in
        match victim with
        | Some v ->
            remove_long a v;
            add_long a newcomer;
            ctx.counters.c_redirects <- ctx.counters.c_redirects + 1
        | None -> ()
      end
    end
  end

let ring_probe ctx a ~from ~dir =
  Protocol.probe_ring
    ~alive:(fun pos -> view_alive ctx pos)
    ~line_size:ctx.line_size ~self:a.pos ~from ~dir
    ~on_probe:(fun () -> ctx.counters.c_probes <- ctx.counters.c_probes + 1)

(* ------------------------------------------------------------------ *)
(* Lookup processing                                                   *)
(* ------------------------------------------------------------------ *)

let tlog l step = if l.traced then { l with tlog_rev = step :: l.tlog_rev } else l

(* A lookup starting at this actor (a fresh maintenance lookup, or the
   local half of forwarding) runs inline at hop-issue time, exactly like
   the overlay's [lookup_step] recursion at the issuing node. *)
let rec start_lookup ctx a ~kind ~target =
  ctx.counters.c_maint_issued <- ctx.counters.c_maint_issued + 1;
  enter ctx a
    {
      request = -1;
      origin = a.pos;
      target;
      hops = 0;
      kind;
      traced = false;
      path_rev = [];
      tlog_rev = [];
    }

(* Arrival at a decision point: record the hop, check the TTL, scan.
   Re-entries after a repair come back here with unchanged hops, exactly
   like [Overlay.lookup_step]. *)
and enter ctx a l =
  let l = { l with path_rev = a.pos :: l.path_rev } in
  let l = tlog l (T_hop a.pos) in
  if l.hops >= ctx.ttl then
    ctx.complete l (Failed { stuck_at = a.pos; hops = l.hops; reason = "ttl_exceeded" })
  else scan ctx a l

and scan ctx a l =
  let neighbors = neighbors_of a in
  let choice = Protocol.best_candidate ~pos:a.pos ~target:l.target neighbors in
  let l =
    if not l.traced then l
    else begin
      let best = match choice with Some (v, _) -> v | None -> -1 in
      let l =
        List.fold_left
          (fun l v ->
            if v = best then l
            else
              let dist = abs (v - l.target) in
              tlog l
                (T_cand
                   {
                     cur = a.pos;
                     cand = v;
                     dist;
                     verdict =
                       (if Protocol.advances ~pos:a.pos ~target:l.target ~cand:v then V_not_best
                        else V_not_closer);
                   }))
          l neighbors
      in
      match choice with
      | Some (v, d) -> tlog l (T_cand { cur = a.pos; cand = v; dist = d; verdict = V_chosen })
      | None -> l
    end
  in
  match choice with
  | None -> deliver ctx a l
  | Some (best, best_dist) ->
      if view_alive ctx best then begin
        ctx.counters.c_messages <- ctx.counters.c_messages + 1;
        ctx.send ~src:a ~dst:best (Lookup { l with hops = l.hops + 1 })
      end
      else begin
        (* The probe discovers the pick is already dead: zero-latency
           repair, then re-enter with unchanged hops (the overlay's
           [on_dead_neighbor] path). *)
        ctx.counters.c_probes <- ctx.counters.c_probes + 1;
        let l =
          tlog l (T_cand { cur = a.pos; cand = best; dist = best_dist; verdict = V_dead })
        in
        repair ctx a ~dead:best;
        enter ctx a l
      end

(* This actor owns the target's basin. Maintenance kinds act at the
   owner (splice for placement, redirect for solicitation) and answer
   the origin where the protocol needs an answer. *)
and deliver ctx a l =
  (match l.kind with
  | User | Link -> ()
  | Placement { joiner } -> splice_in ctx a ~joiner
  | Solicit { newcomer } ->
      (* The overlay charges the solicitation answer as one message. *)
      ctx.counters.c_messages <- ctx.counters.c_messages + 1;
      consider_redirect ctx a ~newcomer);
  ctx.complete l (Delivered { owner = a.pos; hops = l.hops });
  match l.kind with
  | (User | Link) when l.origin <> a.pos ->
      ctx.counters.c_replies <- ctx.counters.c_replies + 1;
      ctx.send ~src:a ~dst:l.origin
        (Resolved { request = l.request; owner = a.pos; hops = l.hops; kind = l.kind })
  | User | Link | Placement _ | Solicit _ -> ()

(* The owner-side half of a join splice (Overlay.insert_into_ring over
   messages). The self-owner case — the placement lookup resolved to the
   joiner itself, which is visible to probes while its join is in
   flight — probes both directions and continues the join inline. *)
and splice_in ctx a ~joiner =
  if joiner = a.pos then begin
    a.left <- ring_probe ctx a ~from:a.pos ~dir:(-1);
    a.right <- ring_probe ctx a ~from:a.pos ~dir:1;
    (match a.left with
    | Some l ->
        ctx.counters.c_replies <- ctx.counters.c_replies + 1;
        ctx.send ~src:a ~dst:l (Set_right (Some a.pos))
    | None -> ());
    (match a.right with
    | Some r ->
        ctx.counters.c_replies <- ctx.counters.c_replies + 1;
        ctx.send ~src:a ~dst:r (Set_left (Some a.pos))
    | None -> ());
    continue_join ctx a
  end
  else if a.pos < joiner then begin
    (* The stale-pointer case: our right pointer may still name a dead
       previous occupant of the joiner's own position; re-probe past it
       rather than handing the joiner a self-loop. *)
    let succ =
      match a.right with
      | Some r when r = joiner -> ring_probe ctx a ~from:joiner ~dir:1
      | r -> r
    in
    a.right <- Some joiner;
    ctx.counters.c_replies <- ctx.counters.c_replies + 1;
    ctx.send ~src:a ~dst:joiner (Splice { left = Some a.pos; right = succ });
    match succ with
    | Some s ->
        ctx.counters.c_replies <- ctx.counters.c_replies + 1;
        ctx.send ~src:a ~dst:s (Set_left (Some joiner))
    | None -> ()
  end
  else begin
    let pred =
      match a.left with
      | Some lp when lp = joiner -> ring_probe ctx a ~from:joiner ~dir:(-1)
      | lp -> lp
    in
    a.left <- Some joiner;
    ctx.counters.c_replies <- ctx.counters.c_replies + 1;
    ctx.send ~src:a ~dst:joiner (Splice { left = pred; right = Some a.pos });
    match pred with
    | Some p ->
        ctx.counters.c_replies <- ctx.counters.c_replies + 1;
        ctx.send ~src:a ~dst:p (Set_right (Some joiner))
    | None -> ()
  end

(* Spliced in: build ℓ outgoing links through routed lookups and solicit
   Poisson(ℓ) incoming ones (Overlay.join steps 2 and 3). *)
and continue_join ctx a =
  for _ = 1 to ctx.links do
    let sink = Ftr_core.Network.sample_long_target ctx.pl a.rng ~n:ctx.line_size ~src:a.pos in
    start_lookup ctx a ~kind:Link ~target:sink
  done;
  let solicit = Sample.poisson a.rng ~lambda:(float_of_int ctx.links) in
  for _ = 1 to solicit do
    let sink = Ftr_core.Network.sample_long_target ctx.pl a.rng ~n:ctx.line_size ~src:a.pos in
    start_lookup ctx a ~kind:(Solicit { newcomer = a.pos }) ~target:sink
  done

(* Overlay.drop_dead_link over the frozen view: remove the dead long
   link (regenerating it when the config says so), re-probe ring
   pointers that named the dead node. *)
and repair ctx a ~dead =
  if List.mem dead a.long then begin
    remove_long a dead;
    ctx.counters.c_repairs <- ctx.counters.c_repairs + 1;
    if ctx.regenerate then begin
      let sink = Ftr_core.Network.sample_long_target ctx.pl a.rng ~n:ctx.line_size ~src:a.pos in
      start_lookup ctx a ~kind:Link ~target:sink
    end
  end;
  let points_at o = match o with Some p -> p = dead | None -> false in
  if points_at a.left then begin
    a.left <- ring_probe ctx a ~from:dead ~dir:(-1);
    ctx.counters.c_repairs <- ctx.counters.c_repairs + 1
  end;
  if points_at a.right then begin
    a.right <- ring_probe ctx a ~from:dead ~dir:1;
    ctx.counters.c_repairs <- ctx.counters.c_repairs + 1
  end

(* ------------------------------------------------------------------ *)
(* The handler                                                         *)
(* ------------------------------------------------------------------ *)

let handle ctx a (payload : payload) =
  ctx.counters.c_handled <- ctx.counters.c_handled + 1;
  match payload with
  | Lookup l -> enter ctx a l
  | Resolved { owner; kind = Link; _ } ->
      (* Claim the long link the routed lookup found, under the budget;
         dead origins never get here (the coordinator drains dead
         mailboxes), matching the overlay callback's [node.alive] guard. *)
      if owner <> a.pos && (not (List.mem owner a.long)) && List.length a.long < ctx.links then
        add_long a owner
  | Resolved _ -> ()
  | Splice { left; right } ->
      a.left <- left;
      a.right <- right;
      continue_join ctx a
  | Set_left v -> a.left <- v
  | Set_right v -> a.right <- v
  | Stabilize ->
      let candidates = Array.of_list (neighbors_of a) in
      if Array.length candidates > 0 then begin
        let v = candidates.(Rng.int a.rng (Array.length candidates)) in
        ctx.counters.c_probes <- ctx.counters.c_probes + 1;
        if not (view_alive ctx v) then repair ctx a ~dead:v
      end
  | Leave_now ->
      (match a.left with
      | Some l when view_alive ctx l ->
          ctx.counters.c_replies <- ctx.counters.c_replies + 1;
          ctx.send ~src:a ~dst:l (Set_right a.right)
      | Some _ | None -> ());
      (match a.right with
      | Some r when view_alive ctx r ->
          ctx.counters.c_replies <- ctx.counters.c_replies + 1;
          ctx.send ~src:a ~dst:r (Set_left a.left)
      | Some _ | None -> ());
      a.alive <- false;
      ctx.depart a.pos
  | Bounce { dead; lookup = l } ->
      (* Our chosen candidate crashed with the lookup in flight: record
         the dead pick, repair, re-scan with unchanged hops. *)
      let l = tlog l (T_cand { cur = a.pos; cand = dead; dist = abs (dead - l.target); verdict = V_dead }) in
      repair ctx a ~dead;
      enter ctx a l
