(* Structural reasoning about instantiation types, without an Env.

   Reconstructing a full typing environment from a cmt needs the load
   path of every dependency; instead the typed stage collects the type
   declarations of every unit it loads into one table and expands
   [Tconstr] heads through it. Stdlib types are classified by name.
   The two questions the rules ask:

   - [comparison_unsafe]: would polymorphic compare/=/min at this
     instantiation misbehave — a float buried in a structure (slow,
     NaN-ordering), an arrow (raises), an abstract/opaque constructor
     (meaning changes with the representation)? (T3)

   - [mutability]: does a value of this type contain unsanctioned
     mutable state — ref cells, arrays, hashtables, buffers, mutable
     record fields — as opposed to the sanctioned seams (Atomic.t,
     Mutex.t, Domain.DLS.key, Semaphore, Condition)? (T1) *)

type decl =
  | Alias of Types.type_expr
  | Record of { fields : Types.type_expr list; has_mutable : bool }
  | Variant of Types.type_expr list (* every constructor argument type *)
  | Opaque

type table = (string, decl) Hashtbl.t

let path_parts p = String.split_on_char '.' (Path.name p)

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let dotted_of_path p = String.concat "." (strip_stdlib (path_parts p))

(* ------------------------------------------------------------------ *)
(* Declaration table                                                   *)
(* ------------------------------------------------------------------ *)

let decl_of_type_declaration (td : Types.type_declaration) =
  match td.type_kind with
  | Types.Type_record (lds, _) ->
      Record
        {
          fields = List.map (fun (ld : Types.label_declaration) -> ld.ld_type) lds;
          has_mutable =
            List.exists
              (fun (ld : Types.label_declaration) ->
                match ld.ld_mutable with Asttypes.Mutable -> true | Asttypes.Immutable -> false)
              lds;
        }
  | Types.Type_variant (cds, _) ->
      Variant
        (List.concat_map
           (fun (cd : Types.constructor_declaration) ->
             match cd.cd_args with
             | Types.Cstr_tuple tys -> tys
             | Types.Cstr_record lds ->
                 List.map (fun (ld : Types.label_declaration) -> ld.ld_type) lds)
           cds)
  | Types.Type_abstract -> (
      match td.type_manifest with Some ty -> Alias ty | None -> Opaque)
  | Types.Type_open -> Opaque

(* Register [decl] under every name a use site may carry: the mangled
   unit ("Ftr_core__Route.outcome"), the wrapper alias spelling
   ("Ftr_core.Route.outcome") and, for unprefixed units, the bare one. *)
let decl_keys ~modname ~subpath tyname =
  let inner = String.concat "." (subpath @ [ tyname ]) in
  let keys = [ modname ^ "." ^ inner ] in
  match Suppress.find_sub modname "__" with
  | Some i ->
      let lib = String.sub modname 0 i in
      let sub = String.sub modname (i + 2) (String.length modname - i - 2) in
      (lib ^ "." ^ sub ^ "." ^ inner) :: keys
  | None -> keys

let add_unit_decls (table : table) (u : Cmt_loader.unit_info) =
  let rec items subpath (its : Typedtree.structure_item list) =
    List.iter
      (fun (it : Typedtree.structure_item) ->
        match it.str_desc with
        | Typedtree.Tstr_type (_, tds) ->
            List.iter
              (fun (td : Typedtree.type_declaration) ->
                let d = decl_of_type_declaration td.typ_type in
                List.iter
                  (fun k -> if not (Hashtbl.mem table k) then Hashtbl.add table k d)
                  (decl_keys ~modname:u.modname ~subpath (Ident.name td.typ_id)))
              tds
        | Typedtree.Tstr_module mb -> module_binding subpath mb
        | Typedtree.Tstr_recmodule mbs -> List.iter (module_binding subpath) mbs
        | _ -> ())
      its
  and module_binding subpath (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec of_expr (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Typedtree.Tmod_structure str -> items (subpath @ [ name ]) str.str_items
      | Typedtree.Tmod_constraint (me, _, _, _) -> of_expr me
      | _ -> ()
    in
    of_expr mb.mb_expr
  in
  items [] u.structure.str_items

let build_table units =
  let table : table = Hashtbl.create 256 in
  List.iter (add_unit_decls table) units;
  table

(* ------------------------------------------------------------------ *)
(* Stdlib classification                                               *)
(* ------------------------------------------------------------------ *)

(* Atomic types polymorphic comparison handles exactly. *)
let safe_atomic =
  [ "int"; "bool"; "char"; "string"; "bytes"; "unit"; "int32"; "int64"; "nativeint" ]

(* Containers safe iff their parameters are: recurse. *)
let safe_parametric = [ "list"; "option"; "array"; "ref"; "result"; "Either.t"; "Seq.t" ]

(* Sanctioned concurrency seams: opaque, never themselves "shared
   mutable state" for T1 (their whole point is domain-safe access). *)
let sanctioned_heads =
  [
    "Atomic.t";
    "Mutex.t";
    "Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
    "Domain.DLS.key";
  ]

(* Stdlib mutable containers (beyond [ref]/[array]/[bytes], which are
   handled structurally). *)
let mutable_heads =
  [ "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t"; "Weak.t"; "Random.State.t" ]

(* Stdlib self-aliases ([String.t] = [string], [Float.t] = [float], ...)
   so [compare] at [Float.t] is judged exactly like [compare] at
   [float]. *)
let stdlib_alias = function
  | "Int.t" -> Some "int"
  | "Bool.t" -> Some "bool"
  | "Char.t" -> Some "char"
  | "String.t" -> Some "string"
  | "Bytes.t" -> Some "bytes"
  | "Float.t" -> Some "float"
  | "Int32.t" -> Some "int32"
  | "Int64.t" -> Some "int64"
  | "Nativeint.t" -> Some "nativeint"
  | "Unit.t" -> Some "unit"
  | _ -> None

let mem_s x l = List.exists (String.equal x) l

(* [Ftr_svc.Mailbox.t] is the service's deterministic actor mailbox:
   the coordinator posts between rounds, the owning shard's worker
   drains during one, and the round barrier sequences the two, so a
   mailbox handed through [Pool] workers is a sanctioned seam, not
   shared mutable state (docs/SERVICE.md). Depending on how a .cmt
   spells the path the head can read [Mailbox.t], [Ftr_svc.Mailbox.t]
   or [Ftr_svc__Mailbox.t], so match on the trailing components. *)
let sanctioned_head head =
  mem_s head sanctioned_heads
  ||
  match List.rev (String.split_on_char '.' head) with
  | "t" :: m :: _ -> String.equal m "Mailbox" || String.ends_with ~suffix:"__Mailbox" m
  | _ -> false

(* Resolve a [Tconstr] head against the declaration table. Heads are
   spelled the way the use site's [Path] prints: a same-unit reference
   is bare ("side"), a via-alias reference is partially qualified
   ("Route.side"), a cross-unit one is fully qualified. Lookup order:
   exact key, then qualified by the using unit's module name, then a
   unique-suffix match over the table (sorted for determinism). *)
let find_decl (table : table) ~modname head =
  match Hashtbl.find_opt table head with
  | Some d -> Some d
  | None -> (
      match Hashtbl.find_opt table (modname ^ "." ^ head) with
      | Some d -> Some d
      | None ->
          let suffix = "." ^ head in
          Hashtbl.fold
            (fun k d acc ->
              if String.length k > String.length suffix
                 && String.equal (String.sub k (String.length k - String.length suffix)
                                    (String.length suffix)) suffix
              then
                match acc with
                | Some (k', _) when String.compare k' k <= 0 -> acc
                | _ -> Some (k, d)
              else acc)
            table None
          |> Option.map snd)

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let max_depth = 24

(* [comparison_unsafe table ty] is [Some reason] when polymorphic
   comparison at instantiation [ty] is flagged. [strict_float]: treat a
   bare (unnested) float as unsafe too — on for [compare]/[min]/[max]
   and [=]/[<>] (total-order and NaN-equality pitfalls; use
   Float.compare/equal), off for [<]/[<=]/[>]/[>=], which the compiler
   specialises to IEEE comparisons when the type is known. *)
let comparison_unsafe (table : table) ~modname ~strict_float ty =
  let seen = Hashtbl.create 16 in
  (* [nested] is true once we are inside a structure: a float there is
     always unsafe (boxed traversal + NaN ordering). *)
  let rec go ~nested depth ty =
    if depth > max_depth then None
    else
      match Types.get_desc ty with
      | Types.Tvar _ | Types.Tunivar _ -> None (* still polymorphic here: judge the callers *)
      | Types.Tarrow _ -> Some "a function (polymorphic comparison raises on closures)"
      | Types.Ttuple tys -> first (depth + 1) tys
      | Types.Tpoly (ty, _) -> go ~nested depth ty
      | Types.Tobject _ | Types.Tfield _ | Types.Tnil ->
          Some "an object (polymorphic comparison raises on objects)"
      | Types.Tvariant _ -> None (* polymorphic variants of safe payloads; payloads opaque here *)
      | Types.Tconstr (p, args, _) -> (
          let head = dotted_of_path p in
          let head = Option.value ~default:head (stdlib_alias head) in
          if String.equal head "float" then
            if nested || strict_float then
              Some
                (if nested then "a float-containing structure (NaN ordering, boxed traversal)"
                 else "a float (use Float.compare / Float.equal)")
            else None
          else if mem_s head safe_atomic then None
          else if mem_s head safe_parametric then first ~nested:true (depth + 1) args
          else if String.equal head "exn" || sanctioned_head head
                  || mem_s head mutable_heads then
            Some (Printf.sprintf "the opaque type %s" head)
          else if Hashtbl.mem seen head then None
          else begin
            Hashtbl.add seen head ();
            match find_decl table ~modname head with
            | Some (Alias ty) -> go ~nested (depth + 1) ty
            | Some (Record { fields; _ }) -> first ~nested:true (depth + 1) fields
            | Some (Variant tys) -> first ~nested:true (depth + 1) tys
            | Some Opaque | None ->
                Some
                  (Printf.sprintf
                     "the abstract type %s (representation changes silently change the order)"
                     head)
          end)
      | _ -> None
  and first ?(nested = true) depth tys =
    List.fold_left
      (fun acc ty -> match acc with Some _ -> acc | None -> go ~nested depth ty)
      None tys
  in
  go ~nested:false 0 ty

type mutability = Immutable | Mutable of string | Sanctioned

(* Does a value of type [ty] contain unsanctioned shared-mutable state?
   A type whose only mutability sits behind Atomic/Mutex/DLS heads is
   [Sanctioned]; arrow types are [Immutable] (a closure is code, its
   captures are charged where they are defined). *)
let mutability (table : table) ~modname ty =
  let seen = Hashtbl.create 16 in
  let saw_sanctioned = ref false in
  let rec go depth ty =
    if depth > max_depth then None
    else
      match Types.get_desc ty with
      | Types.Tarrow _ | Types.Tvar _ | Types.Tunivar _ -> None
      | Types.Ttuple tys -> first (depth + 1) tys
      | Types.Tpoly (ty, _) -> go depth ty
      | Types.Tconstr (p, args, _) -> (
          let head = dotted_of_path p in
          let head = Option.value ~default:head (stdlib_alias head) in
          if sanctioned_head head then begin
            saw_sanctioned := true;
            None
          end
          else if String.equal head "ref" then Some "a ref cell"
          else if String.equal head "array" then Some "an array"
          else if String.equal head "bytes" then Some "mutable bytes"
          else if mem_s head mutable_heads then Some (head ^ " (mutable container)")
          else if mem_s head safe_atomic || String.equal head "float" then None
          else if mem_s head safe_parametric then first (depth + 1) args
          else if Hashtbl.mem seen head then None
          else begin
            Hashtbl.add seen head ();
            match find_decl table ~modname head with
            | Some (Alias ty) -> go (depth + 1) ty
            | Some (Record { has_mutable = true; _ }) ->
                Some (Printf.sprintf "%s (record with mutable fields)" head)
            | Some (Record { fields; _ }) -> first (depth + 1) fields
            | Some (Variant tys) -> first (depth + 1) tys
            | Some Opaque | None -> None (* opaque and unknown: give the benefit of the doubt *)
          end)
      | _ -> None
  and first depth tys =
    List.fold_left
      (fun acc ty -> match acc with Some _ -> acc | None -> go depth ty)
      None tys
  in
  match go 0 ty with
  | Some why -> Mutable why
  | None -> if !saw_sanctioned then Sanctioned else Immutable
