(* The flow-sensitive rule engine: per-unit analysis over the CFGs of
   cfg.ml, run through the dataflow engine of dataflow.ml.

   D1 gate-dominance        -- a [Metrics]/[Events] write must be
      dominated by a [Flag.enabled] check on every CFG path from
      function entry; [Tracing] step writers may alternatively be
      dominated by a [Tracing.is_live]/[Tracing.recording] check (the
      null-trace guard — [begin_route] hands out null traces when the
      flag is off, so liveness implies the flag was consulted).
      Closures inherit the fact at their definition site: a callback
      built under [if obs then ...] keeps the gate (route.ml's
      [on_hop]). This replaces the R3/R4 3-ancestor heuristic; those
      rules demote to a parse-only fallback when no .cmt is available
      (driver.ml).
   D2 resource-typestate    -- the lifecycle automata of typestate.ml,
      checked path-sensitively: scratch restored on every path after
      borrow, [Snapshot.load ~validate:false] results validated before
      routing, programmatic [Events] sinks flushed.
   D3 message-protocol      -- every [Ftr_svc.Message.payload]
      constructor must be explicitly headed in some dispatch match
      outside the Message unit itself when any dispatch carries a
      catch-all (the catch-all would silently swallow a new
      constructor); and mailbox envelopes must move through
      [Mailbox.post] — raw mutation of envelope-carrying storage
      outside lib/svc/mailbox.ml / lib/svc/service.ml is flagged.
      Constructor coverage is a whole-corpus fact, so the per-unit pass
      only collects declarations/heads/catch-alls; the driver merges
      them ([d3_findings]).
   D4 loop-invariant-flag-reload -- in a [ftr-lint: hot] module, a
      [Flag.enabled] re-read inside a loop whose body provably does not
      write the flag (no set_mode/with_mode/suppress_in_domain). *)

open Typedtree

let contains s sub = Suppress.find_sub s sub <> None

let finding rule (l : Cfg.loc) message =
  { Finding.file = l.Cfg.l_file; line = l.Cfg.l_line; col = l.Cfg.l_col; rule; message }

(* ------------------------------------------------------------------ *)
(* Path normalisation: stdlib stripping + unit-level module aliases    *)
(* ------------------------------------------------------------------ *)

(* [module T = Ftr_obs.Tracing] makes every [T.is_live] print with head
   [T]; expanding the alias keeps the rule tables spelling-independent. *)
let collect_aliases (u : Cmt_loader.unit_info) =
  let aliases : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let add name (me : module_expr) =
    let rec target (me : module_expr) =
      match me.mod_desc with
      | Tmod_ident (p, _) -> Some (Type_probe.strip_stdlib (String.split_on_char '.' (Path.name p)))
      | Tmod_constraint (me, _, _, _) -> target me
      | _ -> None
    in
    match target me with Some parts -> Hashtbl.replace aliases name parts | None -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      module_binding =
        (fun it mb ->
          (match mb.mb_name.txt with Some n -> add n mb.mb_expr | None -> ());
          Tast_iterator.default_iterator.module_binding it mb);
    }
  in
  it.structure it u.structure;
  aliases

let norm_parts aliases p =
  let parts = Type_probe.strip_stdlib (String.split_on_char '.' (Path.name p)) in
  match parts with
  | m :: rest -> ( match Hashtbl.find_opt aliases m with Some exp -> exp @ rest | None -> parts)
  | [] -> parts

let is_trace_live parts =
  match List.rev parts with
  | ("is_live" | "recording") :: m :: _ -> Typed_rules.module_head m "Tracing"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Gate variables (both families, one level of fixpoint)               *)
(* ------------------------------------------------------------------ *)

(* Stamps of non-function let-bound names whose RHS consults a gate:
   [let obs = Flag.enabled ()], [let tracing = Flag.enabled () &&
   Tracing.is_live tr], and one-step chains of those. *)
let collect_gate_vars aliases (u : Cmt_loader.unit_info) =
  let vars : (string, Cfg.gates) Hashtbl.t = Hashtbl.create 16 in
  let gates_of_expr e =
    let acc = ref Cfg.no_gates in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.exp_desc with
            | Texp_ident (p, _, _) ->
                let parts = norm_parts aliases p in
                if Cfg.is_flag_enabled parts then acc := { !acc with Cfg.g_flag = true };
                if is_trace_live parts then acc := { !acc with Cfg.g_trace = true };
                (match p with
                | Path.Pident id -> (
                    match Hashtbl.find_opt vars (Ident.unique_name id) with
                    | Some g -> acc := Cfg.join_gates !acc g
                    | None -> ())
                | _ -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it e;
    !acc
  in
  let round () =
    let changed = ref false in
    let it =
      {
        Tast_iterator.default_iterator with
        value_binding =
          (fun it vb ->
            (match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | Tpat_var (id, _), rhs when (match rhs with Texp_function _ -> false | _ -> true)
              ->
                let g = gates_of_expr vb.vb_expr in
                let key = Ident.unique_name id in
                let old = Option.value ~default:Cfg.no_gates (Hashtbl.find_opt vars key) in
                let merged = Cfg.join_gates old g in
                if merged <> old then begin
                  Hashtbl.replace vars key merged;
                  changed := true
                end
            | _ -> ());
            Tast_iterator.default_iterator.value_binding it vb);
      }
    in
    it.structure it u.structure;
    !changed
  in
  let rounds = ref 0 in
  while round () && !rounds < 5 do
    incr rounds
  done;
  (vars, gates_of_expr)

(* ------------------------------------------------------------------ *)
(* D1: gate dominance                                                  *)
(* ------------------------------------------------------------------ *)

(* Writers that allocate (or do work) at the call site when FTR_OBS is
   off, split by which gate family excuses them. Config setters
   ([set_mode], [reset], [set_seed], ...) and self-gating entry points
   ([begin_route] consults [recording] internally and hands back a null
   trace) are deliberately absent. *)
let d1_writer parts =
  match List.rev parts with
  | ("incr" | "incr_by" | "set_gauge" | "observe" | "observe_int") :: m :: _
    when Typed_rules.module_head m "Metrics" ->
      Some `Flag
  | "emit" :: m :: _ when Typed_rules.module_head m "Events" -> Some `Flag
  | ("set_context" | "hop" | "candidate" | "backtrack" | "reroute" | "finish" | "push_step"
    | "note_time")
    :: m
    :: _
    when Typed_rules.module_head m "Tracing" ->
      Some `Trace
  | _ -> None

module D1_dom = struct
  type fact = Cfg.gates

  let equal (a : fact) b = a = b
  let join (a : Cfg.gates) (b : Cfg.gates) =
    { Cfg.g_flag = a.Cfg.g_flag && b.Cfg.g_flag; g_trace = a.Cfg.g_trace && b.Cfg.g_trace }

  let event ev (fact : fact) =
    match ev with
    | Cfg.Call c -> (
        match List.rev c.Cfg.c_parts with
        | "set_mode" :: m :: _ when Typed_rules.module_head m "Flag" ->
            let lit =
              match c.Cfg.c_args with a :: _ -> a.Cfg.a_bool | [] -> None
            in
            { fact with Cfg.g_flag = (match lit with Some b -> b | None -> false) }
        | ("restore_mode" | "suppress_in_domain") :: m :: _ when Typed_rules.module_head m "Flag"
          ->
            { fact with Cfg.g_flag = false }
        | _ -> fact)
    | Cfg.Bind _ | Cfg.Closure _ -> fact

  let branch (g : Cfg.gates) ~taken (fact : fact) =
    if taken then Cfg.join_gates fact g else fact
end

module D1_flow = Dataflow.Forward (D1_dom)

(* ------------------------------------------------------------------ *)
(* D2: typestate                                                       *)
(* ------------------------------------------------------------------ *)

module D2_dom = struct
  type state = Held | Released | Unvalidated | Validated
  type owner = Anon | Var of string

  type inst = { i_proto : int; i_owner : owner; i_loc : Cfg.loc; i_state : state }

  type fact = inst list (* sorted by key *)

  let compare_owner a b =
    match (a, b) with
    | Anon, Anon -> 0
    | Anon, Var _ -> -1
    | Var _, Anon -> 1
    | Var x, Var y -> String.compare x y

  let compare_loc (a : Cfg.loc) (b : Cfg.loc) =
    let c = String.compare a.Cfg.l_file b.Cfg.l_file in
    if c <> 0 then c
    else
      let c = Int.compare a.Cfg.l_line b.Cfg.l_line in
      if c <> 0 then c else Int.compare a.Cfg.l_col b.Cfg.l_col

  let compare_inst a b =
    let c = Int.compare a.i_proto b.i_proto in
    if c <> 0 then c
    else
      let c = compare_owner a.i_owner b.i_owner in
      if c <> 0 then c else compare_loc a.i_loc b.i_loc

  let sort = List.sort compare_inst

  let state_rank = function Held -> 0 | Released -> 1 | Unvalidated -> 2 | Validated -> 3

  let equal_inst a b =
    compare_inst a b = 0 && Int.equal (state_rank a.i_state) (state_rank b.i_state)

  let equal (a : fact) b = List.equal equal_inst a b

  let worse a b =
    match (a, b) with
    | Held, _ | _, Held -> Held
    | Unvalidated, _ | _, Unvalidated -> Unvalidated
    | Released, Released -> Released
    | Validated, x | x, Validated -> x

  let rec join (a : fact) (b : fact) =
    match (a, b) with
    | [], r | r, [] -> r
    | x :: a', y :: b' ->
        let c = compare_inst x y in
        if c = 0 then { x with i_state = worse x.i_state y.i_state } :: join a' b'
        else if c < 0 then x :: join a' b'
        else y :: join a b'

  let protocols = Array.of_list Typestate.protocols

  let event ev (fact : fact) =
    match ev with
    | Cfg.Closure _ -> fact
    | Cfg.Bind { bv_id; bv_rhs = Some l; _ } ->
        (* Rebind the acquisition the RHS just produced to the variable. *)
        if List.exists (fun i -> i.i_owner = Anon && i.i_loc = l) fact then
          sort
            (List.map
               (fun i -> if i.i_owner = Anon && i.i_loc = l then { i with i_owner = Var bv_id } else i)
               fact)
        else fact
    | Cfg.Bind _ -> fact
    | Cfg.Call c ->
        let fact = ref fact in
        Array.iteri
          (fun pi (p : Typestate.proto) ->
            let idents =
              List.filter_map (fun (a : Cfg.arg) -> a.Cfg.a_ident) c.Cfg.c_args
            in
            if Typestate.matches c.Cfg.c_parts p.Typestate.p_release then begin
              let to_state =
                match p.Typestate.p_kind with
                | Typestate.Must_release -> Released
                | Typestate.Validate_before_use -> Validated
              in
              let by_ident i =
                match i.i_owner with Var v -> List.mem v idents | Anon -> false
              in
              let any_by_ident = List.exists (fun i -> i.i_proto = pi && by_ident i) !fact in
              fact :=
                List.map
                  (fun i ->
                    if i.i_proto = pi && (by_ident i || not any_by_ident) then
                      { i with i_state = to_state }
                    else i)
                  !fact
            end;
            if Typestate.acquires p c then begin
              let init =
                match p.Typestate.p_kind with
                | Typestate.Must_release -> Held
                | Typestate.Validate_before_use -> Unvalidated
              in
              let i = { i_proto = pi; i_owner = Anon; i_loc = c.Cfg.c_loc; i_state = init } in
              fact := sort (i :: List.filter (fun j -> compare_inst i j <> 0) !fact)
            end)
          protocols;
        !fact

  let branch _ ~taken:_ fact = fact
end

module D2_flow = Dataflow.Forward (D2_dom)

(* ------------------------------------------------------------------ *)
(* D3: protocol facts (merged across units by the driver)              *)
(* ------------------------------------------------------------------ *)

type d3 = {
  d3_ctors : (string * Cfg.loc) list; (* payload constructor declarations *)
  d3_explicit : string list; (* constructors explicitly headed in a dispatch *)
  d3_catchall : Cfg.loc list; (* dispatch sites with a wildcard arm *)
}

let empty_d3 = { d3_ctors = []; d3_explicit = []; d3_catchall = [] }

let is_message_unit modname = Typed_rules.module_head modname "Message"

(* The scrutinee type of a payload dispatch, under any spelling. *)
let is_payload_type (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match List.rev (String.split_on_char '.' (Path.name p)) with
      | "payload" :: m :: _ -> Typed_rules.module_head m "Message"
      | [ "payload" ] -> true (* inside the Message unit itself; excluded by scope *)
      | _ -> false)
  | _ -> false

(* Top-level constructor heads of one arm; wildcard/variable arms count
   as a catch-all. Nested patterns (payload arguments) are not heads. *)
let rec pattern_heads : type k. k general_pattern -> string list * bool =
 fun p ->
  match p.pat_desc with
  | Tpat_construct (_, cd, _, _) -> ([ cd.Types.cstr_name ], false)
  | Tpat_or (a, b, _) ->
      let ha, wa = pattern_heads a and hb, wb = pattern_heads b in
      (ha @ hb, wa || wb)
  | Tpat_alias (p, _, _) -> pattern_heads p
  | Tpat_value v -> pattern_heads (v :> value general_pattern)
  | Tpat_var _ | Tpat_any -> ([], true)
  | _ -> ([], false)

let loc_to (file : string) (loc : Location.t) =
  let pos = loc.Location.loc_start in
  let f = if String.equal pos.Lexing.pos_fname "" then file else pos.Lexing.pos_fname in
  { Cfg.l_file = f; l_line = pos.Lexing.pos_lnum; l_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol }

let collect_d3 (u : Cmt_loader.unit_info) =
  let ctors = ref [] and explicit = ref [] and catchall = ref [] in
  let in_message_module = ref (is_message_unit u.modname) in
  let record_cases : type k. string -> Location.t -> k case list -> unit =
   fun file loc cases ->
    let heads, wild =
      List.fold_left
        (fun (hs, w) (c : k case) ->
          let h, cw = pattern_heads c.c_lhs in
          (* A guarded wildcard still falls through, but a guarded arm
             never completes coverage either way; count heads only. *)
          (hs @ h, w || (cw && Option.is_none c.c_guard)))
        ([], false) cases
    in
    explicit := heads @ !explicit;
    if wild then catchall := loc_to file loc :: !catchall
  in
  let expr (it : Tast_iterator.iterator) (e : expression) =
    (if not !in_message_module then
       match e.exp_desc with
       | Texp_match (scrut, cases, _) when is_payload_type scrut.exp_type ->
           record_cases u.source e.exp_loc cases
       | Texp_function { cases = (_ :: _ :: _ as cases); _ }
         when is_payload_type (List.hd cases).c_lhs.pat_type ->
           record_cases u.source e.exp_loc cases
       | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let structure_item (it : Tast_iterator.iterator) (si : structure_item) =
    match si.str_desc with
    | Tstr_type (_, tds) ->
        List.iter
          (fun (td : type_declaration) ->
            if
              String.equal td.typ_name.txt "payload"
              && (!in_message_module || is_message_unit u.modname)
            then
              match td.typ_kind with
              | Ttype_variant cds ->
                  List.iter
                    (fun (cd : constructor_declaration) ->
                      ctors := (cd.cd_name.txt, loc_to u.source cd.cd_loc) :: !ctors)
                    cds
              | _ -> ())
          tds;
        Tast_iterator.default_iterator.structure_item it si
    | Tstr_module mb ->
        let saved = !in_message_module in
        (match mb.mb_name.txt with
        | Some n when Typed_rules.module_head n "Message" -> in_message_module := true
        | _ -> ());
        Tast_iterator.default_iterator.structure_item it si;
        in_message_module := saved
    | _ -> Tast_iterator.default_iterator.structure_item it si
  in
  let it = { Tast_iterator.default_iterator with expr; structure_item } in
  it.structure it u.structure;
  {
    d3_ctors = List.rev !ctors;
    d3_explicit = List.sort_uniq String.compare !explicit;
    d3_catchall = List.rev !catchall;
  }

(* Coordinator-side D3a: a constructor no dispatch heads explicitly,
   while some dispatch carries a catch-all that would swallow it. *)
let d3_findings (per_unit : d3 list) =
  let explicit =
    List.sort_uniq String.compare (List.concat_map (fun d -> d.d3_explicit) per_unit)
  in
  let catchalls = List.concat_map (fun d -> d.d3_catchall) per_unit in
  let ctors = List.concat_map (fun d -> d.d3_ctors) per_unit in
  match catchalls with
  | [] -> []
  | ca :: _ ->
      List.filter_map
        (fun (name, loc) ->
          if List.mem name explicit then None
          else
            Some
              (finding Finding.D3 loc
                 (Printf.sprintf
                    "payload constructor %s is never matched explicitly in any dispatch; the \
                     catch-all arm at %s:%d would silently swallow it — head it explicitly in \
                     Actor's dispatch"
                    name ca.Cfg.l_file ca.Cfg.l_line)))
        ctors

(* ------------------------------------------------------------------ *)
(* D3b: raw mutation of envelope-carrying storage                      *)
(* ------------------------------------------------------------------ *)

let sanctioned_mailbox_files = [ "lib/svc/mailbox.ml"; "lib/svc/service.ml" ]

let rec type_mentions_envelope depth (ty : Types.type_expr) =
  depth > 0
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      (match List.rev (String.split_on_char '.' (Path.name p)) with
      | "envelope" :: m :: _ -> Typed_rules.module_head m "Message"
      | _ -> false)
      || List.exists (type_mentions_envelope (depth - 1)) args
  | Types.Ttuple ts -> List.exists (type_mentions_envelope (depth - 1)) ts
  | _ -> false

let is_raw_mutator parts =
  match List.rev parts with
  | ":=" :: _ -> true
  | ("add" | "push") :: m :: _ when Typed_rules.module_head m "Queue" || Typed_rules.module_head m "Stack"
    ->
      true
  | ("add" | "replace") :: m :: _ when Typed_rules.module_head m "Hashtbl" -> true
  | ("set" | "unsafe_set") :: m :: _ when Typed_rules.module_head m "Array" -> true
  | _ -> false

let collect_d3b aliases (u : Cmt_loader.unit_info) =
  if List.exists (fun sfx -> Filename.check_suffix u.source sfx) sanctioned_mailbox_files then []
  else begin
    let acc = ref [] in
    let flag loc =
      acc :=
        finding Finding.D3 (loc_to u.source loc)
          "raw mutation of Message.envelope-carrying storage outside Mailbox; sends must go \
           through Mailbox.post so delivery order stays a pure function of (seed, time, src, \
           seq) (docs/SERVICE.md)"
        :: !acc
    in
    let expr (it : Tast_iterator.iterator) (e : expression) =
      (match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
        when is_raw_mutator (norm_parts aliases p) ->
          if
            List.exists
              (fun (_, a) ->
                match a with
                | Some (a : expression) -> type_mentions_envelope 5 a.exp_type
                | None -> false)
              args
          then flag e.exp_loc
      | Texp_setfield (_, _, ld, v) ->
          if type_mentions_envelope 5 v.exp_type || type_mentions_envelope 5 ld.Types.lbl_arg
          then flag e.exp_loc
      | _ -> ());
      Tast_iterator.default_iterator.expr it e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.structure it u.structure;
    List.rev !acc
  end

(* ------------------------------------------------------------------ *)
(* Per-unit driver                                                     *)
(* ------------------------------------------------------------------ *)

let toplevel_cfgs ctx (u : Cmt_loader.unit_info) =
  let acc = ref [] in
  let rec items its = List.iter item its
  and item (it : structure_item) =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter (fun (vb : value_binding) -> acc := Cfg.build ctx vb.vb_expr :: !acc) vbs
    | Tstr_eval (e, _) -> acc := Cfg.build ctx e :: !acc
    | Tstr_module mb -> module_binding mb
    | Tstr_recmodule mbs -> List.iter module_binding mbs
    | _ -> ()
  and module_binding (mb : module_binding) =
    let rec of_expr (me : module_expr) =
      match me.mod_desc with
      | Tmod_structure str -> items str.str_items
      | Tmod_constraint (me, _, _, _) -> of_expr me
      | _ -> ()
    in
    of_expr mb.mb_expr
  in
  items u.structure.str_items;
  List.rev !acc

let analyze_unit ~hot (u : Cmt_loader.unit_info) =
  let aliases = collect_aliases u in
  let _gate_vars, gates_of_expr = collect_gate_vars aliases u in
  let ctx =
    { Cfg.file = u.source; norm_parts = norm_parts aliases; cond_gates = gates_of_expr }
  in
  let in_obs = contains u.source "lib/obs/" in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let rec analyze_cfg ~(d1 : Cfg.gates) (cfg : Cfg.t) =
    (* D1 (also drives recursion into closures with inherited facts). *)
    let d1_facts = D1_flow.solve cfg ~entry_fact:d1 in
    let closures = ref [] in
    D1_flow.iter_events cfg d1_facts (fun ev fact ->
        match ev with
        | Cfg.Closure cl -> closures := (cl, fact) :: !closures
        | Cfg.Call c when not in_obs -> (
            match d1_writer c.Cfg.c_parts with
            | Some `Flag when not fact.Cfg.g_flag ->
                add
                  (finding Finding.D1 c.Cfg.c_loc
                     (Printf.sprintf
                        "telemetry write %s is not dominated by a Flag.enabled check on every \
                         path from function entry; guard it so FTR_OBS=0 stays \
                         allocation-free (docs/OBSERVABILITY.md)"
                        (String.concat "." c.Cfg.c_parts)))
            | Some `Trace when not (fact.Cfg.g_flag || fact.Cfg.g_trace) ->
                add
                  (finding Finding.D1 c.Cfg.c_loc
                     (Printf.sprintf
                        "trace write %s is not dominated by a Flag.enabled or \
                         Tracing.is_live check on every path from function entry; guard it \
                         (docs/OBSERVABILITY.md)"
                        (String.concat "." c.Cfg.c_parts)))
            | _ -> ())
        | _ -> ());
    (* D2: typestate, fresh per function body. *)
    let d2_facts = D2_flow.solve cfg ~entry_fact:[] in
    D2_flow.iter_events cfg d2_facts (fun ev fact ->
        match ev with
        | Cfg.Call c ->
            Array.iteri
              (fun pi (p : Typestate.proto) ->
                if p.Typestate.p_kind = Typestate.Validate_before_use
                   && Typestate.matches c.Cfg.c_parts p.Typestate.p_use
                then
                  List.iter
                    (fun (a : Cfg.arg) ->
                      match a.Cfg.a_ident with
                      | Some v
                        when List.exists
                               (fun (i : D2_dom.inst) ->
                                 Int.equal i.D2_dom.i_proto pi
                                 && (match i.D2_dom.i_owner with
                                    | D2_dom.Var w -> String.equal w v
                                    | D2_dom.Anon -> false)
                                 &&
                                 match i.D2_dom.i_state with
                                 | D2_dom.Unvalidated -> true
                                 | _ -> false)
                               fact ->
                          add (finding Finding.D2 c.Cfg.c_loc p.Typestate.p_use_msg)
                      | _ -> ())
                    c.Cfg.c_args)
              D2_dom.protocols
        | _ -> ());
    (match D2_flow.exit_fact cfg d2_facts with
    | None -> ()
    | Some at_exit ->
        List.iter
          (fun (i : D2_dom.inst) ->
            if i.D2_dom.i_state = D2_dom.Held then
              let p = D2_dom.protocols.(i.D2_dom.i_proto) in
              add (finding Finding.D2 i.D2_dom.i_loc p.Typestate.p_leak_msg))
          at_exit);
    (* D4: loop-invariant flag reloads, hot modules only. *)
    if hot then
      List.iter
        (fun (lp : Cfg.loop) ->
          if not lp.Cfg.lp_dirty then
            List.iter
              (fun l ->
                add
                  (finding Finding.D4 l
                     "Flag.enabled is re-read inside a hot loop and is provably loop-invariant \
                      (the body never calls set_mode/with_mode/suppress_in_domain); hoist the \
                      read above the loop"))
              (List.rev lp.Cfg.lp_flag_reads))
        cfg.Cfg.loops;
    (* Recurse into closures with the D1 fact at their definition. *)
    List.iter (fun (cl, fact) -> analyze_cfg ~d1:fact cl.Cfg.cl_cfg) (List.rev !closures)
  in
  List.iter (analyze_cfg ~d1:Cfg.no_gates) (toplevel_cfgs ctx u);
  let d3b = collect_d3b aliases u in
  (List.rev !findings @ d3b, collect_d3 u)
