(* The cross-unit call graph the typed rules reason over.

   Nodes are named value bindings — toplevel functions and values,
   plus local [let]-bound helpers (the pool's [worker] closure, the
   router's [on_hop] wrapper) so that reachability can start at a
   closure passed to [Domain.spawn] rather than at its whole enclosing
   function. Edges are "the body of A mentions B"; an edge is [gated]
   when the mention sits inside a branch dominated by an
   [Ftr_obs.Flag.enabled] check, the one condition that is
   suppression-aware inside worker domains (lib/obs/flag.ml) — T1
   reachability refuses to cross gated edges, which is exactly
   "passing through the sanctioned seam".

   Everything is plain arrays and insertion-ordered adjacency lists:
   node ids are assigned in (sorted-unit, walk) order, so BFS fronts,
   witness chains and therefore findings are deterministic run to run. *)

type node = {
  name : string; (* display name, e.g. "Ftr_core.Route.route/on_hop" *)
  file : string;
  line : int;
  col : int;
}

type edge = { dst : int; gated : bool }

type t = {
  mutable nodes : node array;
  mutable count : int;
  mutable adj : edge list array; (* kept reversed; read through [succs] *)
  mutable radj : edge list array;
}

let create () = { nodes = [||]; count = 0; adj = [||]; radj = [||] }

let node_count g = g.count

let name g i = g.nodes.(i).name

let node g i = g.nodes.(i)

let ensure_capacity g =
  if g.count = Array.length g.nodes then begin
    let cap = max 64 (2 * g.count) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 g.count;
      b
    in
    g.nodes <- grow g.nodes { name = ""; file = ""; line = 0; col = 0 };
    g.adj <- grow g.adj [];
    g.radj <- grow g.radj []
  end

let add_node g ~name ~file ~line ~col =
  ensure_capacity g;
  let id = g.count in
  g.nodes.(id) <- { name; file; line; col };
  g.count <- id + 1;
  id

let add_edge g ?(gated = false) src dst =
  g.adj.(src) <- { dst; gated } :: g.adj.(src);
  g.radj.(dst) <- { dst = src; gated } :: g.radj.(dst)

(* Adjacency in insertion order (the lists are built reversed). *)
let succs g i = List.rev g.adj.(i)

let preds g i = List.rev g.radj.(i)

(* BFS over [adj] (or [radj] when [reverse]), optionally refusing gated
   edges. Returns the visited set; [parent.(v)] is the node [v] was
   discovered from (-1 for seeds), which [chain] below unwinds into a
   witness path. Seeds are processed in the order given, so the first
   (deterministic) discovery wins. *)
let bfs g ?(reverse = false) ?(through_gated = true) seeds =
  let visited = Array.make (max 1 g.count) false in
  let parent = Array.make (max 1 g.count) (-1) in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if s >= 0 && s < g.count && not visited.(s) then begin
        visited.(s) <- true;
        Queue.add s q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun e ->
        if (through_gated || not e.gated) && not visited.(e.dst) then begin
          visited.(e.dst) <- true;
          parent.(e.dst) <- u;
          Queue.add e.dst q
        end)
      (if reverse then preds g u else succs g u)
  done;
  (visited, parent)

let reachable g ?reverse ?through_gated seeds = fst (bfs g ?reverse ?through_gated seeds)

(* The discovery chain seed -> ... -> v recorded by a [bfs] parent
   array, as display names. *)
let chain g parent v =
  let rec up acc v = if v < 0 then acc else up (name g v :: acc) parent.(v) in
  up [] v
