(* In-source lint directives. The Parsetree drops comments, so directives
   are recovered from the raw text with a line scan; a directive applies
   to findings on its own line or on the line directly below it (the
   conventional "comment above the offending expression" placement).

   Grammar: the marker word [ftr-lint] followed by a colon, then one
   directive -- [disable R1 R2 <justification>] (this line and the next),
   [disable-file R1 <justification>] (whole file), or [hot
   <justification>] (opts the module into R5). Rule ids may be separated
   by spaces or commas; collection stops at the first token that is not a
   rule id, so a one-line justification can follow without any closing
   marker. [all] stands for every rule. (The examples above avoid the
   literal marker spelling: the scan is purely textual, and this module
   must not tag itself.) *)

let marker = "ftr-lint:"

type t = {
  line_rules : (int, Finding.rule list) Hashtbl.t; (* disable, keyed by source line *)
  mutable file_rules : Finding.rule list; (* disable-file *)
  mutable hot : bool; (* module participates in R5 *)
}

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.equal (String.sub s i m) sub then Some i else go (i + 1)
  in
  go 0

let tokens_after s pos =
  let rest = String.sub s pos (String.length s - pos) in
  String.split_on_char ' ' rest
  |> List.concat_map (String.split_on_char ',')
  |> List.map String.trim
  |> List.filter (fun t -> not (String.equal t ""))

(* Leading rule ids of a token list; stops at the first non-rule token. *)
let rec take_rules = function
  | [] -> []
  | "all" :: _ -> Finding.all_rules
  | t :: rest -> (
      match Finding.rule_of_id t with Some r -> r :: take_rules rest | None -> [])

let scan source =
  let t = { line_rules = Hashtbl.create 8; file_rules = []; hot = false } in
  List.iteri
    (fun i line ->
      match find_sub line marker with
      | None -> ()
      | Some pos -> (
          let lineno = i + 1 in
          match tokens_after line (pos + String.length marker) with
          | "hot" :: _ -> t.hot <- true
          | "disable" :: rest ->
              let rules = take_rules rest in
              if rules <> [] then
                Hashtbl.replace t.line_rules lineno
                  (rules @ Option.value ~default:[] (Hashtbl.find_opt t.line_rules lineno))
          | "disable-file" :: rest -> t.file_rules <- take_rules rest @ t.file_rules
          | _ -> ()))
    (String.split_on_char '\n' source);
  t

let hot t = t.hot

let mem (rule : Finding.rule) rs = List.exists (fun r -> r = rule) rs

let on_line t line rule =
  match Hashtbl.find_opt t.line_rules line with Some rs -> mem rule rs | None -> false

(* Suppressed when file-disabled, or a directive sits on the finding's
   line or on the line above it. *)
let suppressed t ~line rule =
  mem rule t.file_rules || on_line t line rule || (line > 1 && on_line t (line - 1) rule)
