(* Orchestration for the flow stage: load the .cmt corpus, fan the
   per-unit analysis out over the repo's own deterministic domain pool
   (Ftr_exec.Pool — dogfooding: merged findings are byte-identical
   across --jobs 1/2/4 and FTR_EXEC_SEQ=1 because results come back in
   unit-index order and the per-unit analysis is pure), and serve
   unchanged units from an incremental cache.

   Cache entries are keyed by the digest of the unit's .cmt file plus
   the analyzer version: the cmt embeds the source digest and the
   import digests, so editing the source (including its suppression
   comments — they ride in the source digest) or a dependency
   invalidates the entry on the next build. Entries store the
   post-suppression findings with their baseline line text plus the
   unit's D3 protocol facts, so a fully warm run re-analyzes zero units
   and still reproduces the exact finding stream.

   D3a (constructor coverage) is a whole-corpus property: units only
   contribute facts, and the coordinator merges them here — cached and
   fresh units alike — then applies suppressions at the declaration
   site. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type source_info = { sup : Suppress.t; lines : string array }

let load_source ~root file =
  match Typed_driver.source_path ~root file with
  | None -> None
  | Some path ->
      let text = read_file path in
      Some { sup = Suppress.scan text; lines = Array.of_list (String.split_on_char '\n' text) }

let line_text (si : source_info option) l =
  match si with
  | Some { lines; _ } when l >= 1 && l <= Array.length lines -> String.trim lines.(l - 1)
  | _ -> ""

type stats = {
  fl_units : int;
  fl_analyzed : int; (* analyzed this run *)
  fl_cached : int; (* served from the incremental cache *)
  fl_sources : string list; (* source path of every loaded unit *)
}

type unit_result = { ur_findings : (Finding.t * string) list; ur_d3 : Flow_rules.d3 }

(* ------------------------------------------------------------------ *)
(* Cache serialisation (text, %S-escaped fields, tab-separated)        *)
(* ------------------------------------------------------------------ *)

let cache_file dir (u : Cmt_loader.unit_info) = Filename.concat dir (u.modname ^ ".flow")

let esc s = Printf.sprintf "%S" s
let unesc s = Scanf.sscanf s "%S%!" (fun x -> x)

let write_entry dir u ~digest (r : unit_result) =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let oc = open_out_bin (cache_file dir u) in
  Printf.fprintf oc "ftr_lint-flow\t%s\t%s\n" Finding.analyzer_version digest;
  List.iter
    (fun ((f : Finding.t), src) ->
      Printf.fprintf oc "F\t%s\t%d\t%d\t%s\t%s\t%s\n" f.file f.line f.col
        (Finding.rule_id f.rule) (esc f.message) (esc src))
    r.ur_findings;
  List.iter
    (fun (name, (l : Cfg.loc)) ->
      Printf.fprintf oc "C\t%s\t%s\t%d\t%d\n" name l.Cfg.l_file l.Cfg.l_line l.Cfg.l_col)
    r.ur_d3.Flow_rules.d3_ctors;
  List.iter (fun name -> Printf.fprintf oc "E\t%s\n" name) r.ur_d3.Flow_rules.d3_explicit;
  List.iter
    (fun (l : Cfg.loc) ->
      Printf.fprintf oc "W\t%s\t%d\t%d\n" l.Cfg.l_file l.Cfg.l_line l.Cfg.l_col)
    r.ur_d3.Flow_rules.d3_catchall;
  close_out oc

let read_entry dir u ~digest =
  let path = cache_file dir u in
  if not (Sys.file_exists path) then None
  else
    match String.split_on_char '\n' (read_file path) with
    | header :: rest -> (
        match String.split_on_char '\t' header with
        | [ "ftr_lint-flow"; v; d ]
          when String.equal v Finding.analyzer_version && String.equal d digest -> (
            try
              let findings = ref [] and ctors = ref [] and expl = ref [] and wild = ref [] in
              List.iter
                (fun line ->
                  match String.split_on_char '\t' line with
                  | [ "F"; file; l; c; rule; msg; src ] ->
                      let rule =
                        match Finding.rule_of_id rule with
                        | Some r -> r
                        | None -> raise Exit
                      in
                      findings :=
                        ( {
                            Finding.file;
                            line = int_of_string l;
                            col = int_of_string c;
                            rule;
                            message = unesc msg;
                          },
                          unesc src )
                        :: !findings
                  | [ "C"; name; file; l; c ] ->
                      ctors :=
                        ( name,
                          {
                            Cfg.l_file = file;
                            l_line = int_of_string l;
                            l_col = int_of_string c;
                          } )
                        :: !ctors
                  | [ "E"; name ] -> expl := name :: !expl
                  | [ "W"; file; l; c ] ->
                      wild :=
                        { Cfg.l_file = file; l_line = int_of_string l; l_col = int_of_string c }
                        :: !wild
                  | [ "" ] | [] -> ()
                  | _ -> raise Exit)
                rest;
              Some
                {
                  ur_findings = List.rev !findings;
                  ur_d3 =
                    {
                      Flow_rules.d3_ctors = List.rev !ctors;
                      d3_explicit = List.rev !expl;
                      d3_catchall = List.rev !wild;
                    };
                }
            with Exit | Failure _ | Scanf.Scan_failure _ -> None)
        | _ -> None)
    | [] -> None

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let analyze_one ~root (u : Cmt_loader.unit_info) =
  let src = load_source ~root u.source in
  let hot = match src with Some { sup; _ } -> Suppress.hot sup | None -> false in
  let found, d3 = Flow_rules.analyze_unit ~hot u in
  let kept =
    List.filter_map
      (fun (f : Finding.t) ->
        let si = if String.equal f.file u.source then src else load_source ~root f.file in
        match si with
        | Some { sup; _ } when Suppress.suppressed sup ~line:f.line f.rule -> None
        | _ -> Some (f, line_text si f.line))
      found
  in
  { ur_findings = kept; ur_d3 = d3 }

let analyze ?jobs ?cache_dir ~root ~dirs () =
  let units = Array.of_list (Cmt_loader.load_dirs ~root dirs) in
  let n = Array.length units in
  let digests = Array.map (fun (u : Cmt_loader.unit_info) -> Digest.to_hex (Digest.file u.cmt_path)) units in
  let results : unit_result option array = Array.make n None in
  (match cache_dir with
  | Some dir ->
      Array.iteri (fun i u -> results.(i) <- read_entry dir u ~digest:digests.(i)) units
  | None -> ());
  let misses =
    Array.to_list (Array.mapi (fun i r -> (i, r)) results)
    |> List.filter_map (fun (i, r) -> match r with None -> Some i | Some _ -> None)
  in
  let miss_arr = Array.of_list misses in
  if Array.length miss_arr > 0 then begin
    (* Fan out over the repo's own pool; results land in index order,
       so the merged stream is independent of worker scheduling. *)
    let fresh =
      Ftr_exec.Pool.map ?jobs ~count:(Array.length miss_arr) (fun k ->
          analyze_one ~root units.(miss_arr.(k)))
    in
    Array.iteri
      (fun k r ->
        let i = miss_arr.(k) in
        results.(i) <- Some r;
        match cache_dir with
        | Some dir -> write_entry dir units.(i) ~digest:digests.(i) r
        | None -> ())
      fresh
  end;
  let per_unit = Array.to_list (Array.map Option.get results) in
  let unit_findings = List.concat_map (fun r -> r.ur_findings) per_unit in
  let d3a =
    Flow_rules.d3_findings (List.map (fun r -> r.ur_d3) per_unit)
    |> List.filter_map (fun (f : Finding.t) ->
           let si = load_source ~root f.file in
           match si with
           | Some { sup; _ } when Suppress.suppressed sup ~line:f.line f.rule -> None
           | _ -> Some (f, line_text si f.line))
  in
  let all =
    List.sort
      (fun ((a : Finding.t), _) ((b : Finding.t), _) -> Finding.compare_findings a b)
      (unit_findings @ d3a)
  in
  let stats =
    {
      fl_units = n;
      fl_analyzed = Array.length miss_arr;
      fl_cached = n - Array.length miss_arr;
      fl_sources = List.map (fun (u : Cmt_loader.unit_info) -> u.source) (Array.to_list units);
    }
  in
  (all, stats)
