(* Committed baseline: findings accepted as-is, keyed by rule, file and
   the *trimmed text* of the offending source line rather than its line
   number -- edits elsewhere in a file must not invalidate the baseline,
   while any edit to the flagged line itself retires the entry.

   File format, one entry per line (lines starting with '#' and blank
   lines are comments):

     syn:R2<TAB>lib/foo/bar.ml<TAB>Array.sort compare arr;
     typed:T1<TAB>lib/foo/baz.ml<TAB>Hashtbl.replace table k v

   The rule field carries a stage namespace prefix ([syn:], [typed:] or
   [flow:]) so entries from all stages coexist unambiguously in one
   file; bare rule ids from pre-typed-stage baselines are still accepted
   on read and normalised to the rule's own stage. Matching is multiset
   semantics: an entry absorbs exactly one finding with the same key, so
   two identical violations on two lines need two entries. *)

type entry = { b_rule : string; b_file : string; b_content : string }
(* [b_rule] is stored in normalised namespaced form, e.g. "syn:R2". *)

let namespaced rule = Finding.(stage_namespace (stage_of_rule rule)) ^ ":" ^ Finding.rule_id rule

(* "syn:R2" / "typed:T1" / legacy bare "R2" -> the rule, in its
   normalised namespaced spelling. *)
let parse_rule_field s =
  let bare = match String.index_opt s ':' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  Option.map namespaced (Finding.rule_of_id bare)

let key_of ~rule ~file ~content = namespaced rule ^ "\t" ^ file ^ "\t" ^ String.trim content

let key_of_entry e = e.b_rule ^ "\t" ^ e.b_file ^ "\t" ^ String.trim e.b_content

let entry_of_finding ~source_line (f : Finding.t) =
  { b_rule = namespaced f.rule; b_file = f.file; b_content = String.trim source_line }

(* Stage of a (normalised) entry, for stage-selective regeneration. *)
let entry_stage e =
  let has_prefix p =
    let n = String.length p in
    String.length e.b_rule >= n && String.equal (String.sub e.b_rule 0 n) p
  in
  if has_prefix "typed:" then Finding.Typed
  else if has_prefix "flow:" then Finding.Flow
  else Finding.Syntactic

let parse_line line =
  if String.length line = 0 || line.[0] = '#' then None
  else
    match String.split_on_char '\t' line with
    | rule :: file :: rest -> (
        match parse_rule_field rule with
        | Some r ->
            Some { b_rule = r; b_file = file; b_content = String.trim (String.concat "\t" rest) }
        | None -> None)
    | _ -> None

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let entries = ref [] in
    (try
       while true do
         match parse_line (input_line ic) with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let save path entries =
  let oc = open_out_bin path in
  output_string oc "# ftr_lint baseline: STAGE:RULE<TAB>file<TAB>trimmed source line\n";
  output_string oc "# Regenerate with: ftr_lint <dirs> --stage all --update-baseline\n";
  List.iter
    (fun e -> Printf.fprintf oc "%s\t%s\t%s\n" e.b_rule e.b_file e.b_content)
    entries;
  close_out oc

(* Split findings into (fresh, baselined); returns the count of entries
   that matched nothing so the driver can report a stale baseline. *)
let apply entries findings =
  let budget = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = key_of_entry e in
      Hashtbl.replace budget k (1 + Option.value ~default:0 (Hashtbl.find_opt budget k)))
    entries;
  let fresh, baselined =
    List.partition
      (fun ((f : Finding.t), source_line) ->
        let k = key_of ~rule:f.rule ~file:f.file ~content:source_line in
        match Hashtbl.find_opt budget k with
        | Some n when n > 0 ->
            Hashtbl.replace budget k (n - 1);
            false
        | Some _ | None -> true)
      findings
  in
  let stale = Hashtbl.fold (fun _ n acc -> acc + n) budget 0 in
  (fresh, List.length baselined, stale)
