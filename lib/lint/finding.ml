(* A finding is one breached rule at one source location. The rule set is
   closed and small on purpose: each rule protects a property the paper's
   reproduction depends on (docs/LINTING.md maps rule -> property).

   Rules come in three stages. R1-R5 are syntactic: one Parsetree walk
   per file, no types, heuristics tuned to this tree's idioms (rules.ml).
   T1-T4 are typed and interprocedural: they load the .cmt files dune
   already produces, build a call graph over the Typedtree and reason
   about worker-domain reachability, taint and real instantiation types
   (typed_rules.ml). D1-D4 are flow-sensitive: per-function control-flow
   graphs over the same Typedtree, a forward dataflow engine run to
   fixpoint, and declarative typestate automata (cfg.ml, dataflow.ml,
   typestate.ml, flow_rules.ml). *)

type rule = R1 | R2 | R3 | R4 | R5 | T1 | T2 | T3 | T4 | D1 | D2 | D3 | D4

type stage = Syntactic | Typed | Flow

(* Bumped whenever a rule's detection logic changes enough that recorded
   reports are no longer comparable run-to-run; surfaced in lint.json. *)
let analyzer_version = "3.0"

let all_rules = [ R1; R2; R3; R4; R5; T1; T2; T3; T4; D1; D2; D3; D4 ]

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"
  | T4 -> "T4"
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"

let rule_name = function
  | R1 -> "nondeterminism-source"
  | R2 -> "polymorphic-comparison"
  | R3 -> "unordered-iteration-in-output"
  | R4 -> "ungated-telemetry"
  | R5 -> "hot-path-allocation"
  | T1 -> "domain-race"
  | T2 -> "nondeterminism-taint"
  | T3 -> "typed-polymorphic-comparison"
  | T4 -> "typed-hot-path-allocation"
  | D1 -> "gate-dominance"
  | D2 -> "resource-typestate"
  | D3 -> "message-protocol"
  | D4 -> "loop-invariant-flag-reload"

let stage_of_rule = function
  | R1 | R2 | R3 | R4 | R5 -> Syntactic
  | T1 | T2 | T3 | T4 -> Typed
  | D1 | D2 | D3 | D4 -> Flow

let stage_id = function Syntactic -> "syntactic" | Typed -> "typed" | Flow -> "flow"

(* The baseline's rule-namespace prefix, so entries from all stages
   coexist in one file without ambiguity (baseline.ml). *)
let stage_namespace = function Syntactic -> "syn" | Typed -> "typed" | Flow -> "flow"

let rule_of_id = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "T1" -> Some T1
  | "T2" -> Some T2
  | "T3" -> Some T3
  | "T4" -> Some T4
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | _ -> None

type t = { file : string; line : int; col : int; rule : rule; message : string }

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_id a.rule) (rule_id b.rule)

let to_string f =
  Printf.sprintf "%s:%d:%d: %s %s: %s" f.file f.line f.col (rule_id f.rule) (rule_name f.rule)
    f.message

(* Minimal JSON string escaping: the analyzer depends only on
   compiler-libs, so it carries its own two-line encoder rather than
   pulling in Ftr_obs.Json. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","name":"%s","stage":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (rule_id f.rule) (rule_name f.rule)
    (stage_id (stage_of_rule f.rule))
    (json_escape f.message)
