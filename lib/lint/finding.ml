(* A finding is one breached rule at one source location. The rule set is
   closed and small on purpose: each rule protects a property the paper's
   reproduction depends on (docs/LINTING.md maps rule -> property). *)

type rule = R1 | R2 | R3 | R4 | R5

let all_rules = [ R1; R2; R3; R4; R5 ]

let rule_id = function R1 -> "R1" | R2 -> "R2" | R3 -> "R3" | R4 -> "R4" | R5 -> "R5"

let rule_name = function
  | R1 -> "nondeterminism-source"
  | R2 -> "polymorphic-comparison"
  | R3 -> "unordered-iteration-in-output"
  | R4 -> "ungated-telemetry"
  | R5 -> "hot-path-allocation"

let rule_of_id = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | _ -> None

type t = { file : string; line : int; col : int; rule : rule; message : string }

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_id a.rule) (rule_id b.rule)

let to_string f =
  Printf.sprintf "%s:%d:%d: %s %s: %s" f.file f.line f.col (rule_id f.rule) (rule_name f.rule)
    f.message

(* Minimal JSON string escaping: the analyzer depends only on
   compiler-libs, so it carries its own two-line encoder rather than
   pulling in Ftr_obs.Json. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf {|{"file":"%s","line":%d,"col":%d,"rule":"%s","name":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (rule_id f.rule) (rule_name f.rule) (json_escape f.message)
