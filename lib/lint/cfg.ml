(* Per-function control-flow graphs over the Typedtree, for the
   flow-sensitive lint stage (rules D1-D4, flow_rules.ml).

   A CFG is built for every toplevel binding RHS and module-init
   expression; function bodies are *not* flattened into their definer.
   Instead every [Texp_function] becomes a [Closure] event carrying its
   own sub-CFG, and the rules decide what entry fact the closure body
   inherits (for D1 that is the dataflow fact at the definition site, so
   a closure defined under [if obs then ...] keeps the gate — the
   [on_hop] idiom in lib/core/route.ml).

   Blocks carry a linear event list — calls (with normalised dotted
   paths and shallow argument summaries), variable bindings, closures —
   and end in one terminator: an unconditional jump, a two-way branch
   annotated with the gates its condition consults, a multi-way branch
   (match cases, try handlers, for-loops), or a stop (function exit, or
   a diverging call such as [raise]/[failwith], which deliberately does
   NOT flow to the exit block: a path that raises cannot leak a
   must-release resource past the function).

   [&&]/[||]/[not] in branch conditions are expanded into short-circuit
   edges, so [if gate || x then ...] gates only the paths that actually
   passed the gate atom. [e1 @@ e2] and [e2 |> e1] are flattened into
   the underlying application. [Fun.protect ~finally:(fun () -> r) @@
   fun () -> body] inlines body then finally in sequence — finally runs
   on every path, including the exceptional ones this CFG prunes.
   [Flag.with_mode m f] inlines f's body between a synthetic
   [Flag.set_mode m] and a synthetic [Flag.restore_mode] (restore to an
   unknown value: the dataflow treats it as "no longer known enabled").

   Known path-sensitivity limits (also in docs/LINTING.md): exceptions
   are modelled only at try-entry (a handler is entered with the state
   from *before* the body, so a leak on a mid-body raise into a local
   handler is missed); values escaping into closures are not tracked;
   module expressions inside function bodies are skipped. *)

open Typedtree

type loc = { l_file : string; l_line : int; l_col : int }

(* Which gate families a condition (or a gate variable's RHS) consults:
   [Ftr_obs.Flag.enabled] and the trace-liveness reads
   [Tracing.is_live]/[Tracing.recording]. *)
type gates = { g_flag : bool; g_trace : bool }

let no_gates = { g_flag = false; g_trace = false }
let join_gates a b = { g_flag = a.g_flag || b.g_flag; g_trace = a.g_trace || b.g_trace }

type arg = {
  a_label : string; (* "" for unlabeled *)
  a_ident : string option; (* Ident.unique_name of a bare local identifier *)
  a_bool : bool option; (* Some b for a literal (optionally Some-wrapped) bool *)
  a_none : bool; (* the literal constructor [None] *)
}

type call = { c_parts : string list; c_args : arg list; c_loc : loc }

type event =
  | Call of call
  | Bind of { bv_id : string; bv_rhs : loc option; bv_loc : loc }
      (* [bv_rhs] is the location of the RHS's outermost call event when
         the RHS is an application — typestate rules use it to rebind an
         anonymous acquisition to the variable. *)
  | Closure of closure

and closure = { cl_cfg : t; cl_loc : loc }

and terminator =
  | Jump of int
  | Branch of { br_gates : gates; br_true : int; br_false : int }
  | Multi of int list
  | Stop

and block = { b_id : int; mutable b_events : event list (* reversed while building *); mutable b_term : terminator }

and t = { blocks : block array; entry : int; exit_ : int; loops : loop list }

(* One source-level loop in this CFG (not in nested closures), for D4:
   the [Flag.enabled] reads its body performs and whether the body also
   writes the flag (then hoisting would change behaviour). *)
and loop = { lp_loc : loc; mutable lp_flag_reads : loc list; mutable lp_dirty : bool }

let successors b =
  match b.b_term with
  | Jump j -> [ j ]
  | Branch { br_true; br_false; _ } -> [ br_true; br_false ]
  | Multi js -> js
  | Stop -> []

let events b = List.rev b.b_events

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  file : string; (* fallback for ghost locations *)
  norm_parts : Path.t -> string list;
      (* dotted path split into parts, stdlib-stripped and with unit-level
         module aliases expanded (flow_rules.ml) *)
  cond_gates : Typedtree.expression -> gates;
      (* which gate families an (atomic) condition consults, including
         let-bound gate variables *)
}

type builder = {
  ctx : ctx;
  mutable blocks_rev : block list;
  mutable nb : int;
  mutable loops_rev : loop list;
  mutable loop_stack : loop list; (* innermost first *)
}

let loc_of b (loc : Location.t) =
  let pos = loc.Location.loc_start in
  let file = if String.equal pos.Lexing.pos_fname "" then b.ctx.file else pos.Lexing.pos_fname in
  { l_file = file; l_line = pos.Lexing.pos_lnum; l_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol }

let new_block b =
  let blk = { b_id = b.nb; b_events = []; b_term = Stop } in
  b.nb <- b.nb + 1;
  b.blocks_rev <- blk :: b.blocks_rev;
  blk.b_id

let block_of b id = List.nth b.blocks_rev (b.nb - 1 - id)
let emit b id ev = (block_of b id).b_events <- ev :: (block_of b id).b_events
let set_term b id t = (block_of b id).b_term <- t

let is_flag_enabled parts =
  match List.rev parts with
  | "enabled" :: m :: _ -> Typed_rules.module_head m "Flag"
  | _ -> false

(* Calls after which control does not return. *)
let diverges parts =
  match List.rev parts with
  | ("raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit") :: _ -> true
  | _ -> false

(* Direct flag writes: hoisting a [Flag.enabled] read over these would
   change behaviour, so they mark enclosing loops dirty for D4. *)
let writes_flag parts =
  match List.rev parts with
  | ("set_mode" | "with_mode" | "suppress_in_domain") :: m :: _ -> Typed_rules.module_head m "Flag"
  | _ -> false

let literal_bool (e : expression) =
  let rec go (e : expression) =
    match e.exp_desc with
    | Texp_construct (_, cd, args) -> (
        match (cd.Types.cstr_name, args) with
        | "true", [] -> Some true
        | "false", [] -> Some false
        | "Some", [ x ] -> go x
        | _ -> None)
    | _ -> None
  in
  go e

let arg_summary label (e : expression) =
  let a_label =
    match label with
    | Asttypes.Nolabel -> ""
    | Asttypes.Labelled s | Asttypes.Optional s -> s
  in
  let a_ident =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> Some (Ident.unique_name id)
    | _ -> None
  in
  let a_none =
    match e.exp_desc with
    | Texp_construct (_, cd, []) -> String.equal cd.Types.cstr_name "None"
    | _ -> false
  in
  { a_label; a_ident; a_bool = literal_bool e; a_none }

(* A unit thunk we can inline as straight-line control flow. *)
let thunk_body (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_lhs = _; c_guard = None; c_rhs; _ } ]; _ } -> Some c_rhs
  | _ -> None

let rec build_expr b cur (e : expression) =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_unreachable -> cur
  | Texp_let (_, vbs, body) ->
      let cur = List.fold_left (build_binding b) cur vbs in
      build_expr b cur body
  | Texp_function _ ->
      emit b cur (Closure { cl_cfg = build_closure b.ctx e; cl_loc = loc_of b e.exp_loc });
      cur
  | Texp_apply (fn, args) -> build_apply b cur e fn args
  | Texp_ifthenelse (c, then_, else_opt) ->
      let tb = new_block b and eb = new_block b and join = new_block b in
      build_cond b cur c ~ktrue:tb ~kfalse:eb;
      let tend = build_expr b tb then_ in
      set_term b tend (Jump join);
      let eend = match else_opt with Some e -> build_expr b eb e | None -> eb in
      set_term b eend (Jump join);
      join
  | Texp_sequence (e1, e2) ->
      let cur = build_expr b cur e1 in
      build_expr b cur e2
  | Texp_match (scrut, cases, _) ->
      let cur = build_expr b cur scrut in
      build_cases b cur cases
  | Texp_try (body, handlers) ->
      (* Handlers are modelled as entered with the state from before the
         body (see the header comment for what this misses). *)
      let bb = new_block b in
      let join = new_block b in
      let hbs = List.map (fun _ -> new_block b) handlers in
      set_term b cur (Multi (bb :: hbs));
      let bend = build_expr b bb body in
      set_term b bend (Jump join);
      List.iter2
        (fun hb (c : value case) -> build_case b hb ~join c.c_guard c.c_rhs)
        hbs handlers;
      join
  | Texp_while (cond, body) ->
      let head = new_block b in
      set_term b cur (Jump head);
      let bodyb = new_block b and exitb = new_block b in
      build_cond b head cond ~ktrue:bodyb ~kfalse:exitb;
      let lp = { lp_loc = loc_of b e.exp_loc; lp_flag_reads = []; lp_dirty = false } in
      b.loops_rev <- lp :: b.loops_rev;
      b.loop_stack <- lp :: b.loop_stack;
      let bend = build_expr b bodyb body in
      b.loop_stack <- List.tl b.loop_stack;
      set_term b bend (Jump head);
      exitb
  | Texp_for (_, _, lo, hi, _, body) ->
      let cur = build_expr b cur lo in
      let cur = build_expr b cur hi in
      let head = new_block b in
      set_term b cur (Jump head);
      let bodyb = new_block b and exitb = new_block b in
      set_term b head (Multi [ bodyb; exitb ]);
      let lp = { lp_loc = loc_of b e.exp_loc; lp_flag_reads = []; lp_dirty = false } in
      b.loops_rev <- lp :: b.loops_rev;
      b.loop_stack <- lp :: b.loop_stack;
      let bend = build_expr b bodyb body in
      b.loop_stack <- List.tl b.loop_stack;
      set_term b bend (Jump head);
      exitb
  | Texp_tuple es -> List.fold_left (build_expr b) cur es
  | Texp_construct (_, _, es) -> List.fold_left (build_expr b) cur es
  | Texp_variant (_, eo) -> Option.fold ~none:cur ~some:(build_expr b cur) eo
  | Texp_record { fields; extended_expression } ->
      let cur = Option.fold ~none:cur ~some:(build_expr b cur) extended_expression in
      Array.fold_left
        (fun cur (_, def) ->
          match def with Overridden (_, e) -> build_expr b cur e | Kept _ -> cur)
        cur fields
  | Texp_field (e, _, _) -> build_expr b cur e
  | Texp_setfield (e1, _, _, e2) ->
      let cur = build_expr b cur e1 in
      build_expr b cur e2
  | Texp_array es -> List.fold_left (build_expr b) cur es
  | Texp_assert (e', _) -> (
      match e'.exp_desc with
      | Texp_construct (_, { Types.cstr_name = "false"; _ }, []) ->
          (* [assert false] diverges like a raise. *)
          set_term b cur Stop;
          new_block b
      | _ -> build_expr b cur e')
  | Texp_lazy body ->
      (* Forced later, like a closure body. *)
      emit b cur (Closure { cl_cfg = build_closure_of_body b.ctx body; cl_loc = loc_of b e.exp_loc });
      cur
  | Texp_open (_, body) -> build_expr b cur body
  | Texp_letmodule (_, _, _, _, body) -> build_expr b cur body
  | Texp_letexception (_, body) -> build_expr b cur body
  | _ -> cur

and build_binding b cur (vb : value_binding) =
  match vb.vb_expr.exp_desc with
  | Texp_function _ ->
      emit b cur
        (Closure { cl_cfg = build_closure b.ctx vb.vb_expr; cl_loc = loc_of b vb.vb_expr.exp_loc });
      bind_var b cur vb ~rhs:None
  | Texp_apply _ ->
      let rhs_loc = loc_of b vb.vb_expr.exp_loc in
      let cur = build_expr b cur vb.vb_expr in
      bind_var b cur vb ~rhs:(Some rhs_loc)
  | _ ->
      let cur = build_expr b cur vb.vb_expr in
      bind_var b cur vb ~rhs:None

and bind_var b cur (vb : value_binding) ~rhs =
  (match Typed_rules.binding_var vb.vb_pat with
  | Some (id, name_loc) ->
      emit b cur (Bind { bv_id = Ident.unique_name id; bv_rhs = rhs; bv_loc = loc_of b name_loc.loc })
  | None -> ());
  cur

and build_cases b cur cases =
  let join = new_block b in
  let cbs = List.map (fun _ -> new_block b) cases in
  set_term b cur (Multi cbs);
  List.iter2
    (fun cb (c : computation case) -> build_case b cb ~join c.c_guard c.c_rhs)
    cbs cases;
  join

(* A case body; a [when] guard branches into it carrying the guard's
   gates, so [| Some tr when Tracing.is_live tr -> ...] gates the arm. *)
and build_case b cb ~join guard rhs =
  let target =
    match guard with
    | None -> cb
    | Some g ->
        let cur = build_expr b cb g in
        let bb = new_block b in
        set_term b cur (Branch { br_gates = b.ctx.cond_gates g; br_true = bb; br_false = join });
        bb
  in
  let cend = build_expr b target rhs in
  set_term b cend (Jump join)

(* Short-circuit expansion of a branch condition. *)
and build_cond b cur (c : expression) ~ktrue ~kfalse =
  let head_parts (e : expression) =
    match e.exp_desc with Texp_ident (p, _, _) -> b.ctx.norm_parts p | _ -> []
  in
  match c.exp_desc with
  | Texp_apply (fn, [ (_, Some l); (_, Some r) ])
    when match head_parts fn with [ "&&" ] -> true | _ -> false ->
      let mid = new_block b in
      build_cond b cur l ~ktrue:mid ~kfalse;
      build_cond b mid r ~ktrue ~kfalse
  | Texp_apply (fn, [ (_, Some l); (_, Some r) ])
    when match head_parts fn with [ "||" ] -> true | _ -> false ->
      let mid = new_block b in
      build_cond b cur l ~ktrue ~kfalse:mid;
      build_cond b mid r ~ktrue ~kfalse
  | Texp_apply (fn, [ (_, Some a) ]) when match head_parts fn with [ "not" ] -> true | _ -> false
    ->
      build_cond b cur a ~ktrue:kfalse ~kfalse:ktrue
  | _ ->
      let cur = build_expr b cur c in
      set_term b cur (Branch { br_gates = b.ctx.cond_gates c; br_true = ktrue; br_false = kfalse })

and build_apply b cur (e : expression) fn args =
  let fn_parts =
    match fn.exp_desc with Texp_ident (p, _, _) -> b.ctx.norm_parts p | _ -> []
  in
  match (fn.exp_desc, fn_parts, args) with
  (* Curried partial application: [(f ~a) b] — the shape the typechecker
     leaves for [f ~a @@ fun () -> ...] after eliminating the operator —
     flattens into one application so the special forms below still see
     every argument. *)
  | Texp_apply (fn2, args2), _, _ -> build_apply b cur e fn2 (args2 @ args)
  (* [f @@ x] and [x |> f]: flatten into the underlying application so
     the special forms below still fire through the operators. *)
  | _, [ "@@" ], [ (_, Some f); (_, Some x) ] -> reapply b cur e f x
  | _, [ "|>" ], [ (_, Some x); (_, Some f) ] -> reapply b cur e f x
  | _ -> (
      let rev = List.rev fn_parts in
      let is_protect =
        match rev with "protect" :: m :: _ -> Typed_rules.module_head m "Fun" | _ -> false
      in
      let is_with_mode =
        match rev with "with_mode" :: m :: _ -> Typed_rules.module_head m "Flag" | _ -> false
      in
      let inlined_protect =
        if not is_protect then None
        else
          let fin =
            List.find_map
              (fun (l, a) ->
                match (l, a) with
                | Asttypes.Labelled "finally", Some a -> thunk_body a
                | _ -> None)
              args
          in
          let body =
            List.find_map
              (fun (l, a) ->
                match (l, a) with Asttypes.Nolabel, Some a -> thunk_body a | _ -> None)
              args
          in
          (* The body thunk is what matters for path-sensitivity; a
             [~finally] that is a named function rather than an inline
             thunk is skipped (its effects stay invisible — a documented
             limit). *)
          match body with Some bd -> Some (bd, fin) | None -> None
      in
      match inlined_protect with
      | Some (body, fin) ->
          let cur = build_expr b cur body in
          (match fin with Some f -> build_expr b cur f | None -> cur)
      | None ->
          if is_with_mode then begin
            let mode =
              List.find_map
                (fun (_, a) -> match a with Some a -> literal_bool a | None -> None)
                args
            in
            let f =
              List.find_map
                (fun (_, a) ->
                  match a with
                  | Some a -> ( match thunk_body a with Some bd -> Some bd | None -> None)
                  | None -> None)
                args
            in
            match f with
            | Some body ->
                let l = loc_of b e.exp_loc in
                emit b cur
                  (Call
                     {
                       c_parts = [ "Flag"; "set_mode" ];
                       c_args = [ { a_label = ""; a_ident = None; a_bool = mode; a_none = false } ];
                       c_loc = l;
                     });
                List.iter (fun lp -> lp.lp_dirty <- true) b.loop_stack;
                let cur = build_expr b cur body in
                emit b cur
                  (Call { c_parts = [ "Flag"; "restore_mode" ]; c_args = []; c_loc = l });
                cur
            | None -> plain_apply b cur e fn fn_parts args
          end
          else plain_apply b cur e fn fn_parts args)

and reapply b cur (e : expression) f x =
  match f.exp_desc with
  | Texp_apply (fn2, args2) -> build_apply b cur e fn2 (args2 @ [ (Asttypes.Nolabel, Some x) ])
  | _ -> build_apply b cur e f [ (Asttypes.Nolabel, Some x) ]

and plain_apply b cur (e : expression) fn fn_parts args =
  let cur = match fn.exp_desc with Texp_ident _ -> cur | _ -> build_expr b cur fn in
  let cur =
    List.fold_left
      (fun cur (_, a) -> match a with Some a -> build_expr b cur a | None -> cur)
      cur args
  in
  let c_args =
    List.filter_map (fun (l, a) -> Option.map (arg_summary l) a) args
  in
  let call = { c_parts = fn_parts; c_args; c_loc = loc_of b e.exp_loc } in
  emit b cur (Call call);
  (match b.loop_stack with
  | lp :: _ when is_flag_enabled fn_parts -> lp.lp_flag_reads <- call.c_loc :: lp.lp_flag_reads
  | _ -> ());
  if writes_flag fn_parts then List.iter (fun lp -> lp.lp_dirty <- true) b.loop_stack;
  if diverges fn_parts then begin
    set_term b cur Stop;
    new_block b
  end
  else cur

(* One [Texp_function] layer: its sub-CFG covers every case body (a
   multi-case [function ...] branches like a match). Deeper parameters
   nest as further [Closure] events, which inherit facts transitively. *)
and build_closure ctx (e : expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      build_with ctx (fun b entry ->
          match cases with
          | [ { c_guard = None; c_rhs; _ } ] -> build_expr b entry c_rhs
          | _ ->
              let join = new_block b in
              let cbs = List.map (fun _ -> new_block b) cases in
              set_term b entry (Multi cbs);
              List.iter2
                (fun cb (c : value case) -> build_case b cb ~join c.c_guard c.c_rhs)
                cbs cases;
              join)
  | _ -> build_closure_of_body ctx e

and build_closure_of_body ctx body = build_with ctx (fun b entry -> build_expr b entry body)

and build_with ctx f =
  let b = { ctx; blocks_rev = []; nb = 0; loops_rev = []; loop_stack = [] } in
  let entry = new_block b in
  let last = f b entry in
  let exit_ = new_block b in
  set_term b last (Jump exit_);
  let blocks = Array.of_list (List.rev b.blocks_rev) in
  { blocks; entry; exit_; loops = List.rev b.loops_rev }

(* CFG of one toplevel expression (binding RHS or [Tstr_eval]). *)
let build ctx (e : expression) = build_with ctx (fun b entry -> build_expr b entry e)
