(* A small generic forward dataflow engine over Cfg.t: a join
   semilattice of facts, a transfer function per event, an edge transfer
   for branch conditions, and a worklist run to fixpoint.

   The engine computes block-ENTRY facts; rules then re-walk the events
   of each reachable block from its entry fact to place findings (the
   transfer functions stay pure, so the fixpoint iteration order cannot
   affect what is reported — a requirement for the byte-identical
   merged-findings contract of the flow stage).

   [join] must be the conservative combiner for the rule's direction:
   D1 uses must-analysis (joining Gated with Ungated yields Ungated — a
   write is clean only if EVERY path passed the gate), D2 uses
   may-analysis on typestate maps (an instance held on SOME incoming
   path is still held). Unreachable blocks have no fact and are skipped
   ([solve] returns [None] for them). *)

module type DOMAIN = sig
  type fact

  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
  val event : Cfg.event -> fact -> fact

  val branch : Cfg.gates -> taken:bool -> fact -> fact
  (* Refine the fact along the [taken] edge of a two-way branch whose
     condition consults [gates]. Jump/Multi edges pass facts through
     unchanged. *)
end

module Forward (D : DOMAIN) = struct
  (* Fact after the whole event list of a block, given its entry fact. *)
  let flow_block (blk : Cfg.block) fact = List.fold_left (fun f ev -> D.event ev f) fact (Cfg.events blk)

  let solve (cfg : Cfg.t) ~entry_fact =
    let n = Array.length cfg.Cfg.blocks in
    let facts : D.fact option array = Array.make n None in
    facts.(cfg.Cfg.entry) <- Some entry_fact;
    let in_queue = Array.make n false in
    let queue = Queue.create () in
    Queue.add cfg.Cfg.entry queue;
    in_queue.(cfg.Cfg.entry) <- true;
    let merge_into target fact =
      let merged =
        match facts.(target) with None -> fact | Some old -> D.join old fact
      in
      let changed =
        match facts.(target) with None -> true | Some old -> not (D.equal old merged)
      in
      if changed then begin
        facts.(target) <- Some merged;
        if not in_queue.(target) then begin
          Queue.add target queue;
          in_queue.(target) <- true
        end
      end
    in
    while not (Queue.is_empty queue) do
      let id = Queue.take queue in
      in_queue.(id) <- false;
      match facts.(id) with
      | None -> ()
      | Some fact -> (
          let blk = cfg.Cfg.blocks.(id) in
          let out = flow_block blk fact in
          match blk.Cfg.b_term with
          | Cfg.Jump j -> merge_into j out
          | Cfg.Branch { br_gates; br_true; br_false } ->
              merge_into br_true (D.branch br_gates ~taken:true out);
              merge_into br_false (D.branch br_gates ~taken:false out)
          | Cfg.Multi js -> List.iter (fun j -> merge_into j out) js
          | Cfg.Stop -> ())
    done;
    facts

  (* Re-walk every reachable block's events in block-id order with the
     running fact, for the findings pass. *)
  let iter_events (cfg : Cfg.t) facts f =
    Array.iter
      (fun (blk : Cfg.block) ->
        match facts.(blk.Cfg.b_id) with
        | None -> ()
        | Some entry ->
            ignore
              (List.fold_left
                 (fun fact ev ->
                   f ev fact;
                   D.event ev fact)
                 entry (Cfg.events blk)))
      cfg.Cfg.blocks

  (* Fact at function exit, [None] when the exit block is unreachable
     (every path diverges). *)
  let exit_fact (cfg : Cfg.t) facts = facts.(cfg.Cfg.exit_)
end
