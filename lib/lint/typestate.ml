(* Declarative lifecycle automata for rule D2 (resource typestate).

   Each protocol names its acquire/release/validate/use operations as
   dotted-path suffix patterns (matched against Cfg.call paths after
   alias normalisation, so ["Snapshot"; "load"] matches
   [Ftr_core.Snapshot.load], [Ftr_core__Snapshot.load] and a local
   [Snapshot.load] alike). Two automaton shapes cover the repo's
   protocols:

   - [Must_release]: after the acquire, every path to function exit must
     pass a release. Instances are keyed by the let-bound variable when
     the acquire's result is bound, or by the acquire site itself for
     unit-returning acquires (the Events sink). A release call that
     mentions the bound variable releases that instance; a release with
     no identifiable operand releases every anonymous instance of the
     protocol (conservative in the non-flagging direction).

   - [Validate_before_use]: the acquire produces a value in state
     Unvalidated; passing it to a validator moves it to Validated;
     passing it to a use/sink while still Unvalidated is the finding.
     Reaching exit unvalidated is NOT flagged — only actual use is
     (a load-validate helper returning the network is legitimate).

   [p_acquire_label_false] restricts the acquire to applications that
   pass a literal [false] for the named (optional) label —
   [Snapshot.load ~validate:false] is an acquisition of an unchecked
   network, a default or non-literal [~validate] argument is not.
   [p_acquire_skip_none] exempts applications passing a literal [None]:
   [Events.set_sink None] uninstalls the sink rather than installing
   one, so it is no acquisition. *)

type kind = Must_release | Validate_before_use

type proto = {
  p_id : string; (* short id used in messages, e.g. "route-scratch" *)
  p_kind : kind;
  p_acquire : string list list; (* suffix patterns *)
  p_acquire_label_false : string option;
  p_acquire_skip_none : bool;
  p_release : string list list; (* Must_release: releases; Validate_before_use: validators *)
  p_use : string list list; (* Validate_before_use only: the guarded sinks *)
  p_leak_msg : string;
  p_use_msg : string;
}

let protocols =
  [
    {
      p_id = "route-scratch";
      p_kind = Must_release;
      p_acquire = [ [ "borrow_scratch" ] ];
      p_acquire_label_false = None;
      p_acquire_skip_none = false;
      p_release = [ [ "restore_scratch" ] ];
      p_use = [];
      p_leak_msg =
        "route scratch borrowed from the domain-local cell is not restored on every path to \
         exit; wrap the body in Fun.protect ~finally:(restore_scratch ...) (lib/core/route.ml)";
      p_use_msg = "";
    };
    {
      p_id = "snapshot-unvalidated";
      p_kind = Validate_before_use;
      p_acquire = [ [ "Snapshot"; "load" ] ];
      p_acquire_label_false = Some "validate";
      p_acquire_skip_none = false;
      p_release = [ [ "Check"; "snapshot" ]; [ "Csr"; "validate" ] ];
      p_use =
        [ [ "Route"; "route" ]; [ "Route_batch"; "run" ]; [ "Route_batch"; "run_indices" ] ];
      p_leak_msg = "";
      p_use_msg =
        "network loaded with Snapshot.load ~validate:false is routed before flowing through \
         Check.snapshot/Csr.validate; validate it first or load with the default ~validate:true";
    };
    {
      p_id = "events-sink";
      p_kind = Must_release;
      p_acquire = [ [ "Events"; "set_sink" ] ];
      p_acquire_label_false = None;
      p_acquire_skip_none = true;
      p_release = [ [ "Events"; "flush_sink" ]; [ "Events"; "install_exit_flush" ] ];
      p_use = [];
      p_leak_msg =
        "programmatic Events sink installed with set_sink can exit without a flush on this \
         path; call Events.flush_sink or register Events.install_exit_flush \
         (docs/OBSERVABILITY.md)";
      p_use_msg = "";
    };
  ]

(* Suffix match of a normalised call path against one pattern. *)
let matches_pattern parts pattern =
  let rp = List.rev parts and rq = List.rev pattern in
  let rec go rp rq =
    match (rp, rq) with
    | _, [] -> true
    | p :: rp', q :: rq' -> (String.equal p q || Typed_rules.module_head p q) && go rp' rq'
    | [], _ :: _ -> false
  in
  go rp rq

let matches parts patterns = List.exists (matches_pattern parts) patterns

let acquires p (c : Cfg.call) =
  matches c.Cfg.c_parts p.p_acquire
  && not (p.p_acquire_skip_none && List.exists (fun (a : Cfg.arg) -> a.Cfg.a_none) c.Cfg.c_args)
  &&
  match p.p_acquire_label_false with
  | None -> true
  | Some label ->
      List.exists
        (fun (a : Cfg.arg) ->
          String.equal a.Cfg.a_label label
          && match a.Cfg.a_bool with Some b -> not b | None -> false)
        c.Cfg.c_args
