(* The rule engine: one Parsetree walk per file, five rules. Everything
   here is syntactic -- the Parsetree carries no types -- so each rule is
   an explicitly documented heuristic tuned to this tree's idioms; the
   escape hatches are `ftr-lint: disable` comments (suppress.ml) and the
   committed baseline (baseline.ml).

   R1 nondeterminism-source      -- results must be a pure function of
      (seed, grid): no ambient RNG, no wall clock outside the injectable
      clock seams (Ftr_obs.Span.set_clock, Ftr_exec.Clock).
   R2 polymorphic-comparison     -- bare [compare] and polymorphic
      =/<>/</>/<=/>= on structured operands break once a float, a
      closure or an abstract type lands in the compared value.
   R3 unordered-iteration-in-output -- Hashtbl.iter/fold feeding an
      emit/export/merge-shaped function makes output depend on hash
      order, breaking byte-identical --jobs invariance. Iterations whose
      result is visibly sorted nearby are accepted.
   R4 ungated-telemetry          -- Metrics/Events writers must be
      dominated by an [Ftr_obs.Flag.enabled] check or the
      zero-overhead-when-off guarantee dies (argument lists allocate).
   R5 hot-path-allocation        -- in modules tagged [ftr-lint: hot],
      list-scanning and closure-capturing combinators guard the
      allocation-free router of docs/MEMORY_LAYOUT.md. *)

open Parsetree

type config = {
  file : string;
  hot : bool; (* module carries the [ftr-lint: hot] tag *)
  in_obs : bool; (* the telemetry collectors themselves (lib/obs) *)
  clock_seam : bool; (* allowlisted clock seam: may read the wall clock *)
}

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec path_of = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> path_of p @ [ s ]
  | Longident.Lapply (p, _) -> path_of p

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let dotted p = String.concat "." p

(* ------------------------------------------------------------------ *)
(* Subtree predicates                                                  *)
(* ------------------------------------------------------------------ *)

exception Found

let expr_contains pred e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if pred e then raise Found;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  try
    it.expr it e;
    false
  with Found -> true

let is_flag_enabled_path p =
  match List.rev (strip_stdlib p) with "enabled" :: "Flag" :: _ -> true | _ -> false

let is_sort_path p =
  match List.rev (strip_stdlib p) with
  | ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") :: ("List" | "Array") :: _ -> true
  | _ -> false

let mentions pred e =
  expr_contains
    (fun e -> match e.pexp_desc with Pexp_ident { txt; _ } -> pred (path_of txt) | _ -> false)
    e

(* ------------------------------------------------------------------ *)
(* Rule tables                                                         *)
(* ------------------------------------------------------------------ *)

let r1_banned p =
  match strip_stdlib p with
  | "Random" :: _ :: _ -> true (* the ambient, process-global RNG *)
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] -> true
  | _ -> false

let poly_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* Operand shapes that make a polymorphic comparison clearly structural:
   no Parsetree types exist, so only syntactically evident cases fire
   (string literals, tuples, records, arrays, list cells, constructors
   and variants with a payload, functions). Bare identifiers stay silent
   -- their type is unknowable here. *)
let rec clearly_structural e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string _) -> true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) -> clearly_structural e
  | _ -> false

let output_markers = [ "emit"; "export"; "merge"; "to_json"; "report"; "dump"; "render"; "write"; "print" ]

let contains_marker name =
  List.exists
    (fun m ->
      let n = String.length name and k = String.length m in
      let rec go i = i + k <= n && (String.equal (String.sub name i k) m || go (i + 1)) in
      go 0)
    output_markers

let telemetry_writer p =
  match List.rev (strip_stdlib p) with
  | ("incr" | "incr_by" | "set_gauge" | "observe" | "observe_int") :: "Metrics" :: _ -> true
  | "emit" :: "Events" :: _ -> true
  | _ -> false

let hot_list_combinators =
  [
    "mem"; "append"; "map"; "mapi"; "map2"; "filter"; "filteri"; "filter_map"; "concat";
    "concat_map"; "flatten"; "fold_left"; "fold_right"; "iter"; "iteri"; "exists"; "for_all";
    "find"; "find_opt"; "find_map"; "assoc"; "assoc_opt"; "mem_assoc"; "nth"; "init"; "sort";
    "sort_uniq"; "stable_sort";
  ]

let r5_banned p =
  match strip_stdlib p with
  | [ "@" ] -> true
  | [ "List"; m ] -> List.mem m hot_list_combinators
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

type ast = Structure of structure | Signature of signature

(* Names let-bound to an expression that consults [Flag.enabled]: a
   condition mentioning such a name dominates its branches with the
   telemetry gate (the `let obs = Ftr_obs.Flag.enabled () in ... if obs
   then ...` idiom). *)
let collect_gate_vars str =
  let vars = Hashtbl.create 8 in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } when mentions is_flag_enabled_path vb.pvb_expr ->
              Hashtbl.replace vars txt ()
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it str;
  vars

let run cfg ast =
  let findings = ref [] in
  let gated = ref 0 in
  let binding_names = ref [] in
  let ancestors = ref [] in
  let gate_vars =
    match ast with Structure str -> collect_gate_vars str | Signature _ -> Hashtbl.create 1
  in
  let flag rule loc message =
    let pos = loc.Location.loc_start in
    findings :=
      {
        Finding.file = cfg.file;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        rule;
        message;
      }
      :: !findings
  in
  let cond_is_gate c =
    mentions
      (fun p ->
        is_flag_enabled_path p
        || (match p with [ x ] -> Hashtbl.mem gate_vars x | _ -> false))
      c
  in
  let in_sorted_context parents =
    let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
    List.exists (mentions is_sort_path) (take 3 parents)
  in
  (* A punned record field [{ compare; ... }] parses as a bare [compare]
     ident, but it is a projection of an already-chosen comparator, not a
     use of the polymorphic one. *)
  let punned_record_field e parents =
    match parents with
    | { pexp_desc = Pexp_record (fields, _); _ } :: _ ->
        List.exists (fun (_, value) -> value == e) fields
    | _ -> false
  in
  let check_ident e txt parents =
    let p = path_of txt in
    let sp = strip_stdlib p in
    if (not cfg.clock_seam) && r1_banned p then
      flag Finding.R1 e.pexp_loc
        (Printf.sprintf
           "%s is a nondeterminism source; route randomness through Ftr_prng.Seed and time \
            through an injectable clock (Ftr_obs.Span.set_clock, Ftr_exec.Clock)"
           (dotted sp));
    if (match sp with [ "compare" ] -> true | _ -> false) && not (punned_record_field e parents)
    then
      flag Finding.R2 e.pexp_loc
        "bare polymorphic compare; use Float.compare / Int.compare / String.compare or a typed \
         comparator";
    if cfg.hot && r5_banned p then
      flag Finding.R5 e.pexp_loc
        (Printf.sprintf
           "%s allocates or scans a list inside a module tagged `ftr-lint: hot` (allocation-free \
            hot path, docs/MEMORY_LAYOUT.md)"
           (dotted sp))
  in
  let check_apply e fn args parents =
    match fn.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        let sp = strip_stdlib (path_of txt) in
        (match sp with
        | [ op ] when List.mem op poly_ops && List.length args = 2 ->
            if List.exists (fun (_, a) -> clearly_structural a) args then
              flag Finding.R2 e.pexp_loc
                (Printf.sprintf
                   "polymorphic %s on a structured operand; match on the constructor or compare \
                    typed fields instead"
                   op)
        | _ -> ());
        (match sp with
        | [ "Hashtbl"; ("iter" | "fold") ]
          when List.exists contains_marker !binding_names && not (in_sorted_context parents) ->
            flag Finding.R3 e.pexp_loc
              (Printf.sprintf
                 "Hashtbl.%s inside %S feeds an output path in hash-order; sort the entries \
                  first (byte-identical --jobs invariance, docs/PARALLELISM.md)"
                 (List.nth sp 1)
                 (match !binding_names with n :: _ -> n | [] -> "?"))
        | _ -> ());
        if (not cfg.in_obs) && !gated = 0 && telemetry_writer sp then
          flag Finding.R4 e.pexp_loc
            (Printf.sprintf
               "%s not dominated by an Ftr_obs.Flag.enabled guard (zero-overhead-when-off, \
                docs/OBSERVABILITY.md)"
               (dotted sp)))
    | _ -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          let parents = !ancestors in
          ancestors := e :: parents;
          (match e.pexp_desc with
          | Pexp_ifthenelse (c, then_, else_opt) when cond_is_gate c ->
              it.expr it c;
              incr gated;
              it.expr it then_;
              Option.iter (it.expr it) else_opt;
              decr gated
          | _ ->
              (match e.pexp_desc with
              | Pexp_ident { txt; _ } -> check_ident e txt parents
              | Pexp_apply (fn, args) -> check_apply e fn args parents
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
          ancestors := parents);
      value_binding =
        (fun it vb ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } ->
              binding_names := txt :: !binding_names;
              Ast_iterator.default_iterator.value_binding it vb;
              binding_names := List.tl !binding_names
          | _ -> Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  (match ast with
  | Structure str -> iter.structure iter str
  | Signature sg -> iter.signature iter sg);
  List.sort_uniq Finding.compare_findings !findings
