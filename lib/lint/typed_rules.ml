(* The typed, interprocedural rule engine: two passes over every loaded
   Typedtree, one shared call graph, four rules.

   T1 domain-race           -- toplevel mutable state reachable from a
      function transitively invoked inside an [Ftr_exec.Pool] worker job
      (or a bare [Domain.spawn] closure) without passing through the
      sanctioned seams: Atomic/Mutex/Domain.DLS-typed state, and
      branches dominated by [Ftr_obs.Flag.enabled] — the one gate that
      consults [Flag.suppress_in_domain]'s domain-local flag, so code
      behind it never runs inside a worker.
   T2 nondeterminism-taint  -- [Random.*]/[Sys.time]/[Unix.gettimeofday]
      propagated through the call graph: a toplevel function that calls
      (transitively) into a nondeterminism source is itself flagged,
      upgrading R1 from "this expression reads the clock" to "this
      exported function is nondeterministic". The injectable clock seams
      (lib/obs/span.ml, lib/exec/clock.ml) are declared sanitizers:
      sources inside them taint nothing.
   T3 typed-polymorphic-comparison -- the real instantiation type of
      every [compare]/[=]/[<]/[min]/... occurrence, replacing R2's
      "clearly structural operand" heuristic: floats buried in
      structures, closures and abstract types are caught even through
      bare identifiers.
   T4 typed-hot-path-allocation -- in modules tagged [ftr-lint: hot],
      allocations the Typedtree makes visible inside loop bodies
      (tuples, records, non-constant constructors — including boxed
      float payloads — array literals, closures and partial
      applications), upgrading R5 beyond the List-combinator list.
      Applications whose result type is [int32] are also allocations
      (the box) unless directly wrapped in [Int32.to_int] — the
      Adjacency.I32 accessor pattern, whose box/unbox pair cmmgen
      cancels — so a hot loop reading a Bigarray without going through
      the I32 accessors is caught here.

   Pass 1 registers nodes for every toplevel binding (with cross-unit
   names) and classifies toplevel globals; pass 2 walks bodies adding
   edges, accesses, taints and the purely local findings. *)

open Typedtree

(* Wall-clock seam files, shared with the syntactic stage (driver.ml):
   sources inside them are the sanctioned injection points. *)
let clock_seam_files = [ "lib/obs/span.ml"; "lib/exec/clock.ml" ]

let is_clock_seam file = List.exists (fun sfx -> Filename.check_suffix file sfx) clock_seam_files

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let path_parts p = Type_probe.strip_stdlib (String.split_on_char '.' (Path.name p))

let dotted p = String.concat "." (path_parts p)

(* Worker-job boundaries: the function arguments of these calls execute
   on pool/worker domains. Module heads may appear in wrapper-alias form
   ("Ftr_exec.Pool") or mangled form ("Ftr_exec__Pool") depending on
   where the reference sits. *)
let module_head m name = String.equal m name || String.ends_with ~suffix:("__" ^ name) m

let is_worker_boundary parts =
  match List.rev parts with
  (* Intra-library references print relative ("Pool.map"), cross-library
     ones qualified ("Ftr_exec.Pool.map" / "Ftr_exec__Pool.map"); accept
     any Pool-headed spelling — there is exactly one Pool. *)
  | ("map" | "map_seeded") :: m :: _ -> module_head m "Pool"
  | "spawn" :: "Domain" :: _ -> true
  | _ -> false

let is_flag_enabled parts =
  match List.rev parts with "enabled" :: m :: _ -> module_head m "Flag" | _ -> false

(* R1's nondeterminism sources, re-used by T2 as taint seeds. *)
let is_nondet_source parts =
  match parts with
  | "Random" :: _ :: _ -> true
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] -> true
  | _ -> false

let poly_compare_op parts =
  match parts with
  | [ ("=" | "<>") ] -> Some (List.hd parts, true)
  | [ ("<" | ">" | "<=" | ">=") ] -> Some (List.hd parts, false)
  | [ ("compare" | "min" | "max") ] -> Some (List.hd parts, true)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)
(* ------------------------------------------------------------------ *)

type global = {
  g_node : int; (* its callgraph node *)
  g_name : string;
  g_why : string; (* which mutable component makes it shared state *)
}

type access = {
  a_node : int; (* accessing node *)
  a_global : global;
  a_file : string;
  a_line : int;
  a_col : int;
  a_gated : bool;
  a_in_worker_arg : bool; (* textually inside a worker-job argument *)
}

type taint_src = { s_node : int; s_what : string }

type alloc = { l_file : string; l_line : int; l_col : int; l_what : string; l_node : int }

type cmp = { c_file : string; c_line : int; c_col : int; c_op : string; c_why : string }

type t = {
  graph : Callgraph.t;
  decls : Type_probe.table;
  (* (unit index, Ident.unique_name) -> node id; locals are added on
     the fly during pass 2, toplevels in pass 1. Idents are per-unit:
     stamps collide across cmts, hence the unit index in the key. *)
  by_stamp : (int * string, int) Hashtbl.t;
  (* cross-unit name -> node id, e.g. "Ftr_core__Route.route" and
     "Ftr_core.Route.route". *)
  by_name : (string, int) Hashtbl.t;
  globals : (int, global) Hashtbl.t; (* node id -> global info *)
  mutable worker_roots : int list; (* reversed; order fixed before use *)
  mutable accesses : access list;
  mutable taint_sources : taint_src list;
  mutable allocs : alloc list;
  mutable cmps : cmp list;
  mutable hot_files : string list;
  units : Cmt_loader.unit_info array;
}

let display_unit modname =
  (* "Ftr_core__Route" -> "Ftr_core.Route"; executables keep their
     mangled "Dune__exe__P2psim" readable enough the same way. *)
  let b = Buffer.create (String.length modname) in
  let i = ref 0 in
  let n = String.length modname in
  while !i < n do
    if !i + 1 < n && modname.[!i] = '_' && modname.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b modname.[!i];
      incr i
    end
  done;
  Buffer.contents b

let loc_of (loc : Location.t) ~fallback_file =
  let pos = loc.loc_start in
  let file = if String.equal pos.pos_fname "" then fallback_file else pos.pos_fname in
  (file, pos.pos_lnum, pos.pos_cnum - pos.pos_bol)

(* ------------------------------------------------------------------ *)
(* Pass 1: toplevel nodes, globals, declaration table                  *)
(* ------------------------------------------------------------------ *)

(* Cross-unit spellings under which other units may reference a
   toplevel binding (mirrors Type_probe.decl_keys). *)
let name_keys ~modname ~subpath name =
  let inner = String.concat "." (subpath @ [ name ]) in
  let keys = [ modname ^ "." ^ inner ] in
  match Suppress.find_sub modname "__" with
  | Some i ->
      let lib = String.sub modname 0 i in
      let sub = String.sub modname (i + 2) (String.length modname - i - 2) in
      (lib ^ "." ^ sub ^ "." ^ inner) :: keys
  | None -> keys

(* A type-level [Mutable] verdict can overshoot the value: [Failure.none]
   has a type that *may* carry a Bitset, but the constant
   [{ node_view = N_all; link_view = L_all }] holds no mutable cell at
   all. A RHS built purely from constants, constant-field records
   (checked against the labels' own [lbl_mut]), constructors and empty
   arrays cannot be written through, so the binding is not shared
   mutable state whatever its type says. *)
let rec rhs_definitely_immutable (e : expression) =
  match e.exp_desc with
  | Texp_constant _ -> true
  | Texp_construct (_, _, args) -> List.for_all rhs_definitely_immutable args
  | Texp_variant (_, arg) -> Option.fold ~none:true ~some:rhs_definitely_immutable arg
  | Texp_tuple es -> List.for_all rhs_definitely_immutable es
  | Texp_array [] -> true (* zero length: nothing to write *)
  | Texp_record { fields; extended_expression = None } ->
      Array.for_all
        (fun ((lbl : Types.label_description), def) ->
          (match lbl.lbl_mut with Asttypes.Immutable -> true | Asttypes.Mutable -> false)
          &&
          match def with
          | Overridden (_, e) -> rhs_definitely_immutable e
          | Kept _ -> false)
        fields
  | _ -> false

(* [let x = e] types its pattern as [Tpat_var]; the annotated form
   [let x : t = e] as [Tpat_alias (Tpat_any, x, _)]. Both are the same
   named binding. *)
let binding_var (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, name_loc) -> Some (id, name_loc)
  | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, name_loc) -> Some (id, name_loc)
  | _ -> None

let register_toplevels t ui =
  let u = t.units.(ui) in
  let unit_disp = display_unit u.modname in
  let rec items subpath (its : structure_item list) =
    List.iter
      (fun (it : structure_item) ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                match binding_var vb.vb_pat with
                | Some (id, name_loc) ->
                    let file, line, col = loc_of name_loc.loc ~fallback_file:u.source in
                    let disp =
                      unit_disp ^ "." ^ String.concat "." (subpath @ [ Ident.name id ])
                    in
                    let node = Callgraph.add_node t.graph ~name:disp ~file ~line ~col in
                    Hashtbl.replace t.by_stamp (ui, Ident.unique_name id) node;
                    List.iter
                      (fun k -> if not (Hashtbl.mem t.by_name k) then Hashtbl.add t.by_name k node)
                      (name_keys ~modname:u.modname ~subpath (Ident.name id));
                    (* A non-function toplevel whose type carries
                       unsanctioned mutable state is a shared global. *)
                    (match Types.get_desc vb.vb_expr.exp_type with
                    | Types.Tarrow _ -> ()
                    | _ -> (
                        match
                          Type_probe.mutability t.decls ~modname:u.modname vb.vb_expr.exp_type
                        with
                        | Type_probe.Mutable why when not (rhs_definitely_immutable vb.vb_expr)
                          ->
                            Hashtbl.replace t.globals node
                              { g_node = node; g_name = disp; g_why = why }
                        | Type_probe.Mutable _ | Type_probe.Immutable | Type_probe.Sanctioned ->
                            ()))
                | None -> ())
              vbs
        | Tstr_module mb -> module_binding subpath mb
        | Tstr_recmodule mbs -> List.iter (module_binding subpath) mbs
        | _ -> ())
      its
  and module_binding subpath (mb : module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec of_expr (me : module_expr) =
      match me.mod_desc with
      | Tmod_structure str -> items (subpath @ [ name ]) str.str_items
      | Tmod_constraint (me, _, _, _) -> of_expr me
      | _ -> ()
    in
    of_expr mb.mb_expr
  in
  items [] u.structure.str_items

(* ------------------------------------------------------------------ *)
(* Pass 2: bodies                                                      *)
(* ------------------------------------------------------------------ *)

(* Per-unit gate variables: stamps of let-bound names whose defining
   expression consults [Flag.enabled] (the `let obs = Flag.enabled ()
   in ... if obs then ...` idiom). *)
let collect_gate_vars (u : Cmt_loader.unit_info) =
  let vars = Hashtbl.create 8 in
  let mentions_enabled e =
    let found = ref false in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.exp_desc with
            | Texp_ident (p, _, _) when is_flag_enabled (path_parts p) -> found := true
            | _ -> ());
            Tast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it e;
    !found
  in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) when mentions_enabled vb.vb_expr ->
              Hashtbl.replace vars (Ident.unique_name id) ()
          | _ -> ());
          Tast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it u.structure;
  vars

let walk_unit t ui =
  let u = t.units.(ui) in
  let unit_disp = display_unit u.modname in
  let hot = List.exists (fun f -> String.equal f u.source) t.hot_files in
  let seam = is_clock_seam u.source in
  let gate_vars = collect_gate_vars u in
  (* Synthetic node for module-initialisation code ([let () = ...],
     [Tstr_eval], RHS of pattern bindings). *)
  let init_node =
    Callgraph.add_node t.graph ~name:(unit_disp ^ ".(init)") ~file:u.source ~line:1 ~col:0
  in
  let current = ref init_node in
  let gate_depth = ref 0 in
  let loop_depth = ref 0 in
  let worker_arg_depth = ref 0 in
  (* The application directly wrapped in [Int32.to_int ...], if the
     walk is currently inside one: its box is cancelled by the unbox,
     so the boxed-int32 check skips exactly that node (physical
     equality — nested applications inside it still report). *)
  let exempt_int32 : expression option ref = ref None in
  let resolve_path p =
    match p with
    | Path.Pident id -> Hashtbl.find_opt t.by_stamp (ui, Ident.unique_name id)
    | _ -> Hashtbl.find_opt t.by_name (Path.name p)
  in
  let cond_is_gate c =
    let found = ref false in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.exp_desc with
            | Texp_ident (Path.Pident id, _, _) when Hashtbl.mem gate_vars (Ident.unique_name id) ->
                found := true
            | Texp_ident (p, _, _) when is_flag_enabled (path_parts p) -> found := true
            | _ -> ());
            Tast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it c;
    !found
  in
  let record_alloc loc what =
    if hot && !loop_depth > 0 then begin
      let l_file, l_line, l_col = loc_of loc ~fallback_file:u.source in
      t.allocs <- { l_file; l_line; l_col; l_what = what; l_node = !current } :: t.allocs
    end
  in
  let ident_ref e p =
    let parts = path_parts p in
    let file, line, col = loc_of e.exp_loc ~fallback_file:u.source in
    (* Call-graph edge and worker roots. *)
    (match resolve_path p with
    | Some target ->
        if target <> !current then
          Callgraph.add_edge t.graph ~gated:(!gate_depth > 0) !current target;
        if !worker_arg_depth > 0 then t.worker_roots <- target :: t.worker_roots;
        (* Access to a toplevel mutable global. *)
        (match Hashtbl.find_opt t.globals target with
        | Some g ->
            t.accesses <-
              {
                a_node = !current;
                a_global = g;
                a_file = file;
                a_line = line;
                a_col = col;
                a_gated = !gate_depth > 0;
                a_in_worker_arg = !worker_arg_depth > 0;
              }
              :: t.accesses
        | None -> ())
    | None -> ());
    (* T2 taint seeds. *)
    if (not seam) && is_nondet_source parts then
      t.taint_sources <- { s_node = !current; s_what = dotted p } :: t.taint_sources;
    (* T3: instantiation type of a polymorphic comparison operator.
       The occurrence's own type is the instantiated arrow; its first
       argument type is the compared type, whether the operator is
       applied here or passed to a higher-order function. *)
    match poly_compare_op parts with
    | Some (op, strict_float) -> (
        match Types.get_desc e.exp_type with
        | Types.Tarrow (_, arg, _, _) -> (
            match Type_probe.comparison_unsafe t.decls ~modname:u.modname ~strict_float arg with
            | Some why ->
                t.cmps <- { c_file = file; c_line = line; c_col = col; c_op = op; c_why = why }
                          :: t.cmps
            | None -> ())
        | _ -> ())
    | None -> ()
  in
  let expr it (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> ident_ref e p
    | Texp_ifthenelse (c, then_, else_opt) when cond_is_gate c ->
        it.Tast_iterator.expr it c;
        incr gate_depth;
        it.Tast_iterator.expr it then_;
        Option.iter (it.Tast_iterator.expr it) else_opt;
        decr gate_depth
    | Texp_while (cond, body) ->
        it.Tast_iterator.expr it cond;
        incr loop_depth;
        it.Tast_iterator.expr it body;
        decr loop_depth
    | Texp_for (_, _, lo, hi, _, body) ->
        it.Tast_iterator.expr it lo;
        it.Tast_iterator.expr it hi;
        incr loop_depth;
        it.Tast_iterator.expr it body;
        decr loop_depth
    | Texp_apply (fn, args) ->
        let fn_parts =
          match fn.exp_desc with Texp_ident (p, _, _) -> path_parts p | _ -> []
        in
        let boundary = is_worker_boundary fn_parts in
        let unboxer = match fn_parts with [ "Int32"; "to_int" ] -> true | _ -> false in
        it.Tast_iterator.expr it fn;
        List.iter
          (fun (_, arg) ->
            match arg with
            | None -> ()
            | Some (a : expression) ->
                let is_fn =
                  match Types.get_desc a.exp_type with Types.Tarrow _ -> true | _ -> false
                in
                if boundary && is_fn then begin
                  incr worker_arg_depth;
                  it.Tast_iterator.expr it a;
                  decr worker_arg_depth
                end
                else if unboxer then begin
                  let saved = !exempt_int32 in
                  exempt_int32 := Some a;
                  it.Tast_iterator.expr it a;
                  exempt_int32 := saved
                end
                else it.Tast_iterator.expr it a)
          args;
        (* A partial application materialises a closure; a fully-applied
           call returning int32 materialises the box — unless the parent
           is the Int32.to_int that cancels it, or the call is a ref
           deref, which returns an already-allocated box. *)
        (match Types.get_desc e.exp_type with
        | Types.Tarrow _ -> record_alloc e.exp_loc "partial application (closure)"
        | Types.Tconstr (p, _, _)
          when (match dotted p with "int32" | "Int32.t" -> true | _ -> false)
               && (match fn_parts with [ "!" ] -> false | _ -> true)
               && not (match !exempt_int32 with Some ex -> ex == e | None -> false) ->
            record_alloc e.exp_loc
              "boxed int32 (unbox at the call with Int32.to_int, as the Adjacency.I32 \
               accessors do)"
        | _ -> ())
    | Texp_function _ ->
        record_alloc e.exp_loc "closure";
        (* The body runs when called, not while this loop spins. *)
        let saved = !loop_depth in
        loop_depth := 0;
        Tast_iterator.default_iterator.expr it e;
        loop_depth := saved
    | Texp_tuple _ ->
        record_alloc e.exp_loc "tuple";
        Tast_iterator.default_iterator.expr it e
    | Texp_record _ ->
        record_alloc e.exp_loc "record";
        Tast_iterator.default_iterator.expr it e
    | Texp_array (_ :: _) ->
        record_alloc e.exp_loc "array literal";
        Tast_iterator.default_iterator.expr it e
    | Texp_construct (_, cd, (_ :: _ as args)) ->
        let boxes_float =
          List.exists
            (fun (a : expression) ->
              match Types.get_desc a.exp_type with
              | Types.Tconstr (p, _, _) -> String.equal (dotted p) "float"
              | _ -> false)
            args
        in
        record_alloc e.exp_loc
          (if boxes_float then
             Printf.sprintf "constructor %s with a boxed float payload" cd.cstr_name
           else Printf.sprintf "constructor %s" cd.cstr_name);
        Tast_iterator.default_iterator.expr it e
    | _ -> Tast_iterator.default_iterator.expr it e
  in
  (* Named let-bindings switch the owning node while their RHS is
     walked; nodes for locals are created here on first sight. *)
  let value_binding it (vb : value_binding) =
    match binding_var vb.vb_pat with
    | Some (id, name_loc) ->
        let node =
          match Hashtbl.find_opt t.by_stamp (ui, Ident.unique_name id) with
          | Some n -> n
          | None ->
              let file, line, col = loc_of name_loc.loc ~fallback_file:u.source in
              let disp = Callgraph.(name t.graph !current) ^ "/" ^ Ident.name id in
              let n = Callgraph.add_node t.graph ~name:disp ~file ~line ~col in
              Hashtbl.replace t.by_stamp (ui, Ident.unique_name id) n;
              n
        in
        (* Evaluating the RHS of a non-function binding happens the
           moment the enclosing code runs, so charge an edge from the
           definer; a syntactic function's body only runs when called,
           and call sites add their own edges. *)
        let rhs_is_function =
          match vb.vb_expr.exp_desc with Texp_function _ -> true | _ -> false
        in
        if node <> !current && not rhs_is_function then
          Callgraph.add_edge t.graph ~gated:(!gate_depth > 0) !current node;
        (* The RHS evaluates wherever the binding sits — keep the loop
           depth; a function RHS zeroes it in the [Texp_function] case. *)
        let saved = !current in
        current := node;
        Tast_iterator.default_iterator.value_binding it vb;
        current := saved
    | None -> Tast_iterator.default_iterator.value_binding it vb
  in
  let iter = { Tast_iterator.default_iterator with expr; value_binding } in
  iter.structure iter u.structure

(* ------------------------------------------------------------------ *)
(* Rule evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let finding rule file line col message = { Finding.file; line; col; rule; message }

let chain_suffix names =
  match names with
  | [] -> ""
  | _ -> Printf.sprintf " (worker job -> %s)" (String.concat " -> " names)

(* T1: unsanctioned toplevel mutable state touched by worker-reachable
   code, ungated accesses only. *)
let t1_findings t =
  let roots = List.sort_uniq Int.compare (List.rev t.worker_roots) in
  let visited, parent = Callgraph.bfs t.graph ~through_gated:false roots in
  List.filter_map
    (fun a ->
      let reachable =
        a.a_in_worker_arg || (a.a_node < Array.length visited && visited.(a.a_node))
      in
      if reachable && not a.a_gated then
        let via =
          if a.a_in_worker_arg then []
          else Callgraph.chain t.graph parent a.a_node
        in
        Some
          (finding Finding.T1 a.a_file a.a_line a.a_col
             (Printf.sprintf
                "%s is toplevel mutable state (%s) touched by code reachable from an \
                 Ftr_exec.Pool worker job%s; share it through Atomic/Mutex/Domain.DLS or keep \
                 it domain-local (docs/PARALLELISM.md)"
                a.a_global.g_name a.a_global.g_why (chain_suffix via)))
      else None)
    (List.rev t.accesses)

(* T2: toplevel functions transitively tainted by a nondeterminism
   source. Direct uses are R1's findings; T2 reports the propagation. *)
let t2_findings t =
  let sources = List.rev t.taint_sources in
  let direct = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace direct s.s_node s.s_what) sources;
  let seeds = List.sort_uniq Int.compare (List.map (fun s -> s.s_node) sources) in
  let visited, parent = Callgraph.bfs t.graph ~reverse:true seeds in
  let findings = ref [] in
  for nd = 0 to Callgraph.node_count t.graph - 1 do
    let nm = Callgraph.name t.graph nd in
    if
      nd < Array.length visited
      && visited.(nd)
      && (not (Hashtbl.mem direct nd))
      && Suppress.find_sub nm "/" = None (* locals: their toplevel owner reports *)
      && not (Filename.check_suffix nm ".(init)")
    then begin
      let info = Callgraph.node t.graph nd in
      (* The reverse-BFS parent chain runs source -> ... -> nd; reverse
         it to read as a call chain nd -> ... -> source. *)
      let chain = List.rev (Callgraph.chain t.graph parent nd) in
      let src_name = match List.rev chain with s :: _ -> s | [] -> "?" in
      let what =
        match Hashtbl.fold (fun n w acc -> if Callgraph.name t.graph n = src_name then Some w else acc) direct None with
        | Some w -> w
        | None -> "a nondeterminism source"
      in
      findings :=
        finding Finding.T2 info.file info.line info.col
          (Printf.sprintf
             "%s is transitively nondeterministic: %s reaches %s; thread an Ftr_prng.Rng or an \
              injectable clock through the call chain instead"
             (Callgraph.name t.graph nd)
             (String.concat " -> " chain)
             what)
        :: !findings
    end
  done;
  List.rev !findings

let t3_findings t =
  List.rev_map
    (fun c ->
      finding Finding.T3 c.c_file c.c_line c.c_col
        (Printf.sprintf
           "polymorphic %s instantiated at %s; use a typed comparator (Float.compare, \
            Int.equal, a per-field compare)"
           c.c_op c.c_why))
    t.cmps

let t4_findings t =
  List.rev_map
    (fun l ->
      finding Finding.T4 l.l_file l.l_line l.l_col
        (Printf.sprintf
           "allocates a %s inside a loop of a module tagged `ftr-lint: hot` (allocation-free \
            hot path, docs/MEMORY_LAYOUT.md)"
           l.l_what))
    t.allocs

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* [hot_files]: build-relative sources carrying the [ftr-lint: hot] tag
   (the driver scans sources for directives anyway and passes the list
   down). *)
let run ~hot_files units =
  let units = Array.of_list units in
  let t =
    {
      graph = Callgraph.create ();
      decls = Type_probe.build_table (Array.to_list units);
      by_stamp = Hashtbl.create 1024;
      by_name = Hashtbl.create 1024;
      globals = Hashtbl.create 64;
      worker_roots = [];
      accesses = [];
      taint_sources = [];
      allocs = [];
      cmps = [];
      hot_files;
      units;
    }
  in
  for ui = 0 to Array.length units - 1 do
    register_toplevels t ui
  done;
  for ui = 0 to Array.length units - 1 do
    walk_unit t ui
  done;
  let findings = t1_findings t @ t2_findings t @ t3_findings t @ t4_findings t in
  (t, List.sort_uniq Finding.compare_findings findings)
