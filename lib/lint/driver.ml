(* File discovery, parsing, suppression/baseline application and
   reporting. [lint_string] is the unit-test entry point; [run] is the
   CLI entry point wired into `dune build @lint`. *)

let clock_seam_files = [ "lib/obs/span.ml"; "lib/exec/clock.ml" ]

let contains s sub = Suppress.find_sub s sub <> None

let config_for file hot =
  {
    Rules.file;
    hot;
    in_obs = contains file "lib/obs/";
    clock_seam = List.exists (fun sfx -> Filename.check_suffix file sfx) clock_seam_files;
  }

(* Lint one compilation unit given as text. Returns each surviving
   finding paired with the trimmed text of its source line (the baseline
   key). Parse errors propagate as the parser's own exceptions. *)
let lint_string ~file source =
  let sup = Suppress.scan source in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  let ast =
    if Filename.check_suffix file ".mli" then Rules.Signature (Parse.interface lexbuf)
    else Rules.Structure (Parse.implementation lexbuf)
  in
  let findings = Rules.run (config_for file (Suppress.hot sup)) ast in
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let line_text l = if l >= 1 && l <= Array.length lines then String.trim lines.(l - 1) else "" in
  findings
  |> List.filter (fun (f : Finding.t) -> not (Suppress.suppressed sup ~line:f.line f.rule))
  |> List.map (fun (f : Finding.t) -> (f, line_text f.line))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file path = lint_string ~file:path (read_file path)

(* Every .ml/.mli under [dirs], depth-first, children in sorted order so
   reports and baselines are themselves deterministic. *)
let find_sources dirs =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if String.length name = 0 || name.[0] = '.' || String.equal name "_build" then acc
             else walk acc (Filename.concat path name))
           acc
    else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
      path :: acc
    else acc
  in
  List.rev (List.fold_left walk [] dirs)

let write_json_report path ~files ~fresh ~baselined ~stale =
  let oc = open_out_bin path in
  Printf.fprintf oc {|{"tool":"ftr_lint","files":%d,"baselined":%d,"stale_baseline":%d,|} files
    baselined stale;
  Printf.fprintf oc {|"findings":[%s]}|}
    (String.concat "," (List.map (fun (f, _) -> Finding.to_json f) fresh));
  output_char oc '\n';
  close_out oc

(* Exit status: 0 clean (modulo baseline), 1 findings, 2 usage/parse
   error. *)
let run ?baseline ?write_baseline ?json ?(quiet = false) ~dirs () =
  match List.filter (fun d -> not (Sys.file_exists d)) dirs with
  | missing :: _ ->
      Printf.eprintf "ftr_lint: no such file or directory: %s\n" missing;
      2
  | [] -> (
      let sources = find_sources dirs in
      let all =
        List.concat_map
          (fun path ->
            try lint_file path
            with exn ->
              Location.report_exception Format.err_formatter exn;
              Printf.eprintf "ftr_lint: cannot parse %s\n" path;
              exit 2)
          sources
      in
      match write_baseline with
      | Some path ->
          Baseline.save path
            (List.map (fun (f, line) -> Baseline.entry_of_finding ~source_line:line f) all);
          Printf.printf "ftr_lint: wrote %d baseline entr%s to %s\n" (List.length all)
            (if List.length all = 1 then "y" else "ies")
            path;
          0
      | None ->
          let entries = match baseline with Some p -> Baseline.load p | None -> [] in
          let fresh, baselined, stale = Baseline.apply entries all in
          (match json with
          | Some path -> write_json_report path ~files:(List.length sources) ~fresh ~baselined ~stale
          | None -> ());
          if not quiet then List.iter (fun (f, _) -> print_endline (Finding.to_string f)) fresh;
          if stale > 0 then
            Printf.eprintf
              "ftr_lint: %d stale baseline entr%s matched nothing (regenerate with \
               --write-baseline)\n"
              stale
              (if stale = 1 then "y" else "ies");
          Printf.printf "ftr_lint: %d file(s), %d finding(s), %d baselined\n" (List.length sources)
            (List.length fresh) baselined;
          (match fresh with [] -> 0 | _ -> 1))
