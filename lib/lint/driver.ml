(* File discovery, stage orchestration, suppression/baseline
   application and reporting. [lint_string] is the unit-test entry point
   for the syntactic stage; [run] is the CLI entry point wired into
   `dune build @lint`.

   Two stages share one finding stream: the syntactic rules (R1-R5,
   one Parsetree walk per source file) and the typed interprocedural
   rules (T1-T4, a call-graph analysis over the .cmt corpus —
   typed_rules.ml). [run] selects stages, merges and sorts their
   findings, then applies the shared baseline. *)

let clock_seam_files = Typed_rules.clock_seam_files

let contains s sub = Suppress.find_sub s sub <> None

let config_for file hot =
  {
    Rules.file;
    hot;
    in_obs = contains file "lib/obs/";
    clock_seam = List.exists (fun sfx -> Filename.check_suffix file sfx) clock_seam_files;
  }

(* Lint one compilation unit given as text. Returns each surviving
   finding paired with the trimmed text of its source line (the baseline
   key). Parse errors propagate as the parser's own exceptions. *)
let lint_string ~file source =
  let sup = Suppress.scan source in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  let ast =
    if Filename.check_suffix file ".mli" then Rules.Signature (Parse.interface lexbuf)
    else Rules.Structure (Parse.implementation lexbuf)
  in
  let findings = Rules.run (config_for file (Suppress.hot sup)) ast in
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let line_text l = if l >= 1 && l <= Array.length lines then String.trim lines.(l - 1) else "" in
  findings
  |> List.filter (fun (f : Finding.t) -> not (Suppress.suppressed sup ~line:f.line f.rule))
  |> List.map (fun (f : Finding.t) -> (f, line_text f.line))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file path = lint_string ~file:path (read_file path)

(* Every .ml/.mli under [dirs], depth-first, children in sorted order so
   reports and baselines are themselves deterministic. [lint_fixture]
   children are skipped — those sources violate rules on purpose (the
   compiled fixture corpus under test/) — but naming such a directory
   directly as a root still scans it, which is how the fixture tests
   run. *)
let find_sources dirs =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if
               String.length name = 0 || name.[0] = '.' || String.equal name "_build"
               || String.equal name "lint_fixture"
             then acc
             else walk acc (Filename.concat path name))
           acc
    else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
      path :: acc
    else acc
  in
  List.rev (List.fold_left walk [] dirs)

(* [timings] is opt-in (the --timings flag): wall time varies run to
   run, and @lint-report's lint.json must stay byte-identical under
   --force. The flow cache counters are deterministic for a fixed
   invocation, so they always appear when the flow stage ran. *)
let write_json_report path ~stages ~files ~fresh ~baselined ~stale ~flow_stats ~timings =
  let oc = open_out_bin path in
  Printf.fprintf oc
    {|{"tool":"ftr_lint","analyzer_version":"%s","stages":[%s],"files":%d,"baselined":%d,"stale_baseline":%d,|}
    Finding.analyzer_version
    (String.concat "," (List.map (fun s -> "\"" ^ Finding.stage_id s ^ "\"") stages))
    files baselined stale;
  (match flow_stats with
  | Some (s : Flow_driver.stats) ->
      Printf.fprintf oc {|"flow_units":%d,"flow_analyzed":%d,"flow_cached":%d,|}
        s.Flow_driver.fl_units s.Flow_driver.fl_analyzed s.Flow_driver.fl_cached
  | None -> ());
  (match timings with
  | Some ts ->
      Printf.fprintf oc {|"stage_seconds":{%s},|}
        (String.concat ","
           (List.map
              (fun (stage, secs) ->
                Printf.sprintf {|"%s":%.6f|} (Finding.stage_id stage) secs)
              ts))
  | None -> ());
  Printf.fprintf oc {|"findings":[%s]}|}
    (String.concat "," (List.map (fun (f, _) -> Finding.to_json f) fresh));
  output_char oc '\n';
  close_out oc

(* Exit status: 0 clean (modulo baseline), 1 findings, 2 usage/parse
   error. [stages] selects which analyses run; findings from all of
   them are merged into one sorted stream before the baseline applies.
   [write_baseline] regenerates the baseline file mechanically from the
   current findings of the *selected* stages — entries belonging to
   unselected stages are carried over from the existing file untouched,
   so `--stage typed --update-baseline` cannot eat syntactic entries.

   When the flow stage runs, syntactic R3/R4 findings in files the flow
   corpus covers are dropped: D1's path-sensitive gate dominance
   supersedes their 3-ancestor heuristic, which survives only as the
   parse-only fallback for files with no .cmt (and for flow-less runs).

   [profile_test] is the relaxed test profile: R1 (tests drive wall
   clocks freely) and T2 (its propagation) findings are dropped,
   everything else is enforced. [jobs]/[cache_dir] thread through to
   the flow stage's pool fan-out and incremental cache. *)
let run ?baseline ?write_baseline ?json ?(quiet = false)
    ?(stages = [ Finding.Syntactic ]) ?jobs ?cache_dir ?(profile_test = false)
    ?(timings = false) ~dirs () =
  match List.filter (fun d -> not (Sys.file_exists d)) dirs with
  | missing :: _ ->
      Printf.eprintf "ftr_lint: no such file or directory: %s\n" missing;
      2
  | [] -> (
      let stage_seconds = ref [] in
      let timed stage f =
        let t0 = Ftr_exec.Clock.now () in
        let r = f () in
        stage_seconds := (stage, Ftr_exec.Clock.now () -. t0) :: !stage_seconds;
        r
      in
      let syntactic =
        if not (List.mem Finding.Syntactic stages) then []
        else
          timed Finding.Syntactic (fun () ->
              find_sources dirs
              |> List.concat_map (fun path ->
                     try lint_file path
                     with exn ->
                       Location.report_exception Format.err_formatter exn;
                       Printf.eprintf "ftr_lint: cannot parse %s\n" path;
                       exit 2))
      in
      let typed_state, typed =
        if not (List.mem Finding.Typed stages) then (None, [])
        else
          timed Finding.Typed (fun () ->
              let state, found = Typed_driver.analyze ~root:"." ~dirs in
              (Some state, found))
      in
      let flow_stats, flow =
        if not (List.mem Finding.Flow stages) then (None, [])
        else
          timed Finding.Flow (fun () ->
              let found, stats = Flow_driver.analyze ?jobs ?cache_dir ~root:"." ~dirs () in
              (Some stats, found))
      in
      let flow_covered =
        match flow_stats with
        | None -> fun _ -> false
        | Some s ->
            let tbl = Hashtbl.create 64 in
            List.iter (fun src -> Hashtbl.replace tbl src ()) s.Flow_driver.fl_sources;
            fun file -> Hashtbl.mem tbl file
      in
      let syntactic =
        List.filter
          (fun ((f : Finding.t), _) ->
            match f.rule with
            | Finding.R3 | Finding.R4 -> not (flow_covered f.file)
            | _ -> true)
          syntactic
      in
      let profile_drop (f : Finding.t) =
        profile_test && match f.rule with Finding.R1 | Finding.T2 -> true | _ -> false
      in
      let all =
        List.sort
          (fun ((a : Finding.t), _) ((b : Finding.t), _) -> Finding.compare_findings a b)
          (List.filter (fun (f, _) -> not (profile_drop f)) (syntactic @ typed @ flow))
      in
      let files =
        if List.mem Finding.Syntactic stages then List.length (find_sources dirs)
        else
          match (typed_state, flow_stats) with
          | Some s, _ -> Array.length s.Typed_rules.units
          | None, Some s -> s.Flow_driver.fl_units
          | None, None -> 0
      in
      match write_baseline with
      | Some path ->
          let kept =
            List.filter
              (fun e -> not (List.mem (Baseline.entry_stage e) stages))
              (Baseline.load path)
          in
          let entries =
            kept @ List.map (fun (f, line) -> Baseline.entry_of_finding ~source_line:line f) all
          in
          Baseline.save path entries;
          Printf.printf "ftr_lint: wrote %d baseline entr%s to %s (%d carried over)\n"
            (List.length entries)
            (if List.length entries = 1 then "y" else "ies")
            path (List.length kept);
          0
      | None ->
          let entries =
            match baseline with
            | Some p ->
                (* Only entries of the selected stages participate: a
                   typed entry is not "stale" during a syntactic-only
                   run that cannot rediscover it. *)
                List.filter
                  (fun e -> List.mem (Baseline.entry_stage e) stages)
                  (Baseline.load p)
            | None -> []
          in
          let fresh, baselined, stale = Baseline.apply entries all in
          (match json with
          | Some path ->
              write_json_report path ~stages ~files ~fresh ~baselined ~stale ~flow_stats
                ~timings:(if timings then Some (List.rev !stage_seconds) else None)
          | None -> ());
          if not quiet then List.iter (fun (f, _) -> print_endline (Finding.to_string f)) fresh;
          if stale > 0 then
            Printf.eprintf
              "ftr_lint: %d stale baseline entr%s matched nothing (regenerate with \
               --update-baseline)\n"
              stale
              (if stale = 1 then "y" else "ies");
          (match flow_stats with
          | Some s ->
              Printf.printf "ftr_lint: flow stage %d unit(s), %d analyzed, %d cached\n"
                s.Flow_driver.fl_units s.Flow_driver.fl_analyzed s.Flow_driver.fl_cached
          | None -> ());
          Printf.printf "ftr_lint: %d file(s), %d finding(s), %d baselined\n" files
            (List.length fresh) baselined;
          (match fresh with [] -> 0 | _ -> 1))
