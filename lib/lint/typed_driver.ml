(* Orchestration for the typed stage: load the .cmt corpus, scan
   sources for directives (the same `ftr-lint:` grammar the syntactic
   stage uses — typed rule ids are valid in [disable]/[disable-file],
   and [hot] opts a module into T4), run the rules, drop suppressed
   findings and pair the survivors with their source line text for the
   baseline. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A finding's [file] is build-relative (it comes from the cmt's
   locations); the checkout source is preferred, the copy under
   [_build/default] is the fallback for odd invocation directories. *)
let source_path ~root file =
  let direct = Filename.concat root file in
  if Sys.file_exists direct then Some direct
  else
    let copied = Filename.concat root (Filename.concat "_build/default" file) in
    if Sys.file_exists copied then Some copied else None

type source_info = { sup : Suppress.t; lines : string array }

let load_source ~root file =
  match source_path ~root file with
  | None -> None
  | Some path ->
      let text = read_file path in
      Some
        {
          sup = Suppress.scan text;
          lines = Array.of_list (String.split_on_char '\n' text);
        }

(* Run T1-T4 over every compilation unit found under [dirs] (resolved
   against [root]); returns surviving findings with their baseline key
   text, sorted. [units] and the callgraph are also returned so tests
   can assert on reachability directly. *)
let analyze ~root ~dirs =
  let units = Cmt_loader.load_dirs ~root dirs in
  let sources = Hashtbl.create 64 in
  let source_for file =
    match Hashtbl.find_opt sources file with
    | Some s -> s
    | None ->
        let s = load_source ~root file in
        Hashtbl.add sources file s;
        s
  in
  let hot_files =
    List.filter_map
      (fun (u : Cmt_loader.unit_info) ->
        match source_for u.source with
        | Some { sup; _ } when Suppress.hot sup -> Some u.source
        | _ -> None)
      units
  in
  let state, findings = Typed_rules.run ~hot_files units in
  let kept =
    List.filter_map
      (fun (f : Finding.t) ->
        match source_for f.file with
        | None -> Some (f, "")
        | Some { sup; lines } ->
            if Suppress.suppressed sup ~line:f.line f.rule then None
            else
              let text =
                if f.line >= 1 && f.line <= Array.length lines then
                  String.trim lines.(f.line - 1)
                else ""
              in
              Some (f, text))
      findings
  in
  (state, kept)

let findings ~root ~dirs = snd (analyze ~root ~dirs)
