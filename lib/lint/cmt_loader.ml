(* Locating and loading the .cmt artifacts dune already produces.

   Dune compiles every module with -bin-annot, so a plain [dune build]
   leaves one Typedtree per compilation unit under
   [.<lib>.objs/byte/<unit>.cmt] (libraries) or
   [.<exe>.eobjs/byte/<unit>.cmt] (executables), next to the copied
   sources in [_build/default]. The typed lint stage runs from the build
   context (the @lint-typed rule), where those directories sit directly
   under the scanned [lib]/[bin]/[bench] trees; when invoked from a
   plain checkout instead, [load_dirs] falls back to the same directory
   under [_build/default] so [dune exec bin/ftr_lint.exe -- --typed]
   works from the repo root too.

   Only implementation units with a real [.ml] source are kept: dune's
   generated wrapper modules ([ftr_core.ml-gen]) carry nothing but
   module aliases, and .cmti interfaces carry no code. *)

type unit_info = {
  modname : string; (* compilation unit name, e.g. "Ftr_core__Route" *)
  source : string; (* build-relative source path, e.g. "lib/core/route.ml" *)
  structure : Typedtree.structure;
  cmt_path : string;
}

let is_objs_byte_dir path =
  let base = Filename.basename path in
  String.equal base "byte"
  &&
  let parent = Filename.basename (Filename.dirname path) in
  String.length parent > 0
  && parent.[0] = '.'
  && (Filename.check_suffix parent ".objs" || Filename.check_suffix parent ".eobjs")

(* Every .cmt under [dir], depth-first with children in sorted order, so
   unit lists (and therefore node ids, reports and witness chains) are
   deterministic. Unlike the syntactic walk this one must descend into
   dot-directories: that is where dune keeps the artifacts. *)
let find_cmts dir =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.iter (fun name ->
             (* Fixture units violate rules on purpose; like the
                syntactic walk, they only load when named directly. *)
             if not (String.equal name "_build" || String.equal name "lint_fixture") then
               walk (Filename.concat path name))
    else if Filename.check_suffix path ".cmt" && is_objs_byte_dir (Filename.dirname path) then
      acc := path :: !acc
  in
  if Sys.file_exists dir then walk dir;
  List.rev !acc

(* Read one cmt; [None] for wrappers, interfaces and partial units. *)
let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
      match (cmt.cmt_annots, cmt.cmt_sourcefile) with
      | Cmt_format.Implementation structure, Some source when Filename.check_suffix source ".ml"
        ->
          Some { modname = cmt.cmt_modname; source; structure; cmt_path = path }
      | _ -> None)

(* Load every unit under [dirs] (resolved against [root]). A directory
   with no artifacts of its own falls back to [_build/default/<dir>].
   Units are deduplicated by module name (first wins, in sorted-path
   order) and returned sorted by module name. *)
let load_dirs ~root dirs =
  let paths =
    List.concat_map
      (fun dir ->
        let direct = find_cmts (Filename.concat root dir) in
        if direct <> [] then direct
        else find_cmts (Filename.concat root (Filename.concat "_build/default" dir)))
      dirs
  in
  let seen = Hashtbl.create 64 in
  let units =
    List.filter_map
      (fun path ->
        match load_cmt path with
        | Some u when not (Hashtbl.mem seen u.modname) ->
            Hashtbl.add seen u.modname ();
            Some u
        | _ -> None)
      paths
  in
  List.sort (fun a b -> String.compare a.modname b.modname) units
