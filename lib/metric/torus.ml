type t = { dims : int; side : int; size : int }

let create ~dims ~side =
  if dims < 1 then invalid_arg "Torus.create: dims must be >= 1";
  if side < 1 then invalid_arg "Torus.create: side must be >= 1";
  let rec pow acc k = if k = 0 then acc else pow (acc * side) (k - 1) in
  { dims; side; size = pow 1 dims }

let dims t = t.dims

let side t = t.side

let size t = t.size

let contains t p = p >= 0 && p < t.size

let check t p = if not (contains t p) then invalid_arg "Torus: point out of range"

let coords t p =
  check t p;
  let c = Array.make t.dims 0 in
  let rec fill i v =
    if i < t.dims then begin
      c.(i) <- v mod t.side;
      fill (i + 1) (v / t.side)
    end
  in
  fill 0 p;
  c

let index t c =
  if Array.length c <> t.dims then invalid_arg "Torus.index: wrong dimensionality";
  let acc = ref 0 in
  for i = t.dims - 1 downto 0 do
    let v = c.(i) in
    if v < 0 || v >= t.side then invalid_arg "Torus.index: coordinate out of range";
    acc := (!acc * t.side) + v
  done;
  !acc

let axis_distance t a b =
  let d = abs (a - b) in
  min d (t.side - d)

(* L1 (Manhattan) distance with per-axis wraparound: the lattice distance of
   Kleinberg's grid, made toroidal so every node is symmetric. *)
let distance t a b =
  let ca = coords t a and cb = coords t b in
  let acc = ref 0 in
  for i = 0 to t.dims - 1 do
    acc := !acc + axis_distance t ca.(i) cb.(i)
  done;
  !acc

let neighbors t p =
  let ca = coords t p in
  let result = ref [] in
  for i = 0 to t.dims - 1 do
    let plus = Array.copy ca and minus = Array.copy ca in
    plus.(i) <- (ca.(i) + 1) mod t.side;
    minus.(i) <- (ca.(i) - 1 + t.side) mod t.side;
    result := index t plus :: !result;
    if t.side > 2 then result := index t minus :: !result
  done;
  List.sort_uniq Int.compare !result

let move t p ~axis ~delta =
  if axis < 0 || axis >= t.dims then invalid_arg "Torus.move: bad axis";
  let c = coords t p in
  c.(axis) <- ((c.(axis) + delta) mod t.side + t.side) mod t.side;
  index t c
