(* The sanitizer switch. Sits below every other library so that hot paths
   (heap sift, greedy hops, overlay repairs) can guard their self-checks on
   a single mutable bool — one load and one branch when off, nothing
   allocated. The full validator battery lives in [Ftr_check.Check], which
   depends on every layer; this module is the part both sides can see.

   Enable with the environment variable FTR_CHECK=1 (read once at start-up)
   or programmatically via [set_mode]. *)

exception Invariant_violation of string

let env_enabled =
  match Sys.getenv_opt "FTR_CHECK" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

let enabled_ref = ref env_enabled

(* Workers only read; [set_mode] is harness-side and runs before the pool
   spawns domains. ftr-lint: disable T1 *)
let enabled () = !enabled_ref

let set_mode on = enabled_ref := on

(* Run [f] with checking forced on, restoring the previous mode. *)
let with_mode on f =
  let saved = !enabled_ref in
  enabled_ref := on;
  Fun.protect ~finally:(fun () -> enabled_ref := saved) f

let failf fmt = Printf.ksprintf (fun m -> raise (Invariant_violation m)) fmt

(* Guarded check: evaluates the (possibly expensive) condition only when
   the sanitizer is on. *)
let check cond fmt =
  if !enabled_ref then
    Printf.ksprintf (fun m -> if not (cond ()) then raise (Invariant_violation m)) fmt
  else Printf.ksprintf ignore fmt
