(* Discrete samplers built on Rng. All tables are immutable once built so a
   single table can be shared by many generators/threads. *)

type cdf = { cumulative : float array }

let cdf_of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sample.cdf_of_weights: empty weights";
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let w = weights.(i) in
    if w < 0.0 || Float.is_nan w then
      invalid_arg "Sample.cdf_of_weights: negative or NaN weight";
    total := !total +. w;
    cumulative.(i) <- !total
  done;
  if !total <= 0.0 then invalid_arg "Sample.cdf_of_weights: zero total weight";
  for i = 0 to n - 1 do
    cumulative.(i) <- cumulative.(i) /. !total
  done;
  cumulative.(n - 1) <- 1.0;
  { cumulative }

let cdf_size { cumulative } = Array.length cumulative

(* First index i with cumulative.(i) > u; u in [0,1). *)
let cdf_draw { cumulative } rng =
  let u = Rng.float rng in
  let n = Array.length cumulative in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cumulative.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let cdf_probability { cumulative } i =
  if i < 0 || i >= Array.length cumulative then
    invalid_arg "Sample.cdf_probability: index out of range";
  if i = 0 then cumulative.(0) else cumulative.(i) -. cumulative.(i - 1)

type alias = { prob : float array; alias_of : int array }

(* Vose's alias method: O(n) construction, O(1) draws. *)
let alias_of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sample.alias_of_weights: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 || Float.is_nan total then
    invalid_arg "Sample.alias_of_weights: non-positive total weight";
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 0.0 in
  let alias_of = Array.make n 0 in
  let small = Queue.create () in
  let large = Queue.create () in
  Array.iteri (fun i p -> if p < 1.0 then Queue.add i small else Queue.add i large) scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small in
    let l = Queue.pop large in
    prob.(s) <- scaled.(s);
    alias_of.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Queue.add l small else Queue.add l large
  done;
  Queue.iter (fun i -> prob.(i) <- 1.0) small;
  Queue.iter (fun i -> prob.(i) <- 1.0) large;
  { prob; alias_of }

let alias_draw { prob; alias_of } rng =
  let i = Rng.int rng (Array.length prob) in
  if Rng.float rng < prob.(i) then i else alias_of.(i)

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Sample.exponential: rate must be positive";
  (* 1 - u avoids log 0. *)
  -.log (1.0 -. Rng.float rng) /. rate

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Sample.geometric: p must be in (0,1]";
  if Float.equal p 1.0 then 1
  else
    (* Number of Bernoulli(p) trials up to and including the first success. *)
    let u = 1.0 -. Rng.float rng in
    1 + int_of_float (floor (log u /. log (1.0 -. p)))

let poisson rng ~lambda =
  if lambda < 0.0 then invalid_arg "Sample.poisson: lambda must be non-negative";
  if Float.equal lambda 0.0 then 0
  else if lambda < 30.0 then begin
    (* Knuth's product-of-uniforms method. *)
    let limit = exp (-.lambda) in
    let rec go k prod =
      let prod = prod *. Rng.float rng in
      if prod <= limit then k else go (k + 1) prod
    in
    go 0 1.0
  end
  else begin
    (* Split: Poisson(a+b) = Poisson(a) + Poisson(b). Keeps each chunk in
       the numerically safe range of the product method. *)
    let chunk = 20.0 in
    let rec go remaining acc =
      if remaining > chunk then go (remaining -. chunk) (acc + poisson_chunk rng chunk)
      else acc + poisson_chunk rng remaining
    and poisson_chunk rng lambda =
      let limit = exp (-.lambda) in
      let rec inner k prod =
        let prod = prod *. Rng.float rng in
        if prod <= limit then k else inner (k + 1) prod
      in
      inner 0 1.0
    in
    go lambda 0
  end

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sample.binomial: n must be non-negative";
  if p < 0.0 || p > 1.0 then invalid_arg "Sample.binomial: p must be in [0,1]";
  (* Direct Bernoulli sum; n in our workloads is small (node degrees). *)
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.float rng < p then incr count
  done;
  !count

type power_law = {
  max_length : int;
  prefix : float array; (* prefix.(i) = sum_{d=1..i+1} d^-exponent *)
}

let power_law ~exponent ~max_length =
  if max_length < 1 then invalid_arg "Sample.power_law: max_length must be >= 1";
  let prefix = Array.make max_length 0.0 in
  let acc = ref 0.0 in
  for d = 1 to max_length do
    acc := !acc +. (1.0 /. Float.pow (float_of_int d) exponent);
    prefix.(d - 1) <- !acc
  done;
  { max_length; prefix }

let power_law_total t ~upto =
  if upto < 0 || upto > t.max_length then
    invalid_arg "Sample.power_law_total: out of range";
  if upto = 0 then 0.0 else t.prefix.(upto - 1)

(* Inverse-CDF draw of a length d in [1, upto] with Pr[d] proportional to
   d^-exponent, by binary search in the prefix table. *)
let power_law_draw t rng ~upto =
  if upto < 1 || upto > t.max_length then
    invalid_arg "Sample.power_law_draw: upto out of range";
  let target = Rng.float rng *. t.prefix.(upto - 1) in
  let rec search lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if t.prefix.(mid) > target then search lo mid else search (mid + 1) hi
  in
  search 0 (upto - 1)

let power_law_max_length t = t.max_length
