(** Convenience layer over {!Xoshiro}: bounded integers without modulo bias,
    floats in [0,1), Bernoulli draws, shuffles and permutations.

    Every simulation component takes one of these explicitly — there is no
    hidden global generator, so every experiment is reproducible from its
    seed.

    {b Not domain-safe.} A generator is mutable state with no internal
    synchronisation: two domains drawing from the same [t] is a data race,
    and even a benign-looking share makes output depend on scheduling.
    Parallel code must not pass generators across domains — a job running
    under [Ftr_exec] obtains its generator from [Ftr_exec.Seed.rng_for]
    (a pure function of the sweep seed and the job index), which is the
    only sanctioned path; [Ftr_exec.Pool] asserts under [FTR_CHECK=1]
    that no job ever receives the sweep's root generator. *)

type t
(** A generator (mutable state). *)

val create : ?seed:int64 -> unit -> t
(** Fresh generator; default seed is fixed so unseeded uses are still
    deterministic. *)

val of_int : int -> t
(** Generator seeded from an OCaml [int]. *)

val split : t -> t
(** Child generator with a decorrelated stream; advances the parent. *)

val copy : t -> t
(** Copy of the current state (same future stream). *)

val bits64 : t -> int64
(** Raw 64-bit output. *)

val bits : t -> int
(** Uniform non-negative int in [0, 2^62). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound), bias-free.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [lo, hi].
    @raise Invalid_argument if [lo > hi]. *)

val float : t -> float
(** Uniform in [0, 1) with 53 bits of precision. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.
    @raise Invalid_argument on an empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
