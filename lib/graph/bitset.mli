(** Compact fixed-size bitsets.

    Failure experiments mark up to 2^17 nodes (and 17x that many links)
    dead per trial; bitsets keep that mask at one bit per entity. *)

type t

val create : int -> t
(** All-clear bitset of the given size.
    @raise Invalid_argument on a negative size. *)

val size : t -> int
(** Capacity in bits. *)

val get : t -> int -> bool
(** Read one bit. @raise Invalid_argument when out of range. *)

val unsafe_get : t -> int -> bool
(** Read one bit without the range check — for hot loops whose indices are
    validated once up front (the routing inner loop). Out-of-range indices
    are undefined behaviour. *)

val set : t -> int -> unit
(** Set one bit. *)

val clear : t -> int -> unit
(** Clear one bit. *)

val assign : t -> int -> bool -> unit
(** Set or clear according to the boolean. *)

val fill : t -> bool -> unit
(** Set or clear every bit. *)

val copy : t -> t
(** Independent copy. *)

val count : t -> int
(** Number of set bits. *)

val iter_set : t -> (int -> unit) -> unit
(** Apply to every set index in increasing order. *)
