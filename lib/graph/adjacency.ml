(* Compact int32 vectors backing every CSR structure in the tree. A
   [Bigarray] of int32 halves the footprint of the previous [int array]
   representation (4 bytes per entry instead of a tagged 8-byte word),
   lives outside the OCaml heap (the GC never scans it), and — because
   [Unix.map_file] produces exactly this type — lets a serialized network
   snapshot be mapped straight into the working representation
   (Ftr_core.Snapshot). The accessors compose [Int32.to_int] directly with
   the Bigarray read so the boxed intermediate cancels in cmmgen: reads
   are allocation-free even without flambda (pinned by the Gc budgets in
   test_csr.ml). *)
module I32 = struct
  type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  let max_value = 0x3FFF_FFFF (* conservative: also fits a 32-bit OCaml int *)

  let create n : t = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n

  let length (a : t) = Bigarray.Array1.dim a

  let[@inline always] unsafe_get (a : t) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)

  let[@inline always] get (a : t) i = Int32.to_int (Bigarray.Array1.get a i)

  let set (a : t) i v =
    if v < 0 || v > max_value then
      invalid_arg (Printf.sprintf "I32.set: value %d outside the int32 range" v);
    Bigarray.Array1.set a i (Int32.of_int v)

  (* Unchecked write for producers that have already range-checked. *)
  let[@inline always] unsafe_set (a : t) i v =
    Bigarray.Array1.unsafe_set a i (Int32.of_int v)

  let of_int_array xs =
    let a = create (Array.length xs) in
    Array.iteri (fun i v -> set a i v) xs;
    a

  let to_int_array (a : t) = Array.init (length a) (fun i -> get a i)

  let sub (a : t) off len : t = Bigarray.Array1.sub a off len

  let blit (src : t) (dst : t) = Bigarray.Array1.blit src dst

  let fill (a : t) v = Bigarray.Array1.fill a (Int32.of_int v)

  let equal (a : t) (b : t) =
    length a = length b
    &&
    let ok = ref true in
    for i = 0 to length a - 1 do
      if not (Int32.equal (Bigarray.Array1.unsafe_get a i) (Bigarray.Array1.unsafe_get b i))
      then ok := false
    done;
    !ok
end

(* Compressed sparse row: the whole edge set in two flat int32 vectors.
   Row [u] is [targets.(offsets.(u)) .. targets.(offsets.(u+1) - 1)]. The
   flat layout is the memory representation the routing hot loop scans —
   one contiguous block instead of [n] separately boxed rows — and since
   the int32/Bigarray refactor it is also byte-identical to the on-disk
   snapshot payload (docs/MEMORY_LAYOUT.md). *)
module Csr = struct
  type t = { offsets : I32.t; targets : I32.t }

  let size t = I32.length t.offsets - 1

  let degree t u = I32.get t.offsets (u + 1) - I32.get t.offsets u

  let edge_count t = I32.get t.offsets (size t)

  let nth t u k = I32.get t.targets (I32.get t.offsets u + k)

  (* Debug/test accessor: copies the row out as an int array — the
     compatibility view of the pre-Bigarray representation. Warm paths use
     [iter_row]/[nth] or scan [offsets]/[targets] directly. *)
  let row t u =
    let base = I32.get t.offsets u in
    Array.init (degree t u) (fun k -> I32.get t.targets (base + k))

  let iter_row t u f =
    for k = I32.get t.offsets u to I32.get t.offsets (u + 1) - 1 do
      f (I32.unsafe_get t.targets k)
    done

  (* The structural invariants every producer must establish; the Check
     battery re-verifies them with stable violation codes. *)
  let validate ?(sorted = false) t =
    let n = size t in
    if n < 0 then invalid_arg "Csr: offsets must have at least one entry";
    if I32.get t.offsets 0 <> 0 then invalid_arg "Csr: offsets must start at 0";
    for u = 0 to n - 1 do
      if I32.get t.offsets (u + 1) < I32.get t.offsets u then
        invalid_arg (Printf.sprintf "Csr: offsets decrease at row %d" u)
    done;
    if I32.get t.offsets n <> I32.length t.targets then
      invalid_arg "Csr: final offset must equal the target count";
    for k = 0 to I32.length t.targets - 1 do
      let v = I32.get t.targets k in
      if v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Csr: target %d at slot %d out of range" v k)
    done;
    if sorted then
      for u = 0 to n - 1 do
        for k = I32.get t.offsets u + 1 to I32.get t.offsets (u + 1) - 1 do
          if I32.get t.targets (k - 1) > I32.get t.targets k then
            invalid_arg
              (Printf.sprintf "Csr: row %d unsorted at entry %d" u (k - I32.get t.offsets u))
        done
      done

  let check_node_count n =
    if n < 0 || n >= I32.max_value then
      invalid_arg (Printf.sprintf "Csr: node count %d outside the int32-indexable range" n)

  (* Streaming construction: rows appended one at a time (or one target at
     a time) into a doubling flat buffer, so building an n-node network
     needs O(row) transient state instead of materializing [n] jagged
     rows. The network builders' streaming paths feed this directly. *)
  module Builder = struct
    type csr = t

    type t = {
      n : int;
      offsets : I32.t;
      mutable targets : I32.t;
      mutable len : int; (* targets filled so far *)
      mutable rows_done : int;
    }

    let create ?(edges_hint = 0) ~n () =
      check_node_count n;
      let cap = max 16 edges_hint in
      let offsets = I32.create (n + 1) in
      I32.unsafe_set offsets 0 0;
      { n; offsets; targets = I32.create cap; len = 0; rows_done = 0 }

    let grow b needed =
      let cap = max needed (max 16 (2 * I32.length b.targets)) in
      let cap = min cap I32.max_value in
      if cap < needed then invalid_arg "Csr.Builder: edge count exceeds the int32 range";
      let bigger = I32.create cap in
      if b.len > 0 then I32.blit (I32.sub b.targets 0 b.len) (I32.sub bigger 0 b.len);
      b.targets <- bigger

    let add_target b v =
      if b.rows_done >= b.n then invalid_arg "Csr.Builder: all rows already closed";
      if v < 0 || v >= b.n then
        invalid_arg (Printf.sprintf "Csr.Builder: target %d out of range" v);
      if b.len >= I32.length b.targets then grow b (b.len + 1);
      I32.unsafe_set b.targets b.len v;
      b.len <- b.len + 1

    let end_row b =
      if b.rows_done >= b.n then invalid_arg "Csr.Builder: all rows already closed";
      b.rows_done <- b.rows_done + 1;
      I32.unsafe_set b.offsets b.rows_done b.len

    let append_row b arr ~len =
      for k = 0 to len - 1 do
        add_target b arr.(k)
      done;
      end_row b

    let finish b =
      if b.rows_done <> b.n then
        invalid_arg
          (Printf.sprintf "Csr.Builder: %d of %d rows closed at finish" b.rows_done b.n);
      (* Shrink to fit: the doubling buffer may overshoot by up to 2x. A
         [sub] view would pin the full buffer; copy instead. *)
      let targets = I32.create b.len in
      if b.len > 0 then I32.blit (I32.sub b.targets 0 b.len) targets;
      { offsets = b.offsets; targets }
  end

  let of_rows rows =
    let n = Array.length rows in
    check_node_count n;
    let edges = Array.fold_left (fun acc r -> acc + Array.length r) 0 rows in
    let b = Builder.create ~edges_hint:edges ~n () in
    Array.iter (fun r -> Builder.append_row b r ~len:(Array.length r)) rows;
    let t = Builder.finish b in
    validate t;
    t

  let to_rows t = Array.init (size t) (fun u -> row t u)

  let equal a b = I32.equal a.offsets b.offsets && I32.equal a.targets b.targets
end

type t = { out_neighbors : int array array }

let to_csr t = Csr.of_rows t.out_neighbors

let of_csr c = { out_neighbors = Csr.to_rows c }

let of_arrays out_neighbors =
  Array.iteri
    (fun u ns ->
      Array.iter
        (fun v ->
          if v < 0 || v >= Array.length out_neighbors then
            invalid_arg
              (Printf.sprintf "Adjacency.of_arrays: edge %d -> %d out of range" u v))
        ns)
    out_neighbors;
  { out_neighbors }

let of_edges ~n edges =
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Adjacency.of_edges: out of range";
      buckets.(u) <- v :: buckets.(u))
    edges;
  { out_neighbors = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

let size t = Array.length t.out_neighbors

let out_degree t u = Array.length t.out_neighbors.(u)

let neighbors t u = t.out_neighbors.(u)

let mem_edge t u v = Array.exists (fun w -> w = v) t.out_neighbors.(u)

let iter_edges t f =
  Array.iteri (fun u ns -> Array.iter (fun v -> f u v) ns) t.out_neighbors

let edge_count t = Array.fold_left (fun acc ns -> acc + Array.length ns) 0 t.out_neighbors

let reverse t =
  let n = size t in
  let buckets = Array.make n [] in
  iter_edges t (fun u v -> buckets.(v) <- u :: buckets.(v));
  { out_neighbors = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

let degree_summary t =
  let n = size t in
  if n = 0 then (0, 0, 0.0)
  else begin
    let lo = ref max_int and hi = ref 0 and total = ref 0 in
    for u = 0 to n - 1 do
      let d = out_degree t u in
      if d < !lo then lo := d;
      if d > !hi then hi := d;
      total := !total + d
    done;
    (!lo, !hi, float_of_int !total /. float_of_int n)
  end
