(* Compressed sparse row: the whole edge set in two flat arrays. Row [u] is
   [targets.(offsets.(u)) .. targets.(offsets.(u+1) - 1)]. The flat layout
   is the memory representation the routing hot loop scans — one contiguous
   block instead of [n] separately boxed rows. *)
module Csr = struct
  type t = { offsets : int array; targets : int array }

  let size t = Array.length t.offsets - 1

  let degree t u = t.offsets.(u + 1) - t.offsets.(u)

  let edge_count t = t.offsets.(size t)

  let nth t u k = t.targets.(t.offsets.(u) + k)

  let row t u = Array.sub t.targets t.offsets.(u) (degree t u)

  let iter_row t u f =
    for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
      f t.targets.(k)
    done

  (* The structural invariants every producer must establish; the Check
     battery re-verifies them with stable violation codes. *)
  let validate ?(sorted = false) t =
    let n = size t in
    if n < 0 then invalid_arg "Csr: offsets must have at least one entry";
    if t.offsets.(0) <> 0 then invalid_arg "Csr: offsets must start at 0";
    for u = 0 to n - 1 do
      if t.offsets.(u + 1) < t.offsets.(u) then
        invalid_arg (Printf.sprintf "Csr: offsets decrease at row %d" u)
    done;
    if t.offsets.(n) <> Array.length t.targets then
      invalid_arg "Csr: final offset must equal the target count";
    Array.iteri
      (fun k v ->
        if v < 0 || v >= n then
          invalid_arg (Printf.sprintf "Csr: target %d at slot %d out of range" v k))
      t.targets;
    if sorted then
      for u = 0 to n - 1 do
        for k = t.offsets.(u) + 1 to t.offsets.(u + 1) - 1 do
          if t.targets.(k - 1) > t.targets.(k) then
            invalid_arg (Printf.sprintf "Csr: row %d unsorted at entry %d" u (k - t.offsets.(u)))
        done
      done

  let of_rows rows =
    let n = Array.length rows in
    let offsets = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      offsets.(u + 1) <- offsets.(u) + Array.length rows.(u)
    done;
    let targets = Array.make offsets.(n) 0 in
    Array.iteri (fun u ns -> Array.blit ns 0 targets offsets.(u) (Array.length ns)) rows;
    let t = { offsets; targets } in
    validate t;
    t

  let to_rows t = Array.init (size t) (fun u -> row t u)
end

type t = { out_neighbors : int array array }

let to_csr t = Csr.of_rows t.out_neighbors

let of_csr c = { out_neighbors = Csr.to_rows c }

let of_arrays out_neighbors =
  Array.iteri
    (fun u ns ->
      Array.iter
        (fun v ->
          if v < 0 || v >= Array.length out_neighbors then
            invalid_arg
              (Printf.sprintf "Adjacency.of_arrays: edge %d -> %d out of range" u v))
        ns)
    out_neighbors;
  { out_neighbors }

let of_edges ~n edges =
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Adjacency.of_edges: out of range";
      buckets.(u) <- v :: buckets.(u))
    edges;
  { out_neighbors = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

let size t = Array.length t.out_neighbors

let out_degree t u = Array.length t.out_neighbors.(u)

let neighbors t u = t.out_neighbors.(u)

let mem_edge t u v = Array.exists (fun w -> w = v) t.out_neighbors.(u)

let iter_edges t f =
  Array.iteri (fun u ns -> Array.iter (fun v -> f u v) ns) t.out_neighbors

let edge_count t = Array.fold_left (fun acc ns -> acc + Array.length ns) 0 t.out_neighbors

let reverse t =
  let n = size t in
  let buckets = Array.make n [] in
  iter_edges t (fun u v -> buckets.(v) <- u :: buckets.(v));
  { out_neighbors = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

let degree_summary t =
  let n = size t in
  if n = 0 then (0, 0, 0.0)
  else begin
    let lo = ref max_int and hi = ref 0 and total = ref 0 in
    for u = 0 to n - 1 do
      let d = out_degree t u in
      if d < !lo then lo := d;
      if d > !hi then hi := d;
      total := !total + d
    done;
    (!lo, !hi, float_of_int !total /. float_of_int n)
  end
