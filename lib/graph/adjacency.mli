(** Directed graphs as per-node out-neighbour arrays — the shape of the
    paper's overlay, where each node stores only the addresses of its
    neighbours. *)

(** Compressed sparse row (struct-of-arrays) form: all rows concatenated
    into one flat [targets] array indexed through [offsets]. Row [u] is
    [targets.(offsets.(u)) .. targets.(offsets.(u+1) - 1)]. Invariants
    (established by {!Csr.of_rows}, re-checkable with {!Csr.validate}):
    [offsets] is monotone non-decreasing, starts at 0, ends at
    [Array.length targets]; every target is a valid node index. The record
    is exposed so hot loops can scan the arrays directly — treat both
    arrays as read-only. *)
module Csr : sig
  type t = { offsets : int array; targets : int array }

  val of_rows : int array array -> t
  (** Flatten per-node rows; validates targets are in range. *)

  val to_rows : t -> int array array
  (** Rebuild the jagged per-node view (fresh arrays). *)

  val size : t -> int
  (** Number of nodes (rows). *)

  val degree : t -> int -> int
  (** Out-degree of a node. *)

  val edge_count : t -> int
  (** Total number of directed edges. *)

  val nth : t -> int -> int -> int
  (** [nth t u k] is the [k]-th out-neighbour of [u]. *)

  val row : t -> int -> int array
  (** Fresh copy of one row. *)

  val iter_row : t -> int -> (int -> unit) -> unit
  (** Apply to every out-neighbour of a node, in row order. *)

  val validate : ?sorted:bool -> t -> unit
  (** Re-check the structural invariants ([sorted] additionally demands
      every row be non-decreasing). @raise Invalid_argument on violation. *)
end

type t

val of_arrays : int array array -> t
(** Wrap per-node neighbour arrays.
    @raise Invalid_argument if any endpoint is out of range. *)

val of_edges : n:int -> (int * int) list -> t
(** Build from an edge list over nodes [0..n-1]. *)

val size : t -> int
(** Number of nodes. *)

val out_degree : t -> int -> int
(** Out-degree of a node. *)

val neighbors : t -> int -> int array
(** Out-neighbours of a node (do not mutate). *)

val mem_edge : t -> int -> int -> bool
(** Whether the directed edge u -> v exists. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Apply to every directed edge. *)

val edge_count : t -> int
(** Total number of directed edges. *)

val reverse : t -> t
(** Graph with every edge reversed. *)

val degree_summary : t -> int * int * float
(** (min, max, mean) out-degree. *)

val to_csr : t -> Csr.t
(** Flatten to the CSR form (fresh arrays). *)

val of_csr : Csr.t -> t
(** Rebuild the jagged form from CSR (fresh arrays). *)
