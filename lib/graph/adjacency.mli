(** Directed graphs as per-node out-neighbour arrays — the shape of the
    paper's overlay, where each node stores only the addresses of its
    neighbours. *)

(** Flat int32 vectors ([Bigarray], C layout) — the storage type behind
    every CSR structure. Half the footprint of [int array] (4 bytes per
    entry instead of a tagged word), unscanned by the GC, and the exact
    type [Unix.map_file] yields, so snapshots mmap straight into the
    working representation. [get]/[unsafe_get] return untagged [int]s and
    compile allocation-free (the [Int32.to_int] composition cancels the
    box even without flambda — pinned by the Gc budgets in test_csr.ml). *)
module I32 : sig
  type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  val max_value : int
  (** Largest storable value (conservatively [0x3FFF_FFFF], which also
      fits a 32-bit OCaml int). *)

  val create : int -> t
  (** Fresh uninitialised vector of the given length. *)

  val length : t -> int

  val get : t -> int -> int
  (** Bounds-checked read. *)

  val unsafe_get : t -> int -> int
  (** Unchecked read — hot loops over validated structures only. *)

  val set : t -> int -> int -> unit
  (** Bounds- and range-checked write.
      @raise Invalid_argument if the value does not fit. *)

  val unsafe_set : t -> int -> int -> unit
  (** Unchecked write for producers that have already range-checked. *)

  val of_int_array : int array -> t
  val to_int_array : t -> int array

  val sub : t -> int -> int -> t
  (** [sub a off len] is a shared view (no copy). *)

  val blit : t -> t -> unit
  val fill : t -> int -> unit
  val equal : t -> t -> bool
end

(** Compressed sparse row (struct-of-arrays) form: all rows concatenated
    into one flat [targets] vector indexed through [offsets]. Row [u] is
    [targets.(offsets.(u)) .. targets.(offsets.(u+1) - 1)]. Invariants
    (established by {!Csr.of_rows}/{!Csr.Builder.finish}, re-checkable
    with {!Csr.validate}): [offsets] is monotone non-decreasing, starts
    at 0, ends at [I32.length targets]; every target is a valid node
    index. The record is exposed so hot loops can scan the vectors
    directly — treat both as read-only. *)
module Csr : sig
  type t = { offsets : I32.t; targets : I32.t }

  (** Streaming construction: append rows (or single targets) in node
      order into a doubling flat buffer — O(current row) transient state,
      never a jagged intermediate. *)
  module Builder : sig
    type csr = t
    type t

    val create : ?edges_hint:int -> n:int -> unit -> t
    (** Builder for an [n]-node graph; [edges_hint] presizes the target
        buffer. @raise Invalid_argument if [n] exceeds the int32-indexable
        range. *)

    val add_target : t -> int -> unit
    (** Append one out-neighbour to the current (unfinished) row.
        @raise Invalid_argument if out of range or all rows are closed. *)

    val end_row : t -> unit
    (** Close the current row and advance to the next node. *)

    val append_row : t -> int array -> len:int -> unit
    (** [append_row b scratch ~len]: add the first [len] entries of
        [scratch] as one full row — the scratch array can be reused. *)

    val finish : t -> csr
    (** Seal into a CSR (shrinks the buffer to fit).
        @raise Invalid_argument unless exactly [n] rows were closed. *)
  end

  val of_rows : int array array -> t
  (** Flatten per-node rows; validates targets are in range. *)

  val to_rows : t -> int array array
  (** Debug/test accessor: rebuild the jagged per-node view (fresh
      arrays) — the compatibility view of the pre-Bigarray layout. *)

  val size : t -> int
  (** Number of nodes (rows). *)

  val degree : t -> int -> int
  (** Out-degree of a node. *)

  val edge_count : t -> int
  (** Total number of directed edges. *)

  val nth : t -> int -> int -> int
  (** [nth t u k] is the [k]-th out-neighbour of [u]. *)

  val row : t -> int -> int array
  (** Debug/test accessor: fresh int-array copy of one row. Allocates per
      call — warm paths use {!iter_row}/{!nth} or scan the vectors. *)

  val iter_row : t -> int -> (int -> unit) -> unit
  (** Apply to every out-neighbour of a node, in row order. *)

  val validate : ?sorted:bool -> t -> unit
  (** Re-check the structural invariants ([sorted] additionally demands
      every row be non-decreasing). @raise Invalid_argument on violation. *)

  val equal : t -> t -> bool
  (** Structural (byte) equality of both vectors. *)
end

type t

val of_arrays : int array array -> t
(** Wrap per-node neighbour arrays.
    @raise Invalid_argument if any endpoint is out of range. *)

val of_edges : n:int -> (int * int) list -> t
(** Build from an edge list over nodes [0..n-1]. *)

val size : t -> int
(** Number of nodes. *)

val out_degree : t -> int -> int
(** Out-degree of a node. *)

val neighbors : t -> int -> int array
(** Out-neighbours of a node (do not mutate). *)

val mem_edge : t -> int -> int -> bool
(** Whether the directed edge u -> v exists. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Apply to every directed edge. *)

val edge_count : t -> int
(** Total number of directed edges. *)

val reverse : t -> t
(** Graph with every edge reversed. *)

val degree_summary : t -> int * int * float
(** (min, max, mean) out-degree. *)

val to_csr : t -> Csr.t
(** Flatten to the CSR form (fresh vectors). *)

val of_csr : Csr.t -> t
(** Rebuild the jagged form from CSR (fresh arrays). *)
