type t = { size : int; words : Bytes.t }

let bits_per_word = 8

let create size =
  if size < 0 then invalid_arg "Bitset.create: negative size";
  { size; words = Bytes.make ((size + bits_per_word - 1) / bits_per_word) '\000' }

let size t = t.size

let check t i = if i < 0 || i >= t.size then invalid_arg "Bitset: index out of range"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.words (i / bits_per_word)) land (1 lsl (i mod bits_per_word)) <> 0

let unsafe_get t i =
  Char.code (Bytes.unsafe_get t.words (i / bits_per_word)) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check t i;
  let w = i / bits_per_word in
  Bytes.unsafe_set t.words w
    (Char.chr (Char.code (Bytes.unsafe_get t.words w) lor (1 lsl (i mod bits_per_word))))

let clear t i =
  check t i;
  let w = i / bits_per_word in
  Bytes.unsafe_set t.words w
    (Char.chr (Char.code (Bytes.unsafe_get t.words w) land lnot (1 lsl (i mod bits_per_word)) land 0xFF))

let assign t i v = if v then set t i else clear t i

let fill t v =
  Bytes.fill t.words 0 (Bytes.length t.words) (if v then '\255' else '\000');
  (* Keep trailing padding bits clear so popcount stays exact. *)
  if v then
    for i = t.size to (Bytes.length t.words * bits_per_word) - 1 do
      let w = i / bits_per_word in
      Bytes.unsafe_set t.words w
        (Char.chr
           (Char.code (Bytes.unsafe_get t.words w) land lnot (1 lsl (i mod bits_per_word)) land 0xFF))
    done

let copy t = { size = t.size; words = Bytes.copy t.words }

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let count t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) t.words;
  !acc

let iter_set t f =
  for i = 0 to t.size - 1 do
    if get t i then f i
  done
