(* ftr-lint: disable-file R1 T2 -- benchmark wall-clock timing is the measurement itself *)

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sections 5 and 6, Table 1), then times the hot paths with
   Bechamel.

   Default scale finishes in a few minutes; set FTR_BENCH_FULL=1 to run at
   the paper's node counts (slower). Numbers are means over the stated
   number of networks/messages; shapes, not absolute values, are the
   reproduction target (see EXPERIMENTS.md). *)

module E = Ftr_core.Experiment
module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Heuristic = Ftr_core.Heuristic
module Theory = Ftr_core.Theory
module Ac = Ftr_core.Aggregate_chain
module Rng = Ftr_prng.Rng
module Summary = Ftr_stats.Summary
module Plot = Ftr_stats.Ascii_plot

let full = match Sys.getenv_opt "FTR_BENCH_FULL" with Some ("1" | "true") -> true | _ -> false

(* FTR_BENCH_SMOKE=1 shrinks the timed sections to seconds — the @perf
   alias uses it to keep the route microbenchmark inside the edit loop. *)
let smoke = match Sys.getenv_opt "FTR_BENCH_SMOKE" with Some ("1" | "true") -> true | _ -> false

(* FTR_BENCH_ONLY=<name>[,<name>...] runs only the named sections
   ("route", or the full "bench.route" span name). Unset runs them all. *)
let only_sections =
  match Sys.getenv_opt "FTR_BENCH_ONLY" with
  | None | Some "" -> None
  | Some s -> Some (String.split_on_char ',' s)

(* Set FTR_BENCH_CSV=<dir> to also export every table as CSV. *)
let csv_dir = Sys.getenv_opt "FTR_BENCH_CSV"

let mkdir_p = Ftr_stats.Csv.mkdir_p

let csv name ~header ~rows =
  match csv_dir with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      let path = Filename.concat dir (name ^ ".csv") in
      Ftr_stats.Csv.write_file ~path ~header ~rows;
      Printf.printf "[csv] wrote %s\n%!" path

let seed = 0xF7A

(* --jobs N: worker domains for the EXEC section (default: the host's
   recommended domain count). The executor's contract makes this a pure
   wall-clock knob — results never move. *)
let jobs_flag =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if String.equal Sys.argv.(i) "--jobs" then int_of_string_opt Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let section title =
  Printf.printf "\n=============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=============================================================\n%!"

let subsection title = Printf.printf "\n--- %s ---\n%!" title

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)
(* ------------------------------------------------------------------ *)

let run_figure5 () =
  let n = if full then 1 lsl 14 else 1 lsl 12 in
  let links = if full then 14 else 12 in
  let networks = if full then 10 else 3 in
  section
    (Printf.sprintf
       "FIGURE 5 — link-length distribution of the Section 5 heuristic\n\
        (n=%d, links=%d, %d networks; paper: n=2^14, 14 links, 10 networks)" n links networks);
  let show name r =
    subsection name;
    Printf.printf "%10s %12s %12s %12s\n" "length" "derived" "ideal" "abs.error";
    List.iter
      (fun p ->
        Printf.printf "%10d %12.6f %12.6f %12.6f\n" p.E.length p.E.derived p.E.ideal
          (abs_float p.E.error))
      r.E.points;
    Printf.printf "max |error| = %.4f at length %d (paper: ~0.022 at length 2)\n" r.E.max_abs_error
      r.E.max_abs_error_length;
    Printf.printf "total variation distance = %.4f\n%!" r.E.total_variation;
    let tag =
      (* First word of the caption, lowercased: "proportional" / "oldest-link". *)
      match String.split_on_char ' ' name with w :: _ -> String.lowercase_ascii w | [] -> "x"
    in
    csv
      (Printf.sprintf "figure5_%s" tag)
      ~header:[ "length"; "derived"; "ideal"; "error" ]
      ~rows:
        (List.map
           (fun p ->
             Ftr_stats.Csv.
               [ int_field p.E.length; float_field p.E.derived; float_field p.E.ideal; float_field p.E.error ])
           r.E.points);
    let to_points select =
      List.filter_map
        (fun p ->
          let y = select p in
          if y > 0.0 then Some (float_of_int p.E.length, y) else None)
        r.E.points
    in
    print_string
      (Plot.render ~x_log:true ~y_log:true ~x_label:"link length" ~y_label:"probability"
         [
           Plot.series ~glyph:'*' ~label:"derived" (to_points (fun p -> p.E.derived));
           Plot.series ~glyph:'o' ~label:"ideal 1/d" (to_points (fun p -> p.E.ideal));
         ])
  in
  show "proportional replacement (Figure 5a/5b)"
    (E.figure5 ~replacement:Heuristic.Proportional ~networks ~n ~links ~seed ());
  show "oldest-link replacement (Section 5 ablation; paper: 'almost as good')"
    (E.figure5 ~replacement:Heuristic.Oldest ~networks ~n ~links ~seed:(seed + 1) ())

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

let run_figure6 () =
  let n = if full then 1 lsl 17 else 1 lsl 14 in
  let links = if full then 17 else 14 in
  let networks = if full then 10 else 3 in
  let messages = if full then 1000 else 300 in
  section
    (Printf.sprintf
       "FIGURE 6 — failure strategies (n=%d, links=%d, %d networks x %d messages;\n\
        paper: n=2^17, 17 links, 1000 sims x 100 messages)" n links networks messages);
  Printf.printf "%8s | %22s | %22s | %31s\n" "" "terminate" "random re-route" "backtracking(5)";
  Printf.printf "%8s | %10s %11s | %10s %11s | %10s %11s %8s\n" "p(fail)" "failed" "hops" "failed"
    "hops" "failed" "hops" "path";
  let rows = E.figure6 ~n ~links ~networks ~messages ~seed () in
  List.iter
    (fun r ->
      Printf.printf "%8.2f | %10.4f %11.2f | %10.4f %11.2f | %10.4f %11.2f %8.2f\n%!"
        r.E.fail_fraction r.E.terminate.E.failed_fraction r.E.terminate.E.mean_hops
        r.E.reroute.E.failed_fraction r.E.reroute.E.mean_hops r.E.backtrack.E.failed_fraction
        r.E.backtrack.E.mean_hops r.E.backtrack.E.mean_path_hops)
    rows;
  csv "figure6"
    ~header:
      [
        "fail_fraction"; "terminate_failed"; "terminate_hops"; "reroute_failed"; "reroute_hops";
        "backtrack_failed"; "backtrack_hops"; "backtrack_path";
      ]
    ~rows:
      (List.map
         (fun r ->
           Ftr_stats.Csv.
             [
               float_field r.E.fail_fraction;
               float_field r.E.terminate.E.failed_fraction;
               float_field r.E.terminate.E.mean_hops;
               float_field r.E.reroute.E.failed_fraction;
               float_field r.E.reroute.E.mean_hops;
               float_field r.E.backtrack.E.failed_fraction;
               float_field r.E.backtrack.E.mean_hops;
               float_field r.E.backtrack.E.mean_path_hops;
             ])
         rows);
  print_string
    (Plot.render ~x_label:"fraction of failed nodes" ~y_label:"failed searches"
       [
         Plot.series ~glyph:'t' ~label:"terminate"
           (List.map (fun r -> (r.E.fail_fraction, r.E.terminate.E.failed_fraction)) rows);
         Plot.series ~glyph:'r' ~label:"re-route"
           (List.map (fun r -> (r.E.fail_fraction, r.E.reroute.E.failed_fraction)) rows);
         Plot.series ~glyph:'b' ~label:"backtrack"
           (List.map (fun r -> (r.E.fail_fraction, r.E.backtrack.E.failed_fraction)) rows);
       ]);
  Printf.printf
    "expected shape: failed(terminate) ~ p; backtracking slashes failures\n\
     (paper: <30%% failed searches at 80%% failed nodes) at an exploration cost.\n\
     'hops' counts every message hop; 'path' is the loop-erased route length,\n\
     the scale Figure 6(b) plots.\n%!"

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let run_figure7 () =
  let n = if full then 16384 else 4096 in
  let links = if full then 14 else 12 in
  let networks = if full then 10 else 3 in
  let messages = if full then 1000 else 300 in
  section
    (Printf.sprintf
       "FIGURE 7 — ideal vs heuristically constructed network (n=%d, links=%d,\n\
        %d networks x %d messages; paper: n=16384, 10 iterations, 1000 messages)" n links networks
       messages);
  Printf.printf "%12s %16s %20s\n" "p(node fail)" "ideal failed" "constructed failed";
  let rows = E.figure7 ~n ~links ~networks ~messages ~seed () in
  List.iter
    (fun r ->
      Printf.printf "%12.2f %16.4f %20.4f\n%!" r.E.death_p r.E.ideal_failed r.E.constructed_failed)
    rows;
  csv "figure7" ~header:[ "death_p"; "ideal_failed"; "constructed_failed" ]
    ~rows:
      (List.map
         (fun r ->
           Ftr_stats.Csv.
             [ float_field r.E.death_p; float_field r.E.ideal_failed; float_field r.E.constructed_failed ])
         rows);
  print_string
    (Plot.render ~x_label:"probability of node failure" ~y_label:"failed searches"
       [
         Plot.series ~glyph:'i' ~label:"ideal"
           (List.map (fun r -> (r.E.death_p, r.E.ideal_failed)) rows);
         Plot.series ~glyph:'c' ~label:"constructed"
           (List.map (fun r -> (r.E.death_p, r.E.constructed_failed)) rows);
       ]);
  Printf.printf
    "expected shape: constructed tracks ideal, slightly worse at high failure rates.\n%!"

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1_csv_rows : string list list ref = ref []

let print_rows header rows =
  subsection header;
  Printf.printf "%24s %12s %12s %12s %8s\n" "row" "param" "measured" "bound" "ratio";
  List.iter
    (fun r ->
      table1_csv_rows :=
        Ftr_stats.Csv.
          [
            r.E.label; float_field r.E.parameter; float_field r.E.measured;
            float_field r.E.bound; float_field r.E.ratio;
          ]
        :: !table1_csv_rows;
      Printf.printf "%24s %12.3f %12.2f %12.2f %8.3f\n%!" r.E.label r.E.parameter r.E.measured
        r.E.bound r.E.ratio)
    rows

let run_table1 () =
  section
    "TABLE 1 — delivery-time bounds vs measurement (ratio = measured/bound;\n\
     upper-bound rows must stay <= 1, the lower-bound row must stay >= 1)";
  let networks = if full then 10 else 4 in
  let messages = if full then 500 else 200 in
  let big = if full then 1 lsl 16 else 1 lsl 14 in
  let ns = if full then [ 1024; 4096; 16384; 65536 ] else [ 256; 1024; 4096; 16384 ] in
  print_rows "no failures, 1 link: T = O(H_n^2)  [Theorem 12]"
    (E.sweep_single_link ~ns ~networks ~messages ~seed ());
  print_rows
    (Printf.sprintf "no failures, l links, n=%d: T = O(log^2 n / l)  [Theorem 13]" big)
    (E.sweep_multi_link ~n:big ~links_list:[ 1; 2; 4; 8; 14 ] ~networks ~messages ~seed ());
  print_rows "deterministic base-2 links: T <= ceil(log2 n)  [Theorem 14]"
    (E.sweep_deterministic ~ns ~base:2 ~messages ~seed ());
  print_rows "deterministic base-16 links: T <= ceil(log16 n)  [Theorem 14]"
    (E.sweep_deterministic ~ns ~base:16 ~messages ~seed ());
  print_rows
    (Printf.sprintf "link failures, n=%d: T = O(log^2 n / p l)  [Theorem 15]" big)
    (E.sweep_link_failure ~n:big ~probs:[ 1.0; 0.8; 0.6; 0.4; 0.2 ] ~networks ~messages ~seed ());
  print_rows
    (Printf.sprintf "geometric links + failures, n=%d: T = O(b log n / p)  [Theorem 16]" big)
    (E.sweep_geometric_link_failure ~n:big ~base:2 ~probs:[ 1.0; 0.8; 0.6; 0.4 ] ~networks
       ~messages ~seed ());
  print_rows
    (Printf.sprintf "binomial node presence, n=%d, 1 link: T = O(log^2 n)  [Theorem 17]" big)
    (E.sweep_binomial_nodes ~n:big ~links:1 ~probs:[ 1.0; 0.7; 0.5; 0.3 ] ~networks ~messages
       ~seed ());
  print_rows
    (Printf.sprintf "node failures, n=%d: T = O(log^2 n / (1-p) l)  [Theorem 18]" big)
    (E.sweep_node_failure ~n:big ~probs:[ 0.0; 0.2; 0.4; 0.6 ] ~networks ~messages ~seed ());
  print_rows "one-sided greedy vs Omega(log^2 n / l loglog n)  [Theorem 10]"
    (E.sweep_lower_bound ~ns ~links:3 ~trials:(if full then 1000 else 300) ~seed ())

(* ------------------------------------------------------------------ *)
(* Lower-bound machinery (Section 4.2)                                 *)
(* ------------------------------------------------------------------ *)

let run_lower_bound_machinery () =
  section "SECTION 4.2 — aggregate-chain machinery checks";
  let n = if full then 1 lsl 14 else 1 lsl 12 in
  let links = 3 in
  let trials = if full then 3000 else 1000 in
  let dist = Ac.harmonic ~links ~max_offset:n in
  let rng = Rng.of_int seed in
  subsection "Lemma 4: single-point chain vs aggregate chain (means must agree)";
  let single = Summary.create () in
  for _ = 1 to trials do
    Summary.add_int single (Ac.simulate_single_point dist rng ~start:(1 + Rng.int rng n))
  done;
  let aggregate = Ac.mean_aggregate dist rng ~start:n ~trials in
  Printf.printf "single-point mean steps: %8.2f +- %.2f\n" (Summary.mean single)
    (Summary.ci95_halfwidth single);
  Printf.printf "aggregate    mean steps: %8.2f +- %.2f\n%!" (Summary.mean aggregate)
    (Summary.ci95_halfwidth aggregate);
  subsection "Lemma 6: Pr[|S'| <= |S|/a] <= 3 l / a";
  Printf.printf "%8s %8s %14s %14s\n" "k" "a" "empirical" "bound";
  let ell = Ac.mean_size dist in
  List.iter
    (fun k ->
      List.iter
        (fun a ->
          let p = Ac.lemma6_drop_probability dist rng ~k ~a ~trials:4000 in
          Printf.printf "%8d %8.0f %14.4f %14.4f\n%!" k a p (3.0 *. ell /. a))
        [ 16.0; 64.0; 256.0 ])
    [ n / 16; n ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let run_ablations () =
  section "ABLATIONS — design choices called out in DESIGN.md";
  let networks = if full then 8 else 4 in
  let messages = if full then 400 else 200 in
  let n = if full then 1 lsl 15 else 1 lsl 13 in
  print_rows
    (Printf.sprintf
       "link-distribution exponent at n=%d, 2 links (Kleinberg brittleness; 1 is optimal)" n)
    (E.sweep_exponent ~n ~links:2 ~exponents:[ 0.0; 0.5; 0.8; 1.0; 1.2; 1.5; 2.0 ] ~networks
       ~messages ~seed ());
  print_rows (Printf.sprintf "one-sided vs two-sided greedy at n=%d, 4 links" n)
    (E.sweep_sides ~n ~links:4 ~networks ~messages ~seed ());
  subsection "the price of locality: greedy hops vs global shortest paths";
  Printf.printf "%8s %14s %14s %14s %14s\n" "links" "greedy" "optimal" "mean stretch"
    "max stretch";
  List.iter
    (fun r ->
      Printf.printf "%8d %14.2f %14.2f %14.2f %14.2f\n%!" r.E.stretch_links r.E.mean_greedy
        r.E.mean_optimal r.E.mean_stretch r.E.max_stretch)
    (E.sweep_stretch ~n:(if full then 1 lsl 13 else 1 lsl 12) ~pairs:(if full then 200 else 100)
       ~seed ());
  subsection "backtracking history length at 50% failed nodes (paper fixes 5)";
  Printf.printf "%10s %14s %14s\n" "history" "failed" "hops";
  List.iter
    (fun r ->
      Printf.printf "%10d %14.4f %14.2f\n%!" r.E.history r.E.result.E.failed_fraction
        r.E.result.E.mean_hops)
    (E.sweep_backtrack_history ~n ~fraction:0.5 ~histories:[ 1; 2; 5; 10; 20 ] ~networks
       ~messages ~seed ())

(* ------------------------------------------------------------------ *)
(* Extensions (Section 7 directions)                                   *)
(* ------------------------------------------------------------------ *)

let run_extensions () =
  section "EXTENSIONS — Section 7 directions, implemented";
  let networks = if full then 8 else 4 in
  let messages = if full then 400 else 200 in
  print_rows "line vs circle at matched parameters (no boundary on the circle)"
    (E.sweep_geometry ~n:(if full then 1 lsl 15 else 1 lsl 13) ~links:8 ~networks ~messages
       ~seed ());
  subsection
    "higher dimensions at ~4096 nodes, alpha = dims, 4 long links,\n\
     30% node failures, backtracking(5)";
  Printf.printf "%8s %10s %14s %14s\n" "dims" "nodes" "failed" "hops";
  List.iter
    (fun r ->
      Printf.printf "%8d %10d %14.4f %14.2f\n%!" r.E.dims r.E.nodes r.E.failed_nd
        r.E.mean_hops_nd)
    (E.sweep_dimensions ~links:4 ~death_p:0.3 ~networks ~messages ~seed ());
  subsection
    "Section 5 repair: terminate-strategy failures before and after link\n\
     regeneration over the survivors of a 40% failure wave";
  let rn = if full then 1 lsl 14 else 1 lsl 12 in
  let rlinks = int_of_float (Theory.lg rn) in
  let rrng = Rng.of_int (seed + 21) in
  let rnet = Network.build_ideal ~n:rn ~links:rlinks (Rng.split rrng) in
  let mask = Ftr_core.Failure.random_node_fraction rrng ~n:rn ~fraction:0.4 in
  let alive = Ftr_graph.Bitset.get mask in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let before = ref 0 and trials = if full then 500 else 300 in
  for _ = 1 to trials do
    let live () =
      let rec go () =
        let v = Rng.int rrng rn in
        if alive v then v else go ()
      in
      go ()
    in
    let src = live () and dst = live () in
    if not (Route.delivered (Route.route ~failures rnet ~src ~dst)) then incr before
  done;
  let repaired = Heuristic.repair ~alive rnet (Rng.split rrng) in
  let m = Network.size repaired in
  let after = ref 0 in
  for _ = 1 to trials do
    let src = Rng.int rrng m and dst = Rng.int rrng m in
    if not (Route.delivered (Route.route repaired ~src ~dst)) then incr after
  done;
  Printf.printf "before repair: %.4f of searches fail (terminate strategy)\n"
    (float_of_int !before /. float_of_int trials);
  Printf.printf "after repair:  %.4f — the survivors are a full random graph again\n%!"
    (float_of_int !after /. float_of_int trials);
  subsection
    "adversarial failures (Section 4.3.4.2): kill the 2*log2(n) structural\n\
     in-neighbour positions of a target in both networks";
  let r =
    Ftr_core.Adversary.isolation_experiment
      ~n:(if full then 16384 else 4096)
      ~trials:(if full then 300 else 100)
      ~seed ()
  in
  Printf.printf "adversary budget: %d kills\n" r.Ftr_core.Adversary.kills;
  Printf.printf "geometric (Theorem 16) network: %6.4f searches to the target fail\n"
    r.Ftr_core.Adversary.geometric_failed;
  Printf.printf "randomized 1/d network:         %6.4f searches to the target fail\n%!"
    r.Ftr_core.Adversary.random_failed;
  Printf.printf
    "the deterministic structure betrays its links; the random graph hides them.\n%!";
  subsection
    "hub attack: kill 10% of nodes at random vs by descending in-degree\n\
     (backtracking searches; the 1/d overlay is egalitarian by design)";
  Printf.printf "%26s %10s %16s %16s\n" "network" "kills" "random failed" "targeted failed";
  let n = if full then 1 lsl 13 else 1 lsl 12 in
  let links = int_of_float (Theory.lg n) in
  let arng = Rng.of_int (seed + 11) in
  List.iter
    (fun (name, net) ->
      let r =
        Ftr_core.Adversary.degree_attack_experiment ~kills_fraction:0.1
          ~messages:(if full then 400 else 250)
          ~net ~seed:(seed + 12) ()
      in
      Printf.printf "%26s %10d %16.4f %16.4f\n%!" name r.Ftr_core.Adversary.attack_kills
        r.Ftr_core.Adversary.random_failed r.Ftr_core.Adversary.targeted_failed)
    [
      ("ideal 1/d", Network.build_ideal ~n ~links (Rng.split arng));
      ("heuristic construction", Heuristic.build ~n ~links (Rng.split arng));
    ];
  Printf.printf
    "flat in-degree leaves a targeted adversary no hubs to decapitate; the\n\
     heuristic's in-degree skew (see NETWORK ANATOMY) gives it slightly more.\n%!"

(* ------------------------------------------------------------------ *)
(* Network anatomy                                                     *)
(* ------------------------------------------------------------------ *)

let run_anatomy () =
  section "NETWORK ANATOMY — the structure the arguments lean on";
  let n = if full then 1 lsl 14 else 1 lsl 12 in
  let links = int_of_float (Theory.lg n) in
  let rng = Rng.of_int seed in
  Printf.printf "%26s %8s %8s %10s %9s %8s %8s %10s\n" "network" "out" "in(max)" "hotspot"
    "med.len" "p90" "p99" "boundary";
  List.iter
    (fun (name, net) ->
      let a = Ftr_core.Network_stats.anatomy net in
      Printf.printf "%26s %8.1f %8d %9.1fx %9.0f %8.0f %8.0f %9.2fx\n%!" name
        a.Ftr_core.Network_stats.mean_out_degree a.Ftr_core.Network_stats.max_in_degree
        a.Ftr_core.Network_stats.in_degree_hotspot a.Ftr_core.Network_stats.median_length
        a.Ftr_core.Network_stats.p90_length a.Ftr_core.Network_stats.p99_length
        a.Ftr_core.Network_stats.boundary_distortion)
    [
      ("ideal 1/d line", Network.build_ideal ~n ~links (Rng.split rng));
      ("ideal 1/d circle", Network.build_ring ~n ~links (Rng.split rng));
      ("heuristic construction", Heuristic.build ~n ~links (Rng.split rng));
      ("geometric base-2", Network.build_geometric ~n ~base:2);
      ("chord-like", Network.build_chordlike ~n ());
    ];
  Printf.printf
    "random 1/d networks spread in-degree (hotspot stays small) and their\n\
     link lengths span the whole line (median ~ sqrt n); only the line's\n\
     edge nodes reach measurably farther than its middle (boundary > 1).\n%!"

(* ------------------------------------------------------------------ *)
(* Byzantine blackholes (Section 7 security direction)                 *)
(* ------------------------------------------------------------------ *)

let run_byzantine () =
  section
    "SECURITY — Byzantine blackholes (Section 7): failed searches vs the\n\
     fraction of silently message-dropping nodes";
  let n = if full then 1 lsl 14 else 1 lsl 12 in
  let networks = if full then 6 else 3 in
  let messages = if full then 300 else 150 in
  Printf.printf "%10s %12s %12s %12s %14s\n" "byzantine" "naive" "retry" "backtrack"
    "wasted/search";
  let rows = Ftr_core.Byzantine.sweep ~n ~networks ~messages ~seed () in
  List.iter
    (fun r ->
      Printf.printf "%10.2f %12.4f %12.4f %12.4f %14.2f\n%!"
        r.Ftr_core.Byzantine.byzantine_fraction r.Ftr_core.Byzantine.naive_failed
        r.Ftr_core.Byzantine.retry_failed r.Ftr_core.Byzantine.backtrack_failed
        r.Ftr_core.Byzantine.retry_wasted)
    rows;
  print_string
    (Plot.render ~x_label:"byzantine fraction" ~y_label:"failed searches"
       [
         Plot.series ~glyph:'n' ~label:"naive"
           (List.map
              (fun r ->
                (r.Ftr_core.Byzantine.byzantine_fraction, r.Ftr_core.Byzantine.naive_failed))
              rows);
         Plot.series ~glyph:'r' ~label:"retry"
           (List.map
              (fun r ->
                (r.Ftr_core.Byzantine.byzantine_fraction, r.Ftr_core.Byzantine.retry_failed))
              rows);
         Plot.series ~glyph:'b' ~label:"retry+backtrack"
           (List.map
              (fun r ->
                (r.Ftr_core.Byzantine.byzantine_fraction, r.Ftr_core.Byzantine.backtrack_failed))
              rows);
       ]);
  Printf.printf
    "timeouts + per-search blacklists turn blackholes into crash failures;\n\
     with backtracking the overlay absorbs large Byzantine populations.\n%!";
  subsection "misrouting adversary (sabotage instead of dropping; no defence applies)";
  let rng = Rng.of_int (seed + 5) in
  let net = Network.build_ideal ~n ~links:(int_of_float (Theory.lg n)) (Rng.split rng) in
  Printf.printf "%10s %12s %14s %16s\n" "byzantine" "delivered" "mean hops" "sabotage hops";
  List.iter
    (fun fraction ->
      let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction in
      let byzantine v = not (Ftr_graph.Bitset.get mask v) in
      let honest () =
        let rec go () =
          let v = Rng.int rng n in
          if byzantine v then go () else v
        in
        go ()
      in
      let delivered = ref 0 and hops = Summary.create () and sab = Summary.create () in
      let trials = if full then 400 else 200 in
      for _ = 1 to trials do
        let src = honest () and dst = honest () in
        let m = Ftr_core.Byzantine.route_misroute net ~byzantine ~src ~dst in
        if Ftr_core.Byzantine.delivered m then begin
          incr delivered;
          Summary.add_int hops (Ftr_core.Byzantine.hops m);
          Summary.add_int sab (Ftr_core.Byzantine.wasted m)
        end
      done;
      Printf.printf "%10.2f %12.3f %14.1f %16.2f\n%!" fraction
        (float_of_int !delivered /. float_of_int trials)
        (Summary.mean hops) (Summary.mean sab))
    [ 0.0; 0.05; 0.1; 0.2 ];
  Printf.printf
    "misrouting cannot be blacklisted (nothing observable fails), but greedy\n\
     progress is self-correcting: sabotage inflates hop counts long before it\n\
     defeats delivery.\n%!"

(* ------------------------------------------------------------------ *)
(* DHT layer (Section 2's hash-table functionality)                    *)
(* ------------------------------------------------------------------ *)

let run_dht () =
  section "HASH-TABLE FUNCTIONALITY — the Section 2 resource layer (ftr_dht)";
  let n = if full then 1 lsl 14 else 1 lsl 12 in
  let links = int_of_float (Theory.lg n) in
  let keys = if full then 2000 else 500 in
  let rng = Rng.of_int seed in
  let net = Network.build_ideal ~n ~links rng in
  List.iter
    (fun (replicas, fraction) ->
      let store = Ftr_dht.Store.create ~replicas net in
      for i = 0 to keys - 1 do
        Ftr_dht.Store.put store ~key:(Printf.sprintf "resource-%d" i) ~value:"payload"
      done;
      let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction in
      let failures = Ftr_core.Failure.of_node_mask mask in
      let src =
        let rec live () =
          let v = Rng.int rng n in
          if Ftr_graph.Bitset.get mask v then v else live ()
        in
        live ()
      in
      let hits = ref 0 and hops = Summary.create () in
      for i = 0 to keys - 1 do
        let r =
          Ftr_dht.Store.routed_get ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng
            store ~src
            ~key:(Printf.sprintf "resource-%d" i)
        in
        if r.Ftr_dht.Store.value <> None then begin
          incr hits;
          Summary.add_int hops r.Ftr_dht.Store.hops
        end
      done;
      Printf.printf
        "replicas=%d, %2.0f%% nodes dead: %4d/%d resources retrievable, %.1f hops per hit\n%!"
        replicas (100.0 *. fraction) !hits keys (Summary.mean hops))
    [ (1, 0.0); (1, 0.3); (3, 0.3); (3, 0.5) ];
  subsection "load balance under Zipf-popular requests (Section 1's cost fairness)";
  let w = Ftr_dht.Workload.create ~universe:(keys / 2) () in
  let requests = if full then 4000 else 1500 in
  List.iter
    (fun (replicas, spread, label) ->
      let store = Ftr_dht.Store.create ~replicas net in
      Array.iter (fun k -> Ftr_dht.Store.put store ~key:k ~value:"v") (Ftr_dht.Workload.keys w);
      let report =
        Ftr_dht.Workload.measure_load ~spread ~store ~requests w (Rng.of_int (seed + 3))
      in
      Printf.printf
        "%28s: hit %.3f, %.1f hops, serving hotspot %5.1fx mean, forwarding hotspot %4.1fx\n%!"
        label report.Ftr_dht.Workload.hit_rate report.Ftr_dht.Workload.mean_hops
        report.Ftr_dht.Workload.serve_max_over_mean report.Ftr_dht.Workload.forward_max_over_mean)
    [
      (1, false, "1 replica");
      (4, false, "4 replicas, primary reads");
      (4, true, "4 replicas, spread reads");
    ];
  Printf.printf
    "salted-replica read spreading divides the hottest node's serving load\n\
     across the replica set without touching the routing layer.\n%!";
  subsection "data availability under churn (dynamic store + anti-entropy)";
  let line_size = 1024 in
  let engine = Ftr_sim.Engine.create () in
  let churn_rng = Rng.of_int (seed + 7) in
  let overlay =
    Ftr_p2p.Overlay.create ~line_size ~links:8 ~rng:(Rng.split churn_rng) engine
  in
  Ftr_p2p.Overlay.populate overlay ~positions:(List.init 128 (fun i -> i * 8));
  let dht = Ftr_dht.Dynamic.create ~replicas:2 ~line_size overlay in
  let pairs = 200 in
  for i = 0 to pairs - 1 do
    Ftr_dht.Dynamic.put dht ~from:0 ~key:(Printf.sprintf "pair-%d" i) ~value:"v"
  done;
  Ftr_sim.Engine.run engine;
  Printf.printf "%10s %14s %14s\n" "epoch" "stored pairs" "get success";
  for epoch = 1 to 5 do
    (* One epoch: crashes + joins, then an anti-entropy sweep. *)
    List.iter
      (fun pos ->
        if Rng.bernoulli churn_rng 0.08 && Ftr_p2p.Overlay.node_count overlay > 32 && pos <> 0
        then Ftr_p2p.Overlay.crash overlay ~pos)
      (Ftr_p2p.Overlay.live_positions overlay);
    for _ = 1 to 8 do
      let pos = Rng.int churn_rng line_size in
      if not (Ftr_p2p.Overlay.is_alive overlay pos) then
        Ftr_p2p.Overlay.join overlay ~pos ~via:0
    done;
    Ftr_sim.Engine.run engine;
    ignore (Ftr_dht.Dynamic.rebalance dht);
    Ftr_sim.Engine.run engine;
    let hits = ref 0 in
    for i = 0 to pairs - 1 do
      Ftr_dht.Dynamic.get dht ~from:0
        ~key:(Printf.sprintf "pair-%d" i)
        ~callback:(fun v -> if v <> None then incr hits)
    done;
    Ftr_sim.Engine.run engine;
    Printf.printf "%10d %14d %14.3f\n%!" epoch (Ftr_dht.Dynamic.stored_pairs dht)
      (float_of_int !hits /. float_of_int pairs)
  done;
  Printf.printf
    "two salted replicas plus per-epoch anti-entropy keep essentially all\n\
     pairs retrievable through repeated crash waves.\n%!"

(* ------------------------------------------------------------------ *)
(* Baseline comparison (Section 3)                                     *)
(* ------------------------------------------------------------------ *)

let run_baselines () =
  let n = if full then 1 lsl 14 else 1 lsl 12 in
  let side = int_of_float (sqrt (float_of_int n)) in
  let messages = if full then 2000 else 500 in
  section
    (Printf.sprintf
       "SECTION 3 BASELINES — mean hops between random pairs at ~%d nodes\n\
        (flooding reports messages per query, its actual cost)" n);
  let rng = Rng.of_int seed in
  let mean_hops f =
    let s = Summary.create () in
    for _ = 1 to messages do
      Summary.add_int s (f ())
    done;
    s
  in
  let line = Network.build_ideal ~n ~links:(int_of_float (Theory.lg n)) (Rng.split rng) in
  let ours =
    mean_hops (fun () ->
        Route.hops (Route.route line ~src:(Rng.int rng n) ~dst:(Rng.int rng n)))
  in
  let chord = Ftr_baselines.Chord.create_full ~n in
  let chord_s =
    mean_hops (fun () ->
        Ftr_baselines.Chord.route_hops chord ~src:(Rng.int rng n) ~key:(Rng.int rng n))
  in
  let kle = Ftr_baselines.Kleinberg.build ~long_links:4 ~side (Rng.split rng) in
  let m = side * side in
  let kle_s =
    mean_hops (fun () ->
        Ftr_baselines.Kleinberg.route_hops kle ~src:(Rng.int rng m) ~dst:(Rng.int rng m))
  in
  let lat = Ftr_baselines.Lattice.create ~dims:2 ~side in
  let lat_s =
    mean_hops (fun () ->
        Ftr_baselines.Lattice.route_hops lat ~src:(Rng.int rng m) ~dst:(Rng.int rng m))
  in
  let flood_net = Ftr_baselines.Flooding.random_overlay ~n ~degree:4 (Rng.split rng) in
  let flood_s =
    mean_hops (fun () ->
        let src = Rng.int rng n and dst = Rng.int rng n in
        if src = dst then 0
        else (Ftr_baselines.Flooding.search flood_net ~src ~dst).Ftr_baselines.Flooding.messages)
  in
  Printf.printf "%40s %12s %12s\n" "system" "mean" "max";
  let row name s unit_ =
    Printf.printf "%40s %12.1f %12.0f  (%s)\n%!" name (Summary.mean s) (Summary.max_value s) unit_
  in
  row (Printf.sprintf "this paper (line, %d links)" (Network.links line)) ours "hops";
  row "Chord finger tables" chord_s "hops";
  row (Printf.sprintf "Kleinberg 2-D grid (%dx%d, 4 links)" side side) kle_s "hops";
  row (Printf.sprintf "CAN-style lattice (%dx%d)" side side) lat_s "hops";
  let digits = int_of_float (Theory.lg n) in
  let plx = Ftr_baselines.Plaxton.create ~base:2 ~digits in
  let plx_s =
    mean_hops (fun () ->
        Ftr_baselines.Plaxton.route_hops plx ~src:(Rng.int rng n) ~dst:(Rng.int rng n))
  in
  row (Printf.sprintf "Tapestry-style prefix routing (2^%d ids)" digits) plx_s "hops";
  row "Gnutella-style flooding" flood_s "messages/query";
  subsection
    "failure comparison (the paper: \"our methods appear to perform as well as\n\
     theirs\"): failed-search fractions under the same node-failure model";
  Printf.printf "%8s %16s %16s %22s\n" "p(fail)" "chord r=1" "chord r=4" "this paper (backtrack)";
  let chord_rows =
    Ftr_baselines.Chord.failure_sweep ~n ~fractions:[ 0.0; 0.2; 0.4; 0.6; 0.8 ]
      ~messages:(if full then 500 else 200)
      ~seed ()
  in
  let ours_rows =
    E.figure6 ~n
      ~links:(int_of_float (Theory.lg n))
      ~networks:2
      ~messages:(if full then 500 else 200)
      ~fractions:[ 0.0; 0.2; 0.4; 0.6; 0.8 ] ~seed ()
  in
  List.iter2
    (fun c o ->
      Printf.printf "%8.2f %16.4f %16.4f %22.4f\n%!" c.Ftr_baselines.Chord.fail_fraction
        c.Ftr_baselines.Chord.failed_r1 c.Ftr_baselines.Chord.failed_r4
        o.E.backtrack.E.failed_fraction)
    chord_rows ours_rows

(* ------------------------------------------------------------------ *)
(* Dynamic protocol (Section 5 as a running system)                    *)
(* ------------------------------------------------------------------ *)

let run_churn () =
  section "DYNAMIC PROTOCOL — churn on the event-driven overlay (ftr_p2p)";
  let line_size = if full then 1 lsl 12 else 1 lsl 10 in
  let report =
    Ftr_p2p.Churn.run
      ~config:
        {
          Ftr_p2p.Churn.duration = (if full then 3000.0 else 1000.0);
          join_rate = 0.05;
          crash_rate = 0.03;
          leave_rate = 0.02;
          lookup_rate = 2.0;
          min_nodes = 16;
        }
      ~seed ~line_size ~initial_nodes:(line_size / 8) ~links:8 ()
  in
  let r = report in
  Printf.printf "final live nodes          %8d\n" r.Ftr_p2p.Churn.final_nodes;
  Printf.printf "joins / crashes / leaves  %8d / %d / %d\n" r.Ftr_p2p.Churn.joins
    r.Ftr_p2p.Churn.crashes r.Ftr_p2p.Churn.leaves;
  Printf.printf "user lookups issued       %8d\n" r.Ftr_p2p.Churn.lookups_issued;
  Printf.printf "lookup success rate       %8.4f\n" r.Ftr_p2p.Churn.success_rate;
  Printf.printf "mean hops (successful)    %8.2f\n" r.Ftr_p2p.Churn.mean_hops;
  Printf.printf "protocol messages         %8d\n" r.Ftr_p2p.Churn.messages;
  Printf.printf "probes / repairs          %8d / %d\n%!" r.Ftr_p2p.Churn.probes
    r.Ftr_p2p.Churn.repairs;
  subsection "join cost vs network size (the paper's scalability requirement)";
  Printf.printf "%12s %20s %20s\n" "line size" "messages/join" "lookups/join";
  List.iter
    (fun row ->
      Printf.printf "%12d %20.1f %20.1f\n%!" row.Ftr_p2p.Churn.line_size
        row.Ftr_p2p.Churn.mean_messages_per_join row.Ftr_p2p.Churn.mean_lookups_per_join)
    (Ftr_p2p.Churn.join_cost ~links:8 ~joins:(if full then 80 else 40)
       ~line_sizes:(if full then [ 512; 2048; 8192; 32768 ] else [ 512; 2048; 8192 ])
       ());
  Printf.printf
    "lookups per join stay flat (~1 + l + Poisson(l)); messages per join grow\n\
     only logarithmically with n — polylog maintenance, as Section 1 demands.\n%!";
  subsection "idle self-healing: crash 25% of nodes, run only stabilization";
  let engine = Ftr_sim.Engine.create () in
  let rng2 = Rng.of_int (seed + 9) in
  let overlay =
    Ftr_p2p.Overlay.create ~line_size:4096 ~links:8 ~rng:(Rng.split rng2) engine
  in
  Ftr_p2p.Overlay.populate overlay ~positions:(List.init 512 (fun i -> i * 8));
  List.iter
    (fun pos -> if Rng.bernoulli rng2 0.25 then Ftr_p2p.Overlay.crash overlay ~pos)
    (Ftr_p2p.Overlay.live_positions overlay);
  Ftr_p2p.Overlay.enable_stabilization ~period:5.0 ~checks_per_tick:64 ~until:3000.0 overlay;
  Ftr_sim.Engine.run ~until:3000.0 engine;
  let s = Ftr_p2p.Overlay.stats overlay in
  Printf.printf "probes sent %d, dead links repaired %d with zero lookup traffic\n" s.Ftr_p2p.Overlay.probes
    s.Ftr_p2p.Overlay.repairs;
  let positions = Array.of_list (Ftr_p2p.Overlay.live_positions overlay) in
  for _ = 1 to 200 do
    let from = positions.(Rng.int rng2 (Array.length positions)) in
    Ftr_p2p.Overlay.lookup overlay ~from ~target:(Rng.int rng2 4096) ()
  done;
  Ftr_sim.Engine.run engine;
  Printf.printf "post-healing lookups: %d/%d succeed\n%!" s.Ftr_p2p.Overlay.lookups_ok
    (s.Ftr_p2p.Overlay.lookups_ok + s.Ftr_p2p.Overlay.lookups_failed);
  subsection "recovery curve: 30% mass crash at t=0, stabilization only";
  let recovery =
    Ftr_p2p.Recovery.run
      ~line_size:(if full then 8192 else 4096)
      ~kill_fraction:0.3 ~period:10.0 ~checks_per_tick:16
      ~samples:(if full then 14 else 10)
      ~seed ()
  in
  Printf.printf "killed %d of %d nodes at t=0\n" recovery.Ftr_p2p.Recovery.killed
    recovery.Ftr_p2p.Recovery.initial_nodes;
  Printf.printf "%8s %10s %18s %10s %10s\n" "time" "success" "probes/lookup" "hops" "repairs";
  List.iter
    (fun sm ->
      Printf.printf "%8.0f %10.3f %18.2f %10.2f %10d\n%!" sm.Ftr_p2p.Recovery.time
        sm.Ftr_p2p.Recovery.success_rate sm.Ftr_p2p.Recovery.probes_per_lookup
        sm.Ftr_p2p.Recovery.mean_hops sm.Ftr_p2p.Recovery.repairs_so_far)
    recovery.Ftr_p2p.Recovery.samples;
  print_string
    (Plot.render ~x_label:"virtual time" ~y_label:"probes per lookup"
       [
         Plot.series ~glyph:'p' ~label:"repair burden"
           (List.map
              (fun sm -> (sm.Ftr_p2p.Recovery.time, sm.Ftr_p2p.Recovery.probes_per_lookup))
              recovery.Ftr_p2p.Recovery.samples);
       ]);
  Printf.printf
    "lookups stay ~100%% successful throughout; the probe overhead they pay\n\
     decays as stabilization heals the damage — the self-healing curve.\n%!";
  subsection "lookup health vs churn intensity";
  Printf.printf "%14s %10s %10s %12s %14s\n" "events/unit" "success" "hops" "repairs"
    "probes/lookup";
  List.iter
    (fun row ->
      let rr = row.Ftr_p2p.Recovery.report in
      Printf.printf "%14.2f %10.4f %10.2f %12d %14.2f\n%!"
        row.Ftr_p2p.Recovery.events_per_unit rr.Ftr_p2p.Churn.success_rate
        rr.Ftr_p2p.Churn.mean_hops rr.Ftr_p2p.Churn.repairs
        (float_of_int rr.Ftr_p2p.Churn.probes /. float_of_int (max 1 rr.Ftr_p2p.Churn.lookups_issued)))
    (Ftr_p2p.Recovery.churn_sweep
       ~duration:(if full then 1000.0 else 500.0)
       ~rates:[ 0.05; 0.2; 0.8; 2.0 ] ~seed ());
  Printf.printf
    "success holds near 100%% across a 40x churn range; what grows is the\n\
     repair traffic — maintenance cost is where churn bites, not lookups.\n%!"

(* ------------------------------------------------------------------ *)
(* Exec subsystem: multicore speedup on the experiment drivers          *)
(* ------------------------------------------------------------------ *)

(* Each driver runs twice — jobs=1, then --jobs N — on identical
   arguments; the executor guarantees identical output (verified here
   with a structural comparison, and byte-for-byte in the test suite),
   so the only difference is the wall clock. The numbers land in
   BENCH_exec.json for machines to read. *)
let write_exec_report report =
  let path = "BENCH_exec.json" in
  let oc = open_out path in
  output_string oc (Ftr_obs.Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[exec] wrote %s\n%!" path

let run_exec () =
  let host = Domain.recommended_domain_count () in
  if host <= 1 then begin
    (* A jobs sweep on one core can only measure scheduling overhead, so
       the section is skipped outright; the report says so explicitly
       rather than publishing a meaningless "speedup". *)
    section
      (Printf.sprintf
         "EXEC — skipped: host recommends %d domain(s); the jobs sweep needs more than one" host);
    write_exec_report
      Ftr_obs.Json.(
        Obj
          [
            ("skipped", Bool true);
            ("host_recommended_domains", Int host);
            ("full_scale", Bool full);
          ])
  end
  else begin
  let jobs = match jobs_flag with Some j -> j | None -> Ftr_exec.Pool.default_jobs () in
  section
    (Printf.sprintf
       "EXEC — deterministic multicore executor (--jobs %d; host recommends %d domains)\n\
        output is jobs-invariant by contract; parallelism only moves the wall clock" jobs
       (Domain.recommended_domain_count ()));
  let rows = ref [] in
  let bench name seq par =
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let r1, t1 = time seq in
    let rj, tj = time par in
    let speedup = t1 /. tj in
    Printf.printf "%28s: jobs=1 %7.2f s, jobs=%d %7.2f s, speedup %5.2fx%s\n%!" name t1 jobs tj
      speedup
      (if r1 = rj then "" else "  [OUTPUT MISMATCH]");
    rows := (name, t1, tj, r1 = rj) :: !rows
  in
  let networks = if full then 8 else 4 in
  let messages = if full then 300 else 150 in
  let n = if full then 1 lsl 13 else 1 lsl 12 in
  bench "table1 grid (9 sections)"
    (fun () ->
      E.table1_grid ~jobs:1 ~ns:[ 256; 1024; 4096 ] ~big:n ~networks:2 ~messages:100 ~trials:100
        ~seed ())
    (fun () ->
      E.table1_grid ~jobs ~ns:[ 256; 1024; 4096 ] ~big:n ~networks:2 ~messages:100 ~trials:100
        ~seed ());
  bench "figure5 networks"
    (fun () -> E.figure5_par ~jobs:1 ~networks ~n ~links:12 ~seed ())
    (fun () -> E.figure5_par ~jobs ~networks ~n ~links:12 ~seed ());
  bench "figure6 (fractions x nets)"
    (fun () ->
      E.figure6_par ~jobs:1 ~n ~networks:2 ~messages ~fractions:[ 0.0; 0.3; 0.6 ] ~seed ())
    (fun () ->
      E.figure6_par ~jobs ~n ~networks:2 ~messages ~fractions:[ 0.0; 0.3; 0.6 ] ~seed ());
  let open Ftr_obs.Json in
  let report =
    Obj
      [
        ("jobs", Int jobs);
        ("host_recommended_domains", Int (Domain.recommended_domain_count ()));
        ("full_scale", Bool full);
        ( "sections",
          List
            (List.rev_map
               (fun (name, t1, tj, same) ->
                 Obj
                   [
                     ("name", String name);
                     ("jobs1_seconds", Float t1);
                     ("jobsN_seconds", Float tj);
                     ("speedup", Float (t1 /. tj));
                     ("output_identical", Bool same);
                   ])
               !rows) );
      ]
  in
  write_exec_report report
  end

(* ------------------------------------------------------------------ *)
(* Service: lookups/s through the actor scheduler                      *)
(* ------------------------------------------------------------------ *)

(* The message-passing service under a churny workload, jobs=1 against
   the recommended worker count on identical arguments. The scheduler
   guarantees a byte-identical transcript (checked structurally here,
   and byte-for-byte by @serve), so the only difference is the wall
   clock; the numbers land in BENCH_serve.json for machines to read. *)
let write_serve_report report =
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Ftr_obs.Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[serve] wrote %s\n%!" path

let run_serve () =
  let module D = Ftr_svc.Driver in
  let host = Domain.recommended_domain_count () in
  if host <= 1 then begin
    section
      (Printf.sprintf
         "SERVE — skipped: host recommends %d domain(s); the jobs comparison needs more than one"
         host);
    write_serve_report
      Ftr_obs.Json.(
        Obj
          [
            ("skipped", Bool true);
            ("host_recommended_domains", Int host);
            ("full_scale", Bool full);
          ])
  end
  else begin
    let jobs = match jobs_flag with Some j -> j | None -> Ftr_exec.Pool.default_jobs () in
    section
      (Printf.sprintf
         "SERVE — the overlay as a message-passing service (--jobs %d; host recommends %d)\n\
          the transcript is jobs-invariant by contract; parallelism only moves the wall clock"
         jobs host);
    let cfg =
      {
        D.default_config with
        D.line_size = (if full then 1 lsl 14 else 4096);
        initial = (if full then 1024 else 256);
        links = 8;
        seed;
        ticks = (if smoke then 32 else 128);
        rate = (if full then 64 else 32);
        join_rate = 0.5;
        crash_rate = 0.5;
        leave_rate = 0.25;
        stabilize = 2;
      }
    in
    let r1 = D.run { cfg with D.jobs = Some 1 } in
    let rj = D.run { cfg with D.jobs = Some jobs } in
    let same =
      D.report_lines ~wall:false r1.D.res_report = D.report_lines ~wall:false rj.D.res_report
    in
    let rate r = r.D.res_report.D.rp_requests_per_second in
    Printf.printf
      "%28s: jobs=1 %8.0f lookups/s, jobs=%d %8.0f lookups/s, speedup %5.2fx%s\n%!"
      "serve (churny workload)" (rate r1) jobs (rate rj)
      (rate rj /. rate r1)
      (if same then "" else "  [OUTPUT MISMATCH]");
    Printf.printf "%28s: delivered %d/%d, hops p50 %d p99 %d, repairs %d, bounces %d\n%!"
      "outcomes" r1.D.res_report.D.rp_delivered r1.D.res_report.D.rp_issued
      r1.D.res_report.D.rp_p50_hops r1.D.res_report.D.rp_p99_hops r1.D.res_report.D.rp_repairs
      r1.D.res_report.D.rp_bounces;
    write_serve_report
      Ftr_obs.Json.(
        Obj
          [
            ("jobs", Int jobs);
            ("host_recommended_domains", Int host);
            ("full_scale", Bool full);
            ("issued", Int r1.D.res_report.D.rp_issued);
            ("delivered", Int r1.D.res_report.D.rp_delivered);
            ("p50_hops", Int r1.D.res_report.D.rp_p50_hops);
            ("p99_hops", Int r1.D.res_report.D.rp_p99_hops);
            ("jobs1_lookups_per_second", Float (rate r1));
            ("jobsN_lookups_per_second", Float (rate rj));
            ("speedup", Float (rate rj /. rate r1));
            ("output_identical", Bool same);
          ])
  end

(* ------------------------------------------------------------------ *)
(* Lint: flow-stage analyzer throughput, cold vs warm cache            *)
(* ------------------------------------------------------------------ *)

(* The flow stage (D1-D4) is the expensive lint pass: it loads every
   .cmt, builds per-function CFGs and runs the dataflow engine to
   fixpoint. This section times it over the real tree twice against one
   cache directory — the cold run analyzes every unit, the warm rerun
   must analyze zero — and asserts the jobs-invariance contract (the
   rendered finding stream at --jobs 1 and --jobs 4 must agree byte for
   byte). The numbers land in BENCH_lint.json for machines to read. *)
let write_lint_report report =
  let path = "BENCH_lint.json" in
  let oc = open_out path in
  output_string oc (Ftr_obs.Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[lint] wrote %s\n%!" path

let run_lint () =
  let module Flow_driver = Ftr_lint.Flow_driver in
  let root =
    let rec up d =
      if Sys.file_exists (Filename.concat d "dune-project") then Some d
      else
        let parent = Filename.dirname d in
        if String.equal parent d then None else up parent
    in
    up (Sys.getcwd ())
  in
  let dirs = [ "lib"; "bin"; "bench" ] in
  match root with
  | None ->
      section "LINT — skipped: no dune-project above the working directory";
      write_lint_report Ftr_obs.Json.(Obj [ ("skipped", Bool true) ])
  | Some root ->
      section
        "LINT — flow-stage analyzer (D1-D4): cold vs warm incremental cache\n\
         the finding stream is jobs-invariant by contract; the cache only moves the wall clock";
      let cache = Filename.temp_file "ftr_lint_bench" "" in
      Sys.remove cache;
      Unix.mkdir cache 0o755;
      Fun.protect ~finally:(fun () ->
          Array.iter (fun f -> Sys.remove (Filename.concat cache f)) (Sys.readdir cache);
          Unix.rmdir cache)
      @@ fun () ->
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let (cold, cs), t_cold =
        time (fun () -> Flow_driver.analyze ~cache_dir:cache ~root ~dirs ())
      in
      let (warm, ws), t_warm =
        time (fun () -> Flow_driver.analyze ~cache_dir:cache ~root ~dirs ())
      in
      let render fs =
        String.concat "\n" (List.map (fun (f, _) -> Ftr_lint.Finding.to_string f) fs)
      in
      let (j1, _), _ = time (fun () -> Flow_driver.analyze ~jobs:1 ~root ~dirs ()) in
      let (j4, _), _ = time (fun () -> Flow_driver.analyze ~jobs:4 ~root ~dirs ()) in
      let jobs_identical = String.equal (render j1) (render j4) in
      let warm_identical = String.equal (render cold) (render warm) in
      Printf.printf "%28s: %d units, %d analyzed, %d findings, %7.2f s\n%!" "cold cache"
        cs.Flow_driver.fl_units cs.Flow_driver.fl_analyzed (List.length cold) t_cold;
      Printf.printf "%28s: %d units, %d analyzed, %d cached, %7.2f s, speedup %5.2fx%s\n%!"
        "warm cache" ws.Flow_driver.fl_units ws.Flow_driver.fl_analyzed ws.Flow_driver.fl_cached
        t_warm (t_cold /. t_warm)
        (if warm_identical && ws.Flow_driver.fl_analyzed = 0 then ""
         else "  [CACHE CONTRACT BROKEN]");
      Printf.printf "%28s: --jobs 1 vs --jobs 4 streams %s\n%!" "jobs invariance"
        (if jobs_identical then "identical" else "DIFFER");
      write_lint_report
        Ftr_obs.Json.(
          Obj
            [
              ("units", Int cs.Flow_driver.fl_units);
              ("findings", Int (List.length cold));
              ("cold_analyzed", Int cs.Flow_driver.fl_analyzed);
              ("warm_analyzed", Int ws.Flow_driver.fl_analyzed);
              ("warm_cached", Int ws.Flow_driver.fl_cached);
              ("cold_seconds", Float t_cold);
              ("warm_seconds", Float t_warm);
              ("warm_speedup", Float (t_cold /. t_warm));
              ("jobs_identical", Bool jobs_identical);
              ("warm_identical", Bool warm_identical);
            ])

(* ------------------------------------------------------------------ *)
(* Route throughput: flat-CSR router vs the pre-refactor reference     *)
(* ------------------------------------------------------------------ *)

(* A faithful re-implementation of the router this tree shipped before
   the CSR refactor: jagged per-node neighbour rows, a Hashtbl of
   int-list exclusion sets probed with [List.mem], and the generic
   closure-based failure checks on every candidate. It exists so the
   speedup in BENCH_route.json is measured inside one build against the
   same workload, not quoted from a stale run — and so the agreement
   pass below can assert, message by message, that the refactor changed
   the clock and nothing else. Only the two strategies the throughput
   workload exercises are implemented. *)
module Legacy_route = struct
  module Failure = Ftr_core.Failure

  let best_neighbor net rows failures ~mode ~tried ~cur ~dst =
    let cur_dist = Network.routing_distance net ~side:`Two_sided ~src:cur ~dst in
    let ns : int array = rows.(cur) in
    let excluded = match Hashtbl.find_opt tried cur with Some l -> l | None -> [] in
    let limit = match mode with `Strict -> cur_dist | `Any -> max_int in
    let best = ref (-1) and best_idx = ref (-1) and best_dist = ref limit in
    Array.iteri
      (fun idx v ->
        if
          Failure.link_alive failures ~src:cur ~idx
          && Failure.node_alive failures v
          && not (List.mem idx excluded)
        then begin
          let v_dist = Network.routing_distance net ~side:`Two_sided ~src:v ~dst in
          if v_dist < !best_dist then begin
            best := v;
            best_idx := idx;
            best_dist := v_dist
          end
        end)
      ns;
    if !best < 0 then None else Some (!best_idx, !best)

  let no_tried : (int, int list) Hashtbl.t = Hashtbl.create 1

  let route ?(failures = Failure.none) ?(strategy = Route.Terminate) ?(max_hops = 1_000_000) net
      rows ~src ~dst =
    let tried =
      match strategy with
      | Route.Backtrack _ -> Hashtbl.create 64
      | Route.Terminate -> no_tried
      | Route.Random_reroute _ -> invalid_arg "Legacy_route.route: reroute not implemented"
    in
    let record_tried cur idx =
      match strategy with
      | Route.Backtrack _ ->
          let prev = match Hashtbl.find_opt tried cur with Some l -> l | None -> [] in
          Hashtbl.replace tried cur (idx :: prev)
      | Route.Terminate | Route.Random_reroute _ -> ()
    in
    match strategy with
    | Route.Random_reroute _ -> assert false
    | Route.Terminate ->
        let cur = ref src and h = ref 0 and stop = ref false in
        while (not !stop) && !cur <> dst && !h < max_hops do
          match best_neighbor net rows failures ~mode:`Strict ~tried ~cur:!cur ~dst with
          | Some (_, v) ->
              cur := v;
              incr h
          | None -> stop := true
        done;
        if !cur = dst then Route.Delivered { hops = !h }
        else if !stop then
          Route.Failed { hops = !h; stuck_at = !cur; reason = Route.No_live_neighbor }
        else Route.Failed { hops = !h; stuck_at = !cur; reason = Route.Hop_limit }
    | Route.Backtrack { history = history_limit } ->
        let trim history =
          let rec take k = function
            | [] -> []
            | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
          in
          take history_limit history
        in
        let rec forward cur h history =
          if cur = dst then Route.Delivered { hops = h }
          else if h >= max_hops then
            Route.Failed { hops = h; stuck_at = cur; reason = Route.Hop_limit }
          else
            match best_neighbor net rows failures ~mode:`Strict ~tried ~cur ~dst with
            | Some (idx, v) ->
                record_tried cur idx;
                forward v (h + 1) (trim (cur :: history))
            | None -> backtrack cur h history
        and backtrack stuck h history =
          match history with
          | [] -> Route.Failed { hops = h; stuck_at = stuck; reason = Route.No_live_neighbor }
          | y :: rest ->
              let h = h + 1 in
              if h >= max_hops then
                Route.Failed { hops = h; stuck_at = y; reason = Route.Hop_limit }
              else begin
                match best_neighbor net rows failures ~mode:`Any ~tried ~cur:y ~dst with
                | Some (idx, v) ->
                    record_tried y idx;
                    forward v (h + 1) (trim (y :: rest))
                | None -> backtrack y h rest
              end
        in
        forward src 0 []
end

let run_route_throughput () =
  let n = if full then 1 lsl 14 else 1 lsl 13 in
  let links = 14 in
  let messages = if smoke then 3_000 else if full then 60_000 else 30_000 in
  section
    (Printf.sprintf
       "ROUTE THROUGHPUT — flat-CSR router vs the pre-refactor reference\n\
        (n=%d, links=%d, %d messages per timing; same workload, same build)" n links messages);
  (* The harness keeps telemetry on, but the reference router carries no
     obs hooks — timing the production router with per-hop event emission
     against it would measure the telemetry layer, not the layout change.
     Both sides run with obs off and the previous mode is restored. *)
  let obs_was = Ftr_obs.Flag.enabled () in
  Ftr_obs.Flag.set_mode false;
  Fun.protect ~finally:(fun () -> Ftr_obs.Flag.set_mode obs_was) @@ fun () ->
  let rng = Rng.of_int seed in
  let net = Network.build_ideal ~n ~links (Rng.split rng) in
  (* The reference's storage model: one jagged row per node, built once. *)
  let rows = Array.init n (Network.neighbors net) in
  let mask = Ftr_core.Failure.random_node_fraction (Rng.split rng) ~n ~fraction:0.3 in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let alive = Ftr_graph.Bitset.get mask in
  let scratch = Route.scratch net in
  let any r = (Rng.int r n, Rng.int r n) in
  let live_pick r =
    let rec go () =
      let v = Rng.int r n in
      if alive v then v else go ()
    in
    (go (), go ())
  in
  let json_rows = ref [] in
  let run name ~failures ~strategy ~pick =
    subsection name;
    (* Agreement pass: identical pair streams through both routers; any
       outcome divergence disqualifies the comparison. *)
    let sample = min 2_000 messages in
    let mismatches = ref 0 in
    let pr_l = Rng.of_int (seed + 77) and pr_n = Rng.of_int (seed + 77) in
    for _ = 1 to sample do
      let src, dst = pick pr_l in
      let src', dst' = pick pr_n in
      let legacy = Legacy_route.route ~failures ~strategy net rows ~src ~dst in
      let fresh = Route.route ~failures ~strategy ~scratch net ~src:src' ~dst:dst' in
      if legacy <> fresh then incr mismatches
    done;
    let time router =
      let pair_rng = Rng.of_int (seed + 78) in
      for _ = 1 to min 2_000 messages do
        let src, dst = pick pair_rng in
        ignore (router ~src ~dst)
      done;
      let pair_rng = Rng.of_int (seed + 78) in
      let hops = ref 0 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to messages do
        let src, dst = pick pair_rng in
        hops := !hops + Route.hops (router ~src ~dst)
      done;
      let dt = Unix.gettimeofday () -. t0 in
      float_of_int !hops /. dt
    in
    let legacy_hps = time (fun ~src ~dst -> Legacy_route.route ~failures ~strategy net rows ~src ~dst) in
    let csr_hps = time (fun ~src ~dst -> Route.route ~failures ~strategy ~scratch net ~src ~dst) in
    let speedup = csr_hps /. legacy_hps in
    Printf.printf "legacy reference: %12.0f hops/s\n" legacy_hps;
    Printf.printf "flat CSR router:  %12.0f hops/s\n" csr_hps;
    Printf.printf "speedup: %.2fx%s\n%!" speedup
      (if !mismatches = 0 then "" else Printf.sprintf "  [%d OUTCOME MISMATCHES]" !mismatches);
    json_rows :=
      ( name,
        legacy_hps,
        csr_hps,
        speedup,
        !mismatches = 0 )
      :: !json_rows
  in
  run "healthy_terminate" ~failures:Ftr_core.Failure.none ~strategy:Route.Terminate ~pick:any;
  run "fail30_backtrack5" ~failures ~strategy:(Route.Backtrack { history = 5 }) ~pick:live_pick;
  let open Ftr_obs.Json in
  let report =
    Obj
      [
        ("n", Int n);
        ("links", Int links);
        ("messages", Int messages);
        ("full_scale", Bool full);
        ("smoke", Bool smoke);
        ( "sections",
          List
            (List.rev_map
               (fun (name, legacy_hps, csr_hps, speedup, same) ->
                 Obj
                   [
                     ("name", String name);
                     ("legacy_hops_per_second", Float legacy_hps);
                     ("csr_hops_per_second", Float csr_hps);
                     ("speedup", Float speedup);
                     ("outcomes_identical", Bool same);
                   ])
               !json_rows) );
      ]
  in
  let path = "BENCH_route.json" in
  let oc = open_out path in
  output_string oc (to_string report);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[route] wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Scale: compact CSR footprint, streaming build, batch routing        *)
(* ------------------------------------------------------------------ *)

(* The gate for the int32/Bigarray core: per network size, streaming
   construction throughput, bytes/node against the 8-byte int-array
   baseline the refactor replaced, batch route throughput on the exec
   pool, jobs-invariance of the merged outcome vector (--jobs 1/2/4 and
   FTR_EXEC_SEQ=1 must agree byte for byte), and snapshot save + mmap
   load round-trip timing. One JSON row per size lands in
   BENCH_scale.json (docs/MEMORY_LAYOUT.md). *)
let run_scale () =
  let module Route_batch = Ftr_core.Route_batch in
  let module Snapshot = Ftr_core.Snapshot in
  let module Csr = Ftr_graph.Adjacency.Csr in
  let sizes =
    if smoke then [ 1 lsl 14 ]
    else if full then [ 1 lsl 16; 1 lsl 18; 1 lsl 20; 1 lsl 22 ]
    else [ 1 lsl 16; 1 lsl 18; 1 lsl 20 ]
  in
  let links = 8 in
  let messages = if smoke then 4_000 else 20_000 in
  section
    (Printf.sprintf
       "SCALE — int32 CSR core: streaming build, footprint, batch routing\n\
        (links=%d, %d messages per size; sizes up to n=%d)" links messages
       (List.fold_left max 0 sizes));
  let obs_was = Ftr_obs.Flag.enabled () in
  Ftr_obs.Flag.set_mode false;
  Fun.protect ~finally:(fun () -> Ftr_obs.Flag.set_mode obs_was) @@ fun () ->
  let json_rows = ref [] in
  List.iter
    (fun n ->
      subsection (Printf.sprintf "n = %d" n);
      let rng = Rng.of_int (seed + n) in
      let t0 = Unix.gettimeofday () in
      let net = Network.build_ideal ~n ~links (Rng.split rng) in
      let build_dt = Unix.gettimeofday () -. t0 in
      let edges = Csr.edge_count (Network.csr net) in
      (* Footprint accounting: positions (n) + offsets (n+1) + targets (E)
         at 4 bytes/word, against the same vectors as 8-byte OCaml ints —
         the pre-refactor representation. *)
      let words = n + (n + 1) + edges in
      let bytes_int32 = 4 * words and bytes_int_array = 8 * words in
      let per_node b = float_of_int b /. float_of_int n in
      let ratio = per_node bytes_int32 /. per_node bytes_int_array in
      Printf.printf "build: %.3f s (%.0f nodes/s), %d edges\n" build_dt
        (float_of_int n /. build_dt) edges;
      Printf.printf "footprint: %.1f bytes/node (int-array baseline %.1f, ratio %.2f)\n"
        (per_node bytes_int32) (per_node bytes_int_array) ratio;
      (* Batch routing: healthy Terminate for throughput; the identity
         check below re-routes the same pairs under failures with the
         seeded Random_reroute strategy, the case where per-route rng
         derivation could diverge across schedules. *)
      let pair_rng = Rng.of_int (seed + 79) in
      let pairs =
        Array.init messages (fun _ -> (Rng.int pair_rng n, Rng.int pair_rng n))
      in
      let time_batch ~jobs =
        let t0 = Unix.gettimeofday () in
        let outcomes = Route_batch.run ~jobs net ~pairs in
        let dt = Unix.gettimeofday () -. t0 in
        let hops = Array.fold_left (fun acc o -> acc + Route.hops o) 0 outcomes in
        (float_of_int hops /. dt, outcomes)
      in
      let hps1, _ = time_batch ~jobs:1 in
      let jobs = Ftr_exec.Pool.default_jobs () in
      let hps, _ = time_batch ~jobs in
      Printf.printf "batch route: %12.0f hops/s (jobs=1)  %12.0f hops/s (jobs=%d)\n" hps1
        hps jobs;
      let mask =
        Ftr_core.Failure.random_node_fraction (Rng.split rng) ~n ~fraction:0.3
      in
      let failures = Ftr_core.Failure.of_node_mask mask in
      let alive = Ftr_graph.Bitset.get mask in
      let live_rng = Rng.of_int (seed + 81) in
      let rec live () =
        let v = Rng.int live_rng n in
        if alive v then v else live ()
      in
      let live_pairs = Array.init messages (fun _ -> (live (), live ())) in
      let strategy = Route.Random_reroute { attempts = 3 } in
      let reroute ~jobs =
        Route_batch.run ~jobs ~failures ~strategy ~seed:(seed + 80) net
          ~pairs:live_pairs
      in
      let reference = reroute ~jobs:1 in
      let identical = ref true in
      List.iter (fun j -> if reroute ~jobs:j <> reference then identical := false) [ 2; 4 ];
      (* Same grid forced through the sequential fallback. *)
      let saved_seq = Sys.getenv_opt "FTR_EXEC_SEQ" in
      Unix.putenv "FTR_EXEC_SEQ" "1";
      Fun.protect ~finally:(fun () ->
          Unix.putenv "FTR_EXEC_SEQ" (Option.value saved_seq ~default:"0"))
      @@ fun () ->
      if reroute ~jobs:4 <> reference then identical := false;
      Printf.printf "jobs 1/2/4 + FTR_EXEC_SEQ=1 merged outcomes identical: %b\n" !identical;
      (* Snapshot round trip through a scratch file: save, then the mmap
         load the CLI serves from. *)
      let snap = Filename.temp_file "ftr_scale" ".ftrsnap" in
      Fun.protect ~finally:(fun () -> try Sys.remove snap with Sys_error _ -> ()) @@ fun () ->
      let t0 = Unix.gettimeofday () in
      Snapshot.save net ~path:snap;
      let save_dt = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      let reloaded = Snapshot.load ~path:snap () in
      let load_dt = Unix.gettimeofday () -. t0 in
      let snap_bytes = (Unix.stat snap).Unix.st_size in
      if Network.size reloaded <> n then failwith "scale: snapshot round-trip lost nodes";
      Printf.printf "snapshot: %d bytes, save %.3f s, mmap load %.3f s\n%!" snap_bytes
        save_dt load_dt;
      json_rows :=
        ( n, edges, build_dt, per_node bytes_int32, per_node bytes_int_array, ratio, hps1,
          hps, jobs, !identical, snap_bytes, save_dt, load_dt )
        :: !json_rows)
    sizes;
  let open Ftr_obs.Json in
  let report =
    Obj
      [
        ("links", Int links);
        ("messages", Int messages);
        ("full_scale", Bool full);
        ("smoke", Bool smoke);
        ( "sizes",
          List
            (List.rev_map
               (fun ( n, edges, build_dt, bpn, bpn_base, ratio, hps1, hps, jobs, identical,
                      snap_bytes, save_dt, load_dt ) ->
                 Obj
                   [
                     ("n", Int n);
                     ("edges", Int edges);
                     ("build_seconds", Float build_dt);
                     ("build_nodes_per_second", Float (float_of_int n /. build_dt));
                     ("bytes_per_node_int32", Float bpn);
                     ("bytes_per_node_int_array", Float bpn_base);
                     ("footprint_ratio", Float ratio);
                     ("batch_hops_per_second_jobs1", Float hps1);
                     ("batch_hops_per_second", Float hps);
                     ("jobs", Int jobs);
                     ("outcomes_identical_across_jobs", Bool identical);
                     ("snapshot_bytes", Int snap_bytes);
                     ("snapshot_save_seconds", Float save_dt);
                     ("snapshot_load_seconds", Float load_dt);
                   ])
               !json_rows) );
      ]
  in
  let path = "BENCH_scale.json" in
  let oc = open_out path in
  output_string oc (to_string report);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[scale] wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Flight-recorder overhead                                            *)
(* ------------------------------------------------------------------ *)

(* Route throughput under three telemetry settings — everything off, obs
   on with the recorder muted, and full-fidelity tracing — plus a bounded-
   retention check: however many routes record, the ring never grows past
   its capacity. Does not touch BENCH_route.json (that comparison times
   with obs forced off; see run_route_throughput). *)
let run_tracing () =
  let n = 1 lsl 13 in
  let links = 13 in
  let messages = if smoke then 2_000 else 20_000 in
  section
    (Printf.sprintf
       "FLIGHT RECORDER — tracing overhead and bounded retention\n\
        (n=%d, links=%d, %d messages per timing)" n links messages);
  let obs_was = Ftr_obs.Flag.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Ftr_obs.Flag.set_mode obs_was;
      Ftr_obs.Tracing.set_recording true;
      Ftr_obs.Tracing.force_full false;
      Ftr_obs.Tracing.reset ())
  @@ fun () ->
  let rng = Rng.of_int (seed + 79) in
  let net = Network.build_ideal ~n ~links (Rng.split rng) in
  let mask = Ftr_core.Failure.random_node_fraction (Rng.split rng) ~n ~fraction:0.3 in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let alive = Ftr_graph.Bitset.get mask in
  let scratch = Route.scratch net in
  let time () =
    let pair_rng = Rng.of_int (seed + 80) in
    let live () =
      let rec go () =
        let v = Rng.int pair_rng n in
        if alive v then v else go ()
      in
      go ()
    in
    let hops = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to messages do
      let src = live () and dst = live () in
      hops :=
        !hops
        + Route.hops
            (Route.route ~failures
               ~strategy:(Route.Backtrack { history = 5 })
               ~rng:pair_rng ~scratch net ~src ~dst)
    done;
    float_of_int !hops /. (Unix.gettimeofday () -. t0)
  in
  Ftr_obs.Flag.set_mode false;
  let off_hps = time () in
  Ftr_obs.Flag.set_mode true;
  Ftr_obs.Tracing.reset ();
  Ftr_obs.Tracing.set_recording false;
  let muted_hps = time () in
  Ftr_obs.Tracing.set_recording true;
  Ftr_obs.Tracing.set_seed seed;
  Ftr_obs.Tracing.force_full true;
  let traced_hps = time () in
  Printf.printf "telemetry off:            %12.0f hops/s\n" off_hps;
  Printf.printf "obs on, recorder muted:   %12.0f hops/s (%.2fx slower than off)\n" muted_hps
    (off_hps /. muted_hps);
  Printf.printf "full-fidelity tracing:    %12.0f hops/s (%.2fx slower than off)\n%!" traced_hps
    (off_hps /. traced_hps);
  Printf.printf "retained %d / pinned %d traces after %d recorded routes\n%!"
    (Ftr_obs.Tracing.retained_count ())
    (Ftr_obs.Tracing.pinned_count ())
    (Ftr_obs.Tracing.completed ());
  if Ftr_obs.Tracing.retained_count () > !Ftr_obs.Tracing.ring_capacity then
    failwith "flight recorder ring exceeded its capacity"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  section "MICRO-BENCHMARKS — Bechamel (time per operation, OLS on run count)";
  let open Bechamel in
  let open Toolkit in
  let n = 1 lsl 14 in
  let links = 14 in
  let rng = Rng.of_int seed in
  let net = Network.build_ideal ~n ~links rng in
  let pl = Ftr_prng.Sample.power_law ~exponent:1.0 ~max_length:(n - 1) in
  let det = Network.build_deterministic ~n ~base:2 in
  let mask = Ftr_core.Failure.random_node_fraction rng ~n ~fraction:0.3 in
  let failures = Ftr_core.Failure.of_node_mask mask in
  let live () =
    let rec go () =
      let v = Rng.int rng n in
      if Ftr_graph.Bitset.get mask v then v else go ()
    in
    go ()
  in
  let tests =
    [
      Test.make ~name:"xoshiro-next" (Staged.stage (fun () -> ignore (Rng.bits64 rng)));
      Test.make ~name:"power-law-draw"
        (Staged.stage (fun () -> ignore (Ftr_prng.Sample.power_law_draw pl rng ~upto:(n - 1))));
      Test.make ~name:"route-2sided-ideal"
        (Staged.stage (fun () ->
             ignore (Route.route net ~src:(Rng.int rng n) ~dst:(Rng.int rng n))));
      Test.make ~name:"route-deterministic"
        (Staged.stage (fun () ->
             ignore (Route.route det ~src:(Rng.int rng n) ~dst:(Rng.int rng n))));
      Test.make ~name:"route-backtrack-30%fail"
        (Staged.stage (fun () ->
             ignore
               (Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ~rng net
                  ~src:(live ()) ~dst:(live ()))));
      Test.make ~name:"build-ideal-4096x12"
        (Staged.stage (fun () -> ignore (Network.build_ideal ~n:4096 ~links:12 rng)));
      Test.make ~name:"heuristic-build-1024x8"
        (Staged.stage (fun () -> ignore (Heuristic.build ~n:1024 ~links:8 rng)));
    ]
  in
  let grouped = Test.make_grouped ~name:"ftr" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  Printf.printf "%40s %16s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, v) ->
      let time =
        match Analyze.OLS.estimates v with Some (t :: _) -> t | Some [] | None -> nan
      in
      let r2 = match Analyze.OLS.r_square v with Some r -> r | None -> nan in
      let pretty =
        if time > 1e9 then Printf.sprintf "%.3f s" (time /. 1e9)
        else if time > 1e6 then Printf.sprintf "%.3f ms" (time /. 1e6)
        else if time > 1e3 then Printf.sprintf "%.3f us" (time /. 1e3)
        else Printf.sprintf "%.1f ns" time
      in
      Printf.printf "%40s %16s %10.4f\n%!" name pretty r2)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* Each harness section runs under a [Ftr_obs.Span] so the closing report
   shows where the wall time went, alongside whatever metrics the layers
   recorded while the sections ran. *)
let run_section name f =
  let selected =
    match only_sections with
    | None -> true
    | Some names -> List.exists (fun s -> s = name || "bench." ^ s = name) names
  in
  if selected then begin
    Ftr_obs.Span.time name f;
    Printf.printf "\n[obs] span report after %s:\n%s%!" name (Ftr_obs.Export.span_report ())
  end

let () =
  let t0 = Unix.gettimeofday () in
  (* The harness is an observability consumer: telemetry is on regardless
     of FTR_OBS, so every section feeds the final snapshot. *)
  Ftr_obs.Flag.set_mode true;
  Printf.printf "Fault-tolerant routing in peer-to-peer systems — benchmark harness\n";
  Printf.printf "scale: %s (set FTR_BENCH_FULL=1 for paper scale)\n%!"
    (if full then "FULL (paper scale)" else "default (reduced)");
  run_section "bench.figure5" run_figure5;
  run_section "bench.figure6" run_figure6;
  run_section "bench.figure7" run_figure7;
  run_section "bench.table1" run_table1;
  run_section "bench.route" run_route_throughput;
  run_section "bench.scale" run_scale;
  run_section "bench.tracing" run_tracing;
  run_section "bench.exec" run_exec;
  run_section "bench.serve" run_serve;
  run_section "bench.lint" run_lint;
  run_section "bench.lower_bound" run_lower_bound_machinery;
  run_section "bench.ablations" run_ablations;
  run_section "bench.extensions" run_extensions;
  run_section "bench.anatomy" run_anatomy;
  run_section "bench.byzantine" run_byzantine;
  run_section "bench.dht" run_dht;
  run_section "bench.baselines" run_baselines;
  run_section "bench.churn" run_churn;
  run_section "bench.micro" run_micro;
  csv "table1_and_sweeps" ~header:[ "row"; "param"; "measured"; "bound"; "ratio" ]
    ~rows:(List.rev !table1_csv_rows);
  (* Closing metrics snapshot: one line of JSON on stdout, and a file next
     to the CSVs when FTR_BENCH_CSV is set. *)
  let snapshot = Ftr_obs.Json.to_string (Ftr_obs.Export.json_snapshot ()) in
  Printf.printf "\n[obs] metrics snapshot: %s\n" snapshot;
  (match csv_dir with
  | Some dir ->
      mkdir_p dir;
      let path = Filename.concat dir "metrics.json" in
      let oc = open_out path in
      output_string oc snapshot;
      output_char oc '\n';
      close_out oc;
      Printf.printf "[obs] wrote %s\n%!" path
  | None -> ());
  Printf.printf "\ntotal wall time: %.1f s\n%!" (Unix.gettimeofday () -. t0)
