(* ftr-lint: disable-file R2 test assertions compare small concrete values *)
module Splitmix64 = Ftr_prng.Splitmix64
module Xoshiro = Ftr_prng.Xoshiro
module Rng = Ftr_prng.Rng
module Sample = Ftr_prng.Sample

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* SplitMix64                                                          *)
(* ------------------------------------------------------------------ *)

(* Published reference outputs for seed 0 (Steele/Lea/Flood; also used as
   the test vector set of the xoshiro distribution). *)
let splitmix_seed0_vectors () =
  let sm = Splitmix64.create 0L in
  List.iter
    (fun expected ->
      Alcotest.(check int64) "seed-0 stream" expected (Splitmix64.next_int64 sm))
    [ 0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL; 0xF88BB8A8724C81ECL ]

let splitmix_determinism () =
  let a = Splitmix64.of_int 99 and b = Splitmix64.of_int 99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed same stream" (Splitmix64.next_int64 a)
      (Splitmix64.next_int64 b)
  done

let splitmix_copy_independent () =
  let a = Splitmix64.of_int 5 in
  ignore (Splitmix64.next_int64 a);
  let b = Splitmix64.copy a in
  let va = Splitmix64.next_int64 a in
  let vb = Splitmix64.next_int64 b in
  Alcotest.(check int64) "copy continues identically" va vb;
  ignore (Splitmix64.next_int64 a);
  Alcotest.(check bool) "states advanced separately" true
    (Splitmix64.state a <> Splitmix64.state b)

let splitmix_distinct_seeds () =
  let a = Splitmix64.of_int 1 and b = Splitmix64.of_int 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Splitmix64.next_int64 a <> Splitmix64.next_int64 b)

(* ------------------------------------------------------------------ *)
(* xoshiro256**                                                        *)
(* ------------------------------------------------------------------ *)

let xoshiro_rejects_zero_state () =
  Alcotest.check_raises "all-zero state" (Invalid_argument "Xoshiro.of_state: all-zero state")
    (fun () -> ignore (Xoshiro.of_state 0L 0L 0L 0L))

let xoshiro_determinism () =
  let a = Xoshiro.of_int 7 and b = Xoshiro.of_int 7 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Xoshiro.next_int64 a) (Xoshiro.next_int64 b)
  done

let xoshiro_split_decorrelates () =
  let parent = Xoshiro.of_int 7 in
  let child = Xoshiro.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Xoshiro.next_int64 parent = Xoshiro.next_int64 child then incr matches
  done;
  Alcotest.(check int) "no matching outputs in 64 draws" 0 !matches

let xoshiro_copy () =
  let a = Xoshiro.of_int 3 in
  ignore (Xoshiro.next_int64 a);
  let b = Xoshiro.copy a in
  Alcotest.(check int64) "copy replays" (Xoshiro.next_int64 a) (Xoshiro.next_int64 b)

(* ------------------------------------------------------------------ *)
(* Rng helpers                                                         *)
(* ------------------------------------------------------------------ *)

let rng_int_bounds () =
  let rng = Rng.of_int 11 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let rng_int_rejects_nonpositive () =
  let rng = Rng.of_int 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let rng_int_uniformity () =
  (* Chi-square against uniform over 8 cells; threshold is the 99.9%
     quantile of chi2 with 7 dof (24.3) with margin. *)
  let rng = Rng.of_int 5 in
  let cells = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 8 in
    cells.(v) <- cells.(v) + 1
  done;
  let expected = Array.make 8 (float_of_int trials /. 8.0) in
  let chi2 = Ftr_stats.Gof.chi_square ~observed:cells ~expected in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.1f < 30" chi2) true (chi2 < 30.0)

let rng_int_power_of_two_path () =
  let rng = Rng.of_int 6 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 16 in
    Alcotest.(check bool) "in [0,16)" true (v >= 0 && v < 16)
  done

let rng_int_in_range () =
  let rng = Rng.of_int 2 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Rng.int_in_range rng ~lo:3 ~hi:3)

let rng_float_range () =
  let rng = Rng.of_int 13 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let rng_float_mean () =
  let rng = Rng.of_int 17 in
  let s = Ftr_stats.Summary.create () in
  for _ = 1 to 50_000 do
    Ftr_stats.Summary.add s (Rng.float rng)
  done;
  Alcotest.(check bool) "mean near 0.5" true (abs_float (Ftr_stats.Summary.mean s -. 0.5) < 0.01)

let rng_bernoulli_edges () =
  let rng = Rng.of_int 19 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let rng_bernoulli_rate () =
  let rng = Rng.of_int 23 in
  let hits = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let rng_pick () =
  let rng = Rng.of_int 29 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element" true (Array.mem (Rng.pick rng arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let rng_permutation_valid () =
  let rng = Rng.of_int 31 in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let rng_permutation_uniform_small () =
  (* All 6 permutations of 3 elements appear with roughly equal rates. *)
  let rng = Rng.of_int 37 in
  let counts = Hashtbl.create 6 in
  let trials = 12_000 in
  for _ = 1 to trials do
    let p = Rng.permutation rng 3 in
    let key = (p.(0) * 100) + (p.(1) * 10) + p.(2) in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "six permutations" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "each near trials/6" true
        (abs (c - (trials / 6)) < trials / 12))
    counts

let rng_float_range_bounds () =
  let rng = Rng.of_int 44 in
  for _ = 1 to 1000 do
    let v = Rng.float_range rng ~lo:(-2.5) ~hi:7.5 in
    Alcotest.(check bool) "in range" true (v >= -2.5 && v < 7.5)
  done

let rng_copy_replays () =
  let a = Rng.of_int 45 in
  ignore (Rng.int a 100);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int) "copy replays" (Rng.int a 1000) (Rng.int b 1000)
  done

let cdf_probability_bounds () =
  let cdf = Sample.cdf_of_weights [| 1.0; 1.0 |] in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sample.cdf_probability: index out of range") (fun () ->
      ignore (Sample.cdf_probability cdf 2))

let alias_with_zero_weights () =
  (* Zero-weight categories must never be drawn. *)
  let alias = Sample.alias_of_weights [| 0.0; 5.0; 0.0; 5.0 |] in
  let rng = Rng.of_int 46 in
  for _ = 1 to 2000 do
    let i = Sample.alias_draw alias rng in
    Alcotest.(check bool) "only positive cells" true (i = 1 || i = 3)
  done

let rng_split_streams_differ () =
  let parent = Rng.of_int 41 in
  let child = Rng.split parent in
  let equal = ref 0 in
  for _ = 1 to 100 do
    if Rng.int parent 1_000_000 = Rng.int child 1_000_000 then incr equal
  done;
  Alcotest.(check bool) "at most coincidences" true (!equal <= 2)

(* ------------------------------------------------------------------ *)
(* Samplers                                                            *)
(* ------------------------------------------------------------------ *)

let cdf_respects_weights () =
  let cdf = Sample.cdf_of_weights [| 1.0; 3.0; 6.0 |] in
  check_float "p0" 0.1 (Sample.cdf_probability cdf 0);
  check_float "p1" 0.3 (Sample.cdf_probability cdf 1);
  check_float "p2" 0.6 (Sample.cdf_probability cdf 2);
  Alcotest.(check int) "size" 3 (Sample.cdf_size cdf)

let cdf_draw_frequencies () =
  let cdf = Sample.cdf_of_weights [| 1.0; 3.0; 6.0 |] in
  let rng = Rng.of_int 43 in
  let counts = Array.make 3 0 in
  let trials = 60_000 in
  for _ = 1 to trials do
    let i = Sample.cdf_draw cdf rng in
    counts.(i) <- counts.(i) + 1
  done;
  List.iteri
    (fun i p ->
      let rate = float_of_int counts.(i) /. float_of_int trials in
      Alcotest.(check bool) (Printf.sprintf "cell %d" i) true (abs_float (rate -. p) < 0.01))
    [ 0.1; 0.3; 0.6 ]

let cdf_rejects_bad_weights () =
  Alcotest.check_raises "empty" (Invalid_argument "Sample.cdf_of_weights: empty weights")
    (fun () -> ignore (Sample.cdf_of_weights [||]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Sample.cdf_of_weights: zero total weight") (fun () ->
      ignore (Sample.cdf_of_weights [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Sample.cdf_of_weights: negative or NaN weight") (fun () ->
      ignore (Sample.cdf_of_weights [| 1.0; -1.0 |]))

let alias_matches_cdf () =
  let weights = [| 0.5; 2.5; 4.0; 1.0; 2.0 |] in
  let alias = Sample.alias_of_weights weights in
  let rng = Rng.of_int 47 in
  let counts = Array.make 5 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let i = Sample.alias_draw alias rng in
    counts.(i) <- counts.(i) + 1
  done;
  let total = Array.fold_left ( +. ) 0.0 weights in
  Array.iteri
    (fun i w ->
      let rate = float_of_int counts.(i) /. float_of_int trials in
      Alcotest.(check bool) (Printf.sprintf "alias cell %d" i) true
        (abs_float (rate -. (w /. total)) < 0.01))
    weights

let alias_single_category () =
  let alias = Sample.alias_of_weights [| 42.0 |] in
  let rng = Rng.of_int 53 in
  for _ = 1 to 100 do
    Alcotest.(check int) "only index" 0 (Sample.alias_draw alias rng)
  done

let exponential_mean () =
  let rng = Rng.of_int 59 in
  let s = Ftr_stats.Summary.create () in
  for _ = 1 to 50_000 do
    Ftr_stats.Summary.add s (Sample.exponential rng ~rate:2.0)
  done;
  Alcotest.(check bool) "mean near 1/rate" true
    (abs_float (Ftr_stats.Summary.mean s -. 0.5) < 0.02)

let exponential_positive () =
  let rng = Rng.of_int 61 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Sample.exponential rng ~rate:0.5 >= 0.0)
  done

let geometric_mean () =
  let rng = Rng.of_int 67 in
  let s = Ftr_stats.Summary.create () in
  for _ = 1 to 50_000 do
    Ftr_stats.Summary.add_int s (Sample.geometric rng ~p:0.25)
  done;
  Alcotest.(check bool) "mean near 1/p" true (abs_float (Ftr_stats.Summary.mean s -. 4.0) < 0.1)

let geometric_p1 () =
  let rng = Rng.of_int 71 in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 is always 1" 1 (Sample.geometric rng ~p:1.0)
  done

let poisson_moments lambda seed =
  let rng = Rng.of_int seed in
  let s = Ftr_stats.Summary.create () in
  for _ = 1 to 50_000 do
    Ftr_stats.Summary.add_int s (Sample.poisson rng ~lambda)
  done;
  let tolerance = 4.0 *. sqrt lambda /. sqrt 50_000.0 +. 0.02 in
  Alcotest.(check bool)
    (Printf.sprintf "mean near %.1f" lambda)
    true
    (abs_float (Ftr_stats.Summary.mean s -. lambda) < tolerance);
  Alcotest.(check bool)
    (Printf.sprintf "variance near %.1f" lambda)
    true
    (abs_float (Ftr_stats.Summary.variance s -. lambda) < (0.1 *. lambda) +. 0.05)

let poisson_small () = poisson_moments 3.0 73

let poisson_moderate () = poisson_moments 14.0 79

let poisson_large () = poisson_moments 60.0 83

let poisson_zero () =
  let rng = Rng.of_int 89 in
  for _ = 1 to 100 do
    Alcotest.(check int) "lambda 0" 0 (Sample.poisson rng ~lambda:0.0)
  done

let binomial_moments () =
  let rng = Rng.of_int 97 in
  let s = Ftr_stats.Summary.create () in
  for _ = 1 to 30_000 do
    Ftr_stats.Summary.add_int s (Sample.binomial rng ~n:20 ~p:0.3)
  done;
  Alcotest.(check bool) "mean near np" true (abs_float (Ftr_stats.Summary.mean s -. 6.0) < 0.1);
  Alcotest.(check bool) "var near np(1-p)" true
    (abs_float (Ftr_stats.Summary.variance s -. 4.2) < 0.2)

let binomial_edges () =
  let rng = Rng.of_int 101 in
  Alcotest.(check int) "n=0" 0 (Sample.binomial rng ~n:0 ~p:0.5);
  Alcotest.(check int) "p=0" 0 (Sample.binomial rng ~n:50 ~p:0.0);
  Alcotest.(check int) "p=1" 50 (Sample.binomial rng ~n:50 ~p:1.0)

let power_law_range () =
  let pl = Sample.power_law ~exponent:1.0 ~max_length:1000 in
  let rng = Rng.of_int 103 in
  for _ = 1 to 10_000 do
    let d = Sample.power_law_draw pl rng ~upto:1000 in
    Alcotest.(check bool) "in [1,1000]" true (d >= 1 && d <= 1000)
  done;
  for _ = 1 to 1000 do
    let d = Sample.power_law_draw pl rng ~upto:10 in
    Alcotest.(check bool) "restricted upto" true (d >= 1 && d <= 10)
  done

let power_law_harmonic_frequencies () =
  (* With exponent 1, Pr[d] = (1/d)/H_m: check the head of the pmf. *)
  let m = 64 in
  let pl = Sample.power_law ~exponent:1.0 ~max_length:m in
  let rng = Rng.of_int 107 in
  let counts = Array.make (m + 1) 0 in
  let trials = 200_000 in
  for _ = 1 to trials do
    let d = Sample.power_law_draw pl rng ~upto:m in
    counts.(d) <- counts.(d) + 1
  done;
  let h = Ftr_stats.Harmonic.number m in
  List.iter
    (fun d ->
      let expected = 1.0 /. (float_of_int d *. h) in
      let rate = float_of_int counts.(d) /. float_of_int trials in
      Alcotest.(check bool) (Printf.sprintf "d=%d" d) true (abs_float (rate -. expected) < 0.005))
    [ 1; 2; 3; 4; 8; 16 ]

let power_law_total_matches_harmonic () =
  let pl = Sample.power_law ~exponent:1.0 ~max_length:500 in
  check_float "total = H_500" (Ftr_stats.Harmonic.number 500) (Sample.power_law_total pl ~upto:500);
  check_float "partial = H_10" (Ftr_stats.Harmonic.number 10) (Sample.power_law_total pl ~upto:10);
  check_float "upto 0" 0.0 (Sample.power_law_total pl ~upto:0)

let power_law_exponent2 () =
  (* Exponent 2 concentrates mass at short lengths much more strongly. *)
  let m = 128 in
  let pl = Sample.power_law ~exponent:2.0 ~max_length:m in
  let rng = Rng.of_int 109 in
  let short = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Sample.power_law_draw pl rng ~upto:m <= 2 then incr short
  done;
  (* Pr[d<=2] = (1 + 1/4)/sum ~ 0.777 for m=128 (sum ~ pi^2/6). *)
  let rate = float_of_int !short /. float_of_int trials in
  Alcotest.(check bool) "short fraction near 0.78" true (abs_float (rate -. 0.777) < 0.02)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_int_in_bound =
  QCheck.Test.make ~name:"Rng.int stays in bound" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.of_int seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_permutation =
  QCheck.Test.make ~name:"Rng.permutation is a permutation" ~count:200
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let p = Rng.permutation (Rng.of_int seed) n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_power_law_in_range =
  QCheck.Test.make ~name:"power_law_draw within upto" ~count:300
    QCheck.(pair small_int (int_range 1 512))
    (fun (seed, upto) ->
      let pl = Sample.power_law ~exponent:1.0 ~max_length:512 in
      let d = Sample.power_law_draw pl (Rng.of_int seed) ~upto in
      d >= 1 && d <= upto)

let prop_cdf_draw_in_range =
  QCheck.Test.make ~name:"cdf_draw returns a valid index" ~count:300
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 20) (float_range 0.01 5.0)))
    (fun (seed, weights) ->
      let weights = Array.of_list weights in
      let cdf = Sample.cdf_of_weights weights in
      let i = Sample.cdf_draw cdf (Rng.of_int seed) in
      i >= 0 && i < Array.length weights)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          quick "seed-0 published vectors" splitmix_seed0_vectors;
          quick "determinism" splitmix_determinism;
          quick "copy is independent" splitmix_copy_independent;
          quick "distinct seeds" splitmix_distinct_seeds;
        ] );
      ( "xoshiro",
        [
          quick "rejects all-zero state" xoshiro_rejects_zero_state;
          quick "determinism" xoshiro_determinism;
          quick "split decorrelates" xoshiro_split_decorrelates;
          quick "copy replays" xoshiro_copy;
        ] );
      ( "rng",
        [
          quick "int bounds" rng_int_bounds;
          quick "int rejects non-positive bound" rng_int_rejects_nonpositive;
          quick "int uniformity (chi-square)" rng_int_uniformity;
          quick "int power-of-two fast path" rng_int_power_of_two_path;
          quick "int_in_range" rng_int_in_range;
          quick "float in [0,1)" rng_float_range;
          quick "float mean" rng_float_mean;
          quick "bernoulli edges" rng_bernoulli_edges;
          quick "bernoulli rate" rng_bernoulli_rate;
          quick "pick" rng_pick;
          quick "permutation valid" rng_permutation_valid;
          quick "permutation uniform (n=3)" rng_permutation_uniform_small;
          quick "split streams differ" rng_split_streams_differ;
          quick "float_range bounds" rng_float_range_bounds;
          quick "copy replays" rng_copy_replays;
        ] );
      ( "samplers",
        [
          quick "cdf probabilities" cdf_respects_weights;
          quick "cdf draw frequencies" cdf_draw_frequencies;
          quick "cdf rejects bad weights" cdf_rejects_bad_weights;
          quick "cdf probability bounds" cdf_probability_bounds;
          quick "alias never draws zero-weight cells" alias_with_zero_weights;
          quick "alias frequencies" alias_matches_cdf;
          quick "alias single category" alias_single_category;
          quick "exponential mean" exponential_mean;
          quick "exponential positive" exponential_positive;
          quick "geometric mean" geometric_mean;
          quick "geometric p=1" geometric_p1;
          quick "poisson lambda=3" poisson_small;
          quick "poisson lambda=14" poisson_moderate;
          quick "poisson lambda=60 (split path)" poisson_large;
          quick "poisson lambda=0" poisson_zero;
          quick "binomial moments" binomial_moments;
          quick "binomial edges" binomial_edges;
          quick "power-law range" power_law_range;
          quick "power-law harmonic frequencies" power_law_harmonic_frequencies;
          quick "power-law totals are harmonic numbers" power_law_total_matches_harmonic;
          quick "power-law exponent 2" power_law_exponent2;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [ prop_int_in_bound; prop_permutation; prop_power_law_in_range; prop_cdf_draw_in_range ]
      );
    ]
