module Network = Ftr_core.Network
module Route = Ftr_core.Route
module Failure = Ftr_core.Failure
module Rng = Ftr_prng.Rng
module Bitset = Ftr_graph.Bitset

let rng () = Rng.of_int 777

let build ?(n = 512) ?(links = 4) seed = Network.build_ideal ~n ~links (Rng.of_int seed)

(* ------------------------------------------------------------------ *)
(* Failure-free routing                                                *)
(* ------------------------------------------------------------------ *)

let delivers_without_failures () =
  let net = build 1 in
  let r = rng () in
  for _ = 1 to 500 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    match Route.route net ~src ~dst with
    | Route.Delivered _ -> ()
    | Route.Failed _ -> Alcotest.fail "greedy routing failed without failures"
  done

let self_route_is_zero_hops () =
  let net = build 2 in
  Alcotest.(check int) "src = dst" 0 (Route.hops (Route.route net ~src:7 ~dst:7))

let adjacent_route_is_one_hop () =
  let net = build 3 in
  Alcotest.(check int) "adjacent" 1 (Route.hops (Route.route net ~src:7 ~dst:8))

let hops_at_most_distance () =
  (* Two-sided greedy strictly decreases distance each hop. *)
  let net = build 4 in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    let h = Route.hops (Route.route net ~src ~dst) in
    Alcotest.(check bool) "hops <= |src-dst|" true (h <= abs (src - dst))
  done

let path_distance_strictly_decreases () =
  let net = build 5 in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    let _, path = Route.route_path net ~src ~dst in
    let rec check = function
      | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "monotone progress" true (abs (b - dst) < abs (a - dst));
          check rest
      | _ -> ()
    in
    check path
  done

let path_starts_and_ends_correctly () =
  let net = build 6 in
  let outcome, path = Route.route_path net ~src:13 ~dst:400 in
  Alcotest.(check bool) "delivered" true (Route.delivered outcome);
  Alcotest.(check int) "starts at src" 13 (List.hd path);
  Alcotest.(check int) "ends at dst" 400 (List.nth path (List.length path - 1));
  Alcotest.(check int) "hops = path edges" (Route.hops outcome) (List.length path - 1)

let one_sided_never_overshoots () =
  let net = build 7 in
  let r = rng () in
  for _ = 1 to 200 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    let outcome, path = Route.route_path ~side:Route.One_sided net ~src ~dst in
    Alcotest.(check bool) "delivered" true (Route.delivered outcome);
    List.iter
      (fun v ->
        (* No visited node lies beyond the target as seen from the source. *)
        if src <= dst then Alcotest.(check bool) "stays left of target" true (v <= dst)
        else Alcotest.(check bool) "stays right of target" true (v >= dst))
      path
  done

let one_sided_slower_than_two_sided () =
  (* On average, restricting to one side cannot help. *)
  let net = build 8 ~n:4096 ~links:4 in
  let r = rng () in
  let one = ref 0 and two = ref 0 in
  for _ = 1 to 400 do
    let src = Rng.int r 4096 and dst = Rng.int r 4096 in
    one := !one + Route.hops (Route.route ~side:Route.One_sided net ~src ~dst);
    two := !two + Route.hops (Route.route ~side:Route.Two_sided net ~src ~dst)
  done;
  Alcotest.(check bool) "one-sided >= two-sided on average" true (!one >= !two)

let chain_route_crawls () =
  (* No long links: greedy walks the chain, exactly |src-dst| hops. *)
  let net = Network.build_ideal ~n:64 ~links:0 (rng ()) in
  Alcotest.(check int) "crawl" 37 (Route.hops (Route.route net ~src:5 ~dst:42))

let deterministic_network_hop_bound () =
  let n = 4096 in
  let net = Network.build_deterministic ~n ~base:2 in
  let bound = int_of_float (Ftr_core.Theory.upper_deterministic ~base:2 n) in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r n and dst = Rng.int r n in
    let h = Route.hops (Route.route net ~src ~dst) in
    Alcotest.(check bool) (Printf.sprintf "%d <= %d" h bound) true (h <= bound)
  done

let route_rejects_bad_endpoints () =
  let net = build 9 in
  Alcotest.check_raises "out of range" (Invalid_argument "Route.route: node out of range")
    (fun () -> ignore (Route.route net ~src:0 ~dst:100_000));
  let mask = Bitset.create 512 in
  Bitset.fill mask true;
  Bitset.clear mask 10;
  let failures = Failure.of_node_mask mask in
  Alcotest.check_raises "dead destination"
    (Invalid_argument "Route.route: destination is dead") (fun () ->
      ignore (Route.route ~failures net ~src:0 ~dst:10))

let hop_limit_reported () =
  let net = Network.build_ideal ~n:64 ~links:0 (rng ()) in
  match Route.route ~max_hops:3 net ~src:0 ~dst:50 with
  | Route.Failed { reason = Route.Hop_limit; hops; _ } -> Alcotest.(check int) "hops" 3 hops
  | _ -> Alcotest.fail "expected hop-limit failure"

(* ------------------------------------------------------------------ *)
(* Sparse (binomial) networks                                          *)
(* ------------------------------------------------------------------ *)

let sparse_network_delivers () =
  let net = Network.build_binomial ~n:2048 ~links:4 ~present_p:0.4 (Rng.of_int 100) in
  let m = Network.size net in
  let r = rng () in
  for _ = 1 to 200 do
    let src = Rng.int r m and dst = Rng.int r m in
    Alcotest.(check bool) "delivered on sparse net" true
      (Route.delivered (Route.route net ~src ~dst))
  done

let sparse_network_distance_uses_positions () =
  (* Hop bound in *position* distance, not index distance. *)
  let net = Network.build_binomial ~n:2048 ~links:4 ~present_p:0.4 (Rng.of_int 101) in
  let m = Network.size net in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r m and dst = Rng.int r m in
    let h = Route.hops (Route.route net ~src ~dst) in
    Alcotest.(check bool) "hops bounded by index span" true (h <= abs (src - dst))
  done

let sparse_one_sided_respects_positions () =
  let net = Network.build_binomial ~n:1024 ~links:3 ~present_p:0.5 (Rng.of_int 102) in
  let m = Network.size net in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r m and dst = Rng.int r m in
    let outcome, path = Route.route_path ~side:Route.One_sided net ~src ~dst in
    Alcotest.(check bool) "delivered" true (Route.delivered outcome);
    let dst_pos = Network.position net dst and src_pos = Network.position net src in
    List.iter
      (fun v ->
        let p = Network.position net v in
        if src_pos <= dst_pos then Alcotest.(check bool) "no overshoot" true (p <= dst_pos)
        else Alcotest.(check bool) "no overshoot" true (p >= dst_pos))
      path
  done

let sparse_network_with_failures () =
  let net = Network.build_binomial ~n:2048 ~links:6 ~present_p:0.5 (Rng.of_int 103) in
  let m = Network.size net in
  let mask = Failure.random_node_fraction (Rng.of_int 104) ~n:m ~fraction:0.3 in
  let failures = Failure.of_node_mask mask in
  let r = rng () in
  let ok = ref 0 in
  for _ = 1 to 200 do
    let live () =
      let rec go () =
        let v = Rng.int r m in
        if Bitset.get mask v then v else go ()
      in
      go ()
    in
    let src = live () and dst = live () in
    if
      Route.delivered
        (Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) net ~src ~dst)
    then incr ok
  done;
  Alcotest.(check bool) (Printf.sprintf "%d/200 delivered" !ok) true (!ok > 185)

(* ------------------------------------------------------------------ *)
(* Random reroute depth                                                *)
(* ------------------------------------------------------------------ *)

let reroute_more_attempts_no_worse () =
  let n = 4096 in
  let net = Network.build_ideal ~n ~links:8 (Rng.of_int 105) in
  let mask = Failure.random_node_fraction (Rng.of_int 106) ~n ~fraction:0.5 in
  let failures = Failure.of_node_mask mask in
  let fails attempts seed =
    let r = Rng.of_int seed in
    let failed = ref 0 in
    for _ = 1 to 300 do
      let live () =
        let rec go () =
          let v = Rng.int r n in
          if Bitset.get mask v then v else go ()
        in
        go ()
      in
      let src = live () and dst = live () in
      match
        Route.route ~failures ~strategy:(Route.Random_reroute { attempts }) ~rng:r net ~src ~dst
      with
      | Route.Delivered _ -> ()
      | Route.Failed _ -> incr failed
    done;
    !failed
  in
  let one = fails 1 107 and five = fails 5 107 in
  Alcotest.(check bool) (Printf.sprintf "5 attempts (%d) <= 1 attempt (%d) + noise" five one)
    true
    (five <= one + 15)

(* ------------------------------------------------------------------ *)
(* Circle geometry                                                     *)
(* ------------------------------------------------------------------ *)

let ring_delivers () =
  let net = Network.build_ring ~n:512 ~links:4 (Rng.of_int 40) in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    Alcotest.(check bool) "delivered" true (Route.delivered (Route.route net ~src ~dst))
  done

let ring_hops_at_most_arc () =
  let net = Network.build_ring ~n:512 ~links:4 (Rng.of_int 41) in
  let r = rng () in
  for _ = 1 to 200 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    let h = Route.hops (Route.route net ~src ~dst) in
    Alcotest.(check bool) "hops <= shorter arc" true (h <= Network.distance net src dst)
  done

let ring_routes_across_seam () =
  (* Two-sided greedy must cross the 0/n-1 seam rather than walk around. *)
  let net = Network.build_ring ~n:256 ~links:0 (Rng.of_int 42) in
  Alcotest.(check int) "wraps the seam" 9 (Route.hops (Route.route net ~src:252 ~dst:5))

let ring_one_sided_is_clockwise () =
  (* One-sided routing on the circle only ever moves clockwise. *)
  let net = Network.build_ring ~n:256 ~links:4 (Rng.of_int 43) in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r 256 and dst = Rng.int r 256 in
    let outcome, path = Route.route_path ~side:Route.One_sided net ~src ~dst in
    Alcotest.(check bool) "delivered" true (Route.delivered outcome);
    let rec check = function
      | a :: (b :: _ as rest) ->
          (* Each hop strictly shrinks the clockwise distance to dst, which
             means motion is clockwise and never passes the target. *)
          Alcotest.(check bool) "clockwise progress" true
            (Network.clockwise_distance net ~src:b ~dst
            < Network.clockwise_distance net ~src:a ~dst);
          check rest
      | _ -> ()
    in
    check path
  done

let ring_survives_failures () =
  (* No boundary: the ring has two crawl directions everywhere, so it
     weathers failures at least as well as the line. *)
  let n = 2048 in
  let ring = Network.build_ring ~n ~links:8 (Rng.of_int 44) in
  let mask = Failure.random_node_fraction (Rng.of_int 45) ~n ~fraction:0.4 in
  let failures = Failure.of_node_mask mask in
  let r = rng () in
  let ok = ref 0 in
  for _ = 1 to 200 do
    let live () =
      let rec go () =
        let v = Rng.int r n in
        if Bitset.get mask v then v else go ()
      in
      go ()
    in
    let src = live () and dst = live () in
    if
      Route.delivered
        (Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) ring ~src ~dst)
    then incr ok
  done;
  Alcotest.(check bool) (Printf.sprintf "%d/200 delivered" !ok) true (!ok > 180)

(* ------------------------------------------------------------------ *)
(* Node failures and strategies                                       *)
(* ------------------------------------------------------------------ *)

(* A surgical blockade: on a pure chain, kill a node between src and dst;
   terminate must fail, and no strategy can get around it. *)
let chain_blockade_terminate_fails () =
  let net = Network.build_ideal ~n:64 ~links:0 (rng ()) in
  let mask = Bitset.create 64 in
  Bitset.fill mask true;
  Bitset.clear mask 20;
  let failures = Failure.of_node_mask mask in
  (match Route.route ~failures net ~src:5 ~dst:40 with
  | Route.Failed { stuck_at; reason = Route.No_live_neighbor; _ } ->
      Alcotest.(check int) "stuck right before the hole" 19 stuck_at
  | _ -> Alcotest.fail "expected stuck failure");
  (* Backtracking cannot help either: the chain has no alternate routes. *)
  match Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) net ~src:5 ~dst:40 with
  | Route.Failed _ -> ()
  | Route.Delivered _ -> Alcotest.fail "no path exists; must fail"

(* With long links, killing the chain next to the target still usually
   leaves a long link into the target's other side; backtracking finds it. *)
let backtrack_recovers_when_terminate_fails () =
  let n = 2048 and links = 6 in
  let r = rng () in
  let recovered = ref 0 and comparable = ref 0 in
  for seed = 0 to 40 do
    let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
    let mask_rng = Rng.of_int (1000 + seed) in
    let mask = Failure.random_node_fraction mask_rng ~n ~fraction:0.5 in
    let failures = Failure.of_node_mask mask in
    let live () =
      let rec go () =
        let v = Rng.int r n in
        if Bitset.get mask v then v else go ()
      in
      go ()
    in
    for _ = 1 to 20 do
      let src = live () and dst = live () in
      let t = Route.route ~failures net ~src ~dst in
      let b = Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) net ~src ~dst in
      (match (t, b) with
      | Route.Failed _, Route.Delivered _ -> incr recovered
      | Route.Delivered _, Route.Failed _ ->
          Alcotest.fail "backtracking lost a search terminate won"
      | _ -> ());
      incr comparable
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "backtracking recovered %d searches" !recovered)
    true (!recovered > 0)

let strategies_ordering_under_failures () =
  (* Failed-search fractions must be ordered: backtrack <= terminate. *)
  let n = 4096 and links = 8 in
  let net = Network.build_ideal ~n ~links (Rng.of_int 5) in
  let mask = Failure.random_node_fraction (Rng.of_int 6) ~n ~fraction:0.4 in
  let failures = Failure.of_node_mask mask in
  let r = rng () in
  let pairs =
    Array.init 400 (fun _ ->
        let live () =
          let rec go () =
            let v = Rng.int r n in
            if Bitset.get mask v then v else go ()
          in
          go ()
        in
        (live (), live ()))
  in
  let failures_for strategy =
    Array.fold_left
      (fun acc (src, dst) ->
        match Route.route ~failures ~strategy ~rng:r net ~src ~dst with
        | Route.Delivered _ -> acc
        | Route.Failed _ -> acc + 1)
      0 pairs
  in
  let t = failures_for Route.Terminate in
  let b = failures_for (Route.Backtrack { history = 5 }) in
  let rr = failures_for (Route.Random_reroute { attempts = 1 }) in
  Alcotest.(check bool) (Printf.sprintf "backtrack %d <= terminate %d" b t) true (b <= t);
  Alcotest.(check bool) (Printf.sprintf "reroute %d <= terminate %d" rr t) true (rr <= t)

let reroute_requires_rng_gracefully () =
  (* Without an rng, reroute cannot pick a random node and reports it. *)
  let net = Network.build_ideal ~n:64 ~links:0 (rng ()) in
  let mask = Bitset.create 64 in
  Bitset.fill mask true;
  Bitset.clear mask 20;
  let failures = Failure.of_node_mask mask in
  match
    Route.route ~failures ~strategy:(Route.Random_reroute { attempts = 1 }) net ~src:5 ~dst:40
  with
  | Route.Failed { reason = Route.No_live_reroute_target; _ } -> ()
  | _ -> Alcotest.fail "expected no-reroute-target failure"

let backtrack_requires_positive_history () =
  let net = build 10 in
  Alcotest.check_raises "history 0" (Invalid_argument "Route.route: history must be >= 1")
    (fun () ->
      ignore (Route.route ~strategy:(Route.Backtrack { history = 0 }) net ~src:0 ~dst:5))

let dead_nodes_never_visited () =
  let n = 2048 in
  let net = Network.build_ideal ~n ~links:6 (Rng.of_int 11) in
  let mask = Failure.random_node_fraction (Rng.of_int 12) ~n ~fraction:0.3 in
  let failures = Failure.of_node_mask mask in
  let r = rng () in
  for _ = 1 to 100 do
    let live () =
      let rec go () =
        let v = Rng.int r n in
        if Bitset.get mask v then v else go ()
      in
      go ()
    in
    let src = live () and dst = live () in
    let _, path = Route.route_path ~failures net ~src ~dst in
    List.iter
      (fun v -> Alcotest.(check bool) "visited node is alive" true (Bitset.get mask v))
      path
  done

(* ------------------------------------------------------------------ *)
(* Link failures                                                       *)
(* ------------------------------------------------------------------ *)

let link_failures_never_block_delivery () =
  (* Immediate links always survive, so every search still succeeds. *)
  let n = 1024 in
  let net = Network.build_ideal ~n ~links:6 (Rng.of_int 13) in
  let lm = Failure.random_link_mask (Rng.of_int 14) net ~present_p:0.2 in
  let failures = Failure.of_link_mask lm in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r n and dst = Rng.int r n in
    match Route.route ~failures net ~src ~dst with
    | Route.Delivered _ -> ()
    | Route.Failed _ -> Alcotest.fail "link failures must not block delivery"
  done

let link_failures_slow_delivery () =
  let n = 8192 in
  let net = Network.build_ideal ~n ~links:6 (Rng.of_int 15) in
  let hops_at p seed =
    let lm = Failure.random_link_mask (Rng.of_int seed) net ~present_p:p in
    let failures = Failure.of_link_mask lm in
    let r = rng () in
    let total = ref 0 in
    for _ = 1 to 300 do
      let src = Rng.int r n and dst = Rng.int r n in
      total := !total + Route.hops (Route.route ~failures net ~src ~dst)
    done;
    !total
  in
  let fast = hops_at 1.0 16 and slow = hops_at 0.2 17 in
  Alcotest.(check bool) (Printf.sprintf "p=0.2 (%d) slower than p=1 (%d)" slow fast) true
    (slow > fast)

let immediate_links_survive_mask () =
  let n = 256 in
  let net = Network.build_ideal ~n ~links:4 (Rng.of_int 18) in
  let lm = Failure.random_link_mask (Rng.of_int 19) net ~present_p:0.0 in
  for u = 0 to n - 1 do
    Array.iteri
      (fun idx v ->
        let alive = Failure.link_mask_alive lm ~src:u ~idx in
        if v = u - 1 || v = u + 1 then
          Alcotest.(check bool) "immediate survives" true alive
        else Alcotest.(check bool) "long link dead at p=0" false alive)
      (Network.neighbors net u)
  done

(* ------------------------------------------------------------------ *)
(* Loop erasure                                                        *)
(* ------------------------------------------------------------------ *)

let loop_erased_simple_path () =
  Alcotest.(check int) "no loops" 3 (Route.loop_erased_length [ 1; 2; 3; 4 ]);
  Alcotest.(check int) "single node" 0 (Route.loop_erased_length [ 7 ]);
  Alcotest.(check int) "empty" 0 (Route.loop_erased_length [])

let loop_erased_excursion () =
  (* 1 -> 2 -> 3 -> 2 -> 5: the 2-3-2 excursion collapses. *)
  Alcotest.(check int) "excursion erased" 2 (Route.loop_erased_length [ 1; 2; 3; 2; 5 ]);
  (* Nested excursions: 2-3-4-3-2 collapses, leaving 1 -> 2 -> 9. *)
  Alcotest.(check int) "nested" 2 (Route.loop_erased_length [ 1; 2; 3; 4; 3; 2; 9 ]);
  (* Returning all the way to the start. *)
  Alcotest.(check int) "full return" 1 (Route.loop_erased_length [ 1; 2; 3; 1; 4 ])

let loop_erased_matches_hops_without_backtracking () =
  let net = build 30 in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    let outcome, path = Route.route_path net ~src ~dst in
    Alcotest.(check int) "greedy path has no loops" (Route.hops outcome)
      (Route.loop_erased_length path)
  done

let loop_erased_shorter_under_backtracking () =
  let n = 2048 in
  let net = Network.build_ideal ~n ~links:6 (Rng.of_int 31) in
  let mask = Failure.random_node_fraction (Rng.of_int 32) ~n ~fraction:0.5 in
  let failures = Failure.of_node_mask mask in
  let r = rng () in
  for _ = 1 to 100 do
    let live () =
      let rec go () =
        let v = Rng.int r n in
        if Bitset.get mask v then v else go ()
      in
      go ()
    in
    let src = live () and dst = live () in
    let outcome, path =
      Route.route_path ~failures ~strategy:(Route.Backtrack { history = 5 }) net ~src ~dst
    in
    if Route.delivered outcome then begin
      let erased = Route.loop_erased_length path in
      Alcotest.(check bool) "loop-erased <= total hops" true (erased <= Route.hops outcome);
      Alcotest.(check bool) "still a path" true (erased >= 1 || src = dst)
    end
  done

(* ------------------------------------------------------------------ *)
(* Byzantine blackholes (Section 7 security direction)                 *)
(* ------------------------------------------------------------------ *)

module Byzantine = Ftr_core.Byzantine

let byzantine_free_network_is_greedy () =
  let net = build 60 in
  let byzantine _ = false in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    let b = Byzantine.route ~defense:Byzantine.Naive net ~byzantine ~src ~dst in
    let g = Route.route net ~src ~dst in
    Alcotest.(check bool) "delivered" true (Byzantine.delivered b);
    Alcotest.(check int) "same hops as plain greedy" (Route.hops g) (Byzantine.hops b);
    Alcotest.(check int) "nothing wasted" 0 (Byzantine.wasted b)
  done

let byzantine_naive_dies_at_first_blackhole () =
  (* On a chain, a blackhole strictly between src and dst always wins. *)
  let net = Network.build_ideal ~n:64 ~links:0 (rng ()) in
  let byzantine v = v = 20 in
  match Byzantine.route ~defense:Byzantine.Naive net ~byzantine ~src:5 ~dst:40 with
  | Byzantine.Failed { wasted; _ } -> Alcotest.(check int) "one message eaten" 1 wasted
  | Byzantine.Delivered _ -> Alcotest.fail "must fail on the chain"

let byzantine_retry_routes_around () =
  let n = 2048 in
  let net = Network.build_ideal ~n ~links:8 (Rng.of_int 61) in
  let mask = Failure.random_node_fraction (Rng.of_int 62) ~n ~fraction:0.15 in
  let byzantine v = not (Bitset.get mask v) in
  let r = rng () in
  let naive_f = ref 0 and retry_f = ref 0 and back_f = ref 0 in
  for _ = 1 to 200 do
    let honest () =
      let rec go () =
        let v = Rng.int r n in
        if byzantine v then go () else v
      in
      go ()
    in
    let src = honest () and dst = honest () in
    if not (Byzantine.delivered (Byzantine.route ~defense:Byzantine.Naive net ~byzantine ~src ~dst))
    then incr naive_f;
    if not (Byzantine.delivered (Byzantine.route ~defense:Byzantine.Retry net ~byzantine ~src ~dst))
    then incr retry_f;
    if
      not
        (Byzantine.delivered
           (Byzantine.route
              ~defense:(Byzantine.Retry_backtrack { history = 5 })
              net ~byzantine ~src ~dst))
    then incr back_f
  done;
  Alcotest.(check bool)
    (Printf.sprintf "retry (%d) beats naive (%d)" !retry_f !naive_f)
    true (!retry_f < !naive_f);
  Alcotest.(check bool)
    (Printf.sprintf "backtrack (%d) <= retry (%d)" !back_f !retry_f)
    true (!back_f <= !retry_f);
  Alcotest.(check bool) "naive substantially hurt" true (!naive_f > 30)

let byzantine_wasted_counts_blackhole_hits () =
  let net = Network.build_ideal ~n:64 ~links:0 (rng ()) in
  (* Chain with a blackhole right next to the source: retry excludes it,
     then the search is stuck (one-sided chain) and fails with 1 waste. *)
  let byzantine v = v = 6 in
  match Byzantine.route ~defense:Byzantine.Retry net ~byzantine ~src:5 ~dst:40 with
  | Byzantine.Failed { wasted; _ } -> Alcotest.(check int) "counted" 1 wasted
  | Byzantine.Delivered _ -> Alcotest.fail "chain cannot avoid the blackhole"

let byzantine_misroute_clean_network () =
  (* Without Byzantine nodes, misroute-routing is plain greedy. *)
  let net = build 65 in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    let m = Byzantine.route_misroute net ~byzantine:(fun _ -> false) ~src ~dst in
    Alcotest.(check bool) "delivered" true (Byzantine.delivered m);
    Alcotest.(check int) "greedy hops" (Route.hops (Route.route net ~src ~dst))
      (Byzantine.hops m);
    Alcotest.(check int) "no sabotage" 0 (Byzantine.wasted m)
  done

let byzantine_misroute_inflates_hops () =
  let n = 2048 in
  let net = Network.build_ideal ~n ~links:8 (Rng.of_int 66) in
  let mask = Failure.random_node_fraction (Rng.of_int 67) ~n ~fraction:0.1 in
  let byzantine v = not (Bitset.get mask v) in
  let r = rng () in
  let clean = ref 0 and dirty = ref 0 and delivered = ref 0 and total = 0 + 200 in
  for _ = 1 to total do
    let honest () =
      let rec go () =
        let v = Rng.int r n in
        if byzantine v then go () else v
      in
      go ()
    in
    let src = honest () and dst = honest () in
    clean := !clean + Route.hops (Route.route net ~src ~dst);
    let m = Byzantine.route_misroute net ~byzantine ~src ~dst in
    if Byzantine.delivered m then begin
      incr delivered;
      dirty := !dirty + Byzantine.hops m
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most still delivered (%d/%d)" !delivered total)
    true
    (!delivered > total / 2);
  Alcotest.(check bool)
    (Printf.sprintf "sabotage inflates hops (%d vs clean %d)" !dirty !clean)
    true
    (!dirty > !clean)

let byzantine_rejects_bad_endpoints () =
  let net = build 63 in
  Alcotest.check_raises "byzantine endpoint"
    (Invalid_argument "Byzantine.route: endpoint is Byzantine") (fun () ->
      ignore (Byzantine.route net ~byzantine:(fun v -> v = 0) ~src:0 ~dst:5))

let byzantine_sweep_shapes () =
  let rows = Byzantine.sweep ~n:1024 ~fractions:[ 0.0; 0.2 ] ~networks:2 ~messages:100 ~seed:64 () in
  match rows with
  | [ clean; dirty ] ->
      Alcotest.(check (float 1e-9)) "clean naive" 0.0 clean.Byzantine.naive_failed;
      Alcotest.(check bool) "naive hurt at 20%" true (dirty.Byzantine.naive_failed > 0.2);
      Alcotest.(check bool) "defenses ordered" true
        (dirty.Byzantine.backtrack_failed <= dirty.Byzantine.retry_failed
        && dirty.Byzantine.retry_failed <= dirty.Byzantine.naive_failed);
      Alcotest.(check bool) "waste grows" true
        (dirty.Byzantine.retry_wasted > clean.Byzantine.retry_wasted)
  | _ -> Alcotest.fail "expected two rows"

(* ------------------------------------------------------------------ *)
(* Failure-mask constructors                                           *)
(* ------------------------------------------------------------------ *)

let fraction_mask_exact () =
  let n = 1000 in
  let mask = Failure.random_node_fraction (Rng.of_int 20) ~n ~fraction:0.3 in
  Alcotest.(check int) "exactly 700 alive" 700 (Bitset.count mask)

let fraction_zero_kills_nobody () =
  let mask = Failure.random_node_fraction (Rng.of_int 21) ~n:100 ~fraction:0.0 in
  Alcotest.(check int) "all alive" 100 (Bitset.count mask)

let bernoulli_mask_rate () =
  let n = 20_000 in
  let mask = Failure.bernoulli_node_mask (Rng.of_int 22) ~n ~death_p:0.25 in
  let alive = Bitset.count mask in
  Alcotest.(check bool) "about 75% alive" true (abs (alive - 15_000) < 400)

let compose_masks () =
  let a = Failure.make ~node_alive:(fun i -> i <> 3) () in
  let b = Failure.make ~node_alive:(fun i -> i <> 5) () in
  let c = Failure.compose a b in
  Alcotest.(check bool) "3 dead" false (Failure.node_alive c 3);
  Alcotest.(check bool) "5 dead" false (Failure.node_alive c 5);
  Alcotest.(check bool) "4 alive" true (Failure.node_alive c 4)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_always_delivers_no_failures =
  QCheck.Test.make ~name:"greedy always delivers without failures" ~count:100
    QCheck.(triple (int_range 2 256) (int_range 0 6) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
      let r = Rng.of_int (seed + 1) in
      let src = Rng.int r n and dst = Rng.int r n in
      Route.delivered (Route.route net ~src ~dst))

let prop_hops_bounded_by_distance =
  QCheck.Test.make ~name:"two-sided hops bounded by initial distance" ~count:100
    QCheck.(triple (int_range 2 256) (int_range 0 6) small_int)
    (fun (n, links, seed) ->
      let net = Network.build_ideal ~n ~links (Rng.of_int seed) in
      let r = Rng.of_int (seed + 2) in
      let src = Rng.int r n and dst = Rng.int r n in
      Route.hops (Route.route net ~src ~dst) <= abs (src - dst))

let prop_byzantine_retry_dominates_naive =
  QCheck.Test.make ~name:"byzantine retry delivers whenever naive does" ~count:50
    QCheck.(pair (int_range 64 512) small_int)
    (fun (n, seed) ->
      let net = Network.build_ideal ~n ~links:4 (Rng.of_int seed) in
      let mask = Failure.random_node_fraction (Rng.of_int (seed + 1)) ~n ~fraction:0.2 in
      let byzantine v = not (Bitset.get mask v) in
      let r = Rng.of_int (seed + 2) in
      let rec honest () =
        let v = Rng.int r n in
        if byzantine v then honest () else v
      in
      let src = honest () and dst = honest () in
      let naive =
        Ftr_core.Byzantine.route ~defense:Ftr_core.Byzantine.Naive net ~byzantine ~src ~dst
      in
      let retry =
        Ftr_core.Byzantine.route ~defense:Ftr_core.Byzantine.Retry net ~byzantine ~src ~dst
      in
      (not (Ftr_core.Byzantine.delivered naive)) || Ftr_core.Byzantine.delivered retry)

let prop_loop_erased_bounded =
  QCheck.Test.make ~name:"loop-erased length bounded by walk length" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 0 15))
    (fun walk ->
      let erased = Route.loop_erased_length walk in
      erased >= 0 && erased <= List.length walk - 1)

let prop_backtrack_never_worse_than_terminate =
  QCheck.Test.make ~name:"backtracking delivers whenever terminate does" ~count:50
    QCheck.(pair (int_range 64 512) small_int)
    (fun (n, seed) ->
      let net = Network.build_ideal ~n ~links:4 (Rng.of_int seed) in
      let mask = Failure.random_node_fraction (Rng.of_int (seed + 1)) ~n ~fraction:0.4 in
      let failures = Failure.of_node_mask mask in
      let r = Rng.of_int (seed + 2) in
      let rec live () =
        let v = Rng.int r n in
        if Bitset.get mask v then v else live ()
      in
      let src = live () and dst = live () in
      let t = Route.route ~failures net ~src ~dst in
      let b = Route.route ~failures ~strategy:(Route.Backtrack { history = 5 }) net ~src ~dst in
      (not (Route.delivered t)) || Route.delivered b)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "route"
    [
      ( "failure-free",
        [
          quick "always delivers" delivers_without_failures;
          quick "self route" self_route_is_zero_hops;
          quick "adjacent route" adjacent_route_is_one_hop;
          quick "hops at most distance" hops_at_most_distance;
          quick "distance strictly decreases" path_distance_strictly_decreases;
          quick "path endpoints and length" path_starts_and_ends_correctly;
          quick "one-sided never overshoots" one_sided_never_overshoots;
          quick "one-sided slower on average" one_sided_slower_than_two_sided;
          quick "chain crawl" chain_route_crawls;
          quick "deterministic hop bound" deterministic_network_hop_bound;
          quick "rejects bad endpoints" route_rejects_bad_endpoints;
          quick "hop limit reported" hop_limit_reported;
        ] );
      ( "node-failures",
        [
          quick "chain blockade" chain_blockade_terminate_fails;
          quick "backtracking recovers" backtrack_recovers_when_terminate_fails;
          quick "strategy ordering" strategies_ordering_under_failures;
          quick "reroute without rng" reroute_requires_rng_gracefully;
          quick "backtrack validates history" backtrack_requires_positive_history;
          quick "dead nodes never visited" dead_nodes_never_visited;
        ] );
      ( "link-failures",
        [
          quick "never block delivery" link_failures_never_block_delivery;
          quick "slow delivery" link_failures_slow_delivery;
          quick "immediate links survive" immediate_links_survive_mask;
        ] );
      ( "sparse-networks",
        [
          quick "delivers" sparse_network_delivers;
          quick "hops bounded by index span" sparse_network_distance_uses_positions;
          quick "one-sided respects positions" sparse_one_sided_respects_positions;
          quick "survives failures" sparse_network_with_failures;
        ] );
      ("reroute", [ quick "more attempts no worse" reroute_more_attempts_no_worse ]);
      ( "circle",
        [
          quick "delivers" ring_delivers;
          quick "hops at most shorter arc" ring_hops_at_most_arc;
          quick "routes across the seam" ring_routes_across_seam;
          quick "one-sided is clockwise" ring_one_sided_is_clockwise;
          quick "survives failures" ring_survives_failures;
        ] );
      ( "loop-erasure",
        [
          quick "simple paths" loop_erased_simple_path;
          quick "excursions erased" loop_erased_excursion;
          quick "equals hops for greedy" loop_erased_matches_hops_without_backtracking;
          quick "shorter under backtracking" loop_erased_shorter_under_backtracking;
        ] );
      ( "byzantine",
        [
          quick "clean network matches greedy" byzantine_free_network_is_greedy;
          quick "naive dies at the first blackhole" byzantine_naive_dies_at_first_blackhole;
          quick "retry routes around" byzantine_retry_routes_around;
          quick "wasted messages counted" byzantine_wasted_counts_blackhole_hits;
          quick "misroute: clean network is plain greedy" byzantine_misroute_clean_network;
          quick "misroute: sabotage inflates hops" byzantine_misroute_inflates_hops;
          quick "rejects byzantine endpoints" byzantine_rejects_bad_endpoints;
          quick "sweep shapes" byzantine_sweep_shapes;
        ] );
      ( "failure-masks",
        [
          quick "exact fraction" fraction_mask_exact;
          quick "zero fraction" fraction_zero_kills_nobody;
          quick "bernoulli rate" bernoulli_mask_rate;
          quick "compose" compose_masks;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p)
          [
            prop_always_delivers_no_failures;
            prop_hops_bounded_by_distance;
            prop_backtrack_never_worse_than_terminate;
            prop_byzantine_retry_dominates_naive;
            prop_loop_erased_bounded;
          ] );
    ]
