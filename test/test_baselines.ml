(* ftr-lint: disable-file R2 test assertions compare small concrete values *)
module Chord = Ftr_baselines.Chord
module Kleinberg = Ftr_baselines.Kleinberg
module Lattice = Ftr_baselines.Lattice
module Flooding = Ftr_baselines.Flooding
module Torus = Ftr_metric.Torus
module Rng = Ftr_prng.Rng

let rng () = Rng.of_int 2718

(* ------------------------------------------------------------------ *)
(* Chord                                                               *)
(* ------------------------------------------------------------------ *)

let chord_successor_full () =
  let c = Chord.create_full ~n:16 in
  Alcotest.(check int) "self" 5 (Chord.successor c 5);
  Alcotest.(check int) "wraps" 0 (Chord.successor c 16 mod 16)

let chord_successor_sparse () =
  let c = Chord.create ~ring_size:16 ~node_ids:[| 2; 5; 11 |] in
  Alcotest.(check int) "key 3 -> 5" 5 (Chord.successor c 3);
  Alcotest.(check int) "key 5 -> 5" 5 (Chord.successor c 5);
  Alcotest.(check int) "key 12 wraps to 2" 2 (Chord.successor c 12);
  Alcotest.(check int) "key 0 -> 2" 2 (Chord.successor c 0)

let chord_fingers_full () =
  let c = Chord.create_full ~n:16 in
  (* Node 0's fingers: successor of 1, 2, 4, 8. *)
  Alcotest.(check (array int)) "fingers of 0" [| 1; 2; 4; 8 |] (Chord.fingers_of c ~id:0);
  Alcotest.(check (array int)) "fingers of 10" [| 11; 12; 14; 2 |] (Chord.fingers_of c ~id:10)

let chord_routes_correctly () =
  let c = Chord.create_full ~n:256 in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r 256 and key = Rng.int r 256 in
    match Chord.route c ~src ~key with
    | Some _ -> ()
    | None -> Alcotest.fail "chord routing failed"
  done

let chord_log_hops () =
  let n = 4096 in
  let c = Chord.create_full ~n in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r n and key = Rng.int r n in
    let h = Chord.route_hops c ~src ~key in
    (* Each hop at least halves the remaining clockwise distance. *)
    Alcotest.(check bool) (Printf.sprintf "%d <= 12" h) true (h <= 12)
  done

let chord_zero_hops_to_self () =
  let c = Chord.create_full ~n:64 in
  Alcotest.(check int) "self key" 0 (Chord.route_hops c ~src:9 ~key:9)

let chord_sparse_routes () =
  let r = rng () in
  let ids = Array.of_list (List.sort_uniq compare (List.init 50 (fun _ -> Rng.int r 1024))) in
  let c = Chord.create ~ring_size:1024 ~node_ids:ids in
  for _ = 1 to 200 do
    let src = ids.(Rng.int r (Array.length ids)) and key = Rng.int r 1024 in
    match Chord.route c ~src ~key with
    | Some h -> Alcotest.(check bool) "bounded hops" true (h <= 20)
    | None -> Alcotest.fail "sparse chord routing failed"
  done

let chord_failures_skip_dead_fingers () =
  let n = 1024 in
  let c = Chord.create_full ~n in
  let mask = Ftr_core.Failure.random_node_fraction (Rng.of_int 70) ~n ~fraction:0.3 in
  let alive = Ftr_graph.Bitset.get mask in
  let r = rng () in
  let delivered = ref 0 and total = 0 + 200 in
  for _ = 1 to total do
    let rec live () =
      let v = Rng.int r n in
      if alive v then v else live ()
    in
    let src = live () and key = live () in
    match Chord.route_with_failures ~successors:4 c ~alive ~src ~key with
    | Some _ -> incr delivered
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most delivered (%d/%d)" !delivered total)
    true
    (!delivered > 180)

let chord_failures_no_failures_matches_plain () =
  let c = Chord.create_full ~n:512 in
  let alive _ = true in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r 512 and key = Rng.int r 512 in
    let plain = Chord.route c ~src ~key in
    let fancy = Chord.route_with_failures c ~alive ~src ~key in
    Alcotest.(check (option int)) "identical without failures" plain fancy
  done

let chord_successor_list () =
  let c = Chord.create ~ring_size:16 ~node_ids:[| 2; 5; 11 |] in
  Alcotest.(check (list int)) "wraps" [ 11; 2; 5 ] (Chord.successor_list c ~id:7 ~r:3);
  Alcotest.(check (list int)) "capped at population" [ 2; 5; 11 ]
    (Chord.successor_list c ~id:0 ~r:10)

let chord_longer_successor_list_helps () =
  let rows = Chord.failure_sweep ~n:2048 ~fractions:[ 0.5 ] ~messages:300 ~seed:71 () in
  match rows with
  | [ row ] ->
      Alcotest.(check bool)
        (Printf.sprintf "r=4 (%.3f) <= r=1 (%.3f)" row.Chord.failed_r4 row.Chord.failed_r1)
        true
        (row.Chord.failed_r4 <= row.Chord.failed_r1)
  | _ -> Alcotest.fail "expected one row"

let chord_failures_rejects_dead_endpoint () =
  let c = Chord.create_full ~n:64 in
  Alcotest.check_raises "dead endpoint"
    (Invalid_argument "Chord.route_with_failures: endpoint is dead") (fun () ->
      ignore (Chord.route_with_failures c ~alive:(fun v -> v <> 0) ~src:0 ~key:5))

let chord_rejects_duplicates () =
  Alcotest.check_raises "duplicate ids" (Invalid_argument "Chord.create: duplicate identifier")
    (fun () -> ignore (Chord.create ~ring_size:8 ~node_ids:[| 1; 1 |]))

(* ------------------------------------------------------------------ *)
(* Kleinberg                                                           *)
(* ------------------------------------------------------------------ *)

let kleinberg_structure () =
  let k = Kleinberg.build ~side:16 (rng ()) in
  Alcotest.(check int) "size" 256 (Kleinberg.size k);
  (* Every node has 4 lattice neighbours plus one long link. *)
  for u = 0 to 255 do
    Alcotest.(check int) "degree" 5 (Array.length (Kleinberg.neighbors k u))
  done

let kleinberg_delivers () =
  let k = Kleinberg.build ~side:32 (rng ()) in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r 1024 and dst = Rng.int r 1024 in
    match Kleinberg.route k ~src ~dst with
    | Some _ -> ()
    | None -> Alcotest.fail "kleinberg routing failed"
  done

let kleinberg_hops_bounded_by_l1 () =
  let k = Kleinberg.build ~side:32 (rng ()) in
  let t = Kleinberg.torus k in
  let r = rng () in
  for _ = 1 to 200 do
    let src = Rng.int r 1024 and dst = Rng.int r 1024 in
    let h = Kleinberg.route_hops k ~src ~dst in
    Alcotest.(check bool) "hops <= L1 distance" true (h <= Torus.distance t src dst)
  done

let kleinberg_alpha2_beats_overly_local () =
  (* Kleinberg's brittleness claim: exponents above the dimension
     concentrate long links so close that routing degenerates towards the
     plain lattice. (The alpha < d side of the theorem separates too
     slowly to show at test sizes; the benchmark sweeps it at scale.) *)
  let side = 64 in
  let mean alpha seed =
    let k = Kleinberg.build ~alpha ~side (Rng.of_int seed) in
    let r = Rng.of_int (seed + 1) in
    let total = ref 0 in
    for _ = 1 to 400 do
      let src = Rng.int r (side * side) and dst = Rng.int r (side * side) in
      total := !total + Kleinberg.route_hops k ~src ~dst
    done;
    float_of_int !total /. 400.0
  in
  let good = mean 2.0 50 and bad = mean 6.0 51 in
  Alcotest.(check bool) (Printf.sprintf "alpha=2 (%.1f) < alpha=6 (%.1f)" good bad) true
    (good < bad)

let kleinberg_more_links_faster () =
  let side = 48 in
  let mean links seed =
    let k = Kleinberg.build ~long_links:links ~side (Rng.of_int seed) in
    let r = Rng.of_int (seed + 1) in
    let total = ref 0 in
    for _ = 1 to 300 do
      let src = Rng.int r (side * side) and dst = Rng.int r (side * side) in
      total := !total + Kleinberg.route_hops k ~src ~dst
    done;
    float_of_int !total /. 300.0
  in
  let one = mean 1 60 and four = mean 4 61 in
  Alcotest.(check bool) (Printf.sprintf "4 links (%.1f) < 1 link (%.1f)" four one) true
    (four < one)

(* ------------------------------------------------------------------ *)
(* Lattice (CAN)                                                       *)
(* ------------------------------------------------------------------ *)

let lattice_hops_equal_l1 () =
  let l = Lattice.create ~dims:2 ~side:16 in
  let t = Lattice.torus l in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r 256 and dst = Rng.int r 256 in
    Alcotest.(check int) "hops = L1" (Torus.distance t src dst) (Lattice.route_hops l ~src ~dst)
  done

let lattice_3d () =
  let l = Lattice.create ~dims:3 ~side:8 in
  Alcotest.(check int) "size" 512 (Lattice.size l);
  let t = Lattice.torus l in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r 512 and dst = Rng.int r 512 in
    Alcotest.(check int) "hops = L1 in 3d" (Torus.distance t src dst)
      (Lattice.route_hops l ~src ~dst)
  done

let lattice_much_slower_than_kleinberg () =
  (* The paper's point about CAN: polynomial vs polylog routing. *)
  let side = 40 in
  let l = Lattice.create ~dims:2 ~side in
  let k = Kleinberg.build ~long_links:4 ~side (rng ()) in
  let r = rng () in
  let lat = ref 0 and kle = ref 0 in
  for _ = 1 to 300 do
    let src = Rng.int r (side * side) and dst = Rng.int r (side * side) in
    lat := !lat + Lattice.route_hops l ~src ~dst;
    kle := !kle + Kleinberg.route_hops k ~src ~dst
  done;
  Alcotest.(check bool) "lattice slower" true (!lat > !kle)

(* ------------------------------------------------------------------ *)
(* Flooding                                                            *)
(* ------------------------------------------------------------------ *)

let flooding_finds_target () =
  let g = Flooding.random_overlay ~n:500 ~degree:4 (rng ()) in
  let r = rng () in
  for _ = 1 to 50 do
    let src = Rng.int r 500 and dst = Rng.int r 500 in
    if src <> dst then begin
      let res = Flooding.search g ~src ~dst in
      Alcotest.(check bool) "found" true res.Flooding.found
    end
  done

let flooding_self_is_free () =
  let g = Flooding.random_overlay ~n:100 ~degree:3 (rng ()) in
  let res = Flooding.search g ~src:7 ~dst:7 in
  Alcotest.(check bool) "found" true res.Flooding.found;
  Alcotest.(check int) "no messages" 0 res.Flooding.messages

let flooding_ttl_limits () =
  let g = Flooding.random_overlay ~n:2000 ~degree:3 (rng ()) in
  let r = rng () in
  let found = ref 0 in
  for _ = 1 to 50 do
    let src = Rng.int r 2000 and dst = Rng.int r 2000 in
    let res = Flooding.search ~ttl:1 g ~src ~dst in
    if res.Flooding.found then incr found
  done;
  Alcotest.(check bool) "ttl 1 rarely finds" true (!found < 10)

let flooding_message_explosion () =
  (* The flood contacts a large share of the network per query — the
     scalability failure the paper's introduction cites. The traffic seed
     must differ from the construction seed or sources and destinations
     replicate the construction draws and land adjacent. *)
  let n = 2000 in
  let g = Flooding.random_overlay ~n ~degree:4 (Rng.of_int 1001) in
  let r = Rng.of_int 1002 in
  let total = ref 0 and queries = 0 + 30 in
  for _ = 1 to queries do
    let src = Rng.int r n and dst = Rng.int r n in
    if src <> dst then total := !total + (Flooding.search g ~src ~dst).Flooding.messages
  done;
  let mean = float_of_int !total /. float_of_int queries in
  Alcotest.(check bool) (Printf.sprintf "mean %.0f messages > n/10" mean) true
    (mean > float_of_int n /. 10.0)

let flooding_overlay_connected () =
  let g = Flooding.random_overlay ~n:300 ~degree:4 (rng ()) in
  Alcotest.(check bool) "connected" true (Ftr_graph.Bfs.is_strongly_connected g)

(* ------------------------------------------------------------------ *)
(* Plaxton / Tapestry prefix routing                                   *)
(* ------------------------------------------------------------------ *)

module Plaxton = Ftr_baselines.Plaxton

let plaxton_digits () =
  let t = Plaxton.create ~base:4 ~digits:3 in
  Alcotest.(check int) "size" 64 (Plaxton.size t);
  (* 39 in base 4 is 213. *)
  Alcotest.(check int) "msd" 2 (Plaxton.digit t 39 ~position:0);
  Alcotest.(check int) "mid" 1 (Plaxton.digit t 39 ~position:1);
  Alcotest.(check int) "lsd" 3 (Plaxton.digit t 39 ~position:2)

let plaxton_shared_prefix () =
  let t = Plaxton.create ~base:4 ~digits:3 in
  (* 213 vs 210 (id 36) share two digits; 213 vs 013 (id 7) share none. *)
  Alcotest.(check int) "two shared" 2 (Plaxton.shared_prefix t 39 36);
  Alcotest.(check int) "none shared" 0 (Plaxton.shared_prefix t 39 7);
  Alcotest.(check int) "all shared" 3 (Plaxton.shared_prefix t 39 39)

let plaxton_hops_equal_differing_digits () =
  let t = Plaxton.create ~base:4 ~digits:5 in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r (Plaxton.size t) and dst = Rng.int r (Plaxton.size t) in
    Alcotest.(check int) "hops = differing digits" (Plaxton.differing_digits t src dst)
      (Plaxton.route_hops t ~src ~dst)
  done

let plaxton_hops_bounded_by_digits () =
  let t = Plaxton.create ~base:2 ~digits:12 in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r (Plaxton.size t) and dst = Rng.int r (Plaxton.size t) in
    Alcotest.(check bool) "<= digits" true (Plaxton.route_hops t ~src ~dst <= 12)
  done

let plaxton_path_prefix_monotone () =
  (* Along a route, the shared prefix with the target never shrinks. *)
  let t = Plaxton.create ~base:3 ~digits:6 in
  let r = rng () in
  for _ = 1 to 100 do
    let src = Rng.int r (Plaxton.size t) and dst = Rng.int r (Plaxton.size t) in
    let _, path = Plaxton.route t ~src ~dst in
    let rec check prev = function
      | [] -> ()
      | v :: rest ->
          let p = Plaxton.shared_prefix t v dst in
          Alcotest.(check bool) "prefix grows" true (p >= prev);
          check p rest
    in
    check 0 path
  done

let plaxton_mean_hops_formula () =
  (* E[differing digits] = digits * (1 - 1/base) for uniform pairs. *)
  let t = Plaxton.create ~base:4 ~digits:6 in
  let r = rng () in
  let s = Ftr_stats.Summary.create () in
  for _ = 1 to 3000 do
    let src = Rng.int r (Plaxton.size t) and dst = Rng.int r (Plaxton.size t) in
    Ftr_stats.Summary.add_int s (Plaxton.route_hops t ~src ~dst)
  done;
  let expected = 6.0 *. 0.75 in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f near %.2f" (Ftr_stats.Summary.mean s) expected)
    true
    (abs_float (Ftr_stats.Summary.mean s -. expected) < 0.1)

let plaxton_rejects () =
  Alcotest.check_raises "base 1" (Invalid_argument "Plaxton.create: base must be >= 2")
    (fun () -> ignore (Plaxton.create ~base:1 ~digits:3))

(* ------------------------------------------------------------------ *)
(* Chord inside the framework (Section 3 unification)                  *)
(* ------------------------------------------------------------------ *)

let chordlike_equals_chord () =
  (* One-sided greedy routing over Network.build_chordlike takes exactly
     Chord's finger-table routes: hop counts match on every pair. *)
  let n = 1024 in
  let net = Ftr_core.Network.build_chordlike ~n () in
  let chord = Chord.create_full ~n in
  let r = rng () in
  for _ = 1 to 300 do
    let src = Rng.int r n and dst = Rng.int r n in
    let framework =
      Ftr_core.Route.hops (Ftr_core.Route.route ~side:Ftr_core.Route.One_sided net ~src ~dst)
    in
    Alcotest.(check int) "identical routes" (Chord.route_hops chord ~src ~key:dst) framework
  done

let chordlike_two_sided_needs_symmetric_links () =
  (* A structural lesson the framework makes visible: two-sided greedy over
     Chord's asymmetric fingers (all clockwise, plus one predecessor) is
     dramatically SLOWER than one-sided routing, because a target a short
     arc counter-clockwise lures the myopic metric into crawling backward
     one predecessor-step at a time instead of jumping clockwise around.
     Two-sided greedy wants the symmetric link law the paper uses. *)
  let n = 1024 in
  let net = Ftr_core.Network.build_chordlike ~predecessor:true ~n () in
  let symmetric = Ftr_core.Network.build_ring ~n ~links:(Ftr_core.Network.links net) (rng ()) in
  let r = rng () in
  let one = ref 0 and two = ref 0 and sym = ref 0 in
  for _ = 1 to 300 do
    let src = Rng.int r n and dst = Rng.int r n in
    one := !one + Ftr_core.Route.hops (Ftr_core.Route.route ~side:Ftr_core.Route.One_sided net ~src ~dst);
    two := !two + Ftr_core.Route.hops (Ftr_core.Route.route ~side:Ftr_core.Route.Two_sided net ~src ~dst);
    sym := !sym + Ftr_core.Route.hops (Ftr_core.Route.route ~side:Ftr_core.Route.Two_sided symmetric ~src ~dst)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "asymmetric two-sided (%d) much slower than one-sided (%d)" !two !one)
    true
    (!two > 2 * !one);
  Alcotest.(check bool)
    (Printf.sprintf "symmetric 1/d links two-sided (%d) competitive with fingers (%d)" !sym !one)
    true
    (!sym < 2 * !one)

(* ------------------------------------------------------------------ *)
(* Cross-system comparison                                             *)
(* ------------------------------------------------------------------ *)

let structured_overlays_beat_flooding_in_messages () =
  let n = 1024 in
  let net = Ftr_core.Network.build_ideal ~n ~links:10 (rng ()) in
  let g = Flooding.random_overlay ~n ~degree:4 (rng ()) in
  let r = rng () in
  let greedy = ref 0 and flood = ref 0 in
  for _ = 1 to 50 do
    let src = Rng.int r n and dst = Rng.int r n in
    greedy := !greedy + Ftr_core.Route.hops (Ftr_core.Route.route net ~src ~dst);
    if src <> dst then flood := !flood + (Flooding.search g ~src ~dst).Flooding.messages
  done;
  Alcotest.(check bool) "greedy uses far fewer messages" true (!greedy * 10 < !flood)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_chord_reaches_successor =
  QCheck.Test.make ~name:"chord always reaches the key's successor" ~count:100
    QCheck.(triple (int_range 0 255) (int_range 0 255) small_int)
    (fun (src, key, _seed) ->
      let c = Chord.create_full ~n:256 in
      match Chord.route c ~src ~key with Some _ -> true | None -> false)

let prop_lattice_hops_exact =
  QCheck.Test.make ~name:"lattice hops equal L1 distance" ~count:200
    QCheck.(pair (int_range 0 224) (int_range 0 224))
    (fun (src, dst) ->
      let l = Lattice.create ~dims:2 ~side:15 in
      Lattice.route_hops l ~src ~dst = Torus.distance (Lattice.torus l) src dst)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "baselines"
    [
      ( "chord",
        [
          quick "successor on full ring" chord_successor_full;
          quick "successor on sparse ring" chord_successor_sparse;
          quick "finger tables" chord_fingers_full;
          quick "routes correctly" chord_routes_correctly;
          quick "O(log n) hops" chord_log_hops;
          quick "zero hops to self" chord_zero_hops_to_self;
          quick "sparse ring routing" chord_sparse_routes;
          quick "rejects duplicates" chord_rejects_duplicates;
          quick "failures: skips dead fingers" chord_failures_skip_dead_fingers;
          quick "failures: matches plain when clean" chord_failures_no_failures_matches_plain;
          quick "successor list" chord_successor_list;
          quick "longer successor list helps" chord_longer_successor_list_helps;
          quick "failures: rejects dead endpoints" chord_failures_rejects_dead_endpoint;
        ] );
      ( "kleinberg",
        [
          quick "structure" kleinberg_structure;
          quick "delivers" kleinberg_delivers;
          quick "hops bounded by L1" kleinberg_hops_bounded_by_l1;
          quick "alpha=2 beats overly local links" kleinberg_alpha2_beats_overly_local;
          quick "more links faster" kleinberg_more_links_faster;
        ] );
      ( "lattice",
        [
          quick "hops equal L1" lattice_hops_equal_l1;
          quick "three dimensions" lattice_3d;
          quick "slower than kleinberg" lattice_much_slower_than_kleinberg;
        ] );
      ( "flooding",
        [
          quick "finds target" flooding_finds_target;
          quick "self query free" flooding_self_is_free;
          quick "ttl limits reach" flooding_ttl_limits;
          quick "message explosion" flooding_message_explosion;
          quick "overlay connected" flooding_overlay_connected;
        ] );
      ( "plaxton",
        [
          quick "digit extraction" plaxton_digits;
          quick "shared prefixes" plaxton_shared_prefix;
          quick "hops equal differing digits" plaxton_hops_equal_differing_digits;
          quick "hops bounded by digits" plaxton_hops_bounded_by_digits;
          quick "prefix monotone along routes" plaxton_path_prefix_monotone;
          quick "mean hops formula" plaxton_mean_hops_formula;
          quick "rejects degenerate namespaces" plaxton_rejects;
        ] );
      ( "unification",
        [
          quick "chordlike one-sided = Chord fingers" chordlike_equals_chord;
          quick "two-sided greedy needs symmetric links" chordlike_two_sided_needs_symmetric_links;
        ] );
      ( "comparison",
        [ quick "structured beats flooding" structured_overlays_beat_flooding_in_messages ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest p) [ prop_chord_reaches_successor; prop_lattice_hops_exact ]
      );
    ]
